"""The shared last-level cache.

Tag state (which block occupies which way) lives here; replacement metadata
lives in the attached :class:`repro.policies.ReplacementPolicy`. On top of
plain hit/miss simulation the LLC maintains *residency metadata* per way —
fill ordinal, fill PC, fill core, the mask of cores that touched the block,
the mask that wrote it, and the demand-hit count — because nearly every
experiment in the paper consumes per-residency sharing information. When a
residency ends (eviction, or the final flush) all registered
:class:`ResidencyObserver` instances are notified.
"""

from typing import List, Optional, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.policies.base import ReplacementPolicy

NO_BLOCK = -1
"""Way content marking an empty frame."""


class ResidencyObserver:
    """Receives one callback per completed LLC residency.

    Subclass and override :meth:`residency_ended`. Arguments are plain ints
    to keep the eviction path allocation-free.
    """

    def residency_started(
        self, block: int, set_index: int, fill_ordinal: int, pc: int, core: int
    ) -> None:
        """Called when a fill starts a new residency (default: ignore).

        Predictor harnesses override this to make (and log) a fill-time
        prediction with the table state *as of the fill* — the point in time
        the paper's predictors must commit to a decision.
        """

    def residency_ended(
        self,
        block: int,
        set_index: int,
        fill_ordinal: int,
        end_ordinal: int,
        fill_pc: int,
        fill_core: int,
        core_mask: int,
        write_mask: int,
        hits: int,
        other_hits: int,
        forced: bool,
    ) -> None:
        """Called when a block leaves the LLC (or at the end-of-run flush).

        Args:
            block: the block address.
            set_index: set it resided in.
            fill_ordinal: LLC access ordinal (1-based count value) of the
                fill that started the residency.
            end_ordinal: LLC access ordinal at which the residency ended.
            fill_pc: PC of the instruction whose miss triggered the fill.
            fill_core: core that triggered the fill.
            core_mask: bitmask of cores that demand-accessed the block
                during the residency (includes the filler).
            write_mask: bitmask of cores that wrote it during the residency.
            hits: number of demand hits the residency served.
            other_hits: the subset of ``hits`` issued by cores other than
                the filler (the residency's cross-core uses).
            forced: True when the residency was ended by the final flush
                rather than an eviction.
        """
        raise NotImplementedError


class SharedLlc:
    """Shared, inclusive LLC with a pluggable replacement policy."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        observers: Tuple[ResidencyObserver, ...] = (),
    ):
        self.geometry = geometry
        self.policy = policy
        self.observers: List[ResidencyObserver] = list(observers)
        policy.bind(geometry)
        policy.attach(self)

        num_sets = geometry.num_sets
        ways = geometry.ways
        self.num_sets = num_sets
        self.ways = ways
        self._set_mask = num_sets - 1

        self._blocks: List[List[int]] = [[NO_BLOCK] * ways for __ in range(num_sets)]
        self._where: dict = {}  # block -> (set_index, way); global map is
        # faster in CPython than per-set dicts and blocks are unique LLC-wide.

        # Residency metadata, flat lists indexed by set_index * ways + way —
        # one index computation per access instead of six nested subscripts.
        frames = num_sets * ways
        self._fill_ordinal = [0] * frames
        self._fill_pc = [0] * frames
        self._fill_core = [0] * frames
        self._core_mask = [0] * frames
        self._write_mask = [0] * frames
        self._hit_count = [0] * frames
        self._other_hits = [0] * frames

        self._used = [0] * num_sets

        self.access_count = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def add_observer(self, observer: ResidencyObserver) -> None:
        """Register a residency observer."""
        self.observers.append(observer)

    def attach_probe_bus(self, bus) -> None:
        """Install per-access probe instrumentation (observability only).

        Attaching shadows :meth:`access` with an instance attribute bound
        to :meth:`_probed_access`, so an un-probed LLC executes the exact
        class method — the disabled-probe path carries zero extra branches
        or lookups on the hot loop (the CI benchmark-smoke job enforces the
        <2% bound). The bus sees every access *after* the cache model has
        fully processed it and must never mutate cache or policy state.
        """
        self._probe_bus = bus
        self.access = self._probed_access

    def _probed_access(self, core: int, pc: int, block: int, is_write: bool):
        hit, evicted = SharedLlc.access(self, core, pc, block, is_write)
        self._probe_bus.on_access(self, core, pc, block, is_write, hit, evicted)
        return hit, evicted

    def contains(self, block: int) -> bool:
        """Non-mutating residency check."""
        return block in self._where

    def set_index_of(self, block: int) -> int:
        """The set a block maps to (probes/diagnostics)."""
        return block & self._set_mask

    def access(self, core: int, pc: int, block: int, is_write: bool) -> Tuple[bool, int]:
        """Process one demand access reaching the LLC.

        Returns:
            ``(hit, evicted_block)`` where ``evicted_block`` is
            :data:`NO_BLOCK` when no eviction occurred. The caller (the
            hierarchy) performs back-invalidation of the evicted block.
        """
        self.access_count += 1
        where = self._where.get(block)
        if where is not None:
            set_index, way = where
            self.hits += 1
            idx = set_index * self.ways + way
            self._core_mask[idx] |= 1 << core
            if is_write:
                self._write_mask[idx] |= 1 << core
            self._hit_count[idx] += 1
            if core != self._fill_core[idx]:
                self._other_hits[idx] += 1
            self.policy.on_hit(set_index, way, block, pc, core, is_write)
            return True, NO_BLOCK

        self.misses += 1
        set_index = block & self._set_mask
        set_blocks = self._blocks[set_index]
        evicted = NO_BLOCK
        if self._used[set_index] < self.ways:
            way = set_blocks.index(NO_BLOCK)
            self._used[set_index] += 1
        else:
            way = self.policy.select_victim(set_index)
            if way < 0 or way >= self.ways:
                raise SimulationError(
                    f"policy {self.policy.name} chose invalid way {way}"
                ) from None
            evicted = set_blocks[way]
            self._end_residency(set_index, way, forced=False)
            self.policy.on_evict(set_index, way, evicted)
            del self._where[evicted]
            self.evictions += 1

        set_blocks[way] = block
        self._where[block] = (set_index, way)
        idx = set_index * self.ways + way
        self._fill_ordinal[idx] = self.access_count
        self._fill_pc[idx] = pc
        self._fill_core[idx] = core
        self._core_mask[idx] = 1 << core
        self._write_mask[idx] = (1 << core) if is_write else 0
        self._hit_count[idx] = 0
        self._other_hits[idx] = 0
        self.policy.on_fill(set_index, way, block, pc, core, is_write)
        if self.observers:
            for observer in self.observers:
                observer.residency_started(
                    block, set_index, self.access_count, pc, core
                )
        return False, evicted

    def _end_residency(self, set_index: int, way: int, forced: bool) -> None:
        if not self.observers:
            return
        block = self._blocks[set_index][way]
        idx = set_index * self.ways + way
        for observer in self.observers:
            observer.residency_ended(
                block,
                set_index,
                self._fill_ordinal[idx],
                self.access_count,
                self._fill_pc[idx],
                self._fill_core[idx],
                self._core_mask[idx],
                self._write_mask[idx],
                self._hit_count[idx],
                self._other_hits[idx],
                forced,
            )

    def flush_residencies(self) -> None:
        """End every live residency (call once, at end of simulation).

        Blocks stay resident — only the observers are notified — so stats
        cover blocks that never got evicted. Calling this mid-run would
        double-count residencies.
        """
        for set_index in range(self.num_sets):
            set_blocks = self._blocks[set_index]
            for way in range(self.ways):
                if set_blocks[way] != NO_BLOCK:
                    self._end_residency(set_index, way, forced=True)

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return len(self._where)

    def resident_blocks(self) -> List[int]:
        """All resident block addresses (tests/debugging)."""
        return list(self._where)

    def __repr__(self) -> str:
        return (
            f"SharedLlc({self.geometry.describe()}, policy={self.policy.name}, "
            f"accesses={self.access_count})"
        )
