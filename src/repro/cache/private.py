"""Private per-core cache level (L1 or L2), strictly LRU.

Implementation: one recency-ordered list of block addresses per set, MRU at
index 0. For the small associativities of private levels (8 ways) linear
list operations beat fancier structures in CPython, and the move-to-front
list *is* the LRU metadata — there is nothing else to keep consistent.
"""

from typing import List, Optional

from repro.common.config import CacheGeometry


class PrivateCache:
    """A set-associative LRU cache holding block addresses.

    The cache stores no data and no dirty bits — functional simulation only
    needs presence. Dirtiness is tracked by the directory at the granularity
    the experiments need (writeback counting).
    """

    def __init__(self, geometry: CacheGeometry, name: str = "private"):
        self.geometry = geometry
        self.name = name
        self.num_sets = geometry.num_sets
        self.ways = geometry.ways
        self._set_mask = self.num_sets - 1
        self._sets: List[List[int]] = [[] for __ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, block: int) -> bool:
        """Probe for ``block``; on a hit promote it to MRU and return True.

        A miss does *not* allocate — call :meth:`fill` after the lower
        levels have supplied the block, mirroring the request/response split
        of a real hierarchy.
        """
        lru_list = self._sets[block & self._set_mask]
        if block in lru_list:
            if lru_list[0] != block:
                lru_list.remove(block)
                lru_list.insert(0, block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, block: int) -> Optional[int]:
        """Install ``block`` at MRU; returns the evicted block or None.

        Filling a block that is already resident only refreshes recency.
        """
        lru_list = self._sets[block & self._set_mask]
        if block in lru_list:
            if lru_list[0] != block:
                lru_list.remove(block)
                lru_list.insert(0, block)
            return None
        lru_list.insert(0, block)
        if len(lru_list) > self.ways:
            return lru_list.pop()
        return None

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if present; returns whether it was resident."""
        lru_list = self._sets[block & self._set_mask]
        if block in lru_list:
            lru_list.remove(block)
            return True
        return False

    def contains(self, block: int) -> bool:
        """Non-destructive presence check (no recency update)."""
        return block in self._sets[block & self._set_mask]

    def resident_blocks(self) -> List[int]:
        """All resident blocks (tests/debugging)."""
        out: List[int] = []
        for lru_list in self._sets:
            out.extend(lru_list)
        return out

    def __repr__(self) -> str:
        return f"PrivateCache({self.name}, {self.geometry.describe()})"
