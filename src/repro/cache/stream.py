"""Recorded LLC-level access streams.

The stream of demand accesses that reach the LLC (private-L2 misses) is
recorded once, under the baseline hierarchy, and then replayed against any
number of LLC policies. Replay guarantees every policy — including OPT and
the oracle, which need the future — observes the *identical* stream; see
DESIGN.md for why this is the standard methodology (and the one
approximation it entails under inclusion).

Storage mirrors :class:`repro.trace.Trace`: four parallel arrays.
"""

from array import array
from typing import Iterator, NamedTuple, Tuple

from repro.common.errors import TraceError
from repro.common.npsupport import frozen_view, require_numpy


class LlcAccess(NamedTuple):
    """One demand access reaching the LLC."""

    core: int
    pc: int
    block: int
    is_write: bool


class LlcStream:
    """Immutable recorded LLC access stream."""

    def __init__(self, cores: array, pcs: array, blocks: array, writes: array,
                 name: str = "llc-stream"):
        lengths = {len(cores), len(pcs), len(blocks), len(writes)}
        if len(lengths) != 1:
            raise TraceError(f"LLC stream column lengths disagree: {sorted(lengths)}")
        self._cores = cores
        self._pcs = pcs
        self._blocks = blocks
        self._writes = writes
        self.name = name

    @property
    def cores(self) -> array:
        """Core-id column."""
        return self._cores

    @property
    def pcs(self) -> array:
        """Fill-PC column."""
        return self._pcs

    @property
    def blocks(self) -> array:
        """Block-address column."""
        return self._blocks

    @property
    def writes(self) -> array:
        """Is-write column (0/1)."""
        return self._writes

    def columns(self) -> Tuple[array, array, array, array]:
        """``(cores, pcs, blocks, writes)`` for bulk consumers."""
        return self._cores, self._pcs, self._blocks, self._writes

    def numpy_columns(self) -> Tuple:
        """``(cores, pcs, blocks, writes)`` as read-only numpy views.

        Zero-copy: the views alias the stream's own column buffers (the
        whole point — vectorized kernels must not pay a materialization
        copy per replay). Raises :class:`RuntimeError` without numpy.
        """
        np = require_numpy()
        return (
            frozen_view(self._cores, np.int8),
            frozen_view(self._pcs, np.int64),
            frozen_view(self._blocks, np.int64),
            frozen_view(self._writes, np.int8),
        )

    @property
    def num_cores(self) -> int:
        """1 + maximum core id appearing in the stream (0 when empty)."""
        if len(self._cores) == 0:
            return 0
        # Columns are array.array normally, but zero-copy loads
        # (:func:`repro.cache.stream_io.read_llc_stream`) back them with
        # mmap-based numpy views; ndarray.max avoids a Python-level scan.
        column = self._cores
        peak = column.max() if hasattr(column, "max") else max(column)
        return int(peak) + 1

    def __len__(self) -> int:
        return len(self._cores)

    def __getitem__(self, index: int) -> LlcAccess:
        return LlcAccess(
            self._cores[index],
            self._pcs[index],
            self._blocks[index],
            bool(self._writes[index]),
        )

    def __iter__(self) -> Iterator[LlcAccess]:
        for i in range(len(self._cores)):
            yield LlcAccess(
                self._cores[i], self._pcs[i], self._blocks[i], bool(self._writes[i])
            )

    def __repr__(self) -> str:
        return f"LlcStream(name={self.name!r}, len={len(self)})"


class LlcStreamBuilder:
    """Accumulates an :class:`LlcStream` during a hierarchy run."""

    def __init__(self, name: str = "llc-stream"):
        self.name = name
        self._cores = array("b")
        self._pcs = array("q")
        self._blocks = array("q")
        self._writes = array("b")

    def append(self, core: int, pc: int, block: int, is_write: bool) -> None:
        """Record one LLC demand access."""
        self._cores.append(core)
        self._pcs.append(pc)
        self._blocks.append(block)
        self._writes.append(1 if is_write else 0)

    def __len__(self) -> int:
        return len(self._cores)

    def build(self) -> LlcStream:
        """Freeze into an :class:`LlcStream`."""
        return LlcStream(self._cores, self._pcs, self._blocks, self._writes, self.name)
