"""Binary file format for recorded LLC streams.

Mirrors ``repro.trace.io``'s layout with its own magic so the two artifact
kinds cannot be confused:

    magic    4 bytes  b"RLLC"
    version  u32      currently 2
    count    u64      number of accesses
    ncores   u32      number of cores (informational)
    namelen  u32      UTF-8 name length
    name     bytes
    columns  cores as i8[count], pcs as i64[count],
             blocks as i64[count], writes as i8[count]
    crc32    u32      CRC-32 of the four column byte blobs (version >= 2)

Paths ending in ``.gz`` are gzip-compressed. Recording a stream costs a
full hierarchy pass; persisting it lets sweeps and reruns skip straight to
replay. The trailing checksum is the integrity backbone of the persistent
experiment cache (:mod:`repro.sim.experiment`): a corrupted or truncated
artifact raises :class:`TraceError` instead of silently perturbing results.
Version-1 files (no checksum) still load.

Loading is zero-copy where the platform allows it: plain (uncompressed)
files are ``mmap``-ed and each column becomes an ``np.frombuffer`` view
over the mapping — no per-column deserialize copy, so N pool workers
re-opening the same cached stream share the page cache instead of each
materializing the blobs. The CRC is still verified over the mapped bytes.
Gzip paths and numpy-less interpreters take the original streamed reader
(``array.frombytes``); both produce equivalent streams (the column types
differ — numpy views vs ``array.array`` — but every consumer is
duck-typed over them, and the equivalence is differential-tested).
"""

import gzip
import mmap
import struct
import zlib
from array import array
from pathlib import Path
from typing import Union

from repro.cache.stream import LlcStream
from repro.common.errors import TraceError
from repro.common.npsupport import HAVE_NUMPY, require_numpy

_MAGIC = b"RLLC"
_VERSION = 2
_HEADER = struct.Struct("<4sIQII")
_FOOTER = struct.Struct("<I")

STREAM_FORMAT_VERSION = _VERSION
"""Public format version; part of the persistent experiment-cache key."""


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def write_llc_stream(stream: LlcStream, path: Union[str, Path]) -> None:
    """Serialise ``stream`` to ``path`` (gzip when the name ends in .gz)."""
    path = Path(path)
    name_bytes = stream.name.encode("utf-8")
    cores, pcs, blocks, writes = stream.columns()
    checksum = 0
    with _open(path, "wb") as handle:
        handle.write(_HEADER.pack(
            _MAGIC, _VERSION, len(stream), stream.num_cores, len(name_bytes)
        ))
        handle.write(name_bytes)
        for column in (cores, pcs, blocks, writes):
            blob = column.tobytes()
            checksum = zlib.crc32(blob, checksum)
            handle.write(blob)
        handle.write(_FOOTER.pack(checksum))


def read_llc_stream(path: Union[str, Path]) -> LlcStream:
    """Load a stream written by :func:`write_llc_stream`.

    Plain files with numpy available load zero-copy (module docstring);
    gzip paths and numpy-less interpreters take the streamed reader.

    Raises:
        TraceError: on a bad magic number, unsupported version, a
            truncated file, or a column checksum mismatch.
    """
    path = Path(path)
    if path.suffix != ".gz" and HAVE_NUMPY:
        stream = _read_llc_stream_mapped(path)
        if stream is not None:
            return stream
    return _read_llc_stream_streamed(path)


def _read_llc_stream_mapped(path: Path):
    """Zero-copy reader: mmap + ``np.frombuffer`` column views.

    Returns ``None`` when the file cannot be mapped (empty file, exotic
    filesystem) — the caller falls back to the streamed reader, which
    reports the ordinary format errors. The mapping outlives this
    function through the views' ``base`` references; the file descriptor
    is closed immediately.
    """
    np = require_numpy()
    with open(path, "rb") as handle:
        try:
            buf = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            return None
    size = len(buf)
    if size < _HEADER.size:
        raise TraceError(f"{path}: truncated header")
    magic, version, count, __, namelen = _HEADER.unpack_from(buf, 0)
    if magic != _MAGIC:
        raise TraceError(f"{path}: bad magic {magic!r} (not an LLC stream)")
    if version not in (1, 2):
        raise TraceError(f"{path}: unsupported version {version}")
    offset = _HEADER.size
    if size < offset + namelen:
        raise TraceError(f"{path}: truncated header")
    name = bytes(buf[offset:offset + namelen]).decode("utf-8")
    offset += namelen

    checksum = 0
    columns = []
    view = memoryview(buf)
    for typecode, item_size, dtype in (
        ("b", 1, np.int8), ("q", 8, np.int64),
        ("q", 8, np.int64), ("b", 1, np.int8),
    ):
        end = offset + count * item_size
        if end > size:
            raise TraceError(f"{path}: truncated column ({typecode})")
        checksum = zlib.crc32(view[offset:end], checksum)
        columns.append(np.frombuffer(buf, dtype=dtype, count=count,
                                     offset=offset))
        offset = end
    if version >= 2:
        if size < offset + _FOOTER.size:
            raise TraceError(f"{path}: truncated checksum footer")
        (expected,) = _FOOTER.unpack_from(buf, offset)
        if expected != checksum:
            raise TraceError(
                f"{path}: checksum mismatch "
                f"(stored {expected:#010x}, computed {checksum:#010x})"
            )
    cores, pcs, blocks, writes = columns
    return LlcStream(cores, pcs, blocks, writes, name=name)


def _read_llc_stream_streamed(path: Path) -> LlcStream:
    """Streamed reader (copies each column blob through ``frombytes``)."""
    with _open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceError(f"{path}: truncated header")
        magic, version, count, __, namelen = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceError(f"{path}: bad magic {magic!r} (not an LLC stream)")
        if version not in (1, 2):
            raise TraceError(f"{path}: unsupported version {version}")
        name = handle.read(namelen).decode("utf-8")

        checksum = 0

        def load(typecode: str, item_size: int) -> array:
            nonlocal checksum
            column = array(typecode)
            blob = handle.read(count * item_size)
            if len(blob) != count * item_size:
                raise TraceError(f"{path}: truncated column ({typecode})")
            checksum = zlib.crc32(blob, checksum)
            column.frombytes(blob)
            return column

        cores = load("b", 1)
        pcs = load("q", 8)
        blocks = load("q", 8)
        writes = load("b", 1)

        if version >= 2:
            footer = handle.read(_FOOTER.size)
            if len(footer) != _FOOTER.size:
                raise TraceError(f"{path}: truncated checksum footer")
            (expected,) = _FOOTER.unpack(footer)
            if expected != checksum:
                raise TraceError(
                    f"{path}: checksum mismatch "
                    f"(stored {expected:#010x}, computed {checksum:#010x})"
                )
    return LlcStream(cores, pcs, blocks, writes, name=name)
