"""Binary file format for recorded LLC streams.

Mirrors ``repro.trace.io``'s layout with its own magic so the two artifact
kinds cannot be confused:

    magic    4 bytes  b"RLLC"
    version  u32      currently 1
    count    u64      number of accesses
    ncores   u32      number of cores (informational)
    namelen  u32      UTF-8 name length
    name     bytes
    columns  cores as i8[count], pcs as i64[count],
             blocks as i64[count], writes as i8[count]

Paths ending in ``.gz`` are gzip-compressed. Recording a stream costs a
full hierarchy pass; persisting it lets sweeps and reruns skip straight to
replay.
"""

import gzip
import struct
from array import array
from pathlib import Path
from typing import Union

from repro.cache.stream import LlcStream
from repro.common.errors import TraceError

_MAGIC = b"RLLC"
_VERSION = 1
_HEADER = struct.Struct("<4sIQII")


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def write_llc_stream(stream: LlcStream, path: Union[str, Path]) -> None:
    """Serialise ``stream`` to ``path`` (gzip when the name ends in .gz)."""
    path = Path(path)
    name_bytes = stream.name.encode("utf-8")
    cores, pcs, blocks, writes = stream.columns()
    with _open(path, "wb") as handle:
        handle.write(_HEADER.pack(
            _MAGIC, _VERSION, len(stream), stream.num_cores, len(name_bytes)
        ))
        handle.write(name_bytes)
        handle.write(cores.tobytes())
        handle.write(pcs.tobytes())
        handle.write(blocks.tobytes())
        handle.write(writes.tobytes())


def read_llc_stream(path: Union[str, Path]) -> LlcStream:
    """Load a stream written by :func:`write_llc_stream`.

    Raises:
        TraceError: on a bad magic number, unsupported version, or a
            truncated file.
    """
    path = Path(path)
    with _open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceError(f"{path}: truncated header")
        magic, version, count, __, namelen = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceError(f"{path}: bad magic {magic!r} (not an LLC stream)")
        if version != _VERSION:
            raise TraceError(f"{path}: unsupported version {version}")
        name = handle.read(namelen).decode("utf-8")

        def load(typecode: str, item_size: int) -> array:
            column = array(typecode)
            blob = handle.read(count * item_size)
            if len(blob) != count * item_size:
                raise TraceError(f"{path}: truncated column ({typecode})")
            column.frombytes(blob)
            return column

        cores = load("b", 1)
        pcs = load("q", 8)
        blocks = load("q", 8)
        writes = load("b", 1)
    return LlcStream(cores, pcs, blocks, writes, name=name)
