"""Cache substrate: private caches, the shared LLC, and the CMP hierarchy.

Two simulation forms are provided:

* :class:`CmpHierarchy` — the full online model: per-core private L1/L2
  (LRU, kept coherent through :class:`repro.coherence.Directory`) beneath a
  shared inclusive :class:`SharedLlc`. A run can record the demand stream
  that reaches the LLC as an :class:`LlcStream`.
* LLC-only replay (``repro.sim.engine.LlcOnlySimulator``) over a recorded
  :class:`LlcStream` — the form used for policy comparisons, Belady's OPT
  and the sharing oracle, because it guarantees every policy observes the
  identical access stream.
"""

from repro.cache.private import PrivateCache
from repro.cache.llc import ResidencyObserver, SharedLlc
from repro.cache.stream import LlcStream, LlcStreamBuilder
from repro.cache.stream_io import read_llc_stream, write_llc_stream
from repro.cache.hierarchy import CmpHierarchy, HierarchyStats

__all__ = [
    "PrivateCache",
    "SharedLlc",
    "ResidencyObserver",
    "LlcStream",
    "LlcStreamBuilder",
    "read_llc_stream",
    "write_llc_stream",
    "CmpHierarchy",
    "HierarchyStats",
]
