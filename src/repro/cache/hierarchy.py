"""The full CMP cache hierarchy (online simulation).

Per-core private L1D and unified L2 (both strict LRU), a directory keeping
them coherent under an invalidation protocol, and one shared inclusive LLC.
Threads map 1:1 onto cores (the paper pins one thread per core).

Protocol, functionally:

* read: served by the innermost level holding the block; an L2 miss issues
  a demand access to the LLC and fills L2 then L1; the directory gains the
  core as a sharer.
* write: same path for data, then the writer becomes the exclusive dirty
  owner — every other core's private copies are invalidated (an *upgrade*
  when the writer already held the block; upgrades do not touch the LLC's
  replacement or residency state, matching a directory-only transaction).
* private L2 eviction: back-invalidates the core's L1 (L1 ⊆ L2) and drops
  the core from the directory; a dirty victim counts as a writeback
  (writebacks hit the inclusive LLC and are not replacement events).
* LLC eviction: back-invalidates every private copy (inclusion victims).
  A ``inclusive=False`` hierarchy skips back-invalidation: private copies
  survive LLC evictions (non-inclusive organisation), trading directory
  growth for the removal of inclusion victims — useful for quantifying how
  much of a sharing-heavy workload's LLC traffic is inclusion-induced.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.llc import NO_BLOCK, SharedLlc
from repro.cache.private import PrivateCache
from repro.cache.stream import LlcStreamBuilder
from repro.coherence.directory import Directory
from repro.common.addressing import log2_exact
from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.common.stats import ratio
from repro.policies.base import ReplacementPolicy
from repro.trace.trace import Trace


@dataclass
class HierarchyStats:
    """Aggregate counters of one hierarchy run."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    upgrades: int = 0
    invalidations: int = 0
    l2_evictions: int = 0
    writebacks: int = 0
    inclusion_victims: int = 0

    @property
    def llc_accesses(self) -> int:
        """Demand accesses that reached the LLC."""
        return self.llc_hits + self.llc_misses

    @property
    def llc_miss_ratio(self) -> float:
        """LLC misses per LLC access."""
        return ratio(self.llc_misses, self.llc_accesses)

    @property
    def mpki_proxy(self) -> float:
        """LLC misses per kilo-access (instruction counts are not modelled,
        so per-access stands in for per-instruction)."""
        return ratio(self.llc_misses * 1000, self.accesses)


class CmpHierarchy:
    """Online CMP simulator: private L1/L2 per core under a shared LLC."""

    def __init__(
        self,
        machine: MachineConfig,
        policy: ReplacementPolicy,
        observers: Tuple = (),
        record_stream: bool = False,
        inclusive: bool = True,
        probe_bus=None,
    ):
        self.machine = machine
        self.inclusive = inclusive
        # Coherence probe bus (observability only): when set, directory
        # transactions are published via on_coherence(kind, core, block).
        # The checks sit on the upgrade/eviction paths, never on the L1-hit
        # fast path, so an un-probed hierarchy pays nothing per access.
        self._probe_bus = probe_bus
        self.l1s = [
            PrivateCache(machine.l1, name=f"l1.{core}")
            for core in range(machine.num_cores)
        ]
        self.l2s = [
            PrivateCache(machine.l2, name=f"l2.{core}")
            for core in range(machine.num_cores)
        ]
        self.llc = SharedLlc(machine.llc, policy, observers=observers)
        self.directory = Directory(machine.num_cores)
        self.stats = HierarchyStats()
        self._block_shift = log2_exact(machine.block_bytes)
        self._stream_builder: Optional[LlcStreamBuilder] = (
            LlcStreamBuilder() if record_stream else None
        )
        self._dirty_l2_blocks = [set() for __ in range(machine.num_cores)]

    def run(self, trace: Trace, flush: bool = True) -> HierarchyStats:
        """Drive the whole ``trace`` through the hierarchy.

        Args:
            trace: the interleaved multi-thread trace; thread ids must be
                within the machine's core count.
            flush: end live LLC residencies afterwards so observers see
                every residency exactly once.

        Raises:
            SimulationError: when the trace uses more threads than cores.
        """
        if trace.num_threads > self.machine.num_cores:
            raise SimulationError(
                f"trace has {trace.num_threads} threads but machine has "
                f"{self.machine.num_cores} cores"
            )
        tids, pcs, addrs, writes = trace.columns()
        shift = self._block_shift
        for i in range(len(tids)):
            self.access(tids[i], pcs[i], addrs[i] >> shift, writes[i] != 0)
        if flush:
            self.llc.flush_residencies()
        return self.stats

    def access(self, core: int, pc: int, block: int, is_write: bool) -> None:
        """Process one demand access of ``core`` to ``block``."""
        stats = self.stats
        stats.accesses += 1
        l1 = self.l1s[core]
        if l1.access(block):
            stats.l1_hits += 1
        else:
            l2 = self.l2s[core]
            if l2.access(block):
                stats.l2_hits += 1
                l1.fill(block)
            else:
                self._llc_access(core, pc, block, is_write)
        if is_write:
            self._acquire_exclusive(core, block)

    def _llc_access(self, core: int, pc: int, block: int, is_write: bool) -> None:
        stats = self.stats
        hit, evicted = self.llc.access(core, pc, block, is_write)
        if hit:
            stats.llc_hits += 1
        else:
            stats.llc_misses += 1
        if self._stream_builder is not None:
            self._stream_builder.append(core, pc, block, is_write)
        if evicted != NO_BLOCK and self.inclusive:
            self._back_invalidate(evicted)
        # Fill the private levels (L2 first; inclusion L1 within L2).
        l2_victim = self.l2s[core].fill(block)
        if l2_victim is not None:
            stats.l2_evictions += 1
            self.l1s[core].invalidate(l2_victim)
            self.directory.remove_sharer(l2_victim, core)
            dirty = self._dirty_l2_blocks[core]
            if l2_victim in dirty:
                dirty.discard(l2_victim)
                stats.writebacks += 1
                if self._probe_bus is not None:
                    self._probe_bus.on_coherence("writeback", core, l2_victim)
        self.l1s[core].fill(block)
        self.directory.add_sharer(block, core)

    def _acquire_exclusive(self, core: int, block: int) -> None:
        """Make ``core`` the sole owner, invalidating other private copies."""
        others = self.directory.set_exclusive(block, core)
        if others:
            self.stats.upgrades += 1
            if self._probe_bus is not None:
                self._probe_bus.on_coherence("upgrade", core, block)
            for other in self.directory.iter_cores(others):
                if self.l1s[other].invalidate(block):
                    self.stats.invalidations += 1
                    if self._probe_bus is not None:
                        self._probe_bus.on_coherence("invalidation", other, block)
                if self.l2s[other].invalidate(block):
                    self.stats.invalidations += 1
                    if self._probe_bus is not None:
                        self._probe_bus.on_coherence("invalidation", other, block)
                self._dirty_l2_blocks[other].discard(block)
        self._dirty_l2_blocks[core].add(block)

    def _back_invalidate(self, block: int) -> None:
        """Remove an LLC-evicted block from every private cache (inclusion)."""
        mask = self.directory.clear_block(block)
        if not mask:
            return
        for core in self.directory.iter_cores(mask):
            invalidated = self.l1s[core].invalidate(block)
            invalidated = self.l2s[core].invalidate(block) or invalidated
            if invalidated:
                self.stats.inclusion_victims += 1
                if self._probe_bus is not None:
                    self._probe_bus.on_coherence("inclusion_victim", core, block)
            if block in self._dirty_l2_blocks[core]:
                self._dirty_l2_blocks[core].discard(block)
                self.stats.writebacks += 1
                if self._probe_bus is not None:
                    self._probe_bus.on_coherence("writeback", core, block)

    def stream(self):
        """The recorded LLC stream (requires ``record_stream=True``).

        Raises:
            SimulationError: when recording was not enabled.
        """
        if self._stream_builder is None:
            raise SimulationError("hierarchy was built with record_stream=False")
        return self._stream_builder.build()
