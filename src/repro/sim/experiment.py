"""Experiment orchestration with per-workload caching.

Recording a workload's LLC stream (trace generation + the full hierarchy
pass) is the expensive step; every replay-based analysis after it is cheap.
:class:`ExperimentContext` caches those artifacts at two levels:

* **in memory**, per workload (optionally LRU-bounded so ``--full-size``
  sweeps don't hold every stream at once), and
* **on disk**, in a persistent machine-wide cache (default
  ``~/.cache/repro-sim``, overridable via the ``REPRO_SIM_CACHE_DIR``
  environment variable or an explicit ``cache_dir``), keyed by (workload,
  machine digest, seed, target accesses, stream-format version) so the
  hierarchy recording pass is paid once per machine — not once per process.
  Loads are integrity-checked (stream checksum + stats cross-check); a
  corrupt entry is dropped and re-recorded rather than trusted.

:func:`shared_context` additionally memoises whole contexts process-wide,
letting independent pytest-benchmark files share them.
"""

import dataclasses
import hashlib
import json
import os
import re
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.cache.hierarchy import HierarchyStats
from repro.cache.stream import LlcStream
from repro.cache.stream_io import (
    STREAM_FORMAT_VERSION,
    read_llc_stream,
    write_llc_stream,
)
from repro.common.config import MachineConfig, profile
from repro.common.errors import ConfigError, TraceError
from repro.common.rng import derive_seed
from repro.sim import telemetry
from repro.sim.multipass import record_llc_stream, run_opt, run_policy_on_stream
from repro.sim.results import PolicyComparison
from repro.trace.stats import TraceStatistics, compute_trace_statistics
from repro.workloads.registry import get_workload, workload_names

DEFAULT_TARGET_ACCESSES = 300_000
DEFAULT_SEED = 42

CACHE_DIR_ENV = "REPRO_SIM_CACHE_DIR"
"""Environment variable overriding the default persistent cache location."""

AUTO_CACHE_DIR = "auto"
"""Sentinel ``cache_dir`` value selecting the machine-wide default."""


def default_cache_dir() -> Path:
    """The persistent artifact cache directory for this machine."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-sim"


def resolve_cache_dir(
    cache_dir: Optional[Union[str, Path]]
) -> Optional[Path]:
    """Map a user-facing cache spec to a concrete directory (or None).

    ``None`` disables the disk cache, :data:`AUTO_CACHE_DIR` selects
    :func:`default_cache_dir`, anything else is taken as a path.
    """
    if cache_dir is None:
        return None
    if cache_dir == AUTO_CACHE_DIR:
        return default_cache_dir()
    return Path(cache_dir).expanduser()


def machine_digest(machine: MachineConfig) -> str:
    """Short stable digest of a full machine configuration.

    Part of every disk-cache key: two machines that happen to share a name
    (ad-hoc test configs, tweaked geometries) must never collide on
    recorded streams.
    """
    payload = repr(dataclasses.astuple(machine)).encode()
    return hashlib.sha256(payload).hexdigest()[:12]


@dataclass
class ArtifactCacheStats:
    """Counters for the two-level artifact cache of one context."""

    memory_hits: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    recordings: int = 0
    corrupt_entries: int = 0
    memory_evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (CLI/report friendly)."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class WorkloadArtifacts:
    """Cached products of one workload's expensive simulation pass."""

    workload: str
    trace_stats: TraceStatistics
    hierarchy_stats: HierarchyStats
    stream: LlcStream


class ExperimentContext:
    """Caches streams and runs replay analyses for one machine profile.

    Args:
        machine: CMP configuration.
        target_accesses: per-workload trace budget.
        seed: base seed; every derived stream/policy seed hangs off it.
        workloads: workload subset (default: every registered workload).
        cache_dir: persistent cache location — ``None`` (memory only),
            :data:`AUTO_CACHE_DIR`, or a path.
        max_cached: LRU bound on in-memory :class:`WorkloadArtifacts`
            (``None`` = unbounded). Long full-size sweeps set this so the
            context doesn't hold every stream in RAM at once.
        fastpath: three-state gate for the exact stack-distance LRU fast
            path in this context's replay analyses (None = auto: enabled
            unless ``REPRO_SIM_NO_FASTPATH`` is set). Results are
            bit-identical either way.
    """

    def __init__(
        self,
        machine: MachineConfig,
        target_accesses: int = DEFAULT_TARGET_ACCESSES,
        seed: int = DEFAULT_SEED,
        workloads: Optional[Iterable[str]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        max_cached: Optional[int] = None,
        fastpath: Optional[bool] = None,
    ):
        if max_cached is not None and max_cached < 1:
            raise ConfigError(f"max_cached must be >= 1, got {max_cached}")
        if target_accesses < 1:
            raise ConfigError(
                f"target_accesses must be >= 1, got {target_accesses}"
            )
        if seed < 0:
            raise ConfigError(f"seed must be >= 0, got {seed}")
        self.machine = machine
        self.geometry = machine.llc
        self.target_accesses = target_accesses
        self.seed = seed
        self.workload_list: List[str] = (
            list(workloads) if workloads is not None else workload_names()
        )
        self._artifacts: "OrderedDict[str, WorkloadArtifacts]" = OrderedDict()
        self.cache_dir = resolve_cache_dir(cache_dir)
        if (
            self.cache_dir is not None
            and self.cache_dir.exists()
            and not self.cache_dir.is_dir()
        ):
            raise ConfigError(
                f"cache dir {self.cache_dir} exists and is not a directory"
            )
        self.max_cached = max_cached
        self.fastpath = fastpath
        self.cache_stats = ArtifactCacheStats()

    # ------------------------------------------------------------------
    # Disk cache
    # ------------------------------------------------------------------

    def _cache_paths(self, name: str) -> Tuple[Path, Path]:
        stem = (
            f"{name}-{self.machine.name}-{machine_digest(self.machine)}"
            f"-n{self.target_accesses}-s{self.seed}-fv{STREAM_FORMAT_VERSION}"
        )
        return (
            self.cache_dir / f"{stem}.rllc.gz",
            self.cache_dir / f"{stem}.json",
        )

    def _load_cached(self, name: str) -> Optional[WorkloadArtifacts]:
        """Load one workload's artifacts from the disk cache, if present.

        Integrity policy: any malformed entry (bad checksum, truncated
        file, unparsable stats, or a stream/stats length mismatch) counts
        as corrupt, is removed, and triggers a fresh recording — a broken
        cache must never change results.
        """
        if self.cache_dir is None:
            return None
        stream_path, stats_path = self._cache_paths(name)
        if not (stream_path.exists() and stats_path.exists()):
            return None
        try:
            stats = json.loads(stats_path.read_text())
            trace_fields = dict(stats["trace"])
            trace_fields["per_thread_accesses"] = tuple(
                trace_fields["per_thread_accesses"]
            )
            trace_stats = TraceStatistics(**trace_fields)
            hierarchy_stats = HierarchyStats(**stats["hierarchy"])
            stream = read_llc_stream(stream_path)
            if len(stream) != hierarchy_stats.llc_accesses:
                raise TraceError(
                    f"{stream_path}: stream length {len(stream)} disagrees "
                    f"with cached stats ({hierarchy_stats.llc_accesses})"
                )
        except (TraceError, ValueError, KeyError, TypeError, OSError,
                EOFError):  # EOFError: truncated gzip member
            self.cache_stats.corrupt_entries += 1
            for path in (stream_path, stats_path):
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        self.cache_stats.disk_hits += 1
        return WorkloadArtifacts(
            workload=name,
            trace_stats=trace_stats,
            hierarchy_stats=hierarchy_stats,
            stream=stream,
        )

    def _store_cached(self, artifacts: WorkloadArtifacts) -> None:
        """Persist one workload's artifacts into the disk cache.

        Writes go to per-process temp names and land via atomic renames, so
        concurrent worker processes recording the same workload can never
        leave a half-written entry behind (last complete writer wins, and
        every writer produces identical bits anyway). The *stream* lands
        before the *stats*: ``_load_cached`` requires both files, so a
        crash between the two renames leaves a stream without stats (an
        ignorable orphan) rather than stats advertising a stream that
        never landed.
        """
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        stream_path, stats_path = self._cache_paths(artifacts.workload)
        # Prefix (not suffix) the temp marker so the .gz suffix — which
        # selects compression in write_llc_stream — is preserved.
        prefix = f"tmp{os.getpid()}-"
        stream_tmp = stream_path.with_name(prefix + stream_path.name)
        stats_tmp = stats_path.with_name(prefix + stats_path.name)
        write_llc_stream(artifacts.stream, stream_tmp)
        stats_tmp.write_text(json.dumps({
            "trace": dataclasses.asdict(artifacts.trace_stats),
            "hierarchy": dataclasses.asdict(artifacts.hierarchy_stats),
        }))
        os.replace(stream_tmp, stream_path)
        os.replace(stats_tmp, stats_path)
        self.cache_stats.disk_stores += 1

    # ------------------------------------------------------------------
    # In-memory cache
    # ------------------------------------------------------------------

    def _remember(self, name: str, artifacts: WorkloadArtifacts) -> None:
        self._artifacts[name] = artifacts
        self._artifacts.move_to_end(name)
        if self.max_cached is not None:
            while len(self._artifacts) > self.max_cached:
                self._artifacts.popitem(last=False)
                self.cache_stats.memory_evictions += 1

    def clear(self) -> None:
        """Drop every in-memory artifact (the disk cache is untouched).

        Long sweeps call this between capacity points to bound RSS.
        """
        self._artifacts.clear()

    def cached_workloads(self) -> List[str]:
        """Workloads currently held in memory, LRU-oldest first."""
        return list(self._artifacts)

    # ------------------------------------------------------------------
    # Artifact production
    # ------------------------------------------------------------------

    def record_artifacts(self, name: str) -> WorkloadArtifacts:
        """Generate + record one workload's artifacts (no caches consulted).

        The deterministic ground truth both cache levels are measured
        against: same machine/seed/budget always yields the same bits.
        """
        model = get_workload(name)
        with telemetry.span("trace_gen", workload=name) as info:
            trace = model.generate(
                num_threads=self.machine.num_cores,
                scale=self.machine.scale,
                target_accesses=self.target_accesses,
                seed=derive_seed(self.seed, "trace", name),
            )
            info["accesses"] = len(trace)
        trace_stats = compute_trace_statistics(trace)
        with telemetry.span("hierarchy_record", workload=name) as info:
            stream, hierarchy_stats = record_llc_stream(
                trace, self.machine, seed=self.seed
            )
            info["accesses"] = hierarchy_stats.accesses
            info["llc_accesses"] = hierarchy_stats.llc_accesses
            info["llc_misses"] = hierarchy_stats.llc_misses
        self.cache_stats.recordings += 1
        return WorkloadArtifacts(
            workload=name,
            trace_stats=trace_stats,
            hierarchy_stats=hierarchy_stats,
            stream=stream,
        )

    def artifacts(self, name: str) -> WorkloadArtifacts:
        """Trace stats + hierarchy stats + LLC stream for one workload."""
        if name not in self.workload_list:
            raise ConfigError(
                f"workload {name!r} not in this context ({self.workload_list})"
            )
        cached = self._artifacts.get(name)
        if cached is not None:
            self.cache_stats.memory_hits += 1
            self._artifacts.move_to_end(name)
            telemetry.emit("artifact", workload=name, tier="memory")
            return cached
        cached = self._load_cached(name)
        if cached is not None:
            self._remember(name, cached)
            telemetry.emit("artifact", workload=name, tier="disk")
            return cached
        artifacts = self.record_artifacts(name)
        self._remember(name, artifacts)
        self._store_cached(artifacts)
        telemetry.emit("artifact", workload=name, tier="recorded")
        return artifacts

    def all_artifacts(self) -> Dict[str, WorkloadArtifacts]:
        """Artifacts for every workload of the context."""
        return {name: self.artifacts(name) for name in self.workload_list}

    def prefetch(self, names: Optional[Iterable[str]] = None, jobs: int = 1) -> None:
        """Record (or load) artifacts for many workloads, optionally in
        parallel worker processes. After this, replay analyses are pure
        cache hits."""
        names = list(names) if names is not None else list(self.workload_list)
        if jobs <= 1:
            for name in names:
                self.artifacts(name)
            return
        from repro.sim.parallel import prefetch_artifacts
        from repro.sim.results import is_failure

        for record in prefetch_artifacts(self, names, jobs=jobs):
            if is_failure(record):
                continue  # graceful-mode cells; the failure is in the manifest
            name, artifacts = record
            if name not in self._artifacts:
                self._remember(name, artifacts)

    # ------------------------------------------------------------------
    # Replay analyses
    # ------------------------------------------------------------------

    def characterize(self, name: str, policy: str = "lru"):
        """Sharing characterization of one workload under ``policy``.

        Returns a :class:`repro.characterization.CharacterizationReport`
        (imported lazily — characterization sits above sim in the layering
        and importing it eagerly here would close an import cycle).
        """
        from repro.characterization.report import characterize_stream

        artifacts = self.artifacts(name)
        return characterize_stream(
            artifacts.stream, self.geometry, policy_name=policy,
            seed=self.seed, fastpath=self.fastpath,
        )

    def compare_policies(
        self, name: str, policies: Iterable[str], include_opt: bool = False
    ) -> PolicyComparison:
        """Replay one workload's stream under several policies."""
        artifacts = self.artifacts(name)
        results = {}
        for policy in policies:
            results[policy] = run_policy_on_stream(
                artifacts.stream, self.geometry, policy, seed=self.seed,
                fastpath=self.fastpath,
            )
        if include_opt:
            results["opt"] = run_opt(
                artifacts.stream, self.geometry, fastpath=self.fastpath
            )
        return PolicyComparison(stream_name=artifacts.stream.name, results=results)

    def sampled_replay(
        self, name: str, policy: str, sample_ratio: int = 16
    ):
        """Set-sampled replay of one workload under ``policy``.

        The sampled-set slice (which offset of every ``sample_ratio``-th
        set to simulate) derives from this context's seed and the
        workload name — never from module-level RNG state — so a sampled
        campaign is exactly reproducible from ``(seed, workload)`` alone.
        Returns a :class:`repro.sim.sampling.SampledResult`.
        """
        from repro.policies.registry import make_policy
        from repro.sim.sampling import SampledLlcSimulator

        artifacts = self.artifacts(name)
        simulator = SampledLlcSimulator.from_seed(
            self.geometry,
            make_policy(policy, seed=derive_seed(self.seed, "replay", policy)),
            self.seed, sample_ratio, name,
        )
        return simulator.run(artifacts.stream)

    def oracle_study(
        self, name: str, base: str = "lru", mode: str = "both",
        release: str = "budget", horizon_turnovers: float = 1.75,
    ):
        """Oracle-vs-base study for one workload.

        Returns a :class:`repro.oracle.OracleStudyResult` (imported lazily;
        the oracle package sits above sim in the layering).
        """
        from repro.oracle.runner import run_oracle_study

        artifacts = self.artifacts(name)
        with telemetry.span("oracle", workload=name, base=base,
                            mode=mode) as info:
            study = run_oracle_study(
                artifacts.stream, self.geometry, base=base, mode=mode,
                release=release, horizon_turnovers=horizon_turnovers,
                seed=self.seed, fastpath=self.fastpath,
            )
            info["accesses"] = study.base.accesses
            info["base_misses"] = study.base.misses
            info["oracle_misses"] = study.oracle.misses
        return study


_SHARED: Dict[tuple, ExperimentContext] = {}


def shared_context(
    profile_name: str = "scaled-4mb",
    target_accesses: int = DEFAULT_TARGET_ACCESSES,
    seed: int = DEFAULT_SEED,
    cache_dir: Optional[Union[str, Path]] = None,
) -> ExperimentContext:
    """Process-wide memoised context (benches share streams through this)."""
    resolved = resolve_cache_dir(cache_dir)
    key = (profile_name, target_accesses, seed, resolved)
    context = _SHARED.get(key)
    if context is None:
        context = ExperimentContext(
            profile(profile_name), target_accesses=target_accesses, seed=seed,
            cache_dir=resolved,
        )
        _SHARED[key] = context
    return context


# ----------------------------------------------------------------------
# Cache maintenance (backs the ``repro-sim cache`` subcommand)
# ----------------------------------------------------------------------

_CACHE_PATTERNS = ("*.rllc.gz", "*.rllc", "*.json")

_TMP_MARKER = re.compile(r"^tmp\d+-")
"""Per-process temp prefix used by :meth:`ExperimentContext._store_cached`.

A worker killed between writing its temp files and the atomic renames
leaves ``tmp{pid}-*`` orphans behind; the maintenance helpers below report
and sweep them so a crashed sweep can't leak disk forever.
"""


def _scan_cache(directory: Path):
    """Split recognised cache files into (published, orphan-tmp) lists."""
    published, orphans = [], []
    for pattern in _CACHE_PATTERNS:
        for path in sorted(directory.glob(pattern)):
            entry = (path, path.stat().st_size)
            if _TMP_MARKER.match(path.name):
                orphans.append(entry)
            else:
                published.append(entry)
    return published, orphans


def cache_entries(cache_dir: Optional[Union[str, Path]] = AUTO_CACHE_DIR):
    """The (path, size) pairs of published artifact files in the cache.

    Orphaned ``tmp{pid}-*`` files from killed writers are excluded — see
    :func:`orphan_tmp_entries`.
    """
    directory = resolve_cache_dir(cache_dir)
    if directory is None or not directory.is_dir():
        return []
    published, __ = _scan_cache(directory)
    return published


def orphan_tmp_entries(cache_dir: Optional[Union[str, Path]] = AUTO_CACHE_DIR):
    """The (path, size) pairs of orphaned per-process temp files."""
    directory = resolve_cache_dir(cache_dir)
    if directory is None or not directory.is_dir():
        return []
    __, orphans = _scan_cache(directory)
    return orphans


def clear_cache(cache_dir: Optional[Union[str, Path]] = AUTO_CACHE_DIR) -> int:
    """Delete recognised artifact files from the cache; returns the count.

    Sweeps orphaned ``tmp{pid}-*`` files along with the published entries.
    Only files matching the artifact naming patterns are touched — the
    directory itself, and anything else in it, is left alone.
    """
    removed = 0
    for path, __ in cache_entries(cache_dir) + orphan_tmp_entries(cache_dir):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
