"""Experiment orchestration with per-workload caching.

Recording a workload's LLC stream (trace generation + the full hierarchy
pass) is the expensive step; every replay-based analysis after it is cheap.
:class:`ExperimentContext` caches those artifacts per workload so that the
benches and examples — which slice the same streams many ways — pay the
hierarchy pass once. :func:`shared_context` additionally memoises whole
contexts process-wide, letting independent pytest-benchmark files share
them.
"""

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.cache.hierarchy import HierarchyStats
from repro.cache.stream import LlcStream
from repro.cache.stream_io import read_llc_stream, write_llc_stream
from repro.common.config import MachineConfig, profile
from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.sim.multipass import record_llc_stream, run_opt, run_policy_on_stream
from repro.sim.results import PolicyComparison
from repro.trace.stats import TraceStatistics, compute_trace_statistics
from repro.workloads.registry import get_workload, workload_names

DEFAULT_TARGET_ACCESSES = 300_000
DEFAULT_SEED = 42


@dataclass(frozen=True)
class WorkloadArtifacts:
    """Cached products of one workload's expensive simulation pass."""

    workload: str
    trace_stats: TraceStatistics
    hierarchy_stats: HierarchyStats
    stream: LlcStream


class ExperimentContext:
    """Caches streams and runs replay analyses for one machine profile."""

    def __init__(
        self,
        machine: MachineConfig,
        target_accesses: int = DEFAULT_TARGET_ACCESSES,
        seed: int = DEFAULT_SEED,
        workloads: Optional[Iterable[str]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ):
        self.machine = machine
        self.geometry = machine.llc
        self.target_accesses = target_accesses
        self.seed = seed
        self.workload_list: List[str] = (
            list(workloads) if workloads is not None else workload_names()
        )
        self._artifacts: Dict[str, WorkloadArtifacts] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    def _cache_paths(self, name: str):
        stem = (
            f"{name}-{self.machine.name}-t{self.machine.num_cores}"
            f"-n{self.target_accesses}-s{self.seed}"
        )
        return (
            self.cache_dir / f"{stem}.rllc.gz",
            self.cache_dir / f"{stem}.json",
        )

    def _load_cached(self, name: str) -> Optional[WorkloadArtifacts]:
        """Load one workload's artifacts from the disk cache, if present."""
        if self.cache_dir is None:
            return None
        stream_path, stats_path = self._cache_paths(name)
        if not (stream_path.exists() and stats_path.exists()):
            return None
        stats = json.loads(stats_path.read_text())
        trace_fields = dict(stats["trace"])
        trace_fields["per_thread_accesses"] = tuple(
            trace_fields["per_thread_accesses"]
        )
        return WorkloadArtifacts(
            workload=name,
            trace_stats=TraceStatistics(**trace_fields),
            hierarchy_stats=HierarchyStats(**stats["hierarchy"]),
            stream=read_llc_stream(stream_path),
        )

    def _store_cached(self, artifacts: WorkloadArtifacts) -> None:
        """Persist one workload's artifacts into the disk cache."""
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        stream_path, stats_path = self._cache_paths(artifacts.workload)
        write_llc_stream(artifacts.stream, stream_path)
        stats_path.write_text(json.dumps({
            "trace": dataclasses.asdict(artifacts.trace_stats),
            "hierarchy": dataclasses.asdict(artifacts.hierarchy_stats),
        }))

    def artifacts(self, name: str) -> WorkloadArtifacts:
        """Trace stats + hierarchy stats + LLC stream for one workload."""
        if name not in self.workload_list:
            raise ConfigError(
                f"workload {name!r} not in this context ({self.workload_list})"
            )
        cached = self._artifacts.get(name)
        if cached is not None:
            return cached
        cached = self._load_cached(name)
        if cached is not None:
            self._artifacts[name] = cached
            return cached
        model = get_workload(name)
        trace = model.generate(
            num_threads=self.machine.num_cores,
            scale=self.machine.scale,
            target_accesses=self.target_accesses,
            seed=derive_seed(self.seed, "trace", name),
        )
        trace_stats = compute_trace_statistics(trace)
        stream, hierarchy_stats = record_llc_stream(
            trace, self.machine, seed=self.seed
        )
        artifacts = WorkloadArtifacts(
            workload=name,
            trace_stats=trace_stats,
            hierarchy_stats=hierarchy_stats,
            stream=stream,
        )
        self._artifacts[name] = artifacts
        self._store_cached(artifacts)
        return artifacts

    def all_artifacts(self) -> Dict[str, WorkloadArtifacts]:
        """Artifacts for every workload of the context."""
        return {name: self.artifacts(name) for name in self.workload_list}

    def characterize(self, name: str, policy: str = "lru"):
        """Sharing characterization of one workload under ``policy``.

        Returns a :class:`repro.characterization.CharacterizationReport`
        (imported lazily — characterization sits above sim in the layering
        and importing it eagerly here would close an import cycle).
        """
        from repro.characterization.report import characterize_stream

        artifacts = self.artifacts(name)
        return characterize_stream(
            artifacts.stream, self.geometry, policy_name=policy, seed=self.seed
        )

    def compare_policies(
        self, name: str, policies: Iterable[str], include_opt: bool = False
    ) -> PolicyComparison:
        """Replay one workload's stream under several policies."""
        artifacts = self.artifacts(name)
        results = {}
        for policy in policies:
            results[policy] = run_policy_on_stream(
                artifacts.stream, self.geometry, policy, seed=self.seed
            )
        if include_opt:
            results["opt"] = run_opt(artifacts.stream, self.geometry)
        return PolicyComparison(stream_name=artifacts.stream.name, results=results)

    def oracle_study(
        self, name: str, base: str = "lru", mode: str = "both",
        release: str = "budget", horizon_turnovers: float = 1.75,
    ):
        """Oracle-vs-base study for one workload.

        Returns a :class:`repro.oracle.OracleStudyResult` (imported lazily;
        the oracle package sits above sim in the layering).
        """
        from repro.oracle.runner import run_oracle_study

        artifacts = self.artifacts(name)
        return run_oracle_study(
            artifacts.stream, self.geometry, base=base, mode=mode,
            release=release, horizon_turnovers=horizon_turnovers,
            seed=self.seed,
        )


_SHARED: Dict[tuple, ExperimentContext] = {}


def shared_context(
    profile_name: str = "scaled-4mb",
    target_accesses: int = DEFAULT_TARGET_ACCESSES,
    seed: int = DEFAULT_SEED,
) -> ExperimentContext:
    """Process-wide memoised context (benches share streams through this)."""
    key = (profile_name, target_accesses, seed)
    context = _SHARED.get(key)
    if context is None:
        context = ExperimentContext(
            profile(profile_name), target_accesses=target_accesses, seed=seed
        )
        _SHARED[key] = context
    return context
