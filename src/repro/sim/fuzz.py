"""Scenario-fuzzing harness: mine policy inversions at scale.

The paper's thesis — sharing behaviour should steer LLC replacement — holds
over a *region* of scenario space, not everywhere. This module mass-samples
that space and mines it for **policy inversions**: cells where the policy
ordering contradicts the campaign-wide reference frontier, or where the
sharing oracle's gain spikes past a threshold. The pipeline:

1. :func:`sample_scenario` draws scenarios from a seeded generator space —
   randomized sharing-kernel mixes (:mod:`repro.workloads.fuzzmix`),
   f10-style multiprogram combinations, geometry grids, and externally
   ingested ChampSim/Pin traces (:mod:`repro.trace.ingest`);
2. :func:`run_fuzz_scenario` records each scenario's LLC stream and replays
   the policy grid under **set-sampled fidelity** — the sampled substream
   is extracted once (:func:`repro.sim.sampling.sampled_substream`) and
   replayed through the tiered fast paths, so a cell costs a fraction of a
   full study; scenarios fan out as ``fuzz`` cells through the
   fault-tolerant parallel engine with per-cell telemetry;
3. :func:`detect_inversions` ranks policies by campaign-mean miss ratio
   (the reference frontier) and flags ordering flips and oracle-gain
   spikes;
4. interesting cells are re-run **at full fidelity** with probes attached
   (:func:`replay_scenario_full`), cross-checking the sampled counts
   bit-identically against the reference sampled simulator and the
   ``--no-fastpath`` scalar model.

Everything is reproducible from ``(seed, scenario_id)`` alone: scenario
sampling, trace generation, the sampled-set slice, and every policy seed
derive from the campaign seed via :func:`repro.common.rng.derive_seed`.

The machine-readable campaign output (``inversions.json``) is a *corpus*
dict — see :func:`run_fuzz_campaign` — consumed by ``repro-sim fuzz
triage`` and ``repro-sim fuzz replay-cell``.
"""

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import CacheGeometry, MachineConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng, derive_seed
from repro.sim import telemetry
from repro.sim.parallel import ExperimentCell, run_cells
from repro.sim.results import CellFailure
from repro.sim.sampling import (
    SampledLlcSimulator,
    sampled_geometry,
    sampled_substream,
)
from repro.trace.trace import Trace, TraceBuilder

CORPUS_FORMAT_VERSION = 1
"""Bump when the ``inversions.json`` corpus shape changes."""

DEFAULT_POLICIES = ("lru", "lip", "srrip", "drrip", "ship")
"""Policy grid replayed per scenario (spans recency / insertion / RRIP /
dueling / PC-signature families, one per replay tier)."""

DEFAULT_PROBES = ("sharing", "evictions")
"""Probe evidence attached to full-fidelity re-runs of interesting cells."""

_L1 = CacheGeometry(1024, 4)
_L2 = CacheGeometry(4096, 8)
_LLC_OPTIONS = ((32, 4), (32, 8), (64, 4), (64, 8), (128, 4), (128, 8))
"""(sets, ways) LLC grid; inclusion (LLC >= cores * L2) filters per core
count at sample time."""

_CORE_OPTIONS = (2, 4)

_MIX_POOL = ("blackscholes", "swaptions", "fft", "radix", "streamcluster",
             "canneal")
"""Registered models the f10-style multiprogram sampler combines."""

_PAPER_LLC_BYTES = 4 * 1024 * 1024
"""Footprint-scaling anchor: registered models size footprints for the
paper's 4MB machine; fuzz machines divide by their LLC ratio to it."""


@dataclass(frozen=True)
class FuzzConfig:
    """Seeded definition of one fuzzing campaign.

    A campaign is a pure function of this record: serialising it into the
    corpus (``as_dict``) and rebuilding it (``from_dict``) is what lets
    ``fuzz replay-cell`` reproduce any cell bit-identically later.
    """

    seed: int = 42
    scenarios: int = 100
    policies: Tuple[str, ...] = DEFAULT_POLICIES
    base: str = "lru"
    accesses: int = 6000
    sample_ratio: int = 4
    flip_margin: float = 0.02
    spike_threshold: float = 0.08
    mix_fraction: float = 0.25
    max_full: int = 16
    trace_files: Tuple[Tuple[str, str], ...] = ()
    fastpath: Optional[bool] = field(default=None, compare=False)

    def __post_init__(self):
        if self.scenarios < 0:
            raise ConfigError(f"scenarios must be >= 0, got {self.scenarios}")
        if self.sample_ratio < 1:
            raise ConfigError(
                f"sample_ratio must be >= 1, got {self.sample_ratio}"
            )
        if len(self.policies) < 2:
            raise ConfigError("a fuzz campaign needs >= 2 policies to order")
        if not 0.0 <= self.mix_fraction <= 1.0:
            raise ConfigError(
                f"mix_fraction must be in [0, 1], got {self.mix_fraction}"
            )

    @property
    def total_scenarios(self) -> int:
        """Synthetic scenarios plus one per ingested trace file."""
        return self.scenarios + len(self.trace_files)

    def as_dict(self) -> Dict:
        """JSON-friendly view (embedded in every corpus)."""
        return {
            "seed": self.seed,
            "scenarios": self.scenarios,
            "policies": list(self.policies),
            "base": self.base,
            "accesses": self.accesses,
            "sample_ratio": self.sample_ratio,
            "flip_margin": self.flip_margin,
            "spike_threshold": self.spike_threshold,
            "mix_fraction": self.mix_fraction,
            "max_full": self.max_full,
            "trace_files": [list(pair) for pair in self.trace_files],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FuzzConfig":
        """Rebuild a config from :meth:`as_dict` output (extras ignored)."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        if "policies" in kwargs:
            kwargs["policies"] = tuple(kwargs["policies"])
        if "trace_files" in kwargs:
            kwargs["trace_files"] = tuple(
                tuple(pair) for pair in kwargs["trace_files"]
            )
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Scenario sampling
# ----------------------------------------------------------------------

def sample_scenario(config: FuzzConfig, index: int) -> Dict:
    """Deterministically draw scenario ``index`` of the campaign.

    Indices ``[0, config.scenarios)`` are synthetic (kernel mixes and
    multiprogram combinations by ``mix_fraction``); indices past that map
    onto ``config.trace_files`` in order. The returned dict is JSON-able
    and, with the config, fully determines the cell.
    """
    if not 0 <= index < config.total_scenarios:
        raise ConfigError(
            f"scenario index {index} outside [0, {config.total_scenarios})"
        )
    if index >= config.scenarios:
        path, fmt = config.trace_files[index - config.scenarios]
        rng = DeterministicRng(derive_seed(config.seed, "scenario", index))
        cores, llc_sets, llc_ways = _sample_machine(rng)
        return {
            "id": f"s{index:05d}",
            "index": index,
            "kind": "trace",
            "cores": cores,
            "llc_sets": llc_sets,
            "llc_ways": llc_ways,
            "trace_path": str(path),
            "trace_format": fmt,
        }
    rng = DeterministicRng(derive_seed(config.seed, "scenario", index))
    cores, llc_sets, llc_ways = _sample_machine(rng)
    scenario = {
        "id": f"s{index:05d}",
        "index": index,
        "cores": cores,
        "llc_sets": llc_sets,
        "llc_ways": llc_ways,
    }
    if rng.random() < config.mix_fraction:
        scenario["kind"] = "mix"
        scenario["components"] = rng.sample(_MIX_POOL, 2)
    else:
        from repro.workloads.fuzzmix import sample_kernel_mix

        scenario["kind"] = "kernelmix"
        scenario["spec"] = sample_kernel_mix(
            rng.spawn("mixspec"), llc_blocks=llc_sets * llc_ways,
            num_threads=cores,
        )
    return scenario


def _sample_machine(rng: DeterministicRng) -> Tuple[int, int, int]:
    """Draw (cores, llc_sets, llc_ways) honouring the inclusion floor."""
    cores = rng.choice(_CORE_OPTIONS)
    floor = cores * _L2.size_bytes
    options = [
        (sets, ways) for sets, ways in _LLC_OPTIONS
        if sets * ways * _L2.block_bytes >= floor
    ]
    sets, ways = rng.choice(options)
    return cores, sets, ways


def scenario_machine(scenario: Dict) -> MachineConfig:
    """The CMP configuration a scenario runs on."""
    llc = CacheGeometry(
        scenario["llc_sets"] * scenario["llc_ways"] * _L2.block_bytes,
        scenario["llc_ways"],
    )
    return MachineConfig(
        name=f"fuzz-c{scenario['cores']}"
             f"-s{scenario['llc_sets']}x{scenario['llc_ways']}",
        num_cores=scenario["cores"],
        l1=_L1, l2=_L2, llc=llc,
        scale=max(1, _PAPER_LLC_BYTES // llc.size_bytes),
    )


def _fold_trace_threads(trace: Trace, num_cores: int) -> Trace:
    """Fold external-trace thread ids onto the scenario's core count."""
    if trace.num_threads <= num_cores:
        return trace
    builder = TraceBuilder(name=trace.name)
    tids, pcs, addrs, writes = trace.columns()
    for i in range(len(tids)):
        builder.append(tids[i] % num_cores, pcs[i], addrs[i], writes[i] != 0)
    return builder.build()


def scenario_trace(config: FuzzConfig, scenario: Dict) -> Trace:
    """Generate (or ingest) the scenario's interleaved access trace."""
    machine = scenario_machine(scenario)
    seed = derive_seed(config.seed, "trace", scenario["id"])
    kind = scenario["kind"]
    if kind == "kernelmix":
        from repro.workloads.fuzzmix import FuzzKernelMixModel

        model = FuzzKernelMixModel(
            scenario["spec"], name=f"fuzzmix-{scenario['id']}"
        )
        # Spec footprints are already sized against the scenario LLC.
        return model.generate(
            num_threads=machine.num_cores, scale=1,
            target_accesses=config.accesses, seed=seed,
        )
    if kind == "mix":
        from repro.workloads.multiprogram import MultiprogramMix

        mix = MultiprogramMix(scenario["components"])
        return mix.generate(
            num_threads=machine.num_cores, scale=machine.scale,
            target_accesses=config.accesses, seed=seed,
        )
    if kind == "trace":
        from repro.trace.ingest import read_external_trace

        trace = read_external_trace(
            scenario["trace_path"], fmt=scenario["trace_format"],
            limit=config.accesses,
        )
        return _fold_trace_threads(trace, machine.num_cores)
    raise ConfigError(f"unknown scenario kind {kind!r}")


def scenario_stream(config: FuzzConfig, scenario: Dict):
    """Record the scenario's LLC demand stream: ``(stream, machine)``."""
    from repro.sim.multipass import record_llc_stream

    machine = scenario_machine(scenario)
    trace = scenario_trace(config, scenario)
    stream, _stats = record_llc_stream(trace, machine, seed=config.seed)
    return stream, machine


# ----------------------------------------------------------------------
# Sampled-fidelity cell execution
# ----------------------------------------------------------------------

def run_fuzz_scenario(config: FuzzConfig, scenario: Dict) -> Dict:
    """Run one scenario at sampled fidelity; returns its JSON-able record.

    The sampled substream is extracted once and replayed through the tiered
    engine per policy (bit-identical to
    :class:`~repro.sim.sampling.SampledLlcSimulator` on the full stream —
    the full-fidelity pass re-verifies exactly that), then the sharing
    oracle measures its gain over ``config.base`` on the same substream.
    """
    from repro.oracle.runner import run_oracle_study
    from repro.sim.multipass import run_policy_on_stream

    with telemetry.span("fuzz_scenario", scenario=scenario["id"],
                        kind=scenario["kind"]) as info:
        stream, machine = scenario_stream(config, scenario)
        offset = SampledLlcSimulator.offset_from_seed(
            config.seed, config.sample_ratio, scenario["id"]
        )
        sub = sampled_substream(
            stream, machine.llc, config.sample_ratio, offset
        )
        record = dict(scenario)
        record["sample_ratio"] = config.sample_ratio
        record["sample_offset"] = offset
        record["llc_accesses"] = len(stream)
        record["sampled_accesses"] = len(sub)
        info["llc_accesses"] = len(stream)
        info["sampled_accesses"] = len(sub)
        if not len(sub):
            record["empty"] = True
            return record
        small = sampled_geometry(machine.llc, config.sample_ratio)
        record["policies"] = {
            policy: run_policy_on_stream(
                sub, small, policy, seed=config.seed,
                fastpath=config.fastpath,
            ).as_dict()
            for policy in config.policies
        }
        study = run_oracle_study(
            sub, small, base=config.base, seed=config.seed,
            fastpath=config.fastpath,
        )
        record["oracle_gain"] = study.miss_reduction
        record["shared_fill_fraction"] = study.shared_fill_fraction
        info["oracle_gain"] = record["oracle_gain"]
    return record


# ----------------------------------------------------------------------
# Inversion detection
# ----------------------------------------------------------------------

def detect_inversions(
    config: FuzzConfig, records: Sequence[Dict]
) -> Tuple[List[str], Dict[str, float]]:
    """Annotate ``records`` in place with flips/spikes; return the frontier.

    The reference frontier is the policy list ordered by campaign-mean miss
    ratio (best first). A record gets a ``flips`` entry for every policy
    pair whose cell-local ordering contradicts the frontier by at least
    ``config.flip_margin`` of miss ratio, and ``oracle_spike`` when the
    sampled oracle gain reaches ``config.spike_threshold``. Returns
    ``(frontier, mean miss ratio by policy)``.
    """
    usable = [r for r in records if r.get("policies")]
    if not usable:
        return list(config.policies), {}
    means = {
        policy: sum(r["policies"][policy]["miss_ratio"] for r in usable)
        / len(usable)
        for policy in config.policies
    }
    frontier = sorted(config.policies, key=lambda p: (means[p], p))
    for record in records:
        cells = record.get("policies")
        if not cells:
            continue
        flips = []
        for i, better in enumerate(frontier):
            for worse in frontier[i + 1:]:
                delta = (cells[better]["miss_ratio"]
                         - cells[worse]["miss_ratio"])
                if delta >= config.flip_margin:
                    flips.append({
                        "expected_better": better,
                        "expected_worse": worse,
                        "delta": delta,
                    })
        record["flips"] = flips
        record["oracle_spike"] = (
            record.get("oracle_gain", 0.0) >= config.spike_threshold
        )
        record["interesting"] = bool(flips) or record["oracle_spike"]
    return frontier, means


# ----------------------------------------------------------------------
# Full-fidelity replay of interesting cells
# ----------------------------------------------------------------------

def replay_scenario_full(
    config: FuzzConfig,
    scenario: Dict,
    campaign_policies: Optional[Dict] = None,
    probes: Sequence[str] = DEFAULT_PROBES,
) -> Dict:
    """Re-run one scenario at full fidelity with differential cross-checks.

    Four verdicts ride on the returned record:

    * ``sampled_match`` — the sampled-fidelity counts recomputed now are
      bit-identical to the campaign's (``campaign_policies``, when given);
    * ``sampled_reference_match`` — the extracted-substream replay agrees
      bit-for-bit with the reference :class:`SampledLlcSimulator` walking
      the full stream;
    * ``fastpath_match`` — the full-fidelity tiered replay agrees
      bit-for-bit with the ``--no-fastpath`` scalar model, per policy;
    * probe evidence (``probe_report``) and the full oracle study attach to
      the base policy's full replay.
    """
    from repro.oracle.runner import run_oracle_study
    from repro.policies.registry import make_policy
    from repro.sim.multipass import run_policy_on_stream
    from repro.sim.probes import run_probed_replay

    stream, machine = scenario_stream(config, scenario)
    offset = SampledLlcSimulator.offset_from_seed(
        config.seed, config.sample_ratio, scenario["id"]
    )
    sub = sampled_substream(stream, machine.llc, config.sample_ratio, offset)
    small = sampled_geometry(machine.llc, config.sample_ratio)
    record: Dict = {
        "id": scenario["id"],
        "sample_offset": offset,
        "llc_accesses": len(stream),
        "sampled_accesses": len(sub),
        "sampled": {},
        "full": {},
        "sampled_match": True,
        "sampled_reference_match": True,
        "fastpath_match": True,
    }
    for policy in config.policies:
        sampled = run_policy_on_stream(
            sub, small, policy, seed=config.seed, fastpath=config.fastpath
        )
        reference = SampledLlcSimulator(
            machine.llc,
            make_policy(policy, seed=derive_seed(config.seed, "replay", policy)),
            sample_ratio=config.sample_ratio, offset=offset,
        ).run(stream)
        reference_ok = (
            sampled.accesses == reference.sampled_accesses
            and sampled.hits == reference.sampled_hits
            and sampled.misses == reference.sampled_misses
        )
        campaign_ok = True
        if campaign_policies is not None:
            prior = campaign_policies.get(policy)
            campaign_ok = bool(prior) and all(
                prior[key] == getattr(sampled, key)
                for key in ("accesses", "hits", "misses")
            )
        fast = run_policy_on_stream(
            stream, machine.llc, policy, seed=config.seed, fastpath=None
        )
        scalar = run_policy_on_stream(
            stream, machine.llc, policy, seed=config.seed, fastpath=False
        )
        tier_ok = (fast.accesses, fast.hits, fast.misses) == (
            scalar.accesses, scalar.hits, scalar.misses
        )
        record["sampled"][policy] = {
            **sampled.as_dict(),
            "reference_match": reference_ok,
            "campaign_match": campaign_ok,
        }
        record["full"][policy] = {
            **fast.as_dict(),
            "scalar_tier": scalar.tier,
            "scalar_backend": scalar.backend,
            "fastpath_match": tier_ok,
        }
        record["sampled_reference_match"] &= reference_ok
        record["sampled_match"] &= campaign_ok
        record["fastpath_match"] &= tier_ok
    study = run_oracle_study(
        stream, machine.llc, base=config.base, seed=config.seed,
        fastpath=config.fastpath,
    )
    record["oracle_gain_full"] = study.miss_reduction
    record["shared_fill_fraction_full"] = study.shared_fill_fraction
    if probes:
        report = run_probed_replay(
            stream, machine.llc, config.base, probes=list(probes),
            seed=config.seed, fastpath=config.fastpath,
        )
        record["probe_report"] = report.as_dict()
    return record


# ----------------------------------------------------------------------
# Parallel-engine cell adapters (dispatched by repro.sim.parallel)
# ----------------------------------------------------------------------

def execute_fuzz_cell(context, cell: ExperimentCell) -> Dict:
    """Worker entry for a ``fuzz`` cell: sampled-fidelity scenario run."""
    config_json, scenario_json = cell.params
    config = FuzzConfig.from_dict(json.loads(config_json))
    if context is not None and context.fastpath is not None:
        config = replace(config, fastpath=context.fastpath)
    return run_fuzz_scenario(config, json.loads(scenario_json))


def execute_fuzz_full_cell(context, cell: ExperimentCell) -> Dict:
    """Worker entry for a ``fuzz_full`` cell: full-fidelity re-run."""
    config_json, scenario_json, campaign_json = cell.params
    config = FuzzConfig.from_dict(json.loads(config_json))
    if context is not None and context.fastpath is not None:
        config = replace(config, fastpath=context.fastpath)
    campaign = json.loads(campaign_json) if campaign_json else None
    return replay_scenario_full(
        config, json.loads(scenario_json), campaign_policies=campaign
    )


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------

def _campaign_context(config: FuzzConfig):
    """A minimal ExperimentContext carrying engine plumbing for fuzz cells.

    Fuzz cells build their own scenario machines and never touch the
    context's artifact cache (``workloads=[]`` guarantees it), but the
    parallel engine still needs a context to mirror into workers.
    """
    from repro.common.config import profile
    from repro.sim.experiment import ExperimentContext

    return ExperimentContext(
        profile("scaled-4mb"), target_accesses=config.accesses,
        seed=config.seed, workloads=[], cache_dir=None,
        fastpath=config.fastpath,
    )


def run_fuzz_campaign(
    config: FuzzConfig,
    jobs: int = 1,
    fail_fast: bool = False,
    retries: int = 1,
    timeout: Optional[float] = None,
) -> Dict:
    """Run a whole campaign; returns the ``inversions.json`` corpus dict.

    Phases: sample every scenario, fan them out as ``fuzz`` cells through
    :func:`repro.sim.parallel.run_cells` (fault-tolerant: a crashing
    scenario becomes a ``failures`` entry, not a lost campaign), detect
    inversions against the campaign frontier, then re-run up to
    ``config.max_full`` interesting cells at full fidelity with probes as
    ``fuzz_full`` cells. Any sampled-vs-full mismatch lands in
    ``corpus["mismatches"]`` — consumers (CI) must fail loudly on it.
    """
    context = _campaign_context(config)
    config_json = json.dumps(config.as_dict(), sort_keys=True)
    scenarios = [
        sample_scenario(config, index)
        for index in range(config.total_scenarios)
    ]
    telemetry.emit("fuzz_campaign_start", scenarios=len(scenarios),
                   seed=config.seed, sample_ratio=config.sample_ratio)
    cells = [
        ExperimentCell(
            "fuzz", scenario["id"],
            (config_json, json.dumps(scenario, sort_keys=True)),
        )
        for scenario in scenarios
    ]
    results = run_cells(
        context, cells, jobs=jobs, fail_fast=fail_fast, retries=retries,
        timeout=timeout,
    )
    records = [r for r in results if not isinstance(r, CellFailure)]
    failures = [r for r in results if isinstance(r, CellFailure)]
    frontier, means = detect_inversions(config, records)
    interesting = [r for r in records if r.get("interesting")]
    full_targets = interesting[: config.max_full]
    truncated = len(interesting) - len(full_targets)
    by_id = {scenario["id"]: scenario for scenario in scenarios}
    full_cells = [
        ExperimentCell(
            "fuzz_full", record["id"],
            (
                config_json,
                json.dumps(by_id[record["id"]], sort_keys=True),
                json.dumps(record["policies"], sort_keys=True),
            ),
        )
        for record in full_targets
    ]
    full_results = run_cells(
        context, full_cells, jobs=jobs, fail_fast=fail_fast,
        retries=retries, timeout=timeout,
    ) if full_cells else []
    full_records = {}
    for cell, result in zip(full_cells, full_results):
        if isinstance(result, CellFailure):
            failures.append(result)
        else:
            full_records[cell.workload] = result
    mismatches = [
        {
            "id": record["id"],
            "sampled_match": record["sampled_match"],
            "sampled_reference_match": record["sampled_reference_match"],
            "fastpath_match": record["fastpath_match"],
        }
        for record in full_records.values()
        if not (record["sampled_match"]
                and record["sampled_reference_match"]
                and record["fastpath_match"])
    ]
    telemetry.emit(
        "fuzz_campaign_done", scenarios=len(records),
        failed=len(failures), interesting=len(interesting),
        mismatches=len(mismatches),
    )
    return {
        "format_version": CORPUS_FORMAT_VERSION,
        "config": config.as_dict(),
        "frontier": list(frontier),
        "policy_mean_miss_ratio": means,
        "scenarios": records,
        "interesting": [record["id"] for record in interesting],
        "full_truncated": truncated,
        "full": full_records,
        "mismatches": mismatches,
        "failures": [failure.as_dict() for failure in failures],
    }


# ----------------------------------------------------------------------
# Corpus helpers (triage / replay-cell)
# ----------------------------------------------------------------------

def load_corpus(path) -> Dict:
    """Read and shape-check an ``inversions.json`` corpus."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            corpus = json.load(handle)
    except OSError as error:
        raise ConfigError(f"cannot read corpus {path}: {error}")
    except ValueError as error:
        raise ConfigError(f"{path}: not a JSON corpus ({error})")
    version = corpus.get("format_version")
    if version != CORPUS_FORMAT_VERSION:
        raise ConfigError(
            f"{path}: corpus format {version!r}, expected "
            f"{CORPUS_FORMAT_VERSION}"
        )
    return corpus


def corpus_scenario(corpus: Dict, scenario_id: str) -> Dict:
    """The campaign record of one scenario id in a corpus."""
    for record in corpus.get("scenarios", ()):
        if record["id"] == scenario_id:
            return record
    raise ConfigError(
        f"scenario {scenario_id!r} is not in this corpus "
        f"({len(corpus.get('scenarios', ()))} scenarios)"
    )


def replay_corpus_cell(corpus: Dict, scenario_id: str,
                       probes: Sequence[str] = DEFAULT_PROBES) -> Dict:
    """Reproduce one corpus cell at full fidelity from its id alone.

    Rebuilds the campaign config, re-samples the scenario from
    ``(seed, index)``, re-runs it at full fidelity, and cross-checks the
    sampled counts against what the corpus recorded. The scenario stored
    in the corpus record and the re-sampled one must agree — a mismatch
    means the corpus was produced by different code and the reproduction
    claim would be vacuous.
    """
    config = FuzzConfig.from_dict(corpus["config"])
    record = corpus_scenario(corpus, scenario_id)
    scenario = sample_scenario(config, record["index"])
    for key, value in scenario.items():
        if record.get(key) != value:
            raise ConfigError(
                f"scenario {scenario_id} re-sampled differently for field "
                f"{key!r}: corpus has {record.get(key)!r}, sampler gives "
                f"{value!r} (corpus from different code or seed?)"
            )
    return replay_scenario_full(
        config, scenario, campaign_policies=record.get("policies"),
        probes=probes,
    )
