"""Microarchitectural probe layer: pluggable replay/hierarchy introspection.

Probes are **observability only**: they watch a simulation and accumulate
JSON-able summaries, and must never mutate cache or policy state. The layer
is built around three cost rules:

1. **Zero cost when disabled.** A replay with no probes attached executes
   the exact same bytecode as before this module existed: per-access probe
   dispatch is installed by *shadowing* :meth:`SharedLlc.access` with an
   instance attribute (:meth:`SharedLlc.attach_probe_bus`), so the
   disabled path carries no extra branch, lookup, or indirection. The CI
   benchmark-smoke job enforces a <2% bound on the golden warm-replay cell.
2. **Fastpath-compatible or scalar-only — provably.** Every probe declares
   ``fastpath_safe``. Safe probes produce **bit-identical** summaries
   whether the replay ran through the scalar :class:`SharedLlc` model or
   one of the exact fast tiers — the stack-distance LRU fast path
   (``"stack"``) or the set-partitioned kernels (``"set"``/``"dueling"``)
   — either because they consume only :class:`ResidencyObserver`
   callbacks, which every fast tier replays exactly, or because they
   reconstruct their state from a canonical-LRU
   :class:`LruReplayReconstruction` walk of the stream (a
   policy-independent model, so it serves every tier). Unsafe probes
   (policy-internal ones like PSEL/SHCT/RRPV samplers) force the scalar
   tier for the whole replay. ``tests/sim/test_probes.py`` holds the
   differential proof.
3. **Picklable summaries.** :class:`ProbeReport` crosses process
   boundaries (the parallel engine's ``inspect`` cells) and lands on disk
   under telemetry run directories, so everything in it is plain data.

Probe registry (``repro-sim inspect --probes ...``):

========== ===================================================== =========
name       what it measures                                      fastpath
========== ===================================================== =========
sets       per-set miss/hit/eviction/live-occupancy histograms   safe
evictions  eviction-reason breakdown (capacity vs forced flush)  safe
sharing    shared/private residency + hit breakdown (paper F1-3) safe
reuse      LRU stack-distance histogram by sharing class         safe
psel       DIP/DRRIP set-dueling PSEL time-series                scalar
shct       SHiP signature-table counter occupancy time-series    scalar
rrpv       RRPV distribution of victim sets at eviction          scalar
coherence  coherence events (upgrades/invalidations/writebacks)  hierarchy
========== ===================================================== =========

``coherence`` is special: replay has no coherence traffic (the recorded
stream already folded it in), so the probe attaches to a full
:class:`CmpHierarchy` pass instead (``needs_hierarchy``), driven by
:func:`inspect_workload`.
"""

import dataclasses
from array import array
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.cache.hierarchy import CmpHierarchy
from repro.cache.llc import NO_BLOCK, ResidencyObserver
from repro.cache.stream import LlcStream
from repro.characterization.hits import SharingClassifier, popcount
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.common.stats import RunningStats, ratio
from repro.policies.registry import make_policy
from repro.sim import telemetry
from repro.sim.engine import LlcOnlySimulator
from repro.policies.base import REPLAY_SCALAR, REPLAY_STACK
from repro.sim.fastpath import (
    LruReplayReconstruction,
    _replay_observers,
    fastpath_enabled,
    reconstruct_lru_replay,
)
from repro.sim.results import LlcSimResult
from repro.sim.setpath import reconstruct_setpath_replay, setpath_tier_of

PROBE_FORMAT_VERSION = 1
"""Bump when the on-disk shape of :meth:`ProbeReport.as_dict` changes."""


class Probe:
    """Base class of all probes.

    Class attributes declare what a probe consumes; the runner uses them to
    pick the replay tier and wire the probe up:

    * ``fastpath_safe`` — summaries are bit-identical between the scalar
      model and the LRU fast path. Any unsafe probe in a replay forces the
      scalar tier (:func:`run_probed_replay` never silently degrades a
      probe).
    * ``wants_access_events`` — receives :meth:`on_access` per LLC access
      via the :class:`ProbeBus`; a *safe* access probe must also implement
      :meth:`consume_fastpath`.
    * ``wants_policy`` — :meth:`bind` requires a bound policy instance and
      may reject incompatible ones with :class:`ConfigError`.
    * ``needs_hierarchy`` — cannot run on a replay at all; it attaches to a
      full hierarchy pass via :meth:`bind_hierarchy`/``on_coherence``.
    """

    name = ""
    fastpath_safe = False
    wants_access_events = False
    wants_policy = False
    needs_hierarchy = False

    def bind(self, geometry: CacheGeometry, policy) -> None:
        """Attach to one replay. ``policy`` is ``None`` on the fast path."""

    def on_access(self, llc, core, pc, block, is_write, hit, evicted) -> None:
        """Per-access callback (after the cache fully processed it)."""

    def consume_fastpath(
        self, walk: LruReplayReconstruction, stream: LlcStream,
        geometry: CacheGeometry,
    ) -> None:
        """Rebuild this probe's state from a fast-path walk.

        Only called for ``fastpath_safe`` access probes; must leave the
        probe in exactly the state the scalar :meth:`on_access` sequence
        would have.
        """
        raise NotImplementedError

    def finalize(self) -> None:
        """Post-replay pass (histogram folding etc.); default no-op."""

    def summary(self) -> Dict:
        """JSON-able summary of everything the probe observed."""
        raise NotImplementedError


class ProbeBus:
    """Fans one instrumentation event out to every interested probe.

    One bus serves both event families: per-access events from a probed
    :class:`SharedLlc` and coherence events from a probed
    :class:`CmpHierarchy`.
    """

    __slots__ = ("_access_probes", "_coherence_probes")

    def __init__(self, probes: Iterable[Probe]):
        probes = tuple(probes)
        self._access_probes = tuple(
            p for p in probes if p.wants_access_events
        )
        self._coherence_probes = tuple(
            p for p in probes if p.needs_hierarchy
        )

    def on_access(self, llc, core, pc, block, is_write, hit, evicted) -> None:
        for probe in self._access_probes:
            probe.on_access(llc, core, pc, block, is_write, hit, evicted)

    def on_coherence(self, kind: str, core: int, block: int) -> None:
        for probe in self._coherence_probes:
            probe.on_coherence(kind, core, block)


# ----------------------------------------------------------------------
# Residency-observer probes (fastpath-safe via exact observer replay)
# ----------------------------------------------------------------------

class SetStatsProbe(Probe, ResidencyObserver):
    """Per-set miss/hit/eviction/live-occupancy accounting.

    Consumes only residency callbacks, which the fast path replays
    bit-identically — safe by construction.
    """

    name = "sets"
    fastpath_safe = True

    def __init__(self, top_n: int = 8):
        self._top_n = top_n
        self._misses = []
        self._hits = []
        self._evictions = []
        self._live = []

    def bind(self, geometry, policy) -> None:
        num_sets = geometry.num_sets
        self._misses = [0] * num_sets
        self._hits = [0] * num_sets
        self._evictions = [0] * num_sets
        self._live = [0] * num_sets

    def residency_started(self, block, set_index, fill_ordinal, pc, core):
        self._misses[set_index] += 1

    def residency_ended(
        self, block, set_index, fill_ordinal, end_ordinal, fill_pc, fill_core,
        core_mask, write_mask, hits, other_hits, forced,
    ) -> None:
        self._hits[set_index] += hits
        if forced:
            self._live[set_index] += 1
        else:
            self._evictions[set_index] += 1

    @staticmethod
    def _spread(values: List[int]) -> Dict:
        stats = RunningStats()
        for value in values:
            stats.add(value)
        return stats.as_dict()

    def summary(self) -> Dict:
        order = sorted(
            range(len(self._misses)),
            key=lambda s: (-self._misses[s], s),
        )
        hottest = [
            {
                "set": s,
                "misses": self._misses[s],
                "hits": self._hits[s],
                "evictions": self._evictions[s],
                "live": self._live[s],
            }
            for s in order[: self._top_n]
        ]
        miss_spread = self._spread(self._misses)
        return {
            "num_sets": len(self._misses),
            "misses": miss_spread,
            "hits": self._spread(self._hits),
            "evictions": self._spread(self._evictions),
            "live": self._spread(self._live),
            # max/mean miss ratio: 1.0 means perfectly balanced sets.
            "miss_imbalance": ratio(miss_spread["max"], miss_spread["mean"]),
            "hottest_sets": hottest,
        }


class EvictionReasonProbe(Probe, ResidencyObserver):
    """Why residencies end: capacity eviction vs end-of-run flush.

    Replay has no coherence-induced LLC kills (back-invalidation flows
    L2->L1, never into the LLC, and the recorded stream already folded
    coherence effects in), so the ``coherence`` bucket is structurally zero
    here; the :class:`CoherenceProbe` covers that traffic on a hierarchy
    pass. Kept as an explicit zero so reports state the model's shape
    rather than hiding it.
    """

    name = "evictions"
    fastpath_safe = True

    _REASONS = ("capacity", "coherence", "flush")

    def __init__(self):
        self._count = {reason: 0 for reason in self._REASONS}
        self._dead = {reason: 0 for reason in self._REASONS}
        self._shared = {reason: 0 for reason in self._REASONS}
        self._lifetime = {reason: RunningStats() for reason in self._REASONS}

    def residency_ended(
        self, block, set_index, fill_ordinal, end_ordinal, fill_pc, fill_core,
        core_mask, write_mask, hits, other_hits, forced,
    ) -> None:
        reason = "flush" if forced else "capacity"
        self._count[reason] += 1
        if hits == 0:
            self._dead[reason] += 1
        if popcount(core_mask) >= 2:
            self._shared[reason] += 1
        self._lifetime[reason].add(end_ordinal - fill_ordinal)

    def summary(self) -> Dict:
        total = sum(self._count.values())
        return {
            "residencies": total,
            "reasons": {
                reason: {
                    "count": self._count[reason],
                    "fraction": ratio(self._count[reason], total),
                    "dead": self._dead[reason],
                    "shared": self._shared[reason],
                    "lifetime_accesses": self._lifetime[reason].as_dict(),
                }
                for reason in self._REASONS
            },
        }


class SharingProbe(Probe, SharingClassifier):
    """Shared/private residency + hit breakdown (paper figures F1-F3).

    A thin probe shell over :class:`SharingClassifier` — by construction
    the probe-layer numbers are the *same object* the characterization
    report computes, so ``repro-sim inspect`` reproduces the paper-style
    breakdown from probe data alone, exactly.
    """

    name = "sharing"
    fastpath_safe = True

    def __init__(self):
        SharingClassifier.__init__(self)

    def summary(self) -> Dict:
        b = self.breakdown
        payload = dataclasses.asdict(b)
        payload.update({
            "private_residencies": b.private_residencies,
            "private_hits": b.private_hits,
            "shared_residency_fraction": b.shared_residency_fraction,
            "shared_hit_fraction": b.shared_hit_fraction,
            "hit_density_ratio": b.hit_density_ratio,
            "ro_fraction_of_shared_hits": b.ro_fraction_of_shared_hits,
            "dead_fill_fraction": b.dead_fill_fraction,
        })
        payload["degree_residencies"] = {
            str(k): v for k, v in sorted(b.degree_residencies.items())
        }
        payload["degree_hits"] = {
            str(k): v for k, v in sorted(b.degree_hits.items())
        }
        return payload


# ----------------------------------------------------------------------
# Access-event probes
# ----------------------------------------------------------------------

class ReuseDistanceProbe(Probe):
    """LRU stack-distance histogram split by sharing class of the residency.

    Distances are computed under the canonical per-set LRU stack model of
    the *stream* — a policy-independent property (the probe maintains its
    own stack, never reading cache or policy state), which is what makes it
    ``fastpath_safe``: on the fast path the identical quantities already
    exist in the walk (``distances``/``rids``/``res_core_mask``) and
    :meth:`consume_fastpath` just adopts them. Distance ``ways`` is the
    capped miss bucket (true distance >= ways, cold misses included); each
    access is attributed to the sharing class its residency *ends up* with.
    """

    name = "reuse"
    fastpath_safe = True
    wants_access_events = True

    def __init__(self):
        self._ways = 0
        self._set_mask = 0
        self._stacks: List[List[int]] = []
        self._rid_of: Dict[int, int] = {}
        self._core_mask: Sequence[int] = []
        self._acc_rids = array("q")
        self._acc_dists = array("i")
        self._shared_hist: List[int] = []
        self._private_hist: List[int] = []

    def bind(self, geometry, policy) -> None:
        self._ways = geometry.ways
        self._set_mask = geometry.num_sets - 1
        self._stacks = [[] for __ in range(geometry.num_sets)]
        self._rid_of = {}
        self._core_mask = []

    def on_access(self, llc, core, pc, block, is_write, hit, evicted) -> None:
        # Mirrors fastpath._stack_walk exactly (the equivalence the
        # differential test pins down).
        st = self._stacks[block & self._set_mask]
        rid = self._rid_of.get(block)
        if rid is not None:
            idx = st.index(block)
            distance = len(st) - 1 - idx
            del st[idx]
            st.append(block)
            self._core_mask[rid] |= 1 << core
        else:
            distance = self._ways
            if len(st) == self._ways:
                del self._rid_of[st.pop(0)]
            st.append(block)
            rid = len(self._core_mask)
            self._rid_of[block] = rid
            self._core_mask.append(1 << core)
        self._acc_rids.append(rid)
        self._acc_dists.append(distance)

    def consume_fastpath(self, walk, stream, geometry) -> None:
        self._acc_rids = walk.rids
        self._acc_dists = walk.distances
        self._core_mask = walk.res_core_mask

    def finalize(self) -> None:
        buckets = self._ways + 1
        shared = [0] * buckets
        private = [0] * buckets
        core_mask = self._core_mask
        for rid, distance in zip(self._acc_rids, self._acc_dists):
            if popcount(core_mask[rid]) >= 2:
                shared[distance] += 1
            else:
                private[distance] += 1
        self._shared_hist = shared
        self._private_hist = private

    @staticmethod
    def _side(hist: List[int]) -> Dict:
        hits = sum(hist[:-1])
        weighted = sum(d * count for d, count in enumerate(hist[:-1]))
        return {
            "histogram": list(hist),
            "hits": hits,
            "misses": hist[-1],
            "mean_hit_distance": ratio(weighted, hits),
        }

    def summary(self) -> Dict:
        return {
            "model": "lru-stack",
            "ways": self._ways,
            "miss_bucket": self._ways,
            "shared": self._side(self._shared_hist),
            "private": self._side(self._private_hist),
        }


class DuelProbe(Probe):
    """PSEL time-series of a set-dueling policy (DIP / DRRIP).

    Policy-internal: meaningless on the LRU fast path, so it forces the
    scalar tier and rejects non-dueling policies at bind time.
    """

    name = "psel"
    wants_access_events = True
    wants_policy = True

    def __init__(self, sample_every: int = 4096):
        if sample_every < 1:
            raise ConfigError(f"sample_every must be >= 1, got {sample_every}")
        self._sample_every = sample_every
        self._duel = None
        self._samples: List[List[int]] = []
        self._seen = 0

    def bind(self, geometry, policy) -> None:
        duel = getattr(policy, "duel", None)
        if duel is None:
            raise ConfigError(
                f"probe 'psel' needs a set-dueling policy (dip/drrip); "
                f"got {getattr(policy, 'name', policy)!r}"
            )
        self._duel = duel

    def on_access(self, llc, core, pc, block, is_write, hit, evicted) -> None:
        self._seen += 1
        if self._seen % self._sample_every == 0:
            self._samples.append([self._seen, self._duel.psel])

    def summary(self) -> Dict:
        return {
            "sample_every": self._sample_every,
            "samples": self._samples,
            "final": self._duel.describe() if self._duel else None,
        }


class ShctProbe(Probe):
    """SHCT counter-occupancy time-series of a SHiP policy.

    Samples the fraction of dead (zero) and trained (moved off the initial
    value) signature counters as learning progresses, plus the final
    counter-value histogram.
    """

    name = "shct"
    wants_access_events = True
    wants_policy = True

    def __init__(self, sample_every: int = 16384):
        if sample_every < 1:
            raise ConfigError(f"sample_every must be >= 1, got {sample_every}")
        self._sample_every = sample_every
        self._policy = None
        self._samples: List[List[int]] = []
        self._seen = 0

    def bind(self, geometry, policy) -> None:
        if not hasattr(policy, "shct_histogram"):
            raise ConfigError(
                f"probe 'shct' needs a SHiP-family policy; "
                f"got {getattr(policy, 'name', policy)!r}"
            )
        self._policy = policy

    def _sample(self) -> List[int]:
        histogram = self._policy.shct_histogram()
        initial = self._policy.counter_max // 2 + 1
        trained = self._policy.shct_size - histogram.get(initial, 0)
        return [self._seen, histogram.get(0, 0), trained]

    def on_access(self, llc, core, pc, block, is_write, hit, evicted) -> None:
        self._seen += 1
        if self._seen % self._sample_every == 0:
            self._samples.append(self._sample())

    def summary(self) -> Dict:
        histogram = self._policy.shct_histogram()
        return {
            "sample_every": self._sample_every,
            "shct_size": self._policy.shct_size,
            "counter_max": self._policy.counter_max,
            "samples": self._samples,
            "final_histogram": {
                str(k): v for k, v in sorted(histogram.items())
            },
        }


class RrpvProbe(Probe):
    """RRPV distribution of the victim's set at each eviction.

    Snapshots the post-insertion RRPVs of the set that just evicted — the
    state the *next* victim selection in that set will see.
    """

    name = "rrpv"
    wants_access_events = True
    wants_policy = True

    def __init__(self):
        self._policy = None
        self._histogram: Dict[int, int] = {}
        self._evictions = 0

    def bind(self, geometry, policy) -> None:
        if not hasattr(policy, "rrpv_values"):
            raise ConfigError(
                f"probe 'rrpv' needs an RRIP-family policy; "
                f"got {getattr(policy, 'name', policy)!r}"
            )
        self._policy = policy

    def on_access(self, llc, core, pc, block, is_write, hit, evicted) -> None:
        if evicted == NO_BLOCK:
            return
        self._evictions += 1
        histogram = self._histogram
        for value in self._policy.rrpv_values(llc.set_index_of(block)):
            histogram[value] = histogram.get(value, 0) + 1

    def summary(self) -> Dict:
        return {
            "evictions_sampled": self._evictions,
            "rrpv_max": getattr(self._policy, "rrpv_max", None),
            "histogram": {
                str(k): v for k, v in sorted(self._histogram.items())
            },
        }


class CoherenceProbe(Probe):
    """Coherence-event accounting on a full hierarchy pass.

    Counts upgrades, invalidations, writebacks and inclusion victims per
    kind and per originating core, plus the distinct blocks involved.
    Replays cannot produce these events (the recorded stream folded
    coherence in), hence ``needs_hierarchy``.
    """

    name = "coherence"
    needs_hierarchy = True

    def __init__(self):
        self._num_cores = 0
        self._counts: Dict[str, int] = {}
        self._per_core: Dict[str, List[int]] = {}
        self._blocks: Dict[str, set] = {}

    def bind_hierarchy(self, machine) -> None:
        self._num_cores = machine.num_cores

    def on_coherence(self, kind: str, core: int, block: int) -> None:
        self._counts[kind] = self._counts.get(kind, 0) + 1
        per_core = self._per_core.get(kind)
        if per_core is None:
            per_core = self._per_core[kind] = [0] * self._num_cores
            self._blocks[kind] = set()
        per_core[core] += 1
        self._blocks[kind].add(block)

    def summary(self) -> Dict:
        return {
            "num_cores": self._num_cores,
            "events": dict(sorted(self._counts.items())),
            "per_core": {
                kind: list(cores)
                for kind, cores in sorted(self._per_core.items())
            },
            "distinct_blocks": {
                kind: len(blocks)
                for kind, blocks in sorted(self._blocks.items())
            },
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

PROBE_FACTORIES = {
    SetStatsProbe.name: SetStatsProbe,
    EvictionReasonProbe.name: EvictionReasonProbe,
    SharingProbe.name: SharingProbe,
    ReuseDistanceProbe.name: ReuseDistanceProbe,
    DuelProbe.name: DuelProbe,
    ShctProbe.name: ShctProbe,
    RrpvProbe.name: RrpvProbe,
    CoherenceProbe.name: CoherenceProbe,
}

PROBE_NAMES = tuple(sorted(PROBE_FACTORIES))


def make_probe(name: str, **kwargs) -> Probe:
    """Instantiate one registered probe by name."""
    factory = PROBE_FACTORIES.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown probe {name!r}; choose from {PROBE_NAMES}"
        )
    return factory(**kwargs)


def resolve_probes(
    specs: Iterable[Union[str, Probe]]
) -> List[Probe]:
    """Names and/or instances -> validated probe instances.

    Rejects duplicate probe names: summaries are keyed by name, and a
    silent overwrite would drop data.
    """
    probes: List[Probe] = []
    seen = set()
    for spec in specs:
        probe = make_probe(spec) if isinstance(spec, str) else spec
        if probe.name in seen:
            raise ConfigError(f"duplicate probe {probe.name!r}")
        seen.add(probe.name)
        probes.append(probe)
    return probes


def default_probe_names(policy_name: str = "lru") -> List[str]:
    """The probe set ``repro-sim inspect`` runs when none are named.

    Always the four stream-level probes plus the hierarchy coherence
    probe; policy-internal probes join only when the policy carries the
    matching state.
    """
    names = ["sets", "evictions", "sharing", "reuse", "coherence"]
    if policy_name in ("dip", "drrip"):
        names.append("psel")
    if policy_name == "ship":
        names.append("shct")
    if policy_name in ("srrip", "brrip", "drrip", "ship"):
        names.append("rrpv")
    return names


# ----------------------------------------------------------------------
# Report + runners
# ----------------------------------------------------------------------

@dataclass
class ProbeReport:
    """Everything one probed inspection produced (picklable, JSON-able)."""

    workload: str
    policy: str
    tier: str
    result: LlcSimResult
    profile: Dict = field(default_factory=dict)
    probes: Dict[str, Dict] = field(default_factory=dict)
    policy_state: Optional[Dict] = None
    hierarchy: Optional[Dict] = None

    def as_dict(self) -> Dict:
        """The on-disk/JSON shape (versioned via ``format_version``)."""
        return {
            "format_version": PROBE_FORMAT_VERSION,
            "workload": self.workload,
            "policy": self.policy,
            "tier": self.tier,
            "result": self.result.as_dict(),
            "profile": dict(self.profile),
            "probes": self.probes,
            "policy_state": self.policy_state,
            "hierarchy": self.hierarchy,
        }


def run_probed_replay(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy_name: str,
    probes: Iterable[Union[str, Probe]],
    seed: int = 0,
    fastpath: Optional[bool] = None,
    use_numpy: Optional[bool] = None,
) -> ProbeReport:
    """Replay ``stream`` under ``policy_name`` with probes attached.

    Tier selection: the declared replay tier of the policy
    (:func:`repro.sim.setpath.setpath_tier_of`) engages only when the gate
    allows it **and every probe is fastpath-safe** — one scalar-only probe
    forces the whole replay scalar (probes are never silently degraded).
    The report's ``tier`` is the tier that actually ran: ``"stack"`` (LRU
    stack-distance fast path), ``"set"`` / ``"dueling"`` (set-partitioned
    kernels), or ``"scalar"``. Hit/miss counts are bit-identical across
    tiers, and match :func:`repro.sim.multipass.run_policy_on_stream` for
    the same ``(policy_name, seed)`` (identical seed derivation).

    Access probes stay policy-independent on the fast tiers: the reuse
    probe models canonical per-set LRU stacks of the *stream*, so on the
    set/dueling tiers it consumes a separate
    :func:`reconstruct_lru_replay` walk (the policy walk's distances are
    degenerate hit/miss markers), timed under ``profile["reuse_model"]``.

    ``profile`` in the returned report carries per-stage wall times from
    the replay profiler (stack walk or partition/set kernels /
    reconstruction / observer replay on the fast tiers; replay loop /
    flush on the scalar path), plus per-probe fast-path consumption times
    and ``total``.
    """
    probes = resolve_probes(probes)
    for probe in probes:
        if probe.needs_hierarchy:
            raise ConfigError(
                f"probe {probe.name!r} needs a full hierarchy pass; "
                f"run it through inspect_workload"
            )
    profile: Dict = {}
    observers = tuple(p for p in probes if isinstance(p, ResidencyObserver))
    tier = REPLAY_SCALAR
    if fastpath_enabled(fastpath) and all(p.fastpath_safe for p in probes):
        tier = setpath_tier_of(policy_name)
    start = perf_counter()
    if tier != REPLAY_SCALAR:
        policy_state = None
        for probe in probes:
            probe.bind(geometry, None)
        if tier == REPLAY_STACK:
            walk = reconstruct_lru_replay(
                stream, geometry, use_numpy=use_numpy, profile=profile
            )
            lru_walk = walk
        else:
            policy = make_policy(
                policy_name, seed=derive_seed(seed, "replay", policy_name)
            )
            walk = reconstruct_setpath_replay(
                stream, geometry, policy,
                use_numpy=use_numpy, profile=profile,
            )
            lru_walk = None
        if observers:
            phase_start = perf_counter()
            _replay_observers(walk, stream, observers)
            profile["observer_replay"] = perf_counter() - phase_start
        for probe in probes:
            if probe.wants_access_events:
                if lru_walk is None:
                    phase_start = perf_counter()
                    lru_walk = reconstruct_lru_replay(
                        stream, geometry, use_numpy=use_numpy
                    )
                    profile["reuse_model"] = perf_counter() - phase_start
                phase_start = perf_counter()
                probe.consume_fastpath(lru_walk, stream, geometry)
                profile[f"probe_{probe.name}"] = perf_counter() - phase_start
        result = LlcSimResult(
            policy=policy_name,
            stream_name=stream.name,
            accesses=walk.n,
            hits=walk.hits,
            misses=walk.misses,
            elapsed_sec=perf_counter() - start,
            tier=tier,
        )
    else:
        policy = make_policy(
            policy_name, seed=derive_seed(seed, "replay", policy_name)
        )
        simulator = LlcOnlySimulator(geometry, policy, observers=observers)
        for probe in probes:
            probe.bind(geometry, policy)
        access_probes = tuple(p for p in probes if p.wants_access_events)
        if access_probes:
            simulator.llc.attach_probe_bus(ProbeBus(access_probes))
        result = simulator.run(stream, profile=profile)
        policy_state = policy.introspect()
    finalize_start = perf_counter()
    for probe in probes:
        probe.finalize()
    profile["finalize"] = perf_counter() - finalize_start
    profile["total"] = perf_counter() - start
    summaries = {probe.name: probe.summary() for probe in probes}
    telemetry.emit(
        "span", stage="inspect_replay", policy=policy_name,
        stream=stream.name, tier=tier, probes=sorted(summaries),
        wall_sec=round(profile["total"], 6),
    )
    return ProbeReport(
        workload=stream.name,
        policy=policy_name,
        tier=tier,
        result=result,
        profile=profile,
        probes=summaries,
        policy_state=policy_state,
    )


def _run_hierarchy_probes(context, workload: str, probes: List[Probe]):
    """Regenerate the workload trace and run a probed hierarchy pass.

    Seeds match :meth:`ExperimentContext.record_artifacts` exactly, so the
    pass the coherence probe watches is bit-for-bit the pass that recorded
    the cached stream.
    """
    from repro.workloads.registry import get_workload

    model = get_workload(workload)
    machine = context.machine
    trace = model.generate(
        num_threads=machine.num_cores,
        scale=machine.scale,
        target_accesses=context.target_accesses,
        seed=derive_seed(context.seed, "trace", workload),
    )
    policy = make_policy("lru", seed=derive_seed(context.seed, "record", "lru"))
    for probe in probes:
        probe.bind_hierarchy(machine)
    hierarchy = CmpHierarchy(machine, policy, probe_bus=ProbeBus(probes))
    return hierarchy.run(trace)


def inspect_workload(
    context,
    workload: str,
    policy: str = "lru",
    probes: Optional[Iterable[Union[str, Probe]]] = None,
) -> ProbeReport:
    """Full probe report for one workload of an experiment context.

    Splits the probe set into replay probes (run against the cached LLC
    stream via :func:`run_probed_replay`) and hierarchy probes (run on a
    deterministic re-execution of the recording pass), and merges both
    into one :class:`ProbeReport`. ``probes=None`` selects
    :func:`default_probe_names` for the policy.
    """
    specs = list(probes) if probes is not None else default_probe_names(policy)
    instances = resolve_probes(specs)
    replay_probes = [p for p in instances if not p.needs_hierarchy]
    hierarchy_probes = [p for p in instances if p.needs_hierarchy]

    artifacts = context.artifacts(workload)
    report = run_probed_replay(
        artifacts.stream, context.geometry, policy, replay_probes,
        seed=context.seed, fastpath=context.fastpath,
    )
    report.workload = workload

    if hierarchy_probes:
        with telemetry.span("inspect_hierarchy", workload=workload) as info:
            phase_start = perf_counter()
            stats = _run_hierarchy_probes(context, workload, hierarchy_probes)
            report.profile["hierarchy_pass"] = perf_counter() - phase_start
            info["accesses"] = stats.accesses
        for probe in hierarchy_probes:
            probe.finalize()
            report.probes[probe.name] = probe.summary()
        report.hierarchy = dataclasses.asdict(stats)
    return report
