"""Multi-pass simulation helpers.

The standard experiment pipeline is:

1. :func:`record_llc_stream` — run the full hierarchy once (baseline LRU
   LLC) over a workload trace, recording the demand stream that reaches the
   LLC;
2. :func:`run_policy_on_stream` / :func:`run_opt` — replay that stream
   under each policy of interest (all passes see identical accesses).
"""

from typing import Optional, Tuple, Union
from weakref import WeakKeyDictionary

from repro.cache.hierarchy import CmpHierarchy, HierarchyStats
from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry, MachineConfig
from repro.common.rng import derive_seed
from repro.policies.base import ReplacementPolicy
from repro.policies.opt import BeladyOptPolicy, compute_next_use
from repro.policies.registry import make_policy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.results import LlcSimResult
from repro.sim.setpath import try_fast_replay
from repro.trace.trace import Trace


def record_llc_stream(
    trace: Trace,
    machine: MachineConfig,
    policy_name: str = "lru",
    seed: int = 0,
) -> Tuple[LlcStream, HierarchyStats]:
    """Run the full hierarchy over ``trace`` and record the LLC stream.

    Args:
        trace: interleaved multi-thread trace.
        machine: CMP configuration.
        policy_name: LLC policy used *during recording* (LRU by default;
            the recorded stream is then replayed under other policies).
        seed: seed for stochastic recording policies.
    """
    policy = make_policy(policy_name, seed=derive_seed(seed, "record", policy_name))
    hierarchy = CmpHierarchy(machine, policy, record_stream=True)
    stats = hierarchy.run(trace)
    stream = hierarchy.stream()
    stream.name = f"{trace.name}@{machine.name}"
    return stream, stats


def run_policy_on_stream(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy: Union[str, ReplacementPolicy],
    seed: int = 0,
    observers: Tuple = (),
    fastpath: Optional[bool] = None,
    native: Optional[bool] = None,
    kernel_jobs: Optional[int] = None,
) -> LlcSimResult:
    """Replay ``stream`` under a policy given by name or instance.

    Replays route through the fastest exact replay tier the policy
    declares (:func:`repro.sim.setpath.try_fast_replay`): plain LRU takes
    the stack-distance path, the per-set policy matrix (LIP/BIP/NRU/
    SRRIP/BRRIP/random) the set-partitioned kernels, and DIP/DRRIP the
    two-phase dueling reconstruction — all bit-identical to the scalar
    model. Scalar-tier policies that the native backend covers (exact
    unbound SHiP, no observers) take its compiled/compact kernel unless
    ``native`` is False or ``REPRO_SIM_NO_NATIVE`` is set; everything else
    scalar (wrappers, bound instances), or any replay with ``fastpath``
    False / ``REPRO_SIM_NO_FASTPATH`` set, goes through the scalar model.
    ``kernel_jobs`` shards the set-partitioned count kernels across worker
    threads within one replay (default ``REPRO_SIM_KERNEL_JOBS``); results
    are bit-identical either way, only ``result.backend`` records the
    difference.
    """
    result = try_fast_replay(
        stream, geometry, policy, seed=seed, observers=observers,
        fastpath=fastpath, native=native, kernel_jobs=kernel_jobs,
    )
    if result is not None:
        return result
    if isinstance(policy, str):
        policy = make_policy(policy, seed=derive_seed(seed, "replay", policy))
    simulator = LlcOnlySimulator(geometry, policy, observers=observers)
    return simulator.run(stream)


_NEXT_USE_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()
"""Per-stream cache of the OPT next-use column (geometry-independent)."""


def stream_next_use(stream: LlcStream):
    """The stream's next-use column, computed once and shared.

    Next-use positions depend only on the block sequence — never on the
    geometry or policy — so one computation serves every OPT replay and
    every sweep cell over the same stream. Memoized weakly: the column
    dies with its stream.
    """
    next_use = _NEXT_USE_MEMO.get(stream)
    if next_use is None:
        next_use = compute_next_use(stream.blocks)
        _NEXT_USE_MEMO[stream] = next_use
    return next_use


def run_opt(
    stream: LlcStream,
    geometry: CacheGeometry,
    observers: Tuple = (),
    fastpath: Optional[bool] = None,
) -> LlcSimResult:
    """Replay ``stream`` under Belady's OPT (offline optimal).

    OPT's per-way next-use positions are indexed by the global stream
    ordinal, which the set partition preserves, so the replay takes the
    set-partitioned engine unless fast paths are disabled. The next-use
    column itself is geometry-independent and shared across calls
    (:func:`stream_next_use`).
    """
    policy = BeladyOptPolicy(stream_next_use(stream))
    result = try_fast_replay(
        stream, geometry, policy, observers=observers, fastpath=fastpath
    )
    if result is not None:
        return result
    simulator = LlcOnlySimulator(geometry, policy, observers=observers)
    return simulator.run(stream)
