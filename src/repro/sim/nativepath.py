"""Compiled + compact-array backend for the scalar replay tier.

The replay-tier registry (PR 5/6) left exactly one tier paying full model
overhead: ``scalar``. SHiP is its canonical occupant — the SHCT is written
by *every* set's fills, hits, and evictions, so no per-set decomposition
exists (DESIGN.md decision 9) and every SHiP cell crawls through
``SharedLlc.access`` at model speed. But SHiP's replay-relevant state is
tiny and flat: an RRPV byte, a signature, and an outcome bit per frame,
plus one global saturating-counter table. That is exactly the shape a
compact-array kernel (and a nopython-compiled one) handles well.

This module supplies that backend, in three layers:

* **Compact kernel** (:func:`_ship_count_compact`) — a bit-exact
  transcription of ``SharedLlc.access`` + :class:`ShipPolicy` over flat
  per-set lists (the layout :mod:`repro.sim.setpath`'s count kernels use),
  with PC signatures pre-hashed in one vectorized pass. SHiP draws no RNG,
  so the transcription is deterministic and bit-identical to the scalar
  model (the differential suite pins it). This is the *always available*
  twin — it needs nothing beyond the interpreter — and is itself several
  times faster than the model because it replaces per-access method
  dispatch, tuple unpacking, and residency bookkeeping with list indexing.
* **Numba kernel** (:func:`_ship_count_numba`) — the same loop compiled
  ``nopython``/``nogil`` over int32/int8 numpy arrays (block addresses
  compacted to dense ids so residency lookup is an array index, not a
  dict probe). Auto-selected when numba imports; the container/CI matrix
  without numba lands on the compact twin.
* **Dispatch** (:func:`try_native_replay`) — called by
  :func:`repro.sim.setpath.try_fast_replay` when a replay resolves to the
  scalar tier: exact-type unbound :class:`ShipPolicy` replays with no
  observers route here, everything else (undeclared subclasses, bound
  instances, observer-carrying replays, ``REPRO_SIM_NO_NATIVE``) falls
  back to the scalar model with the chosen backend recorded in the
  result's ``backend`` provenance field.

The module also owns the ``--kernel-jobs`` resolution used by the
set-partitioned engine's intra-replay sharding
(:func:`resolve_kernel_jobs`): per-set decomposition plus per-set RNG
streams make set-tier kernels embarrassingly parallel *within one replay*
(DESIGN.md decision 11), so :mod:`repro.sim.setpath` can split its per-set
loop across worker threads exactly.
"""

from time import perf_counter
from typing import Optional, Tuple

from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.envflag import env_flag
from repro.common.npsupport import HAVE_NUMPY, require_numpy, should_vectorize
from repro.policies.base import REPLAY_SCALAR
from repro.policies.ship import ShipPolicy
from repro.sim.results import LlcSimResult

NO_NATIVE_ENV = "REPRO_SIM_NO_NATIVE"
"""Set truthy (:func:`repro.common.envflag.env_flag` semantics) to disable
the native scalar-tier backend; SHiP replays then take the scalar model.
``=0``/``=false``/``=no`` count as unset, matching every other
``REPRO_SIM_*`` toggle.
"""

KERNEL_JOBS_ENV = "REPRO_SIM_KERNEL_JOBS"
"""Default intra-replay shard count for set-partitioned kernels.

``--kernel-jobs`` on the CLI exports this so worker processes inherit it;
``0`` means all cores, unset/invalid means 1 (serial).
"""

BACKEND_MODEL = "model"
"""Result produced by the scalar object model (``SharedLlc.access``)."""

BACKEND_COMPACT = "compact"
"""Result produced by the compact pure-Python nativepath kernel."""

BACKEND_NUMBA = "numba"
"""Result produced by the numba-compiled nativepath kernel."""

_NUMBA = None
_NUMBA_CHECKED = False
_SHIP_NUMBA_KERNEL = None


def _numba():
    """The numba module, imported lazily, or ``None`` when unavailable.

    Import cost (and any import-time breakage of an optional accelerator)
    is paid at most once, on the first native-eligible replay — never at
    module import.
    """
    global _NUMBA, _NUMBA_CHECKED
    if not _NUMBA_CHECKED:
        _NUMBA_CHECKED = True
        try:  # pragma: no cover - exercised only where numba is installed
            import numba

            _NUMBA = numba
        except Exception:
            _NUMBA = None
    return _NUMBA


def have_numba() -> bool:
    """True when numba is importable in this interpreter."""
    return _numba() is not None


def native_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the three-state native-backend gate.

    ``None`` (auto) enables the backend unless :data:`NO_NATIVE_ENV` is
    set truthy; ``True``/``False`` force it on/off regardless. Forcing
    ``True`` does not require numba — the compact twin is part of the
    native backend and always available.
    """
    if flag is not None:
        return flag
    return not env_flag(NO_NATIVE_ENV)


def resolve_kernel_jobs(jobs: Optional[int] = None) -> int:
    """Effective intra-replay shard count (>= 1).

    An explicit ``jobs`` wins; otherwise :data:`KERNEL_JOBS_ENV` supplies
    the default. ``0`` means all cores; anything unset, unparsable, or
    negative means serial.
    """
    import os

    if jobs is None:
        raw = os.environ.get(KERNEL_JOBS_ENV, "")
        try:
            jobs = int(raw)
        except ValueError:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(jobs, 1)


# ----------------------------------------------------------------------
# Signature preparation (vectorized, with a pure-Python twin)
# ----------------------------------------------------------------------

def _hash_pcs(pcs, mask: int, use_np: bool):
    """Every access's SHCT signature: ``ShipPolicy._hash_pc`` columnwise."""
    if use_np:
        np = require_numpy()
        column = np.asarray(pcs, dtype=np.int64)
        sigs = ((column >> 2) ^ (column >> 11) ^ (column >> 19)) & mask
        return sigs.tolist()
    return [((pc >> 2) ^ (pc >> 11) ^ (pc >> 19)) & mask for pc in pcs]


# ----------------------------------------------------------------------
# Compact pure-Python kernel (always available)
# ----------------------------------------------------------------------

def _ship_count_compact(blocks, sigs, num_sets: int, ways: int, rmax: int,
                        cmax: int, shct) -> int:
    """Count-mode SHiP replay over flat per-set lists; returns hits.

    Bit-exact transcription of the scalar path: free fills take the
    lowest free way (fill order — no back-invalidation exists in LLC-only
    replay), victim selection is SRRIP aging (the closed-form delta of
    ``_count_rrip``), and the SHCT sees the eviction decrement *before*
    the fill reads the incoming signature's counter — the same order
    ``SharedLlc.access`` runs ``on_evict`` and ``on_fill`` in, which
    matters when victim and filler share a signature.
    """
    set_mask = num_sets - 1
    where: dict = {}  # block -> (rrpv row, sig row, outcome row, way)
    get = where.get
    blk_rows = [[0] * ways for __ in range(num_sets)]
    rrpv_rows = [[rmax] * ways for __ in range(num_sets)]
    sig_rows = [[0] * ways for __ in range(num_sets)]
    out_rows = [[0] * ways for __ in range(num_sets)]
    filled = [0] * num_sets
    hits = 0
    for block, g in zip(blocks, sigs):
        entry = get(block)
        if entry is not None:
            rrow, srow, orow, way = entry
            rrow[way] = 0
            hits += 1
            if not orow[way]:
                orow[way] = 1
                g2 = srow[way]
                if shct[g2] < cmax:
                    shct[g2] += 1
            continue
        s = block & set_mask
        rrow = rrpv_rows[s]
        srow = sig_rows[s]
        orow = out_rows[s]
        brow = blk_rows[s]
        f = filled[s]
        if f < ways:
            way = f
            filled[s] = f + 1
        else:
            top = max(rrow)
            if top != rmax:
                delta = rmax - top
                for w in range(ways):
                    rrow[w] += delta
            way = rrow.index(rmax)
            del where[brow[way]]
            if not orow[way]:
                g2 = srow[way]
                if shct[g2] > 0:
                    shct[g2] -= 1
        srow[way] = g
        orow[way] = 0
        rrow[way] = rmax if shct[g] == 0 else rmax - 1
        brow[way] = block
        where[block] = (rrow, srow, orow, way)
    return hits


# ----------------------------------------------------------------------
# Numba kernel (auto-selected when importable)
# ----------------------------------------------------------------------

def _ship_numba_kernel():
    """Compile (once) and return the nopython SHiP count kernel."""
    global _SHIP_NUMBA_KERNEL
    if _SHIP_NUMBA_KERNEL is None:  # pragma: no cover - needs numba
        numba = _numba()

        @numba.njit(nogil=True, cache=False)
        def kernel(ids, sets, sigs, ways, rmax, cmax,
                   where, blk, rrpv, sig, out, filled, shct):
            hits = 0
            for i in range(ids.shape[0]):
                bid = ids[i]
                pos = where[bid]
                if pos >= 0:
                    rrpv[pos] = 0
                    hits += 1
                    if out[pos] == 0:
                        out[pos] = 1
                        g2 = sig[pos]
                        if shct[g2] < cmax:
                            shct[g2] += 1
                    continue
                s = sets[i]
                base = s * ways
                f = filled[s]
                if f < ways:
                    pos = base + f
                    filled[s] = f + 1
                else:
                    top = -1
                    for w in range(ways):
                        v = rrpv[base + w]
                        if v > top:
                            top = v
                    if top != rmax:
                        delta = rmax - top
                        for w in range(ways):
                            rrpv[base + w] += delta
                    pos = base
                    for w in range(ways):
                        if rrpv[base + w] == rmax:
                            pos = base + w
                            break
                    where[blk[pos]] = -1
                    if out[pos] == 0:
                        g2 = sig[pos]
                        if shct[g2] > 0:
                            shct[g2] -= 1
                g = sigs[i]
                sig[pos] = g
                out[pos] = 0
                if shct[g] == 0:
                    rrpv[pos] = rmax
                else:
                    rrpv[pos] = rmax - 1
                blk[pos] = bid
                where[bid] = pos
            return hits

        _SHIP_NUMBA_KERNEL = kernel
    return _SHIP_NUMBA_KERNEL


def _ship_count_numba(stream: LlcStream, sig_mask: int, num_sets: int,
                      ways: int, rmax: int, cmax: int, shct) -> int:
    """Numba-compiled count-mode SHiP replay; returns hits.

    Block addresses are compacted to dense ids (one ``np.unique``) so the
    residency map is a flat int32 array instead of a hash probe — the
    same compact-state idea the setpath kernels use, taken one step
    further because nopython code wants arrays, not dicts.
    """  # pragma: no cover - needs numba
    np = require_numpy()
    __, pcs, blocks, ___ = stream.numpy_columns()
    uniq, ids = np.unique(blocks, return_inverse=True)
    ids = ids.astype(np.int32)
    sets = (blocks & np.int64(num_sets - 1)).astype(np.int32)
    sigs = (((pcs >> 2) ^ (pcs >> 11) ^ (pcs >> 19))
            & np.int64(sig_mask)).astype(np.int32)
    frames = num_sets * ways
    state_where = np.full(len(uniq), -1, dtype=np.int32)
    state_blk = np.zeros(frames, dtype=np.int32)
    state_rrpv = np.full(frames, rmax, dtype=np.int32)
    state_sig = np.zeros(frames, dtype=np.int32)
    state_out = np.zeros(frames, dtype=np.int8)
    state_filled = np.zeros(num_sets, dtype=np.int32)
    state_shct = np.asarray(shct, dtype=np.int32)
    kernel = _ship_numba_kernel()
    return int(kernel(
        ids, sets, sigs, ways, rmax, cmax, state_where, state_blk,
        state_rrpv, state_sig, state_out, state_filled, state_shct,
    ))


# ----------------------------------------------------------------------
# Replay entry point + dispatch
# ----------------------------------------------------------------------

def replay_ship_nativepath(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy: ShipPolicy,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> LlcSimResult:
    """Replay ``stream`` under an unbound SHiP instance, natively.

    Drop-in classification twin of
    ``LlcOnlySimulator(geometry, policy).run(stream)``: same hit/miss
    counts (differential-tested, including hypothesis streams), recorded
    with the scalar tier — this is a faster *backend* for that tier, not
    a new tier — and the kernel that produced the counters in
    ``result.backend``. The policy instance is left unbound (the kernel
    reads only its configuration: ``rrpv_max``, SHCT geometry, and the
    initial counter value).

    ``profile``, when a dict, receives ``native_prepare`` /
    ``native_kernel`` wall times and the chosen ``native_backend``.
    """
    from repro.sim.fastpath import VECTORIZE_THRESHOLD

    start = perf_counter()
    n = len(stream.blocks)
    use_np = should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD)
    rmax = policy.rrpv_max
    cmax = policy.counter_max
    sig_mask = policy.shct_size - 1
    shct = list(policy._shct)  # never mutate the caller's instance
    backend = BACKEND_NUMBA if (have_numba() and HAVE_NUMPY) else BACKEND_COMPACT
    prep_start = perf_counter()
    if backend == BACKEND_NUMBA:  # pragma: no cover - needs numba
        if profile is not None:
            profile["native_prepare"] = perf_counter() - prep_start
        kernel_start = perf_counter()
        hits = _ship_count_numba(
            stream, sig_mask, geometry.num_sets, geometry.ways, rmax, cmax,
            shct,
        )
    else:
        sigs = _hash_pcs(stream.pcs, sig_mask, use_np)
        if profile is not None:
            profile["native_prepare"] = perf_counter() - prep_start
        kernel_start = perf_counter()
        hits = _ship_count_compact(
            stream.blocks, sigs, geometry.num_sets, geometry.ways, rmax,
            cmax, shct,
        )
    if profile is not None:
        profile["native_kernel"] = perf_counter() - kernel_start
        profile["native_backend"] = backend
    return LlcSimResult(
        policy=policy.name,
        stream_name=stream.name,
        accesses=n,
        hits=hits,
        misses=n - hits,
        elapsed_sec=perf_counter() - start,
        tier=REPLAY_SCALAR,
        backend=backend,
    )


def native_eligible(policy) -> bool:
    """True when ``policy`` (name or instance) can take the native backend.

    Mirrors the two-guard discipline of the set-partitioned engine: the
    kernel is keyed by *exact* type — an undeclared :class:`ShipPolicy`
    subclass must not ride the parent's kernel — and a bound instance may
    carry pre-seeded SHCT/RRPV state no offline kernel reconstructs.
    """
    if isinstance(policy, str):
        return policy == "ship"
    return type(policy) is ShipPolicy and policy.geometry is None


def try_native_replay(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy,
    observers: Tuple = (),
    native: Optional[bool] = None,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> Optional[LlcSimResult]:
    """Native replay of a scalar-tier policy, or ``None`` to fall back.

    Returns ``None`` — caller proceeds to the scalar model — whenever the
    backend is gated off (``native=False`` or ``REPRO_SIM_NO_NATIVE``),
    observers need the full residency callback stream, or the policy is
    not an exact-type unbound SHiP (name or instance). ``policy`` given as
    the name ``"ship"`` constructs the registry default, matching what the
    scalar fallback would build.
    """
    if observers or not native_enabled(native):
        return None
    if not native_eligible(policy):
        return None
    instance = policy if isinstance(policy, ShipPolicy) else ShipPolicy()
    return replay_ship_nativepath(
        stream, geometry, instance, use_numpy=use_numpy, profile=profile,
    )
