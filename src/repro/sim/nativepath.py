"""Compiled + compact-array backend for the scalar replay tier.

The replay-tier registry (PR 5/6) left exactly one tier paying full model
overhead: ``scalar``. SHiP is its canonical occupant — the SHCT is written
by *every* set's fills, hits, and evictions, so no per-set decomposition
exists (DESIGN.md decision 9) and every SHiP cell crawls through
``SharedLlc.access`` at model speed. But SHiP's replay-relevant state is
tiny and flat: an RRPV byte, a signature, and an outcome bit per frame,
plus one global saturating-counter table. That is exactly the shape a
compact-array kernel (and a nopython-compiled one) handles well.

This module supplies that backend, in three layers:

* **Compact kernel** (:func:`_ship_count_compact`) — a bit-exact
  transcription of ``SharedLlc.access`` + :class:`ShipPolicy` over flat
  per-set lists (the layout :mod:`repro.sim.setpath`'s count kernels use),
  with PC signatures pre-hashed in one vectorized pass. SHiP draws no RNG,
  so the transcription is deterministic and bit-identical to the scalar
  model (the differential suite pins it). This is the *always available*
  twin — it needs nothing beyond the interpreter — and is itself several
  times faster than the model because it replaces per-access method
  dispatch, tuple unpacking, and residency bookkeeping with list indexing.
* **Numba kernel** (:func:`_ship_count_numba`) — the same loop compiled
  ``nopython``/``nogil`` over int32/int8 numpy arrays (block addresses
  compacted to dense ids so residency lookup is an array index, not a
  dict probe). Auto-selected when numba imports; the container/CI matrix
  without numba lands on the compact twin.
* **Oracle-tier kernels** (:func:`_oracle_count_compact` /
  :func:`_oracle_count_numba`) — the same two-layer treatment for
  :class:`repro.oracle.wrapper.SharingAwareWrapper` over {LRU, SRRIP,
  SHiP} when its hint source is an offline annotation
  (:class:`repro.oracle.annotate.AnnotationHintSource`): hints are pure
  per-ordinal data, so they export as an int8 column aligned with the
  stream and the whole protection protocol (victim exemption, synthetic
  promote-hits, budget releases) runs inside the kernel loop. The
  wrapper's study counters are written back onto the instance.
* **Dispatch** (:func:`try_native_replay`) — called by
  :func:`repro.sim.setpath.try_fast_replay` when a replay resolves to the
  scalar tier: exact-type unbound :class:`ShipPolicy` replays with no
  observers route here, as do native-eligible oracle wrappers
  (:func:`oracle_native_spec`); everything else (undeclared subclasses,
  bound instances, live predictor hint sources, observer-carrying
  replays, ``REPRO_SIM_NO_NATIVE``) falls back to the scalar model with
  the chosen backend recorded in the result's ``backend`` provenance
  field.

The module also owns the ``--kernel-jobs`` resolution used by the
set-partitioned engine's intra-replay sharding
(:func:`resolve_kernel_jobs`): per-set decomposition plus per-set RNG
streams make set-tier kernels embarrassingly parallel *within one replay*
(DESIGN.md decision 11), so :mod:`repro.sim.setpath` can split its per-set
loop across worker threads exactly.
"""

from time import perf_counter
from typing import Optional, Tuple

from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.envflag import env_flag
from repro.common.npsupport import HAVE_NUMPY, require_numpy, should_vectorize
from repro.policies.base import REPLAY_SCALAR
from repro.policies.lru import LruPolicy
from repro.policies.rrip import SrripPolicy
from repro.policies.ship import ShipPolicy
from repro.sim.results import LlcSimResult

NO_NATIVE_ENV = "REPRO_SIM_NO_NATIVE"
"""Set truthy (:func:`repro.common.envflag.env_flag` semantics) to disable
the native scalar-tier backend; SHiP replays then take the scalar model.
``=0``/``=false``/``=no`` count as unset, matching every other
``REPRO_SIM_*`` toggle.
"""

KERNEL_JOBS_ENV = "REPRO_SIM_KERNEL_JOBS"
"""Default intra-replay shard count for set-partitioned kernels.

``--kernel-jobs`` on the CLI exports this so worker processes inherit it;
``0`` means all cores, unset/invalid means 1 (serial).
"""

BACKEND_MODEL = "model"
"""Result produced by the scalar object model (``SharedLlc.access``)."""

BACKEND_COMPACT = "compact"
"""Result produced by the compact pure-Python nativepath kernel."""

BACKEND_NUMBA = "numba"
"""Result produced by the numba-compiled nativepath kernel."""

_NUMBA = None
_NUMBA_CHECKED = False
_SHIP_NUMBA_KERNEL = None


def _numba():
    """The numba module, imported lazily, or ``None`` when unavailable.

    Import cost (and any import-time breakage of an optional accelerator)
    is paid at most once, on the first native-eligible replay — never at
    module import.
    """
    global _NUMBA, _NUMBA_CHECKED
    if not _NUMBA_CHECKED:
        _NUMBA_CHECKED = True
        try:  # pragma: no cover - exercised only where numba is installed
            import numba

            _NUMBA = numba
        except Exception:
            _NUMBA = None
    return _NUMBA


def have_numba() -> bool:
    """True when numba is importable in this interpreter."""
    return _numba() is not None


def native_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the three-state native-backend gate.

    ``None`` (auto) enables the backend unless :data:`NO_NATIVE_ENV` is
    set truthy; ``True``/``False`` force it on/off regardless. Forcing
    ``True`` does not require numba — the compact twin is part of the
    native backend and always available.
    """
    if flag is not None:
        return flag
    return not env_flag(NO_NATIVE_ENV)


def resolve_kernel_jobs(jobs: Optional[int] = None) -> int:
    """Effective intra-replay shard count (>= 1).

    An explicit ``jobs`` wins; otherwise :data:`KERNEL_JOBS_ENV` supplies
    the default. ``0`` means all cores; anything unset, unparsable, or
    negative means serial.
    """
    import os

    if jobs is None:
        raw = os.environ.get(KERNEL_JOBS_ENV, "")
        try:
            jobs = int(raw)
        except ValueError:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(jobs, 1)


# ----------------------------------------------------------------------
# Signature preparation (vectorized, with a pure-Python twin)
# ----------------------------------------------------------------------

def _hash_pcs(pcs, mask: int, use_np: bool):
    """Every access's SHCT signature: ``ShipPolicy._hash_pc`` columnwise."""
    if use_np:
        np = require_numpy()
        column = np.asarray(pcs, dtype=np.int64)
        sigs = ((column >> 2) ^ (column >> 11) ^ (column >> 19)) & mask
        return sigs.tolist()
    return [((pc >> 2) ^ (pc >> 11) ^ (pc >> 19)) & mask for pc in pcs]


# ----------------------------------------------------------------------
# Compact pure-Python kernel (always available)
# ----------------------------------------------------------------------

def _ship_count_compact(blocks, sigs, num_sets: int, ways: int, rmax: int,
                        cmax: int, shct) -> int:
    """Count-mode SHiP replay over flat per-set lists; returns hits.

    Bit-exact transcription of the scalar path: free fills take the
    lowest free way (fill order — no back-invalidation exists in LLC-only
    replay), victim selection is SRRIP aging (the closed-form delta of
    ``_count_rrip``), and the SHCT sees the eviction decrement *before*
    the fill reads the incoming signature's counter — the same order
    ``SharedLlc.access`` runs ``on_evict`` and ``on_fill`` in, which
    matters when victim and filler share a signature.
    """
    set_mask = num_sets - 1
    where: dict = {}  # block -> (rrpv row, sig row, outcome row, way)
    get = where.get
    blk_rows = [[0] * ways for __ in range(num_sets)]
    rrpv_rows = [[rmax] * ways for __ in range(num_sets)]
    sig_rows = [[0] * ways for __ in range(num_sets)]
    out_rows = [[0] * ways for __ in range(num_sets)]
    filled = [0] * num_sets
    hits = 0
    for block, g in zip(blocks, sigs):
        entry = get(block)
        if entry is not None:
            rrow, srow, orow, way = entry
            rrow[way] = 0
            hits += 1
            if not orow[way]:
                orow[way] = 1
                g2 = srow[way]
                if shct[g2] < cmax:
                    shct[g2] += 1
            continue
        s = block & set_mask
        rrow = rrpv_rows[s]
        srow = sig_rows[s]
        orow = out_rows[s]
        brow = blk_rows[s]
        f = filled[s]
        if f < ways:
            way = f
            filled[s] = f + 1
        else:
            top = max(rrow)
            if top != rmax:
                delta = rmax - top
                for w in range(ways):
                    rrow[w] += delta
            way = rrow.index(rmax)
            del where[brow[way]]
            if not orow[way]:
                g2 = srow[way]
                if shct[g2] > 0:
                    shct[g2] -= 1
        srow[way] = g
        orow[way] = 0
        rrow[way] = rmax if shct[g] == 0 else rmax - 1
        brow[way] = block
        where[block] = (rrow, srow, orow, way)
    return hits


# ----------------------------------------------------------------------
# Numba kernel (auto-selected when importable)
# ----------------------------------------------------------------------

def _ship_numba_kernel():
    """Compile (once) and return the nopython SHiP count kernel."""
    global _SHIP_NUMBA_KERNEL
    if _SHIP_NUMBA_KERNEL is None:  # pragma: no cover - needs numba
        numba = _numba()

        @numba.njit(nogil=True, cache=False)
        def kernel(ids, sets, sigs, ways, rmax, cmax,
                   where, blk, rrpv, sig, out, filled, shct):
            hits = 0
            for i in range(ids.shape[0]):
                bid = ids[i]
                pos = where[bid]
                if pos >= 0:
                    rrpv[pos] = 0
                    hits += 1
                    if out[pos] == 0:
                        out[pos] = 1
                        g2 = sig[pos]
                        if shct[g2] < cmax:
                            shct[g2] += 1
                    continue
                s = sets[i]
                base = s * ways
                f = filled[s]
                if f < ways:
                    pos = base + f
                    filled[s] = f + 1
                else:
                    top = -1
                    for w in range(ways):
                        v = rrpv[base + w]
                        if v > top:
                            top = v
                    if top != rmax:
                        delta = rmax - top
                        for w in range(ways):
                            rrpv[base + w] += delta
                    pos = base
                    for w in range(ways):
                        if rrpv[base + w] == rmax:
                            pos = base + w
                            break
                    where[blk[pos]] = -1
                    if out[pos] == 0:
                        g2 = sig[pos]
                        if shct[g2] > 0:
                            shct[g2] -= 1
                g = sigs[i]
                sig[pos] = g
                out[pos] = 0
                if shct[g] == 0:
                    rrpv[pos] = rmax
                else:
                    rrpv[pos] = rmax - 1
                blk[pos] = bid
                where[bid] = pos
            return hits

        _SHIP_NUMBA_KERNEL = kernel
    return _SHIP_NUMBA_KERNEL


def _ship_count_numba(stream: LlcStream, sig_mask: int, num_sets: int,
                      ways: int, rmax: int, cmax: int, shct) -> int:
    """Numba-compiled count-mode SHiP replay; returns hits.

    Block addresses are compacted to dense ids (one ``np.unique``) so the
    residency map is a flat int32 array instead of a hash probe — the
    same compact-state idea the setpath kernels use, taken one step
    further because nopython code wants arrays, not dicts.
    """  # pragma: no cover - needs numba
    np = require_numpy()
    __, pcs, blocks, ___ = stream.numpy_columns()
    uniq, ids = np.unique(blocks, return_inverse=True)
    ids = ids.astype(np.int32)
    sets = (blocks & np.int64(num_sets - 1)).astype(np.int32)
    sigs = (((pcs >> 2) ^ (pcs >> 11) ^ (pcs >> 19))
            & np.int64(sig_mask)).astype(np.int32)
    frames = num_sets * ways
    state_where = np.full(len(uniq), -1, dtype=np.int32)
    state_blk = np.zeros(frames, dtype=np.int32)
    state_rrpv = np.full(frames, rmax, dtype=np.int32)
    state_sig = np.zeros(frames, dtype=np.int32)
    state_out = np.zeros(frames, dtype=np.int8)
    state_filled = np.zeros(num_sets, dtype=np.int32)
    state_shct = np.asarray(shct, dtype=np.int32)
    kernel = _ship_numba_kernel()
    return int(kernel(
        ids, sets, sigs, ways, rmax, cmax, state_where, state_blk,
        state_rrpv, state_sig, state_out, state_filled, state_shct,
    ))


# ----------------------------------------------------------------------
# Oracle-tier kernels: SharingAwareWrapper over {LRU, SRRIP, SHiP}
# ----------------------------------------------------------------------
#
# The wrapper's replay-relevant state is as flat as SHiP's: one budget and
# one fill-core per frame on top of the base policy's own metadata, plus
# three global counters. Its hint source — when it is an offline
# annotation (repro.oracle.annotate.AnnotationHintSource) — is pure data
# keyed by the access ordinal, so the whole protection protocol lowers to
# an int column aligned with the stream: hints[i] == budgets[i + 1].
# The kernels below transcribe SharingAwareWrapper + base bit-exactly:
# base.on_evict runs before the budget reset, the synthetic promote-hit of
# insert-promote/both runs *after* the base fill (for SHiP that increments
# the incoming signature's SHCT counter, exactly as the scalar model
# does), and victim selection walks the base's preference order skipping
# protected ways, with the "nothing protected in this set" short-circuit
# kept O(1) by a per-set protected-way count.

_FAMILY_ORACLE_LRU = 0
_FAMILY_ORACLE_SRRIP = 1
_FAMILY_ORACLE_SHIP = 2

# Exact base-policy type -> family code. Subclasses (LIP, BRRIP, DRRIP,
# undeclared user policies) are deliberately absent: they change fill or
# victim behaviour and must take the object model.
_ORACLE_BASE_FAMILIES = {
    LruPolicy: _FAMILY_ORACLE_LRU,
    SrripPolicy: _FAMILY_ORACLE_SRRIP,
    ShipPolicy: _FAMILY_ORACLE_SHIP,
}

_ORACLE_MODES = {"victim-exempt": 0, "insert-promote": 1, "both": 2}
_ORACLE_RELEASES = {"budget": 0, "first-share": 1, "never": 2}

_ORACLE_NUMBA_KERNEL = None

_HINT_INT8_MAX = 127
"""Hints export as an int8 column; wrappers whose annotation cap exceeds
this (never the default ``BUDGET_CAP``) fall back to the object model."""


def _oracle_count_compact(blocks, cores, hints, sigs, num_sets: int,
                          ways: int, family: int, mode: int, release: int,
                          rmax: int, cmax: int, shct):
    """Count-mode wrapped replay over flat per-set lists.

    Returns ``(hits, protected_fills, exemptions, releases)`` — the hit
    count plus the wrapper's three study counters, bit-exact against
    ``SharedLlc.access`` driving ``SharingAwareWrapper`` (the differential
    suite pins every (family, mode, release) cell). ``sigs``/``shct`` are
    only read by the SHiP family; ``rmax``/``cmax`` only by RRIP/SHiP.
    """
    set_mask = num_sets - 1
    where: dict = {}  # block -> (set, way)
    get = where.get
    blk_rows = [[0] * ways for __ in range(num_sets)]
    # LRU keeps recency stamps in meta, RRIP/SHiP keep RRPVs.
    init_meta = 0 if family == _FAMILY_ORACLE_LRU else rmax
    meta_rows = [[init_meta] * ways for __ in range(num_sets)]
    sig_rows = [[0] * ways for __ in range(num_sets)]
    out_rows = [[0] * ways for __ in range(num_sets)]
    budget_rows = [[0] * ways for __ in range(num_sets)]
    core_rows = [[0] * ways for __ in range(num_sets)]
    filled = [0] * num_sets
    protected = [0] * num_sets
    clock = 0
    hits = protected_fills = exemptions = released = 0
    for i, block in enumerate(blocks):
        entry = get(block)
        if entry is not None:
            s, way = entry
            hits += 1
            mrow = meta_rows[s]
            if family == _FAMILY_ORACLE_LRU:
                clock += 1
                mrow[way] = clock
            else:
                mrow[way] = 0
                if family == _FAMILY_ORACLE_SHIP:
                    orow = out_rows[s]
                    if not orow[way]:
                        orow[way] = 1
                        g2 = sig_rows[s][way]
                        if shct[g2] < cmax:
                            shct[g2] += 1
            if release != 2:
                brow = budget_rows[s]
                b = brow[way]
                if b > 0 and cores[i] != core_rows[s][way]:
                    b = 0 if release == 1 else b - 1
                    brow[way] = b
                    if b == 0:
                        protected[s] -= 1
                        released += 1
            continue
        s = block & set_mask
        mrow = meta_rows[s]
        brow = budget_rows[s]
        f = filled[s]
        if f < ways:
            way = f
            filled[s] = f + 1
        else:
            exempt = mode != 1 and protected[s] > 0
            if family == _FAMILY_ORACLE_LRU:
                # first = the base's unconstrained pick (argmin stamp,
                # lowest way on ties — list.index semantics).
                first = 0
                first_stamp = mrow[0]
                for w in range(1, ways):
                    if mrow[w] < first_stamp:
                        first, first_stamp = w, mrow[w]
                way = first
                if exempt:
                    best = -1
                    best_stamp = 0
                    for w in range(ways):
                        if brow[w] <= 0 and (best < 0 or mrow[w] < best_stamp):
                            best, best_stamp = w, mrow[w]
                    if best >= 0:
                        way = best
                        if way != first:
                            exemptions += 1
            else:
                # SRRIP aging exactly as rank_victims/select_victim do
                # (closed-form delta), then walk descending-RRPV order.
                top = max(mrow)
                if top != rmax:
                    delta = rmax - top
                    for w in range(ways):
                        mrow[w] += delta
                first = mrow.index(rmax)
                way = first
                if exempt:
                    best = -1
                    for v in range(rmax, -1, -1):
                        for w in range(ways):
                            if mrow[w] == v and brow[w] <= 0:
                                best = w
                                break
                        if best >= 0:
                            break
                    if best >= 0:
                        way = best
                        if way != first:
                            exemptions += 1
            victim = blk_rows[s][way]
            del where[victim]
            if family == _FAMILY_ORACLE_SHIP and not out_rows[s][way]:
                g2 = sig_rows[s][way]
                if shct[g2] > 0:
                    shct[g2] -= 1
            if brow[way] > 0:
                protected[s] -= 1
                brow[way] = 0
        # Fill: base first, then the wrapper's protection bookkeeping and
        # (insert-promote/both) the synthetic promote-hit.
        if family == _FAMILY_ORACLE_LRU:
            clock += 1
            mrow[way] = clock
        elif family == _FAMILY_ORACLE_SRRIP:
            mrow[way] = rmax - 1
        else:
            g = sigs[i]
            sig_rows[s][way] = g
            out_rows[s][way] = 0
            mrow[way] = rmax if shct[g] == 0 else rmax - 1
        h = hints[i]
        brow[way] = h
        core_rows[s][way] = cores[i]
        if h > 0:
            protected[s] += 1
            protected_fills += 1
            if mode != 0:
                if family == _FAMILY_ORACLE_LRU:
                    clock += 1
                    mrow[way] = clock
                else:
                    mrow[way] = 0
                    if family == _FAMILY_ORACLE_SHIP:
                        out_rows[s][way] = 1
                        g = sig_rows[s][way]
                        if shct[g] < cmax:
                            shct[g] += 1
        blk_rows[s][way] = block
        where[block] = (s, way)
    return hits, protected_fills, exemptions, released


def _oracle_numba_kernel():
    """Compile (once) and return the nopython wrapped-replay kernel.

    One compilation serves every (family, mode, release) cell — they are
    plain int arguments branched on at run time, which costs nothing next
    to avoiding nine specializations' compile latency.
    """
    global _ORACLE_NUMBA_KERNEL
    if _ORACLE_NUMBA_KERNEL is None:  # pragma: no cover - needs numba
        numba = _numba()

        @numba.njit(nogil=True, cache=False)
        def kernel(ids, sets, cores, hints, sigs, ways, family, mode,
                   release, rmax, cmax, where, blk, meta, sig, out, budget,
                   fillcore, filled, protected, shct):
            clock = 0
            hits = 0
            protected_fills = 0
            exemptions = 0
            released = 0
            for i in range(ids.shape[0]):
                bid = ids[i]
                pos = where[bid]
                if pos >= 0:
                    hits += 1
                    if family == 0:
                        clock += 1
                        meta[pos] = clock
                    else:
                        meta[pos] = 0
                        if family == 2:
                            if out[pos] == 0:
                                out[pos] = 1
                                g2 = sig[pos]
                                if shct[g2] < cmax:
                                    shct[g2] += 1
                    if release != 2:
                        b = budget[pos]
                        if b > 0 and cores[i] != fillcore[pos]:
                            if release == 1:
                                b = 0
                            else:
                                b -= 1
                            budget[pos] = b
                            if b == 0:
                                protected[sets[i]] -= 1
                                released += 1
                    continue
                s = sets[i]
                base = s * ways
                f = filled[s]
                if f < ways:
                    pos = base + f
                    filled[s] = f + 1
                else:
                    exempt = mode != 1 and protected[s] > 0
                    if family == 0:
                        first = base
                        first_stamp = meta[base]
                        for w in range(1, ways):
                            if meta[base + w] < first_stamp:
                                first = base + w
                                first_stamp = meta[base + w]
                        pos = first
                        if exempt:
                            best = -1
                            best_stamp = 0
                            for w in range(ways):
                                p = base + w
                                if budget[p] <= 0 and (
                                    best < 0 or meta[p] < best_stamp
                                ):
                                    best = p
                                    best_stamp = meta[p]
                            if best >= 0:
                                pos = best
                                if pos != first:
                                    exemptions += 1
                    else:
                        top = meta[base]
                        for w in range(1, ways):
                            if meta[base + w] > top:
                                top = meta[base + w]
                        if top != rmax:
                            delta = rmax - top
                            for w in range(ways):
                                meta[base + w] += delta
                        first = base
                        for w in range(ways):
                            if meta[base + w] == rmax:
                                first = base + w
                                break
                        pos = first
                        if exempt:
                            best = -1
                            for v in range(rmax, -1, -1):
                                for w in range(ways):
                                    p = base + w
                                    if meta[p] == v and budget[p] <= 0:
                                        best = p
                                        break
                                if best >= 0:
                                    break
                            if best >= 0:
                                pos = best
                                if pos != first:
                                    exemptions += 1
                    where[blk[pos]] = -1
                    if family == 2 and out[pos] == 0:
                        g2 = sig[pos]
                        if shct[g2] > 0:
                            shct[g2] -= 1
                    if budget[pos] > 0:
                        protected[s] -= 1
                        budget[pos] = 0
                if family == 0:
                    clock += 1
                    meta[pos] = clock
                elif family == 1:
                    meta[pos] = rmax - 1
                else:
                    g = sigs[i]
                    sig[pos] = g
                    out[pos] = 0
                    if shct[g] == 0:
                        meta[pos] = rmax
                    else:
                        meta[pos] = rmax - 1
                h = hints[i]
                budget[pos] = h
                fillcore[pos] = cores[i]
                if h > 0:
                    protected[s] += 1
                    protected_fills += 1
                    if mode != 0:
                        if family == 0:
                            clock += 1
                            meta[pos] = clock
                        else:
                            meta[pos] = 0
                            if family == 2:
                                out[pos] = 1
                                g = sig[pos]
                                if shct[g] < cmax:
                                    shct[g] += 1
                blk[pos] = bid
                where[bid] = pos
            return hits, protected_fills, exemptions, released

        _ORACLE_NUMBA_KERNEL = kernel
    return _ORACLE_NUMBA_KERNEL


def _oracle_count_numba(stream: LlcStream, hints, sig_mask: int,
                        num_sets: int, ways: int, family: int, mode: int,
                        release: int, rmax: int, cmax: int, shct):
    """Numba-compiled wrapped replay; returns the compact kernel's tuple.

    Same dense-id compaction as :func:`_ship_count_numba`, plus the int8
    hint column and the core column (the release protocol compares the
    hitting core against the filler).
    """  # pragma: no cover - needs numba
    np = require_numpy()
    cores_np, pcs, blocks, __ = stream.numpy_columns()
    uniq, ids = np.unique(blocks, return_inverse=True)
    ids = ids.astype(np.int32)
    sets = (blocks & np.int64(num_sets - 1)).astype(np.int32)
    if family == _FAMILY_ORACLE_SHIP:
        sigs = (((pcs >> 2) ^ (pcs >> 11) ^ (pcs >> 19))
                & np.int64(sig_mask)).astype(np.int32)
    else:
        sigs = np.zeros(len(ids), dtype=np.int32)
    frames = num_sets * ways
    state_where = np.full(len(uniq), -1, dtype=np.int32)
    state_blk = np.zeros(frames, dtype=np.int32)
    # meta holds LRU clock stamps (monotone over the stream) or RRPVs;
    # int64 covers both without a family-specific dtype.
    init_meta = 0 if family == _FAMILY_ORACLE_LRU else rmax
    state_meta = np.full(frames, init_meta, dtype=np.int64)
    state_sig = np.zeros(frames, dtype=np.int32)
    state_out = np.zeros(frames, dtype=np.int8)
    state_budget = np.zeros(frames, dtype=np.int32)
    state_fillcore = np.zeros(frames, dtype=np.int32)
    state_filled = np.zeros(num_sets, dtype=np.int32)
    state_protected = np.zeros(num_sets, dtype=np.int32)
    state_shct = np.asarray(shct, dtype=np.int32)
    kernel = _oracle_numba_kernel()
    hits, pf, ex, rel = kernel(
        ids, sets, cores_np.astype(np.int32), hints, sigs, ways, family,
        mode, release, rmax, cmax, state_where, state_blk, state_meta,
        state_sig, state_out, state_budget, state_fillcore, state_filled,
        state_protected, state_shct,
    )
    return int(hits), int(pf), int(ex), int(rel)


def oracle_native_spec(policy):
    """``(family, base, hint_source)`` when the native oracle path covers
    ``policy``, else ``None``.

    The guards mirror :func:`native_eligible`, extended across the
    composition: the wrapper itself must be the exact class and unbound,
    its base an exact-type unbound {LRU, SRRIP, SHiP}, and its hint source
    an exact :class:`repro.oracle.annotate.AnnotationHintSource` whose cap
    fits the int8 hint column. Anything else — undeclared subclasses,
    bound instances, live predictor hint sources — takes the object model.
    """
    # Imported lazily: repro.oracle pulls in the replay dispatch at module
    # import, so a top-level import here would be circular.
    from repro.oracle.annotate import AnnotationHintSource
    from repro.oracle.wrapper import SharingAwareWrapper

    if type(policy) is not SharingAwareWrapper or policy.geometry is not None:
        return None
    base = policy.base
    family = _ORACLE_BASE_FAMILIES.get(type(base))
    if family is None or base.geometry is not None:
        return None
    source = policy.hint_source
    if type(source) is not AnnotationHintSource:
        return None
    if source.cap > _HINT_INT8_MAX:
        return None
    return family, base, source


def replay_oracle_nativepath(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> Optional[LlcSimResult]:
    """Replay ``stream`` under an unbound oracle wrapper, natively.

    Classification twin of ``LlcOnlySimulator(geometry, policy).run``:
    same hit/miss counts *and* the wrapper's study counters
    (``protected_fills``/``exemptions_applied``/``releases``) written back
    onto the instance — :func:`repro.oracle.runner.run_oracle_variants`
    reads them off the wrapper after the replay, whichever backend ran.
    The wrapper and its base stay unbound. Returns ``None`` (caller falls
    back) when the wrapper is not native-eligible or its annotation is not
    aligned with this stream.
    """
    spec = oracle_native_spec(policy)
    if spec is None:
        return None
    family, base, source = spec
    budgets = source.budgets
    n = len(stream.blocks)
    if len(budgets) != n + 1:
        # The annotation was built for a different stream; hints cannot be
        # exported by ordinal. The model reproduces whatever (possibly
        # out-of-range) hints the closure would serve.
        return None
    start = perf_counter()
    from repro.sim.fastpath import VECTORIZE_THRESHOLD

    use_np = should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD)
    mode = _ORACLE_MODES[policy.mode]
    release = _ORACLE_RELEASES[policy.release]
    if family == _FAMILY_ORACLE_SHIP:
        rmax = base.rrpv_max
        cmax = base.counter_max
        sig_mask = base.shct_size - 1
        shct = list(base._shct)  # never mutate the caller's instance
    else:
        rmax = base.rrpv_max if family == _FAMILY_ORACLE_SRRIP else 0
        cmax = 0
        sig_mask = 0
        shct = [0]
    backend = BACKEND_NUMBA if (have_numba() and HAVE_NUMPY) else BACKEND_COMPACT
    prep_start = perf_counter()
    if backend == BACKEND_NUMBA:  # pragma: no cover - needs numba
        np = require_numpy()
        # budgets[i + 1] is access i's hint: one aligned int8 column.
        hints = np.frombuffer(budgets, dtype=np.int32)[1:].astype(np.int8)
        if profile is not None:
            profile["native_prepare"] = perf_counter() - prep_start
        kernel_start = perf_counter()
        hits, pf, ex, rel = _oracle_count_numba(
            stream, hints, sig_mask, geometry.num_sets, geometry.ways,
            family, mode, release, rmax, cmax, shct,
        )
    else:
        hints = budgets[1:]
        sigs = (
            _hash_pcs(stream.pcs, sig_mask, use_np)
            if family == _FAMILY_ORACLE_SHIP else None
        )
        if profile is not None:
            profile["native_prepare"] = perf_counter() - prep_start
        kernel_start = perf_counter()
        hits, pf, ex, rel = _oracle_count_compact(
            stream.blocks, stream.cores, hints, sigs, geometry.num_sets,
            geometry.ways, family, mode, release, rmax, cmax, shct,
        )
    if profile is not None:
        profile["native_kernel"] = perf_counter() - kernel_start
        profile["native_backend"] = backend
    policy.protected_fills += pf
    policy.exemptions_applied += ex
    policy.releases += rel
    return LlcSimResult(
        policy=policy.name,
        stream_name=stream.name,
        accesses=n,
        hits=hits,
        misses=n - hits,
        elapsed_sec=perf_counter() - start,
        tier=REPLAY_SCALAR,
        backend=backend,
    )


# ----------------------------------------------------------------------
# Replay entry point + dispatch
# ----------------------------------------------------------------------

def replay_ship_nativepath(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy: ShipPolicy,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> LlcSimResult:
    """Replay ``stream`` under an unbound SHiP instance, natively.

    Drop-in classification twin of
    ``LlcOnlySimulator(geometry, policy).run(stream)``: same hit/miss
    counts (differential-tested, including hypothesis streams), recorded
    with the scalar tier — this is a faster *backend* for that tier, not
    a new tier — and the kernel that produced the counters in
    ``result.backend``. The policy instance is left unbound (the kernel
    reads only its configuration: ``rrpv_max``, SHCT geometry, and the
    initial counter value).

    ``profile``, when a dict, receives ``native_prepare`` /
    ``native_kernel`` wall times and the chosen ``native_backend``.
    """
    from repro.sim.fastpath import VECTORIZE_THRESHOLD

    start = perf_counter()
    n = len(stream.blocks)
    use_np = should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD)
    rmax = policy.rrpv_max
    cmax = policy.counter_max
    sig_mask = policy.shct_size - 1
    shct = list(policy._shct)  # never mutate the caller's instance
    backend = BACKEND_NUMBA if (have_numba() and HAVE_NUMPY) else BACKEND_COMPACT
    prep_start = perf_counter()
    if backend == BACKEND_NUMBA:  # pragma: no cover - needs numba
        if profile is not None:
            profile["native_prepare"] = perf_counter() - prep_start
        kernel_start = perf_counter()
        hits = _ship_count_numba(
            stream, sig_mask, geometry.num_sets, geometry.ways, rmax, cmax,
            shct,
        )
    else:
        sigs = _hash_pcs(stream.pcs, sig_mask, use_np)
        if profile is not None:
            profile["native_prepare"] = perf_counter() - prep_start
        kernel_start = perf_counter()
        hits = _ship_count_compact(
            stream.blocks, sigs, geometry.num_sets, geometry.ways, rmax,
            cmax, shct,
        )
    if profile is not None:
        profile["native_kernel"] = perf_counter() - kernel_start
        profile["native_backend"] = backend
    return LlcSimResult(
        policy=policy.name,
        stream_name=stream.name,
        accesses=n,
        hits=hits,
        misses=n - hits,
        elapsed_sec=perf_counter() - start,
        tier=REPLAY_SCALAR,
        backend=backend,
    )


def native_eligible(policy) -> bool:
    """True when ``policy`` (name or instance) can take the native backend.

    Mirrors the two-guard discipline of the set-partitioned engine: the
    kernel is keyed by *exact* type — an undeclared :class:`ShipPolicy`
    subclass must not ride the parent's kernel — and a bound instance may
    carry pre-seeded SHCT/RRPV state no offline kernel reconstructs.
    """
    if isinstance(policy, str):
        return policy == "ship"
    return type(policy) is ShipPolicy and policy.geometry is None


def try_native_replay(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy,
    observers: Tuple = (),
    native: Optional[bool] = None,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> Optional[LlcSimResult]:
    """Native replay of a scalar-tier policy, or ``None`` to fall back.

    Returns ``None`` — caller proceeds to the scalar model — whenever the
    backend is gated off (``native=False`` or ``REPRO_SIM_NO_NATIVE``),
    observers need the full residency callback stream, or the policy is
    neither an exact-type unbound SHiP (name or instance) nor an
    exact-type unbound :class:`SharingAwareWrapper` over {LRU, SRRIP,
    SHiP} with an annotation-backed hint source (see
    :func:`oracle_native_spec`). ``policy`` given as the name ``"ship"``
    constructs the registry default, matching what the scalar fallback
    would build.
    """
    if observers or not native_enabled(native):
        return None
    if native_eligible(policy):
        instance = policy if isinstance(policy, ShipPolicy) else ShipPolicy()
        return replay_ship_nativepath(
            stream, geometry, instance, use_numpy=use_numpy, profile=profile,
        )
    if isinstance(policy, str):
        return None
    return replay_oracle_nativepath(
        stream, geometry, policy, use_numpy=use_numpy, profile=profile,
    )
