"""Live database mirroring of an in-flight telemetry run.

Attached to the main process's :class:`~repro.sim.telemetry.RunTelemetry`
via ``attach_sink`` when ``--db``/``REPRO_SIM_DB`` is active. The JSONL
files remain the durable source of truth — the sink sees each event
*after* its line hit ``events.jsonl`` — so the database write path is
deliberately relaxed:

* events are buffered and flushed in batches (:data:`FLUSH_EVERY` events
  or :data:`FLUSH_SECONDS`, whichever first) so per-stage telemetry costs
  one list append, not one fsync — the warm-replay bench gate's <2%
  budget is spent on nothing;
* any sqlite error permanently disables the sink for this run with one
  stderr warning (the telemetry layer detaches a raising sink);
* ``close()`` runs a full :func:`~repro.sim.expdb.ingest.ingest_run_dir`
  reconciliation pass, which folds in what the live path cannot see —
  worker-process events appended straight to the JSONL file and the
  sealed manifest — and leaves the database exactly as a post-hoc
  ``repro-sim db ingest`` would.
"""

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.sim.expdb import ingest as _ingest
from repro.sim.expdb.schema import connect

FLUSH_EVERY = 64
"""Buffered events forcing a flush."""

FLUSH_SECONDS = 0.5
"""Maximum event-buffer age before a flush."""


class LiveDbWriter:
    """Telemetry sink mirroring one run into the experiment store."""

    def __init__(self, db_path: Union[str, Path], run) -> None:
        self.db_path = Path(db_path)
        self.run_dir = Path(run.run_dir)
        self.run_id = run.run_id
        self.root = self.run_dir.parent
        self._conn = connect(self.db_path)
        self._buffer: List[tuple] = []
        self._seq = 0
        self._last_flush = time.monotonic()
        self._manifest_text: Optional[str] = None
        self._manifest: Dict = {}
        self._ensure_run_row(run.manifest)

    # -- sink protocol -------------------------------------------------

    def on_event(self, record: Dict) -> None:
        t = record.get("t")
        self._buffer.append((
            self.run_id, self._seq,
            t if isinstance(t, (int, float)) else None,
            record.get("kind"), json.dumps(record, sort_keys=False),
        ))
        self._seq += 1
        now = time.monotonic()
        if len(self._buffer) >= FLUSH_EVERY or \
                now - self._last_flush >= FLUSH_SECONDS:
            self._flush(now)

    def on_manifest(self, text: str, manifest: Dict) -> None:
        self._manifest_text = text
        self._manifest = manifest
        # Manifest rewrites are rare (per stage, not per access): update
        # the run row eagerly so `db runs` shows live status.
        self._update_run_row()

    def close(self) -> None:
        try:
            self._flush(time.monotonic())
            # Reconciliation: fold in worker-appended events and the
            # sealed manifest; leaves the DB identical to a fresh ingest.
            _ingest.ingest_run_dir(self._conn, self.run_dir,
                                   root=self.root)
        finally:
            self._conn.close()

    # -- internals -----------------------------------------------------

    def _ensure_run_row(self, manifest: Dict) -> None:
        text = json.dumps(manifest, indent=2, sort_keys=False,
                          default=str) + "\n"
        self._manifest_text = text
        self._manifest = dict(manifest)
        self._update_run_row()

    def _update_run_row(self) -> None:
        manifest = self._manifest
        text = self._manifest_text or "{}\n"
        with self._conn as conn:
            experiment_id = _ingest._experiment_id(
                conn,
                str(manifest.get("command") or "?"),
                str(manifest.get("machine") or ""),
                str(manifest.get("llc") or ""),
            )
            conn.execute(
                "INSERT INTO runs (run_id, experiment_id, root, path,"
                " status, command, machine, started, finished, wall_sec,"
                " duration_s, seed, workloads, policies, argv,"
                " format_version, manifest_json, manifest_digest,"
                " ingested_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                " ?, ?, ?, ?)"
                " ON CONFLICT (run_id) DO UPDATE SET"
                " experiment_id = excluded.experiment_id,"
                " status = excluded.status,"
                " finished = excluded.finished,"
                " wall_sec = excluded.wall_sec,"
                " duration_s = excluded.duration_s,"
                " seed = excluded.seed,"
                " workloads = excluded.workloads,"
                " policies = excluded.policies,"
                " argv = excluded.argv,"
                " manifest_json = excluded.manifest_json,"
                " manifest_digest = excluded.manifest_digest,"
                " ingested_at = excluded.ingested_at",
                (
                    self.run_id, experiment_id, str(self.root),
                    str(self.run_dir),
                    str(manifest.get("status", "running")),
                    str(manifest.get("command") or "?"),
                    manifest.get("machine"),
                    manifest.get("started"), manifest.get("finished"),
                    _ingest._as_float(manifest.get("wall_sec")),
                    _ingest._as_float(manifest.get("duration_s")),
                    _ingest._as_int(manifest.get("seed")),
                    _maybe_json_list(manifest.get("workloads")),
                    _maybe_json_list(manifest.get("policies")),
                    _maybe_json_list(manifest.get("argv")),
                    _ingest._as_int(manifest.get("format_version")),
                    text, _ingest._digest(text), _ingest._now(),
                ),
            )

    def _flush(self, now: float) -> None:
        if self._buffer:
            with self._conn as conn:
                conn.executemany(
                    "INSERT OR REPLACE INTO events (run_id, seq, t, kind,"
                    " payload) VALUES (?, ?, ?, ?, ?)",
                    self._buffer,
                )
                conn.execute(
                    "UPDATE runs SET events_count = ?, last_event_kind = ?,"
                    " last_event_t = ? WHERE run_id = ?",
                    (self._seq, self._buffer[-1][3], self._buffer[-1][2],
                     self.run_id),
                )
            self._buffer = []
        self._last_flush = now


def _maybe_json_list(value) -> Optional[str]:
    return json.dumps(value) if isinstance(value, list) else None
