"""Queryable experiment store: a SQLite index over telemetry runs.

The JSONL artifacts (``manifest.json`` + ``events.jsonl``) written by
:mod:`repro.sim.telemetry` stay the durable source of truth; this package
maintains a rebuildable SQLite index over them — ingested post hoc
(:func:`ingest_runs_root`), mirrored live (:class:`LiveDbWriter` behind
``--db``/``REPRO_SIM_DB``), and queried through ``repro-sim db``
(experiments/runs/show/export/replay/regressions/tail). Delete the
database file and re-ingest to recover from any corruption.
"""

from repro.sim.expdb.ingest import (
    INGESTED,
    SKIPPED,
    UNCHANGED,
    UPDATED,
    export_manifest,
    ingest_bench_dir,
    ingest_bench_file,
    ingest_run_dir,
    ingest_runs_root,
)
from repro.sim.expdb.live import LiveDbWriter
from repro.sim.expdb.query import (
    GOLDEN_METRIC,
    bench_regressions,
    bench_revisions,
    get_run,
    list_experiments,
    query_runs,
    reconstruct_invocation,
    run_detail,
    run_regressions,
)
from repro.sim.expdb.schema import (
    DB_ENV,
    DB_FILENAME,
    SCHEMA_VERSION,
    connect,
    ensure_schema,
    resolve_db_path,
    schema_version,
)
from repro.sim.expdb.tail import tail_run

__all__ = [
    "DB_ENV",
    "DB_FILENAME",
    "GOLDEN_METRIC",
    "INGESTED",
    "LiveDbWriter",
    "SCHEMA_VERSION",
    "SKIPPED",
    "UNCHANGED",
    "UPDATED",
    "bench_regressions",
    "bench_revisions",
    "connect",
    "ensure_schema",
    "export_manifest",
    "get_run",
    "ingest_bench_dir",
    "ingest_bench_file",
    "ingest_run_dir",
    "ingest_runs_root",
    "list_experiments",
    "query_runs",
    "reconstruct_invocation",
    "resolve_db_path",
    "run_detail",
    "run_regressions",
    "schema_version",
    "tail_run",
]
