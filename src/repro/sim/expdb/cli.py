"""``repro-sim db`` — the queryable experiment store's command surface.

Subcommands (all accept ``--json`` for machine output on stdout, with
human warnings on stderr — the JSON-to-stdout discipline the rest of the
tooling follows):

* ``ingest``      — index a runs root + bench results directory.
* ``experiments`` — one row per (command, machine, llc) grouping.
* ``runs``        — filtered run listing (workload/policy/status/date).
* ``show``        — manifest, stage spans, failed cells of one run.
* ``export``      — the stored manifest, byte-identical to the source.
* ``replay``      — reconstruct (optionally re-execute) a run's exact
  engine invocation from its stored argv.
* ``regressions`` — compare a metric across bench revisions or runs;
  exits nonzero on a regression or a recorded-delta mismatch.
* ``tail``        — follow a live campaign's event stream.
"""

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.tables import render_table
from repro.common.errors import ConfigError
from repro.sim import telemetry
from repro.sim.expdb import ingest as ingest_mod
from repro.sim.expdb import query
from repro.sim.expdb.schema import DB_FILENAME, connect, resolve_db_path
from repro.sim.expdb.tail import DEFAULT_POLL_SECONDS, tail_run

DEFAULT_BENCH_DIR = "benchmarks/results"


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def _runs_root(args) -> Path:
    if getattr(args, "runs_root", None):
        return telemetry.resolve_runs_root(args.runs_root)
    if getattr(args, "cache_dir", None):
        return telemetry.resolve_runs_root(cache_dir=args.cache_dir)
    return telemetry.resolve_runs_root()


def _db_path(args) -> Path:
    path = resolve_db_path(getattr(args, "db", None), _runs_root(args))
    if path is None:
        # No explicit spec and no env: the default path next to the runs
        # root — `repro-sim db` always has a concrete target.
        path = _runs_root(args) / DB_FILENAME
    return path


def _connect(args, create: bool):
    return connect(_db_path(args), create=create, on_warning=_warn)


def _emit(args, payload, human) -> None:
    """Machine or human rendering of one command's result."""
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=False, default=str))
    else:
        human()


def cmd_ingest(args) -> int:
    conn = _connect(args, create=True)
    try:
        run_counts = ingest_mod.ingest_runs_root(
            conn, _runs_root(args), on_warning=_warn
        )
        bench_dir = Path(args.bench_dir)
        bench_counts = ingest_mod.ingest_bench_dir(
            conn, bench_dir, on_warning=_warn
        )
    finally:
        conn.close()
    payload = {"db": str(_db_path(args)), "runs": run_counts,
               "bench": bench_counts}

    def human():
        rows = [["database", payload["db"]]]
        for scope, counts in (("runs", run_counts), ("bench", bench_counts)):
            for status, count in counts.items():
                if count:
                    rows.append([f"{scope} {status}", count])
        print(render_table(["metric", "value"], rows,
                           title="Experiment-store ingest"))

    _emit(args, payload, human)
    return 0


def cmd_experiments(args) -> int:
    conn = _connect(args, create=False)
    try:
        experiments = query.list_experiments(conn)
    finally:
        conn.close()

    def human():
        rows = [[e["experiment_id"], e["command"], e["machine"] or "-",
                 e["llc"] or "-", e["runs"], e["completed"] or 0,
                 e["failed"] or 0, e["last_run"] or "-"]
                for e in experiments]
        print(render_table(
            ["id", "command", "machine", "llc", "runs", "completed",
             "failed", "last_run"],
            rows, title=f"Experiments ({_db_path(args)})",
        ))

    _emit(args, {"experiments": experiments}, human)
    return 0


def cmd_runs(args) -> int:
    conn = _connect(args, create=False)
    try:
        runs = query.query_runs(
            conn, workload=args.workload, policy=args.policy,
            status=args.status, command=args.run_command,
            since=args.since, until=args.until, limit=args.limit,
        )
    finally:
        conn.close()
    slim = [{k: run[k] for k in (
        "run_id", "command", "status", "machine", "started", "wall_sec",
        "duration_s", "events_count", "last_event_kind")} for run in runs]

    def human():
        rows = [[r["run_id"], r["command"], r["status"],
                 r["machine"] or "?",
                 r["duration_s"] if r["duration_s"] is not None
                 else r["wall_sec"] or "",
                 r["events_count"], r["last_event_kind"] or "-"]
                for r in slim]
        print(render_table(
            ["run", "command", "status", "machine", "duration_s",
             "events", "last_event"],
            rows, title=f"Runs ({len(rows)} matching)",
        ))

    _emit(args, {"runs": slim}, human)
    return 0


def cmd_show(args) -> int:
    conn = _connect(args, create=False)
    try:
        detail = query.run_detail(conn, args.run_id)
    finally:
        conn.close()

    def human():
        run = detail["run"]
        skip = {"manifest_json", "manifest_digest", "argv", "workloads",
                "policies"}
        rows = [[key, value] for key, value in run.items()
                if key not in skip and value is not None]
        print(render_table(["field", "value"], rows,
                           title=f"Run {run['run_id']}"))
        if detail["stages"]:
            print(render_table(
                ["stage", "spans", "total_s", "mean_s", "max_s"],
                [[s["stage"], s["spans"], _r(s["total_s"]), _r(s["mean_s"]),
                  _r(s["max_s"])] for s in detail["stages"]],
                title="Stage spans",
            ))
        if detail["cells"]:
            print(render_table(
                ["cell", "workload", "status", "error", "attempts"],
                [[c["kind"], c["workload"], c["status"],
                  f"{c['error_type']}: {c['error']}", c["attempts"]]
                 for c in detail["cells"]],
                title="Failed cells",
            ))
        if detail["probe_workloads"]:
            print("probe reports:", ", ".join(detail["probe_workloads"]))

    payload = dict(detail)
    payload["run"] = {k: v for k, v in detail["run"].items()
                      if k != "manifest_json"}
    _emit(args, payload, human)
    return 0


def cmd_export(args) -> int:
    conn = _connect(args, create=False)
    try:
        run = query.get_run(conn, args.run_id)
        text = ingest_mod.export_manifest(conn, run["run_id"])
    finally:
        conn.close()
    sys.stdout.write(text)
    return 0


def cmd_replay(args) -> int:
    conn = _connect(args, create=False)
    try:
        rendered, argv = query.reconstruct_invocation(conn, args.run_id)
    finally:
        conn.close()
    if args.execute:
        from repro.cli import main as cli_main

        print(f"replaying: {rendered}", file=sys.stderr)
        return cli_main(argv)
    _emit(args, {"command": rendered, "argv": argv},
          lambda: print(rendered))
    return 0


def cmd_regressions(args) -> int:
    conn = _connect(args, create=False)
    try:
        if args.on == "bench":
            report = query.bench_regressions(
                conn, metric=args.metric or query.GOLDEN_METRIC,
                tolerance=args.tolerance, direction=args.direction,
            )
        else:
            report = query.run_regressions(
                conn, metric=args.metric or "duration_s",
                command=args.run_command, tolerance=args.tolerance,
                direction=args.direction,
            )
    finally:
        conn.close()

    def human():
        rows = []
        for c in report["comparisons"]:
            baseline = c.get("baseline_rev", c.get("baseline_run"))
            rows.append([
                c.get("rev", c.get("run")),
                baseline or "-",
                _r(c.get("value")),
                _r(c.get("ratio")),
                "REGRESSED" if c["regressed"] else "ok",
                _verdict(c),
            ])
        print(render_table(
            ["subject", "baseline", "value", "ratio", "verdict",
             "recorded_delta"],
            rows,
            title=(f"Regressions on {report['metric']} "
                   f"({report['direction']} is better, "
                   f"tolerance {report['tolerance']:.2%})"),
        ))
        if report["regressions"]:
            print(f"error: {report['regressions']} regression(s) beyond "
                  f"tolerance", file=sys.stderr)
        if report["recorded_mismatches"]:
            print(f"error: {report['recorded_mismatches']} recorded "
                  f"delta(s) do not reproduce from stored baselines",
                  file=sys.stderr)

    _emit(args, report, human)
    return 0 if report["ok"] else 1


def _verdict(comparison) -> str:
    matches = comparison.get("recorded_matches")
    if matches is None:
        return "-"
    return "reproduced" if matches else "MISMATCH"


def cmd_tail(args) -> int:
    run_dir = None
    try:
        conn = _connect(args, create=False)
        try:
            run = query.get_run(conn, args.run_id)
            candidate = Path(run["path"]) if run["path"] else None
        finally:
            conn.close()
        if candidate is not None and candidate.is_dir():
            run_dir = candidate
    except ConfigError:
        pass  # no database yet, or the run only exists on disk
    if run_dir is None:
        run_dir = telemetry.load_run(args.run_id, _runs_root(args)).path
    return tail_run(
        run_dir, follow=not args.no_follow, poll=args.poll,
        timeout=args.timeout, json_mode=args.json, verbose=args.verbose,
    )


def _r(value, digits: int = 4):
    return round(value, digits) if isinstance(value, (int, float)) else ""


# ----------------------------------------------------------------------
# Parser wiring
# ----------------------------------------------------------------------

def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", default=None, metavar="PATH",
        help=f"experiment database path (default: $REPRO_SIM_DB or "
             f"{DB_FILENAME} inside the runs root)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory whose runs/ the store indexes",
    )
    parser.add_argument(
        "--runs-root", default=None, metavar="DIR",
        help="explicit runs root (overrides --cache-dir)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON on stdout",
    )


def add_db_parser(subparsers) -> None:
    """Register the ``db`` command group on the repro-sim parser."""
    p = subparsers.add_parser(
        "db",
        help="queryable experiment store (SQLite index over runs + bench)",
    )
    actions = p.add_subparsers(dest="db_action", required=True)

    sp = actions.add_parser(
        "ingest", help="index a runs root and the bench trajectory"
    )
    _add_store_arguments(sp)
    sp.add_argument("--bench-dir", default=DEFAULT_BENCH_DIR, metavar="DIR",
                    help=f"BENCH_*.json directory (default: "
                         f"{DEFAULT_BENCH_DIR})")

    sp = actions.add_parser("experiments",
                            help="list experiment groupings")
    _add_store_arguments(sp)

    sp = actions.add_parser("runs", help="filtered run listing")
    _add_store_arguments(sp)
    sp.add_argument("--workload", default=None,
                    help="only runs whose workload set contains this name")
    sp.add_argument("--policy", default=None,
                    help="only runs whose policy list contains this name")
    sp.add_argument("--status", default=None,
                    help="manifest status filter (completed, failed, ...)")
    sp.add_argument("--command", dest="run_command", default=None,
                    help="subcommand filter (compare, sweep, fuzz, ...)")
    sp.add_argument("--since", default=None, metavar="ISO",
                    help="runs started at or after this ISO timestamp")
    sp.add_argument("--until", default=None, metavar="ISO",
                    help="runs started at or before this ISO timestamp")
    sp.add_argument("--limit", type=int, default=None, metavar="N",
                    help="keep only the newest N matches")

    sp = actions.add_parser("show", help="one run in full")
    _add_store_arguments(sp)
    sp.add_argument("run_id", help="run id (unique prefixes accepted)")

    sp = actions.add_parser(
        "export",
        help="print a run's stored manifest, byte-identical to the source",
    )
    _add_store_arguments(sp)
    sp.add_argument("run_id", help="run id (unique prefixes accepted)")

    sp = actions.add_parser(
        "replay", help="reconstruct a run's exact engine invocation"
    )
    _add_store_arguments(sp)
    sp.add_argument("run_id", help="run id (unique prefixes accepted)")
    sp.add_argument("--exec", dest="execute", action="store_true",
                    help="re-execute the reconstructed invocation")

    sp = actions.add_parser(
        "regressions",
        help="compare a metric across bench revisions or runs "
             "(exit 1 on regression)",
    )
    _add_store_arguments(sp)
    sp.add_argument("--on", choices=("bench", "runs"), default="bench",
                    help="comparison axis (default: bench trajectory)")
    sp.add_argument("--metric", default=None,
                    help="bench: cell:<name>[:<field>] or a payload key "
                         f"(default {query.GOLDEN_METRIC}); runs: a "
                         "numeric manifest field (default duration_s)")
    sp.add_argument("--tolerance", type=float, default=0.05, metavar="FRAC",
                    help="allowed fractional drift (default: 0.05)")
    sp.add_argument("--direction", choices=("auto", "higher", "lower"),
                    default="auto",
                    help="whether higher or lower values are better "
                         "(default: inferred from the metric name)")
    sp.add_argument("--command", dest="run_command", default=None,
                    help="runs mode: restrict to one subcommand")

    sp = actions.add_parser(
        "tail", help="follow a live campaign's event stream"
    )
    _add_store_arguments(sp)
    sp.add_argument("run_id", help="run id (unique prefixes accepted)")
    sp.add_argument("--poll", type=float, default=DEFAULT_POLL_SECONDS,
                    metavar="SEC", help="poll interval while following")
    sp.add_argument("--no-follow", action="store_true",
                    help="drain the existing log and exit")
    sp.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="stop following after SEC seconds")
    sp.add_argument("--verbose", action="store_true",
                    help="render every event kind, not just progress")


_DB_ACTIONS = {
    "ingest": cmd_ingest,
    "experiments": cmd_experiments,
    "runs": cmd_runs,
    "show": cmd_show,
    "export": cmd_export,
    "replay": cmd_replay,
    "regressions": cmd_regressions,
    "tail": cmd_tail,
}


def cmd_db(args) -> int:
    return _DB_ACTIONS[args.db_action](args)
