"""SQLite schema and connection discipline for the experiment store.

One database file indexes everything the telemetry layer and the bench
trajectory write to disk:

* ``experiments``     — one row per (command, machine, llc) grouping.
* ``runs``            — one row per telemetry run directory, carrying the
  *raw manifest text* (`manifest_json`) so export is byte-lossless.
* ``cells``           — per-cell failure records from run manifests.
* ``spans``           — stage spans extracted from ``events.jsonl``.
* ``events``          — every event line, raw, in file order.
* ``probe_summaries`` — ``inspect_<workload>.json`` probe payloads.
* ``bench_files`` / ``bench_samples`` — the ``BENCH_<rev>.json``
  trajectory, one row per file and one per timed cell.

Connections run in WAL mode so a live campaign's writer and any number of
``repro-sim db`` readers coexist without blocking each other; writes are
wrapped in short transactions, and ``busy_timeout`` absorbs the residual
writer-vs-writer window. The database is a **rebuildable index** — the
JSONL/JSON files stay the durable source of truth (DESIGN.md decision
13), so a corrupted or stale database is repaired by deleting it and
re-running ``repro-sim db ingest``.
"""

import os
import sqlite3
from pathlib import Path
from typing import Optional, Union

from repro.common.envflag import FALSE_WORDS

SCHEMA_VERSION = 1
"""Bumped when the table layout changes incompatibly.

A reader that finds a *newer* version warns and proceeds best-effort
(columns it knows keep their meaning); it never tracebacks — the fix for
a truly incompatible file is a delete + re-ingest, not a crash.
"""

DB_ENV = "REPRO_SIM_DB"
"""Environment toggle: a path, or a truthy word for the default path."""

DB_FILENAME = "expdb.sqlite3"
"""Default database file, created inside the runs root it indexes."""

_AUTO_WORDS = frozenset({"auto", "1", "true", "yes", "on"})

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS experiments (
    experiment_id INTEGER PRIMARY KEY,
    command       TEXT NOT NULL,
    machine       TEXT NOT NULL DEFAULT '',
    llc           TEXT NOT NULL DEFAULT '',
    UNIQUE (command, machine, llc)
);
CREATE TABLE IF NOT EXISTS runs (
    run_id          TEXT PRIMARY KEY,
    experiment_id   INTEGER REFERENCES experiments(experiment_id),
    root            TEXT,
    path            TEXT,
    status          TEXT,
    command         TEXT,
    machine         TEXT,
    started         TEXT,
    finished        TEXT,
    wall_sec        REAL,
    duration_s      REAL,
    seed            INTEGER,
    workloads       TEXT,
    policies        TEXT,
    argv            TEXT,
    format_version  INTEGER,
    manifest_json   TEXT NOT NULL,
    manifest_digest TEXT NOT NULL,
    events_bytes    INTEGER NOT NULL DEFAULT 0,
    events_count    INTEGER NOT NULL DEFAULT 0,
    events_malformed INTEGER NOT NULL DEFAULT 0,
    last_event_kind TEXT,
    last_event_t    REAL,
    ingested_at     TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_experiment ON runs (experiment_id);
CREATE INDEX IF NOT EXISTS runs_by_status     ON runs (status);
CREATE INDEX IF NOT EXISTS runs_by_started    ON runs (started);
CREATE TABLE IF NOT EXISTS cells (
    run_id     TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    kind       TEXT,
    workload   TEXT,
    status     TEXT NOT NULL,
    error_type TEXT,
    error      TEXT,
    attempts   INTEGER
);
CREATE INDEX IF NOT EXISTS cells_by_run ON cells (run_id);
CREATE TABLE IF NOT EXISTS spans (
    run_id     TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    seq        INTEGER NOT NULL,
    stage      TEXT,
    workload   TEXT,
    duration_s REAL,
    t          REAL,
    pid        INTEGER,
    role       TEXT
);
CREATE INDEX IF NOT EXISTS spans_by_run ON spans (run_id);
CREATE TABLE IF NOT EXISTS events (
    run_id  TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    seq     INTEGER NOT NULL,
    t       REAL,
    kind    TEXT,
    payload TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS probe_summaries (
    run_id   TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    workload TEXT,
    payload  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS probes_by_run ON probe_summaries (run_id);
CREATE TABLE IF NOT EXISTS bench_files (
    file            TEXT PRIMARY KEY,
    rev             TEXT NOT NULL,
    recorded_at     TEXT,
    machine         TEXT,
    llc             TEXT,
    workload        TEXT,
    target_accesses INTEGER,
    format_version  INTEGER,
    golden_cell     TEXT,
    payload         TEXT NOT NULL,
    digest          TEXT NOT NULL,
    ingested_at     TEXT
);
CREATE TABLE IF NOT EXISTS bench_samples (
    file             TEXT NOT NULL REFERENCES bench_files(file)
                     ON DELETE CASCADE,
    cell             TEXT NOT NULL,
    repeats          INTEGER,
    min_sec          REAL,
    mean_sec         REAL,
    max_sec          REAL,
    accesses         INTEGER,
    accesses_per_sec REAL,
    PRIMARY KEY (file, cell)
);
"""


def resolve_db_path(
    spec: Optional[Union[str, Path]] = None,
    runs_root: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Map a ``--db``/:data:`DB_ENV` spec to a database path (or None).

    ``spec=None`` consults the environment; a falsy word
    (:data:`~repro.common.envflag.FALSE_WORDS`) disables, a truthy word
    selects the default path inside ``runs_root`` (the runs root the
    invocation already resolved), and anything else is a literal path.
    """
    if spec is None:
        spec = os.environ.get(DB_ENV)
        if spec is None or not spec.strip():
            return None
    spec = str(spec).strip()
    if spec.lower() in FALSE_WORDS:
        return None
    if spec.lower() in _AUTO_WORDS:
        from repro.sim.telemetry import resolve_runs_root

        root = Path(runs_root) if runs_root is not None \
            else resolve_runs_root()
        return root / DB_FILENAME
    return Path(spec).expanduser()


def connect(
    path: Union[str, Path], create: bool = True, on_warning=None
) -> sqlite3.Connection:
    """Open (and, with ``create``, initialise) the experiment store.

    WAL + busy_timeout make one live writer and many readers safe;
    ``check_same_thread=False`` lets the tail follower poll from helper
    threads. A database written by a newer schema triggers one
    ``on_warning(message)`` call and is then read best-effort.
    """
    path = Path(path)
    if create:
        path.parent.mkdir(parents=True, exist_ok=True)
    elif not path.exists():
        from repro.common.errors import ConfigError

        raise ConfigError(
            f"no experiment database at {path} (run 'repro-sim db "
            f"ingest' to build one)"
        )
    conn = sqlite3.connect(str(path), check_same_thread=False)
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA busy_timeout=5000")
    conn.execute("PRAGMA foreign_keys=ON")
    if create:
        ensure_schema(conn)
    version = schema_version(conn)
    if version is not None and version > SCHEMA_VERSION and \
            on_warning is not None:
        on_warning(
            f"{path}: database schema v{version} is newer than this "
            f"reader (v{SCHEMA_VERSION}); proceeding best-effort"
        )
    return conn


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create missing tables and stamp the schema version (idempotent)."""
    with conn:
        conn.executescript(_SCHEMA)
        conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES "
            "('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )


def schema_version(conn: sqlite3.Connection) -> Optional[int]:
    """The stored schema version, or None for a pre-schema file."""
    try:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
    except sqlite3.Error:
        return None
    if row is None:
        return None
    try:
        return int(row["value"])
    except (TypeError, ValueError):
        return None
