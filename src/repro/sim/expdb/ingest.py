"""Lossless, idempotent ingest of runs roots and bench trajectories.

Design contract (DESIGN.md decision 13): the files on disk are the
source of truth and this module only *indexes* them —

* **lossless** — the raw manifest text of every run is stored verbatim
  (:func:`export_manifest` returns it byte-for-byte), and every event
  line lands raw in the ``events`` table in file order. A manifest that
  fails to parse is still captured raw (``status="corrupt"``), so even a
  damaged run survives the round trip.
* **idempotent** — each run carries a digest of its manifest text plus
  the event-log byte count; re-ingesting an unchanged run is a no-op and
  a changed run (a live campaign appending events, a re-sealed manifest)
  is atomically replaced inside one transaction. ``BENCH_<rev>.json``
  files are keyed by filename and digest the same way.
* **tolerant** — a truncated event log, a torn final line, or a missing
  manifest never raises: damage is skipped, counted, and surfaced via
  ``on_warning`` one line at a time.
"""

import hashlib
import json
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.common.errors import ConfigError
from repro.sim.telemetry import (
    EVENTS_NAME,
    MANIFEST_NAME,
    resolve_runs_root,
)

INGESTED = "ingested"
UPDATED = "updated"
UNCHANGED = "unchanged"
SKIPPED = "skipped"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _json_or_none(value) -> Optional[str]:
    return json.dumps(value) if value is not None else None


def _parse_events(raw: str):
    """Raw event text -> (rows, malformed, last_kind, last_t).

    Rows are ``(seq, t, kind, payload)`` with ``payload`` the raw line —
    torn or malformed lines are counted, not fatal, mirroring
    :func:`repro.sim.telemetry.read_events`.
    """
    rows = []
    malformed = 0
    last_kind = None
    last_t = None
    for seq, line in enumerate(raw.splitlines()):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            event = json.loads(stripped)
        except ValueError:
            malformed += 1
            continue
        if not isinstance(event, dict):
            malformed += 1
            continue
        kind = event.get("kind")
        t = event.get("t")
        if not isinstance(t, (int, float)):
            t = None
        rows.append((seq, t, kind if isinstance(kind, str) else None,
                     stripped))
        last_kind = kind if isinstance(kind, str) else last_kind
        last_t = t if t is not None else last_t
    return rows, malformed, last_kind, last_t


def _experiment_id(conn, command: str, machine: str, llc: str) -> int:
    conn.execute(
        "INSERT OR IGNORE INTO experiments (command, machine, llc) "
        "VALUES (?, ?, ?)",
        (command, machine, llc),
    )
    row = conn.execute(
        "SELECT experiment_id FROM experiments "
        "WHERE command = ? AND machine = ? AND llc = ?",
        (command, machine, llc),
    ).fetchone()
    return row["experiment_id"]


def ingest_run_dir(
    conn,
    run_dir: Union[str, Path],
    root: Optional[Union[str, Path]] = None,
    on_warning=None,
) -> str:
    """Index one run directory; returns an :data:`INGESTED`-family status.

    The whole run (row + cells + spans + events + probe summaries) is
    replaced in a single transaction, so a reader never observes a
    half-ingested run.
    """
    run_dir = Path(run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    try:
        manifest_text = manifest_path.read_text(encoding="utf-8")
    except OSError as error:
        if on_warning is not None:
            on_warning(f"{manifest_path}: unreadable manifest ({error}); "
                       f"run skipped")
        return SKIPPED

    manifest: Dict = {}
    status_override = None
    try:
        parsed = json.loads(manifest_text)
    except ValueError:
        parsed = None
    if isinstance(parsed, dict):
        manifest = parsed
    else:
        status_override = "corrupt"
        if on_warning is not None:
            on_warning(f"{manifest_path}: corrupt manifest; raw text "
                       f"indexed with status=corrupt")

    events_path = run_dir / EVENTS_NAME
    try:
        events_raw = events_path.read_text(encoding="utf-8",
                                           errors="replace")
    except OSError:
        events_raw = ""
    events_bytes = len(events_raw.encode("utf-8"))

    run_id = run_dir.name
    digest = _digest(manifest_text)
    existing = conn.execute(
        "SELECT manifest_digest, events_bytes FROM runs WHERE run_id = ?",
        (run_id,),
    ).fetchone()
    if existing is not None and existing["manifest_digest"] == digest \
            and existing["events_bytes"] == events_bytes:
        return UNCHANGED

    event_rows, malformed, last_kind, last_t = _parse_events(events_raw)
    if malformed and on_warning is not None:
        on_warning(f"{events_path}: skipped {malformed} malformed event "
                   f"line(s)")

    command = str(manifest.get("command") or "?")
    machine = str(manifest.get("machine") or "")
    llc = str(manifest.get("llc") or "")
    workloads = manifest.get("workloads")
    policies = manifest.get("policies")
    argv = manifest.get("argv")
    failures = manifest.get("failures")

    probe_rows = []
    for probe_path in sorted(run_dir.glob("inspect_*.json")):
        try:
            payload = probe_path.read_text(encoding="utf-8")
        except OSError:
            continue
        workload = probe_path.stem[len("inspect_"):]
        probe_rows.append((run_id, workload, payload))

    with conn:
        experiment_id = _experiment_id(conn, command, machine, llc)
        conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
        conn.execute(
            "INSERT INTO runs (run_id, experiment_id, root, path, status,"
            " command, machine, started, finished, wall_sec, duration_s,"
            " seed, workloads, policies, argv, format_version,"
            " manifest_json, manifest_digest, events_bytes, events_count,"
            " events_malformed, last_event_kind, last_event_t,"
            " ingested_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
            " ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id, experiment_id,
                str(resolve_runs_root(root)) if root is not None
                else str(run_dir.parent),
                str(run_dir),
                status_override or str(manifest.get("status", "unknown")),
                command, machine or None,
                manifest.get("started"), manifest.get("finished"),
                _as_float(manifest.get("wall_sec")),
                _as_float(manifest.get("duration_s")),
                _as_int(manifest.get("seed")),
                _json_or_none(workloads if isinstance(workloads, list)
                              else None),
                _json_or_none(policies if isinstance(policies, list)
                              else None),
                _json_or_none(argv if isinstance(argv, list) else None),
                _as_int(manifest.get("format_version")),
                manifest_text, digest, events_bytes, len(event_rows),
                malformed, last_kind, last_t, _now(),
            ),
        )
        if isinstance(failures, list):
            conn.executemany(
                "INSERT INTO cells (run_id, kind, workload, status,"
                " error_type, error, attempts) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (run_id, f.get("kind"), f.get("workload"), "failed",
                     f.get("error_type"), f.get("error"),
                     _as_int(f.get("attempts")))
                    for f in failures if isinstance(f, dict)
                ],
            )
        conn.executemany(
            "INSERT INTO events (run_id, seq, t, kind, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            [(run_id, seq, t, kind, payload)
             for seq, t, kind, payload in event_rows],
        )
        span_rows = []
        for seq, t, kind, payload in event_rows:
            if kind != "span":
                continue
            event = json.loads(payload)
            span_rows.append((
                run_id, seq, event.get("stage"), event.get("workload"),
                _as_float(event.get("duration_s", event.get("wall_sec"))),
                t, _as_int(event.get("pid")), event.get("role"),
            ))
        conn.executemany(
            "INSERT INTO spans (run_id, seq, stage, workload, duration_s,"
            " t, pid, role) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            span_rows,
        )
        conn.executemany(
            "INSERT INTO probe_summaries (run_id, workload, payload) "
            "VALUES (?, ?, ?)",
            probe_rows,
        )
    return UPDATED if existing is not None else INGESTED


def ingest_runs_root(
    conn,
    root: Optional[Union[str, Path]] = None,
    on_warning=None,
) -> Dict[str, int]:
    """Index every run directory under ``root``; returns status counts."""
    root = resolve_runs_root(root)
    counts = {INGESTED: 0, UPDATED: 0, UNCHANGED: 0, SKIPPED: 0}
    if not root.is_dir():
        return counts
    for run_dir in sorted(path for path in root.iterdir()
                          if path.is_dir()):
        if not (run_dir / MANIFEST_NAME).exists():
            continue  # same contract as telemetry.list_runs
        status = ingest_run_dir(conn, run_dir, root=root,
                                on_warning=on_warning)
        counts[status] += 1
    return counts


def export_manifest(conn, run_id: str) -> str:
    """The stored manifest text, byte-identical to the source file."""
    row = conn.execute(
        "SELECT manifest_json FROM runs WHERE run_id = ?", (run_id,)
    ).fetchone()
    if row is None:
        raise ConfigError(f"no run {run_id!r} in the experiment database")
    return row["manifest_json"]


# ----------------------------------------------------------------------
# Bench trajectory
# ----------------------------------------------------------------------

def ingest_bench_file(conn, path: Union[str, Path], on_warning=None) -> str:
    """Index one ``BENCH_<rev>.json``; same idempotency contract as runs."""
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as error:
        if on_warning is not None:
            on_warning(f"{path}: unreadable ({error}); skipped")
        return SKIPPED
    try:
        payload = json.loads(raw)
    except ValueError:
        payload = None
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("cells"), dict):
        if on_warning is not None:
            on_warning(f"{path}: not a bench payload; skipped")
        return SKIPPED

    digest = _digest(raw)
    name = path.name
    existing = conn.execute(
        "SELECT digest FROM bench_files WHERE file = ?", (name,)
    ).fetchone()
    if existing is not None and existing["digest"] == digest:
        return UNCHANGED

    with conn:
        conn.execute("DELETE FROM bench_files WHERE file = ?", (name,))
        conn.execute(
            "INSERT INTO bench_files (file, rev, recorded_at, machine,"
            " llc, workload, target_accesses, format_version, golden_cell,"
            " payload, digest, ingested_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                name, str(payload.get("rev", "unknown")),
                payload.get("recorded_at"), payload.get("machine"),
                payload.get("llc"), payload.get("workload"),
                _as_int(payload.get("target_accesses")),
                _as_int(payload.get("format_version")),
                payload.get("golden_cell"), raw, digest, _now(),
            ),
        )
        sample_rows = []
        for cell, timing in payload["cells"].items():
            if not isinstance(timing, dict):
                continue
            sample_rows.append((
                name, cell, _as_int(timing.get("repeats")),
                _as_float(timing.get("min_sec")),
                _as_float(timing.get("mean_sec")),
                _as_float(timing.get("max_sec")),
                _as_int(timing.get("accesses")),
                _as_float(timing.get("accesses_per_sec")),
            ))
        conn.executemany(
            "INSERT INTO bench_samples (file, cell, repeats, min_sec,"
            " mean_sec, max_sec, accesses, accesses_per_sec)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            sample_rows,
        )
    return UPDATED if existing is not None else INGESTED


def ingest_bench_dir(
    conn, bench_dir: Union[str, Path], on_warning=None
) -> Dict[str, int]:
    """Index every ``BENCH_*.json`` under ``bench_dir``."""
    bench_dir = Path(bench_dir)
    counts = {INGESTED: 0, UPDATED: 0, UNCHANGED: 0, SKIPPED: 0}
    if not bench_dir.is_dir():
        return counts
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        counts[ingest_bench_file(conn, path, on_warning=on_warning)] += 1
    return counts


def _as_float(value) -> Optional[float]:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _as_int(value) -> Optional[int]:
    try:
        return int(value)
    except (TypeError, ValueError):
        return None
