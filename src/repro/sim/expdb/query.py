"""Read-side queries: experiments, runs, replay reconstruction,
and cross-run/cross-revision regression analytics.

Everything here works on the SQLite index built by
:mod:`repro.sim.expdb.ingest`; nothing re-reads runs roots, which is what
makes ``repro-sim db runs`` on a thousand-run root cheap. Regression
detection compares a metric across the bench trajectory (consecutive
``BENCH_<rev>.json`` revisions) or across runs of one experiment, using
the same :func:`repro.common.stats.ratio` arithmetic ``repro-sim bench``
used when it recorded its own ``vs_previous`` deltas — so the recorded
trajectory is *reproduced exactly*, not merely approximated, and any
mismatch is itself reported as corruption.
"""

import json
import shlex
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.stats import ratio

GOLDEN_METRIC = "cell:warm_replay_lru_scalar:accesses_per_sec"
"""Default bench metric: golden-cell throughput (higher is better)."""

_LOWER_IS_BETTER_HINTS = ("overhead", "_sec", "wall", "duration")
_HIGHER_IS_BETTER_HINTS = ("per_sec", "speedup", "throughput", "rate")


def list_experiments(conn) -> List[Dict]:
    """One row per experiment with run counts and the activity window."""
    rows = conn.execute(
        "SELECT e.experiment_id, e.command, e.machine, e.llc,"
        " COUNT(r.run_id) AS runs,"
        " SUM(CASE WHEN r.status LIKE 'completed%' THEN 1 ELSE 0 END)"
        "   AS completed,"
        " SUM(CASE WHEN r.status = 'failed' THEN 1 ELSE 0 END) AS failed,"
        " MIN(r.started) AS first_run, MAX(r.started) AS last_run"
        " FROM experiments e LEFT JOIN runs r USING (experiment_id)"
        " GROUP BY e.experiment_id"
        " ORDER BY e.command, e.machine, e.llc"
    ).fetchall()
    return [dict(row) for row in rows]


def query_runs(
    conn,
    workload: Optional[str] = None,
    policy: Optional[str] = None,
    status: Optional[str] = None,
    command: Optional[str] = None,
    since: Optional[str] = None,
    until: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[Dict]:
    """Filtered run listing, oldest first.

    ``since``/``until`` compare against the ISO-8601 ``started`` stamp
    (prefixes like ``2026-08-01`` work — ISO order is lexicographic).
    Workload/policy filters match membership in the manifest lists.
    """
    clauses, params = [], []
    if status is not None:
        clauses.append("status = ?")
        params.append(status)
    if command is not None:
        clauses.append("command = ?")
        params.append(command)
    if since is not None:
        clauses.append("started >= ?")
        params.append(since)
    if until is not None:
        # A bare date prefix should include that whole day.
        clauses.append("started <= ?")
        params.append(until if "T" in until else until + "T99")
    sql = "SELECT * FROM runs"
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY started, run_id"
    rows = [dict(row) for row in conn.execute(sql, params).fetchall()]
    if workload is not None:
        rows = [r for r in rows if workload in _json_list(r["workloads"])]
    if policy is not None:
        rows = [r for r in rows if policy in _json_list(r["policies"])]
    if limit is not None:
        rows = rows[-limit:]
    return rows


def get_run(conn, run_id: str) -> Dict:
    """One run row; unique prefixes of the id are accepted."""
    row = conn.execute(
        "SELECT * FROM runs WHERE run_id = ?", (run_id,)
    ).fetchone()
    if row is not None:
        return dict(row)
    rows = conn.execute(
        "SELECT * FROM runs WHERE run_id LIKE ? ORDER BY run_id",
        (run_id + "%",),
    ).fetchall()
    if not rows:
        raise ConfigError(
            f"no run {run_id!r} in the experiment database"
        )
    if len(rows) > 1:
        raise ConfigError(
            f"run id {run_id!r} is ambiguous: "
            f"{[r['run_id'] for r in rows]}"
        )
    return dict(rows[0])


def run_detail(conn, run_id: str) -> Dict:
    """Full view of one run: manifest, stage spans, cells, probes."""
    run = get_run(conn, run_id)
    run_id = run["run_id"]
    spans = conn.execute(
        "SELECT stage, COUNT(*) AS spans, SUM(duration_s) AS total_s,"
        " AVG(duration_s) AS mean_s, MAX(duration_s) AS max_s"
        " FROM spans WHERE run_id = ? GROUP BY stage ORDER BY stage",
        (run_id,),
    ).fetchall()
    cells = conn.execute(
        "SELECT kind, workload, status, error_type, error, attempts"
        " FROM cells WHERE run_id = ?",
        (run_id,),
    ).fetchall()
    probes = conn.execute(
        "SELECT workload FROM probe_summaries WHERE run_id = ?"
        " ORDER BY workload",
        (run_id,),
    ).fetchall()
    try:
        manifest = json.loads(run["manifest_json"])
        if not isinstance(manifest, dict):
            manifest = {}
    except ValueError:
        manifest = {}
    return {
        "run": run,
        "manifest": manifest,
        "stages": [dict(row) for row in spans],
        "cells": [dict(row) for row in cells],
        "probe_workloads": [row["workload"] for row in probes],
    }


def reconstruct_invocation(conn, run_id: str) -> Tuple[str, List[str]]:
    """The exact engine invocation that produced a run.

    Returns ``(rendered_command, argv)`` where ``argv`` feeds
    :func:`repro.cli.main` directly. The manifest records ``argv`` at run
    creation, so the reconstruction is the invocation, not a guess.
    """
    run = get_run(conn, run_id)
    argv = _json_list(run["argv"])
    if not argv:
        raise ConfigError(
            f"run {run['run_id']} recorded no argv (created through the "
            f"library API, not the CLI); manifest command was "
            f"{run['command']!r}"
        )
    argv = [str(token) for token in argv]
    return "repro-sim " + shlex.join(argv), argv


# ----------------------------------------------------------------------
# Regression analytics
# ----------------------------------------------------------------------

def parse_metric(metric: str) -> Dict:
    """``cell:<name>[:<field>]`` or a top-level bench payload key."""
    if metric.startswith("cell:"):
        parts = metric.split(":")
        if len(parts) == 2:
            name, field = parts[1], "accesses_per_sec"
        elif len(parts) == 3:
            name, field = parts[1], parts[2]
        else:
            raise ConfigError(
                f"bad metric {metric!r}; expected cell:<name>[:<field>]"
            )
        if not name or not field:
            raise ConfigError(
                f"bad metric {metric!r}; empty cell or field name"
            )
        return {"kind": "cell", "cell": name, "field": field}
    return {"kind": "payload", "field": metric}


def metric_direction(metric: str, direction: str = "auto") -> str:
    """Resolve ``auto`` to higher-/lower-is-better from the field name."""
    if direction != "auto":
        return direction
    field = parse_metric(metric)["field"]
    # Rates beat the cost hints: accesses_per_sec contains "_sec" but is
    # a throughput, and throughputs regress downward.
    if any(hint in field for hint in _HIGHER_IS_BETTER_HINTS):
        return "higher"
    if any(hint in field for hint in _LOWER_IS_BETTER_HINTS):
        return "lower"
    return "higher"


def bench_revisions(conn) -> List[Dict]:
    """Every ingested bench file, trajectory order (recorded_at, file)."""
    rows = conn.execute(
        "SELECT file, rev, recorded_at, machine, llc, workload,"
        " golden_cell, payload FROM bench_files"
        " ORDER BY recorded_at, file"
    ).fetchall()
    out = []
    for row in rows:
        entry = dict(row)
        try:
            entry["payload"] = json.loads(entry["payload"])
        except ValueError:
            entry["payload"] = {}
        out.append(entry)
    return out


def _metric_value(payload: Dict, spec: Dict) -> Optional[float]:
    if spec["kind"] == "cell":
        cell = payload.get("cells", {}).get(spec["cell"])
        value = cell.get(spec["field"]) if isinstance(cell, dict) else None
    else:
        value = payload.get(spec["field"])
    return float(value) if isinstance(value, (int, float)) else None


def bench_regressions(
    conn,
    metric: str = GOLDEN_METRIC,
    tolerance: float = 0.05,
    direction: str = "auto",
) -> Dict:
    """Compare ``metric`` across consecutive bench revisions.

    Each consecutive pair yields a ``ratio = after / before``; with a
    higher-is-better metric a ratio below ``1 - tolerance`` is a
    regression (above ``1 + tolerance`` for lower-is-better). When the
    metric is the golden-cell throughput, every file's *recorded*
    ``vs_previous.golden_speedup`` is additionally recomputed against the
    baseline revision it names — using the identical
    :func:`~repro.common.stats.ratio` arithmetic — and any mismatch is
    flagged (``recorded_matches=False``): the store must reproduce the
    committed trajectory deltas exactly or admit the file changed.
    """
    if tolerance < 0:
        raise ConfigError(f"tolerance must be >= 0, got {tolerance}")
    spec = parse_metric(metric)
    resolved = metric_direction(metric, direction)
    revisions = bench_revisions(conn)
    by_rev: Dict[str, Dict] = {}
    for entry in revisions:
        by_rev.setdefault(entry["rev"], entry)  # first file of a rev wins

    comparisons = []
    previous = None
    for entry in revisions:
        value = _metric_value(entry["payload"], spec)
        record = {
            "file": entry["file"],
            "rev": entry["rev"],
            "recorded_at": entry["recorded_at"],
            "value": value,
            "baseline_rev": None,
            "baseline_value": None,
            "ratio": None,
            "regressed": False,
        }
        if previous is not None and value is not None and \
                previous["value"] is not None:
            record["baseline_rev"] = previous["rev"]
            record["baseline_value"] = previous["value"]
            record["ratio"] = ratio(value, previous["value"])
            if resolved == "higher":
                record["regressed"] = record["ratio"] < 1.0 - tolerance
            else:
                record["regressed"] = record["ratio"] > 1.0 + tolerance
        vs = entry["payload"].get("vs_previous")
        if _is_golden_metric(spec, entry["payload"]) and \
                isinstance(vs, dict):
            record.update(_check_recorded_delta(entry, vs, spec, by_rev))
        comparisons.append(record)
        if value is not None:
            previous = {"rev": entry["rev"], "value": value}

    regressed = [c for c in comparisons if c["regressed"]]
    mismatched = [c for c in comparisons
                  if c.get("recorded_matches") is False]
    return {
        "metric": metric,
        "direction": resolved,
        "tolerance": tolerance,
        "comparisons": comparisons,
        "regressions": len(regressed),
        "recorded_mismatches": len(mismatched),
        "ok": not regressed and not mismatched,
    }


def _is_golden_metric(spec: Dict, payload: Dict) -> bool:
    return (spec["kind"] == "cell"
            and spec["field"] == "accesses_per_sec"
            and spec["cell"] == payload.get("golden_cell"))


def _check_recorded_delta(entry, vs, spec, by_rev) -> Dict:
    """Recompute a file's recorded golden_speedup from stored baselines."""
    out = {
        "recorded_baseline_rev": vs.get("rev"),
        "recorded_speedup": vs.get("golden_speedup"),
        "recomputed_speedup": None,
        "recorded_matches": None,
    }
    baseline = by_rev.get(vs.get("rev"))
    recorded = vs.get("golden_speedup")
    if baseline is None or not isinstance(recorded, (int, float)):
        return out
    now = _metric_value(entry["payload"], spec)
    then = _metric_value(baseline["payload"], spec)
    if now is None or then is None:
        return out
    recomputed = ratio(now, then)
    out["recomputed_speedup"] = recomputed
    out["recorded_matches"] = recomputed == recorded
    return out


def run_regressions(
    conn,
    metric: str = "duration_s",
    command: Optional[str] = None,
    tolerance: float = 0.25,
    direction: str = "auto",
) -> Dict:
    """Compare a manifest metric across successive runs per experiment.

    Runs are grouped by experiment (command, machine, llc) so only
    like-for-like invocations are compared; within each group the metric
    (``duration_s``, ``wall_sec``, or any numeric manifest field) is
    checked pairwise in ``started`` order. Durations are lower-is-better
    under ``auto``.
    """
    if tolerance < 0:
        raise ConfigError(f"tolerance must be >= 0, got {tolerance}")
    resolved = direction if direction != "auto" else (
        "higher" if any(h in metric for h in _HIGHER_IS_BETTER_HINTS)
        else "lower" if any(h in metric for h in _LOWER_IS_BETTER_HINTS)
        else "higher"
    )
    clauses = "WHERE status LIKE 'completed%'"
    params: List = []
    if command is not None:
        clauses += " AND command = ?"
        params.append(command)
    rows = conn.execute(
        f"SELECT run_id, experiment_id, command, machine, started,"
        f" manifest_json FROM runs {clauses} ORDER BY started, run_id",
        params,
    ).fetchall()
    groups: Dict[int, List] = {}
    for row in rows:
        try:
            manifest = json.loads(row["manifest_json"])
        except ValueError:
            continue
        value = manifest.get(metric) if isinstance(manifest, dict) else None
        if not isinstance(value, (int, float)):
            continue
        groups.setdefault(row["experiment_id"], []).append(
            (dict(row), float(value))
        )
    comparisons = []
    for entries in groups.values():
        for (prev, prev_value), (cur, cur_value) in zip(entries,
                                                        entries[1:]):
            rat = ratio(cur_value, prev_value)
            if resolved == "higher":
                regressed = rat < 1.0 - tolerance
            else:
                regressed = rat > 1.0 + tolerance
            comparisons.append({
                "command": cur["command"],
                "baseline_run": prev["run_id"],
                "run": cur["run_id"],
                "baseline_value": prev_value,
                "value": cur_value,
                "ratio": rat,
                "regressed": regressed,
            })
    regressed = [c for c in comparisons if c["regressed"]]
    return {
        "metric": metric,
        "direction": resolved,
        "tolerance": tolerance,
        "comparisons": comparisons,
        "regressions": len(regressed),
        "recorded_mismatches": 0,
        "ok": not regressed,
    }


def _json_list(text: Optional[str]) -> List:
    if not text:
        return []
    try:
        value = json.loads(text)
    except ValueError:
        return []
    return value if isinstance(value, list) else []
