"""Live campaign tailing: follow a run's event stream as it happens.

``repro-sim db tail <run-id>`` resolves the run's directory (through the
database when present, else the runs root) and follows ``events.jsonl``
the way ``tail -f`` would — but parsed: stage spans render with their
monotonic durations, cell completions render as ``cells done/total``
progress against the ``cells_start`` denominator, and cell failures and
retries surface loudly the moment their event lands. Multi-hour fuzz
fleets are the sizing target: the follower holds only a file offset and
a torn-line remainder (constant memory however long the log grows), and
each poll reads exactly the appended bytes.

The follower exits when it sees ``run_finished`` (exit status mirrors
the run's: 0 for ``completed*``, 1 otherwise), when ``follow`` is off and
the log is drained, or when ``timeout`` seconds pass — a SIGKILLed run
never writes ``run_finished``, so an unbounded follow would hang forever.
"""

import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

from repro.sim.telemetry import EVENTS_NAME

DEFAULT_POLL_SECONDS = 0.5

_QUIET_KINDS = frozenset({"artifact"})
"""High-frequency bookkeeping events suppressed unless ``verbose``."""


class _TailState:
    """Progress counters accumulated across the event stream."""

    def __init__(self) -> None:
        self.total_cells = 0
        self.done_cells = 0
        self.failed_cells = 0
        self.finished_status: Optional[str] = None


def _render(event: Dict, state: _TailState, verbose: bool) -> Optional[str]:
    kind = event.get("kind")
    if kind in _QUIET_KINDS and not verbose:
        return None
    if kind == "run_started":
        return f"run started: {event.get('command', '?')}"
    if kind == "cells_start":
        state.total_cells = _as_int(event.get("total"))
        state.done_cells = 0
        state.failed_cells = 0
        return (f"dispatching {state.total_cells} cell(s) "
                f"(jobs={event.get('jobs', '?')})")
    if kind == "cell_done":
        state.done_cells += 1
        wall = event.get("duration_s", event.get("wall_sec"))
        wall_text = f" in {wall:.2f}s" if isinstance(wall, (int, float)) \
            else ""
        return (f"cell {state.done_cells}/{state.total_cells or '?'}"
                f" ok: ({event.get('cell_kind', '?')},"
                f" {event.get('workload', '?')}){wall_text}")
    if kind == "cell_retry":
        return (f"RETRY ({event.get('cell_kind', '?')},"
                f" {event.get('workload', '?')}) attempt"
                f" {event.get('attempt', '?')}:"
                f" {event.get('error_type', '?')}")
    if kind == "cell_failed":
        state.failed_cells += 1
        return (f"FAILED ({event.get('cell_kind', '?')},"
                f" {event.get('workload', '?')}) after"
                f" {event.get('attempts', '?')} attempt(s):"
                f" {event.get('error_type', '?')}: {event.get('error', '')}")
    if kind == "cells_done":
        return (f"cells complete: {event.get('total', '?')} total,"
                f" {event.get('failed', 0)} failed")
    if kind == "pool_broken":
        return (f"WORKER POOL BROKE ({event.get('pending', '?')} cell(s)"
                f" re-dispatched)")
    if kind == "span":
        duration = event.get("duration_s", event.get("wall_sec"))
        duration_text = f"{duration:.3f}s" \
            if isinstance(duration, (int, float)) else "?"
        workload = event.get("workload")
        scope = f" [{workload}]" if workload else ""
        return f"stage {event.get('stage', '?')}{scope}: {duration_text}"
    if kind == "fuzz_campaign_start":
        return (f"fuzz campaign: {event.get('scenarios', '?')} scenario(s),"
                f" seed {event.get('seed', '?')}")
    if kind == "run_finished":
        state.finished_status = str(event.get("status", "unknown"))
        return f"run finished: {state.finished_status}"
    if verbose:
        extras = {k: v for k, v in event.items()
                  if k not in ("t", "pid", "role", "kind",
                               "schema_version")}
        return f"{kind}: {extras}" if extras else str(kind)
    return None


def tail_run(
    run_dir: Union[str, Path],
    follow: bool = True,
    poll: float = DEFAULT_POLL_SECONDS,
    timeout: Optional[float] = None,
    json_mode: bool = False,
    verbose: bool = False,
    out: Optional[TextIO] = None,
    sleep=time.sleep,
    clock=time.monotonic,
) -> int:
    """Follow one run's event log; returns the process exit status.

    ``json_mode`` passes every event line through raw (one JSON object
    per stdout line — the machine-output discipline of the rest of the
    ``db`` family) instead of rendering progress lines. ``sleep``/
    ``clock`` are injectable for tests.
    """
    out = out if out is not None else sys.stdout
    path = Path(run_dir) / EVENTS_NAME
    state = _TailState()
    offset = 0
    remainder = b""
    deadline = clock() + timeout if timeout is not None else None

    while True:
        chunk = b""
        try:
            size = path.stat().st_size
            if size < offset:  # truncated/rotated underneath us: restart
                offset = 0
                remainder = b""
            if size > offset:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
                    offset = handle.tell()
        except OSError:
            pass  # not written yet, or vanished: keep polling
        if chunk:
            buffered = remainder + chunk
            lines = buffered.split(b"\n")
            remainder = lines.pop()  # b"" after a complete final line
            for raw in lines:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    event = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue  # torn line from a killed writer
                if not isinstance(event, dict):
                    continue
                if json_mode:
                    print(raw.decode("utf-8"), file=out)
                    _track(event, state)
                else:
                    line = _render(event, state, verbose)
                    if line is not None:
                        print(line, file=out, flush=True)
        if state.finished_status is not None:
            return 0 if state.finished_status.startswith("completed") else 1
        if not follow and not chunk:
            return 0
        if deadline is not None and clock() >= deadline:
            if not json_mode:
                print("tail: timeout reached; run still in flight",
                      file=out, flush=True)
            return 0
        if not chunk:
            sleep(poll)


def _track(event: Dict, state: _TailState) -> None:
    """Keep the exit-status state machine alive in ``json_mode``."""
    if event.get("kind") == "run_finished":
        state.finished_status = str(event.get("status", "unknown"))


def _as_int(value) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return 0
