"""Tracked benchmark trajectory: ``repro-sim bench``.

Times a small canonical set of warm-sweep cells — the replay kernels every
experiment spends its wall time in — and writes one ``BENCH_<rev>.json``
per revision into a results directory kept in the repository. Successive
files form the performance trajectory of the codebase; the CI
benchmark-smoke job runs ``--quick`` on every change and fails when the
disabled-probe overhead on the golden warm-replay cell exceeds its bound
(the structural zero-cost claim of :mod:`repro.sim.probes`, measured).

Cells (all replay the same cached warm stream, so recording cost is paid
once and excluded):

* ``warm_replay_lru_fastpath`` — the exact stack-distance fast path.
* ``warm_replay_lru_scalar``   — the scalar cache model, plain LRU. The
  **golden cell**: baseline denominator of the overhead gate.
* ``warm_replay_srrip`` / ``warm_replay_drrip`` — the set-partitioned
  tiers (``set`` and ``dueling``) on their default auto gate, each with
  a ``_scalar`` twin forced through the scalar model. The CI smoke gate
  bounds each pair's speedup from below
  (:data:`SETPATH_GATE_PAIRS` / ``--min-setpath-speedup``): the
  partitioned kernels are bit-identical to the scalar model, so a cell
  that stops being *faster* than its twin has silently fallen back.
* ``warm_replay_ship``         — SHiP is scalar-tier by design (globally
  coupled SHCT); on its default auto gate it now takes the native scalar
  backend (:mod:`repro.sim.nativepath` — numba when importable, the
  compact pure-Python kernel otherwise). ``warm_replay_ship_native``
  forces the native backend explicitly and ``warm_replay_ship_scalar``
  forces the object model; the CI smoke gate bounds that pair's speedup
  from below (:data:`NATIVEPATH_GATE_PAIRS` /
  ``--min-nativepath-speedup``) — the native kernel is bit-identical to
  the model, so losing the speedup means the scalar tier silently
  regressed to model throughput.
* ``warm_replay_oracle_native`` / ``warm_replay_oracle_scalar`` — the
  sharing-oracle wrapper (:class:`repro.oracle.SharingAwareWrapper`
  over SHiP, ``mode="both"``) replayed through the native oracle
  kernels versus the scalar object model. The stream annotation is
  precomputed outside the timed window, so the pair times the wrapped
  replay alone — exactly what the oracle lowering accelerates. The CI
  smoke gate bounds the pair's speedup from below (it shares
  :data:`NATIVEPATH_GATE_PAIRS` with the SHiP pair): both backends are
  bit-identical, counters included, so losing the speedup means the
  oracle tier silently fell back to the model.
* ``warm_replay_srrip_sharded`` — the set-partitioned SRRIP cell with
  the per-set loop sharded over two intra-replay worker threads
  (``kernel_jobs=2``). Tracked but not gated: pure-Python shards share
  the GIL, so thread scaling is only expected of the numba/numpy
  kernels; the cell exists to catch pathological sharding overhead.
* ``warm_replay_drrip_sharded`` — the dueling DRRIP cell with the
  *follower* phase sharded over two worker threads (the leader pass and
  PSEL reconstruction stay serial; see
  :func:`repro.sim.setpath.replay_setpath`). Tracked but not gated, for
  the same GIL reason as the SRRIP sharded cell.
* ``warm_sweep_grid`` / ``warm_sweep_grid_percell`` — a whole
  configuration grid (four-associativity LRU capacity grid plus a
  four-point SRRIP ``rrpv_bits`` parameter grid) replayed in shared
  single passes through :mod:`repro.sim.gridpath`, against a twin that
  replays every cell independently through the per-cell fast paths. The
  CI smoke gate bounds the pair's speedup from below
  (:data:`GRIDPATH_GATE_PAIRS` / ``--min-gridpath-speedup``): grid
  results are bit-identical to per-cell replay, so the only thing that
  can regress is the sharing itself.
* ``probed_disabled``          — the golden cell executed through
  :func:`repro.sim.probes.run_probed_replay` with an **empty** probe list;
  its ratio to the golden cell is the disabled-probe overhead.
* ``probed_full_fastpath`` / ``probed_full_scalar`` — all four
  stream-level probes attached, on each tier (the enabled-probe price,
  reported but not gated).

Timing discipline: every cell runs ``repeats`` times and reports the
minimum (the standard noise-robust estimator for CI machines); the
overhead gate compares minima. Repeats are *interleaved round-robin*
across cells rather than run back-to-back — on shared CI machines
wall-clock drift between early and late cells routinely exceeds the 2%
bound being enforced, and interleaving spreads that drift evenly. The
golden/probed gate pair additionally gets alternating extra repeats up to
:data:`GATE_PAIR_MIN_REPEATS`: their *ratio* feeds a hard CI gate, so the
pair needs more draws than the trajectory cells.
"""

import gc
import json
import platform
import subprocess
import time
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.npsupport import HAVE_NUMPY
from repro.common.stats import ratio
from repro.oracle.annotate import oracle_hint_source
from repro.oracle.runner import stream_annotation
from repro.oracle.wrapper import SharingAwareWrapper
from repro.policies.registry import make_policy
from repro.policies.rrip import SrripPolicy
from repro.sim.gridpath import replay_lru_grid, replay_param_grid
from repro.sim.multipass import run_policy_on_stream
from repro.sim.nativepath import have_numba
from repro.sim.probes import run_probed_replay

BENCH_FORMAT_VERSION = 1
"""Bump when the BENCH_<rev>.json shape changes incompatibly."""

DEFAULT_OUT_DIR = "benchmarks/results"
"""Where BENCH_<rev>.json files accumulate (committed to the repo)."""

DEFAULT_WORKLOAD = "streamcluster"
"""Canonical bench workload (PARSEC, heavily shared — exercises the
observer path, not just classification)."""

GOLDEN_CELL = "warm_replay_lru_scalar"
OVERHEAD_CELL = "probed_disabled"

REPLAY_PROBES = ("sets", "evictions", "sharing", "reuse")
"""The fastpath-safe probe set the full-probe cells attach."""

SETPATH_GATE_PAIRS = {
    "warm_replay_srrip": "warm_replay_srrip_scalar",
    "warm_replay_drrip": "warm_replay_drrip_scalar",
}
"""Set-partitioned cell -> its forced-scalar twin (speedup gate pairs)."""

GRIDPATH_GATE_PAIRS = {
    "warm_sweep_grid": "warm_sweep_grid_percell",
}
"""Grid-replay cell -> its independent per-cell twin (speedup gate pair)."""

NATIVEPATH_GATE_PAIRS = {
    "warm_replay_ship_native": "warm_replay_ship_scalar",
    "warm_replay_oracle_native": "warm_replay_oracle_scalar",
}
"""Native scalar-backend cell -> its forced-model twin (speedup gate)."""

ORACLE_HORIZON_FACTOR = 4
"""Fixed retention horizon (capacity multiples) of the bench oracle cells.

The auto horizon depends on the measured base miss ratio; pinning it keeps
the annotation — and therefore the timed work — identical across machines
and revisions."""

GRID_WAYS = (4, 8, 16, 32)
"""Associativity axis of the bench LRU capacity grid (fixed set count)."""

GRID_RRPV_BITS = (1, 2, 3, 4)
"""SRRIP ``rrpv_bits`` axis of the bench parameter grid."""

GATE_PAIR_MIN_REPEATS = 9
"""Minimum samples for the golden/probed overhead pair (see module doc)."""


def current_rev(repo_dir: Optional[str] = None) -> str:
    """Short git revision of the working tree (``unknown`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _summarize_walls(walls: List[float]) -> Dict:
    """Min/mean/max of one cell's wall-time samples."""
    return {
        "repeats": len(walls),
        "min_sec": min(walls),
        "mean_sec": sum(walls) / len(walls),
        "max_sec": max(walls),
    }


def bench_cells(context, workload: str, repeats: int) -> Dict[str, Dict]:
    """Run every bench cell against one warmed stream; keyed results.

    Repeats run round-robin over the whole matrix, and the overhead gate
    pair is topped up with alternating samples to
    :data:`GATE_PAIR_MIN_REPEATS` (timing discipline in the module doc).
    """
    artifacts = context.artifacts(workload)  # warm before any timing
    stream = artifacts.stream
    geometry = context.geometry
    seed = context.seed

    def replay(policy: str, fastpath: Optional[bool],
               native: Optional[bool] = None,
               kernel_jobs: Optional[int] = None):
        return lambda: run_policy_on_stream(
            stream, geometry, policy, seed=seed, fastpath=fastpath,
            native=native, kernel_jobs=kernel_jobs,
        )

    # Oracle pair: the annotation is computed (and memoized) here, before
    # any timing, so the cells time only the wrapped replay. A fresh
    # wrapper per run — its budgets and study counters are replay state.
    budgets = stream_annotation(stream, geometry, ORACLE_HORIZON_FACTOR)

    def replay_oracle(native: bool):
        def run():
            wrapper = SharingAwareWrapper(
                make_policy("ship", seed=seed),
                oracle_hint_source(budgets), "both",
            )
            run_policy_on_stream(
                stream, geometry, wrapper, seed=seed, native=native,
            )
        return run

    def probed(probes: Tuple[str, ...], fastpath: Optional[bool]):
        return lambda: run_probed_replay(
            stream, geometry, "lru", list(probes), seed=seed,
            fastpath=fastpath,
        )

    # The bench grid: the LRU capacity grid walks every associativity of
    # GRID_WAYS at the context's set count, and the parameter grid steps
    # every SRRIP rrpv_bits variant at the context geometry. Instances are
    # rebuilt per run — gridpath requires fresh unbound policies.
    grid_geoms = [
        CacheGeometry(geometry.num_sets * w * geometry.block_bytes, w,
                      geometry.block_bytes)
        for w in GRID_WAYS
    ]

    def sweep_grid():
        replay_lru_grid(stream, grid_geoms)
        replay_param_grid(
            stream, geometry,
            [SrripPolicy(rrpv_bits=b) for b in GRID_RRPV_BITS],
            fastpath=True,
        )

    def sweep_grid_percell():
        for g in grid_geoms:
            run_policy_on_stream(stream, g, "lru", seed=seed, fastpath=True)
        for b in GRID_RRPV_BITS:
            run_policy_on_stream(
                stream, geometry, SrripPolicy(rrpv_bits=b), seed=seed,
                fastpath=True,
            )

    cells = {
        "warm_replay_lru_fastpath": replay("lru", True),
        GOLDEN_CELL: replay("lru", False),
        "warm_replay_srrip": replay("srrip", None),
        "warm_replay_srrip_scalar": replay("srrip", False),
        "warm_replay_drrip": replay("drrip", None),
        "warm_replay_drrip_scalar": replay("drrip", False),
        "warm_replay_ship": replay("ship", None),
        "warm_replay_ship_native": replay("ship", None, native=True),
        "warm_replay_ship_scalar": replay("ship", None, native=False),
        "warm_replay_oracle_native": replay_oracle(True),
        "warm_replay_oracle_scalar": replay_oracle(False),
        "warm_replay_srrip_sharded": replay("srrip", None, kernel_jobs=2),
        "warm_replay_drrip_sharded": replay("drrip", None, kernel_jobs=2),
        "warm_sweep_grid": sweep_grid,
        "warm_sweep_grid_percell": sweep_grid_percell,
        OVERHEAD_CELL: probed((), False),
        "probed_full_fastpath": probed(REPLAY_PROBES, True),
        "probed_full_scalar": probed(REPLAY_PROBES, False),
    }
    walls: Dict[str, List[float]] = {name: [] for name in cells}

    def sample(name: str) -> None:
        # Collect the previous sample's garbage *outside* the timed window
        # and keep the collector off inside it: every cell allocates a
        # full cache model whose teardown otherwise lands in whichever
        # sample runs next, which is exactly the kind of asymmetric noise
        # a 2% gate cannot live with.
        gc.collect()
        gc.disable()
        try:
            start = perf_counter()
            cells[name]()
            walls[name].append(perf_counter() - start)
        finally:
            gc.enable()

    for __ in range(repeats):
        for name in cells:
            sample(name)
    for __ in range(max(GATE_PAIR_MIN_REPEATS - repeats, 0)):
        sample(GOLDEN_CELL)
        sample(OVERHEAD_CELL)

    accesses = len(stream)
    results = {}
    for name in cells:
        timing = _summarize_walls(walls[name])
        timing["accesses"] = accesses
        timing["accesses_per_sec"] = ratio(accesses, timing["min_sec"])
        results[name] = timing
    return results


def disabled_probe_overhead(cells: Dict[str, Dict]) -> float:
    """Fractional slowdown of the probe runner with zero probes attached.

    ``(probed_disabled / golden) - 1`` on minimum wall times: 0.0 means
    the probe layer is free when disabled, which is the structural claim
    the CI gate enforces (bound: 2%).
    """
    golden = cells[GOLDEN_CELL]["min_sec"]
    probed = cells[OVERHEAD_CELL]["min_sec"]
    return ratio(probed, golden) - 1.0 if golden else 0.0


def setpath_speedups(cells: Dict[str, Dict]) -> Dict[str, float]:
    """Min-wall speedup of each set-partitioned cell over its scalar twin.

    Keyed by the fast cell's name; the CI smoke gate fails when any value
    drops below ``--min-setpath-speedup`` (a partitioned replay that is
    no faster than its bit-identical scalar twin has silently fallen
    back to the scalar model).
    """
    return {
        fast: ratio(cells[twin]["min_sec"], cells[fast]["min_sec"])
        for fast, twin in SETPATH_GATE_PAIRS.items()
        if fast in cells and twin in cells
    }


def gridpath_speedups(cells: Dict[str, Dict]) -> Dict[str, float]:
    """Min-wall speedup of each grid-replay cell over its per-cell twin.

    Keyed by the grid cell's name; the CI smoke gate fails when any value
    drops below ``--min-gridpath-speedup`` (the grid pass is bit-identical
    to per-cell replay, so losing the speedup means the sharing — one
    capped stack walk per set count, one stacked parameter kernel —
    silently degenerated to independent replays).
    """
    return {
        fast: ratio(cells[twin]["min_sec"], cells[fast]["min_sec"])
        for fast, twin in GRIDPATH_GATE_PAIRS.items()
        if fast in cells and twin in cells
    }


def nativepath_speedups(cells: Dict[str, Dict]) -> Dict[str, float]:
    """Min-wall speedup of the native scalar backend over the model twin.

    Keyed by the native cell's name; the CI smoke gate fails when any
    value drops below ``--min-nativepath-speedup`` (the native kernel is
    bit-identical to the scalar model, so a native cell that is no faster
    than its forced-model twin has silently fallen back).
    """
    return {
        fast: ratio(cells[twin]["min_sec"], cells[fast]["min_sec"])
        for fast, twin in NATIVEPATH_GATE_PAIRS.items()
        if fast in cells and twin in cells
    }


def previous_bench(out_dir: Path, rev: str) -> Optional[Dict]:
    """The most recently written BENCH file of a *different* revision."""
    candidates = [
        path for path in sorted(
            out_dir.glob("BENCH_*.json"),
            key=lambda p: p.stat().st_mtime,
        )
        if path.stem != f"BENCH_{rev}"
    ]
    for path in reversed(candidates):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict) and isinstance(payload.get("cells"), dict):
            return payload
    return None


def run_bench(
    context,
    workload: str = DEFAULT_WORKLOAD,
    repeats: int = 3,
    out_dir: str = DEFAULT_OUT_DIR,
    rev: Optional[str] = None,
) -> Tuple[Dict, Path]:
    """Execute the bench matrix and persist ``BENCH_<rev>.json``.

    Returns ``(payload, path)``; the payload carries the trajectory
    comparison against the previous revision's file when one exists.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    rev = rev or current_rev()
    cells = bench_cells(context, workload, repeats)
    overhead = disabled_probe_overhead(cells)
    payload: Dict = {
        "format_version": BENCH_FORMAT_VERSION,
        "rev": rev,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": context.machine.name,
        "llc": context.geometry.describe(),
        "workload": workload,
        "target_accesses": context.target_accesses,
        "seed": context.seed,
        "python_version": platform.python_version(),
        "numpy_available": HAVE_NUMPY,
        "numba_available": have_numba(),
        "cells": cells,
        "disabled_probe_overhead": overhead,
        "setpath_speedups": setpath_speedups(cells),
        "gridpath_speedups": gridpath_speedups(cells),
        "nativepath_speedups": nativepath_speedups(cells),
        "golden_cell": GOLDEN_CELL,
        "overhead_cell": OVERHEAD_CELL,
    }
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    baseline = previous_bench(directory, rev)
    if baseline is not None:
        golden_now = cells[GOLDEN_CELL]["accesses_per_sec"]
        golden_then = (
            baseline["cells"].get(GOLDEN_CELL, {}).get("accesses_per_sec", 0.0)
        )
        payload["vs_previous"] = {
            "rev": baseline.get("rev"),
            "golden_speedup": ratio(golden_now, golden_then),
        }
    path = directory / f"BENCH_{rev}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return payload, path
