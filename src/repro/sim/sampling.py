"""Set-sampled LLC simulation.

The standard acceleration of cache studies (UMON/ATD-style): simulate only
every ``1/ratio`` of the LLC's sets and scale the counts back up. Because
block addresses map to sets by their low bits, sampling sets is sampling a
uniform hash of the block space, and miss *ratios* estimated from the
sample converge quickly to the full simulation's.

Used where many configurations must be swept cheaply (the F7 capacity
sweep at full-size geometries); every headline number in the benches is
still produced by full simulation.
"""

from dataclasses import dataclass

from repro.cache.llc import SharedLlc
from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.stats import ratio
from repro.policies.base import ReplacementPolicy


@dataclass(frozen=True)
class SampledResult:
    """Outcome of a set-sampled replay."""

    policy: str
    stream_name: str
    sample_ratio: int
    sampled_accesses: int
    sampled_hits: int
    sampled_misses: int

    @property
    def miss_ratio(self) -> float:
        """Estimated miss ratio (sample counts cancel the scaling)."""
        return ratio(self.sampled_misses, self.sampled_accesses)

    @property
    def estimated_misses(self) -> int:
        """Sample misses scaled to the full stream."""
        return self.sampled_misses * self.sample_ratio


class SampledLlcSimulator:
    """Replays only the accesses mapping to every ``sample_ratio``-th set.

    The simulated structure is a smaller cache with ``num_sets /
    sample_ratio`` sets and the original associativity; a block participates
    when ``set_index % sample_ratio == offset``. Within the sampled sets the
    simulation is exact, so per-set behaviour (including set-dueling
    policies bound to the smaller geometry) is faithful.
    """

    def __init__(self, geometry: CacheGeometry, policy: ReplacementPolicy,
                 sample_ratio: int = 16, offset: int = 0):
        if sample_ratio <= 0 or geometry.num_sets % sample_ratio != 0:
            raise ConfigError(
                f"sample_ratio {sample_ratio} must divide the set count "
                f"{geometry.num_sets}"
            )
        if not 0 <= offset < sample_ratio:
            raise ConfigError(f"offset {offset} outside [0, {sample_ratio})")
        self.full_geometry = geometry
        self.sample_ratio = sample_ratio
        self.offset = offset
        sampled_geometry = CacheGeometry(
            geometry.size_bytes // sample_ratio, geometry.ways,
            geometry.block_bytes,
        )
        self.llc = SharedLlc(sampled_geometry, policy)
        self._full_set_mask = geometry.num_sets - 1

    def run(self, stream: LlcStream) -> SampledResult:
        """Replay the sampled subset of ``stream``."""
        cores, pcs, blocks, writes = stream.columns()
        mask = self._full_set_mask
        ratio_ = self.sample_ratio
        offset = self.offset
        access = self.llc.access
        for i in range(len(cores)):
            block = blocks[i]
            if (block & mask) % ratio_ == offset:
                # Drop the sampled-away index bits so the block maps to the
                # smaller cache's sets uniformly.
                access(cores[i], pcs[i], block // ratio_, writes[i] != 0)
        return SampledResult(
            policy=self.llc.policy.name,
            stream_name=stream.name,
            sample_ratio=ratio_,
            sampled_accesses=self.llc.access_count,
            sampled_hits=self.llc.hits,
            sampled_misses=self.llc.misses,
        )
