"""Set-sampled LLC simulation.

The standard acceleration of cache studies (UMON/ATD-style): simulate only
every ``1/ratio`` of the LLC's sets and scale the counts back up. Because
block addresses map to sets by their low bits, sampling sets is sampling a
uniform hash of the block space, and miss *ratios* estimated from the
sample converge quickly to the full simulation's.

Used where many configurations must be swept cheaply (the F7 capacity
sweep at full-size geometries); every headline number in the benches is
still produced by full simulation.
"""

from array import array
from dataclasses import dataclass

from repro.cache.llc import SharedLlc
from repro.cache.stream import LlcStream, LlcStreamBuilder
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.npsupport import HAVE_NUMPY
from repro.common.rng import derive_seed
from repro.common.stats import ratio
from repro.policies.base import ReplacementPolicy


@dataclass(frozen=True)
class SampledResult:
    """Outcome of a set-sampled replay."""

    policy: str
    stream_name: str
    sample_ratio: int
    sampled_accesses: int
    sampled_hits: int
    sampled_misses: int

    @property
    def miss_ratio(self) -> float:
        """Estimated miss ratio (sample counts cancel the scaling)."""
        return ratio(self.sampled_misses, self.sampled_accesses)

    @property
    def estimated_misses(self) -> int:
        """Sample misses scaled to the full stream."""
        return self.sampled_misses * self.sample_ratio


class SampledLlcSimulator:
    """Replays only the accesses mapping to every ``sample_ratio``-th set.

    The simulated structure is a smaller cache with ``num_sets /
    sample_ratio`` sets and the original associativity; a block participates
    when ``set_index % sample_ratio == offset``. Within the sampled sets the
    simulation is exact, so per-set behaviour (including set-dueling
    policies bound to the smaller geometry) is faithful.
    """

    @staticmethod
    def offset_from_seed(seed: int, sample_ratio: int, *labels) -> int:
        """Derive the sampled-set offset from an experiment seed.

        Campaigns must be reproducible from ``(seed, scenario_id)`` alone,
        so the choice of *which* set slice to sample goes through
        :func:`~repro.common.rng.derive_seed` — never module-level RNG
        state. Extra ``labels`` (scenario ids, stream names) decorrelate
        the slice across cells of one campaign.
        """
        if sample_ratio <= 0:
            raise ConfigError(f"sample_ratio must be positive, got {sample_ratio}")
        return derive_seed(seed, "sample-offset", sample_ratio, *labels) % sample_ratio

    @classmethod
    def from_seed(cls, geometry: CacheGeometry, policy: ReplacementPolicy,
                  seed: int, sample_ratio: int = 16,
                  *labels) -> "SampledLlcSimulator":
        """Construct with the sample-set slice derived from ``seed``."""
        offset = cls.offset_from_seed(seed, sample_ratio, *labels)
        return cls(geometry, policy, sample_ratio=sample_ratio, offset=offset)

    def __init__(self, geometry: CacheGeometry, policy: ReplacementPolicy,
                 sample_ratio: int = 16, offset: int = 0):
        if sample_ratio <= 0 or geometry.num_sets % sample_ratio != 0:
            raise ConfigError(
                f"sample_ratio {sample_ratio} must divide the set count "
                f"{geometry.num_sets}"
            )
        if not 0 <= offset < sample_ratio:
            raise ConfigError(f"offset {offset} outside [0, {sample_ratio})")
        self.full_geometry = geometry
        self.sample_ratio = sample_ratio
        self.offset = offset
        sampled_geometry = CacheGeometry(
            geometry.size_bytes // sample_ratio, geometry.ways,
            geometry.block_bytes,
        )
        self.llc = SharedLlc(sampled_geometry, policy)
        self._full_set_mask = geometry.num_sets - 1

    def run(self, stream: LlcStream) -> SampledResult:
        """Replay the sampled subset of ``stream``."""
        cores, pcs, blocks, writes = stream.columns()
        mask = self._full_set_mask
        ratio_ = self.sample_ratio
        offset = self.offset
        access = self.llc.access
        for i in range(len(cores)):
            block = blocks[i]
            if (block & mask) % ratio_ == offset:
                # Drop the sampled-away index bits so the block maps to the
                # smaller cache's sets uniformly.
                access(cores[i], pcs[i], block // ratio_, writes[i] != 0)
        return SampledResult(
            policy=self.llc.policy.name,
            stream_name=stream.name,
            sample_ratio=ratio_,
            sampled_accesses=self.llc.access_count,
            sampled_hits=self.llc.hits,
            sampled_misses=self.llc.misses,
        )


def sampled_geometry(geometry: CacheGeometry, sample_ratio: int) -> CacheGeometry:
    """The smaller geometry a ``sample_ratio`` sampled replay simulates."""
    if sample_ratio <= 0 or geometry.num_sets % sample_ratio != 0:
        raise ConfigError(
            f"sample_ratio {sample_ratio} must divide the set count "
            f"{geometry.num_sets}"
        )
    return CacheGeometry(
        geometry.size_bytes // sample_ratio, geometry.ways, geometry.block_bytes
    )


def sampled_substream(stream: LlcStream, geometry: CacheGeometry,
                      sample_ratio: int, offset: int) -> LlcStream:
    """Extract the sampled subset of ``stream`` as a standalone stream.

    The returned stream contains exactly the accesses a
    :class:`SampledLlcSimulator` with the same ``(sample_ratio, offset)``
    would replay, with block addresses already folded onto the
    :func:`sampled_geometry` index space (``block // sample_ratio``).
    Replaying it through :func:`repro.sim.multipass.run_policy_on_stream`
    against the sampled geometry therefore reproduces
    :meth:`SampledLlcSimulator.run` bit-for-bit while unlocking the tiered
    fast paths — which is how the fuzz harness affords thousands of
    scenario cells.
    """
    small = sampled_geometry(geometry, sample_ratio)  # validates the ratio
    if not 0 <= offset < sample_ratio:
        raise ConfigError(f"offset {offset} outside [0, {sample_ratio})")
    del small
    name = f"{stream.name}#s{sample_ratio}.{offset}"
    mask = geometry.num_sets - 1
    if HAVE_NUMPY and len(stream):
        import numpy as np

        cores, pcs, blocks, writes = stream.numpy_columns()
        keep = (blocks & mask) % sample_ratio == offset
        out_cores = array("b")
        out_pcs = array("q")
        out_blocks = array("q")
        out_writes = array("b")
        out_cores.frombytes(np.ascontiguousarray(cores[keep]).tobytes())
        out_pcs.frombytes(np.ascontiguousarray(pcs[keep]).tobytes())
        out_blocks.frombytes(
            np.ascontiguousarray(blocks[keep] // sample_ratio).tobytes()
        )
        out_writes.frombytes(np.ascontiguousarray(writes[keep]).tobytes())
        return LlcStream(out_cores, out_pcs, out_blocks, out_writes, name)
    builder = LlcStreamBuilder(name)
    cores, pcs, blocks, writes = stream.columns()
    for i in range(len(cores)):
        block = blocks[i]
        if (block & mask) % sample_ratio == offset:
            builder.append(cores[i], pcs[i], block // sample_ratio, writes[i] != 0)
    return builder.build()
