"""Structured run telemetry for the experiment engine.

Every telemetry-enabled run gets its own directory under the *runs root*
(``<persistent cache dir>/runs`` by default, so run records live next to
the stream cache they describe) containing exactly two files:

* ``manifest.json`` — one JSON document describing the run: machine digest
  and geometry, workload set, seeds, access budget, policy list, library
  versions, which numpy/fast-path tiers were in effect, wall time, final
  status, and a per-cell failure record for every experiment cell that was
  retried out or timed out. Written atomically (temp file + rename) and
  rewritten as the run progresses, so a crashed run leaves its last
  consistent manifest behind.
* ``events.jsonl`` — an append-only event log, one JSON object per line.
  Stage spans (trace generation, hierarchy recording, replays, oracle
  passes) record wall time and access/hit/miss counters; cache events
  record which tier (memory / disk / fresh recording) served an artifact;
  failure events record retries and worker deaths as they happen. Worker
  processes append to the same file — each line is written with a single
  ``write`` of a short buffer, which POSIX keeps atomic in append mode, so
  concurrent writers interleave lines, never bytes.

The module keeps one process-wide *current* :class:`RunTelemetry`;
instrumentation points (:mod:`repro.sim.experiment`,
:mod:`repro.sim.engine`, :mod:`repro.sim.parallel`) call the no-op-safe
:func:`emit`/:func:`span` helpers so that disabled telemetry costs one
``None`` check per stage — never per access. Telemetry never changes
results: it only observes counters the simulators already maintain, and
``--no-telemetry`` runs are byte-identical on stdout.
"""

import dataclasses
import json
import os
import platform
import re
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.common.errors import ConfigError
from repro.common.stats import RunningStats

TELEMETRY_FORMAT_VERSION = 1
"""Bumped when the manifest/event schema changes incompatibly."""

EVENT_SCHEMA_VERSION = 1
"""Stamped on every event line as ``schema_version``.

Events written before this field existed carry no marker and count as
version 1. Readers must *tolerate* higher versions — a newer writer's
log yields a one-line warning (see :func:`read_events`'s ``on_future``),
never a traceback — so old tooling can still tail a live campaign
written by a newer release.
"""

RUNS_DIRNAME = "runs"
MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"

RUNS_DIR_ENV = "REPRO_SIM_RUNS_DIR"
"""Environment variable overriding the default runs root."""


def default_runs_root() -> Path:
    """The run-record directory: next to the persistent stream cache."""
    env = os.environ.get(RUNS_DIR_ENV)
    if env:
        return Path(env).expanduser()
    from repro.sim.experiment import default_cache_dir

    return default_cache_dir() / RUNS_DIRNAME


def resolve_runs_root(
    root: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Path:
    """Map a user-facing runs-root spec to a concrete directory.

    Explicit ``root`` wins; otherwise a resolved ``cache_dir`` hosts a
    ``runs/`` subdirectory; otherwise the machine-wide default applies.
    """
    if root is not None:
        return Path(root).expanduser()
    if cache_dir is not None:
        return Path(cache_dir).expanduser() / RUNS_DIRNAME
    return default_runs_root()


class RunTelemetry:
    """Writes one run's manifest and event log.

    The parent process creates one via :func:`create_run` (``role="main"``);
    worker processes attach to the same directory via :func:`attach_worker`
    and only append events — the manifest belongs to the parent.
    """

    def __init__(self, run_dir: Union[str, Path], role: str = "main"):
        self.run_dir = Path(run_dir)
        self.run_id = self.run_dir.name
        self.role = role
        self.events_path = self.run_dir / EVENTS_NAME
        self.manifest_path = self.run_dir / MANIFEST_NAME
        self._manifest: Dict = {}
        self._started = time.time()
        # Monotonic twin of _started: wall-clock deltas skew under NTP
        # steps, so durations are measured on this clock and reported as
        # ``duration_s`` (``wall_sec`` stays for older readers).
        self._mono_started = time.monotonic()
        self._sinks: List = []

    def attach_sink(self, sink) -> None:
        """Mirror events and manifest rewrites into ``sink`` (best effort).

        A sink implements ``on_event(record)``, ``on_manifest(text,
        manifest)`` and ``close()``; the live experiment-store writer
        (:class:`repro.sim.expdb.live.LiveDbWriter`) is the one shipped.
        The JSONL files stay the durable source of truth: a sink is fed
        *after* the file write, and a sink that raises is detached with a
        one-line warning instead of failing the run.
        """
        self._sinks.append(sink)

    def close_sinks(self) -> None:
        """Flush and detach every attached sink (end of run)."""
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            try:
                sink.close()
            except Exception as error:  # pragma: no cover - defensive
                self._warn_sink(sink, error)

    def _feed_sinks(self, method: str, *payload) -> None:
        for sink in list(self._sinks):
            try:
                getattr(sink, method)(*payload)
            except Exception as error:
                self._sinks.remove(sink)
                self._warn_sink(sink, error)

    @staticmethod
    def _warn_sink(sink, error) -> None:
        import sys

        print(
            f"warning: telemetry sink {type(sink).__name__} failed "
            f"({type(error).__name__}: {error}); detached — the JSONL "
            f"log is unaffected",
            file=sys.stderr,
        )

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------

    def event(self, kind: str, /, **fields) -> None:
        """Append one event line (best effort: a full disk or a deleted
        run directory must never fail the experiment itself)."""
        record = {"t": round(time.time(), 6), "pid": os.getpid(),
                  "role": self.role, "kind": kind,
                  "schema_version": EVENT_SCHEMA_VERSION}
        record.update(fields)
        line = json.dumps(record, sort_keys=False) + "\n"
        try:
            with open(self.events_path, "a", encoding="utf-8") as handle:
                handle.write(line)
        except OSError:
            pass
        self._feed_sinks("on_event", record)

    @contextmanager
    def span(self, stage: str, /, **fields) -> Iterator[Dict]:
        """Time a stage and emit one ``span`` event when it exits.

        Yields a mutable dict; anything the caller adds to it (access
        counts, cache tiers, hit/miss counters) lands in the event. A
        stage that raises is still recorded, with ``error`` set.
        """
        extras: Dict = {}
        start = time.perf_counter()
        try:
            yield extras
        except BaseException as error:
            extras.setdefault("error", type(error).__name__)
            raise
        finally:
            # perf_counter is monotonic, so wall_sec and duration_s agree
            # here; both are written so span readers key on one field name
            # (duration_s) regardless of which writer produced the event.
            wall = time.perf_counter() - start
            self.event("span", stage=stage, wall_sec=round(wall, 6),
                       duration_s=round(wall, 6), **fields, **extras)

    # ------------------------------------------------------------------
    # Manifest (parent only)
    # ------------------------------------------------------------------

    def update_manifest(self, **fields) -> None:
        """Merge ``fields`` into the manifest and rewrite it atomically.

        The temp file is fsynced before the rename so a crash right after
        ``os.replace`` cannot publish an empty or torn manifest, and it is
        unlinked in a ``finally`` so a failed write (disk full) cannot
        leak ``tmp{pid}-manifest.json`` behind — ``runs list`` sweeps any
        orphans an outright *kill* still leaves
        (:func:`sweep_orphan_manifests`).
        """
        if self.role != "main":
            return
        self._manifest.update(fields)
        payload = json.dumps(self._manifest, indent=2, sort_keys=False,
                             default=str)
        tmp = self.manifest_path.with_name(
            f"tmp{os.getpid()}-{MANIFEST_NAME}"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.manifest_path)
        except OSError:
            pass
        finally:
            try:
                tmp.unlink()  # no-op after a successful replace
            except OSError:
                pass
        self._feed_sinks("on_manifest", payload + "\n", dict(self._manifest))

    @property
    def manifest(self) -> Dict:
        """The manifest as last written by this process."""
        return dict(self._manifest)

    def finish(self, status: str = "completed", **fields) -> None:
        """Seal the manifest with the final status and total run time.

        ``duration_s`` is the monotonic-clock duration (immune to NTP
        steps mid-run); ``wall_sec`` keeps the wall-clock delta older
        readers expect.
        """
        duration = round(time.monotonic() - self._mono_started, 6)
        self.update_manifest(
            status=status, wall_sec=round(time.time() - self._started, 6),
            duration_s=duration,
            finished=_isoformat(time.time()), **fields,
        )
        self.event("run_finished", status=status, duration_s=duration)
        self.close_sinks()


# ----------------------------------------------------------------------
# Process-wide current run
# ----------------------------------------------------------------------

_CURRENT: Optional[RunTelemetry] = None


def current() -> Optional[RunTelemetry]:
    """The active run recorder of this process, or None."""
    return _CURRENT


def set_current(telemetry: Optional[RunTelemetry]) -> None:
    """Install (or clear, with None) the process-wide recorder."""
    global _CURRENT
    _CURRENT = telemetry


@contextmanager
def activate(telemetry: Optional[RunTelemetry]) -> Iterator[Optional[RunTelemetry]]:
    """Scope ``telemetry`` as the process-wide recorder."""
    previous = current()
    set_current(telemetry)
    try:
        yield telemetry
    finally:
        set_current(previous)


def emit(kind: str, /, **fields) -> None:
    """Append an event to the active run, if any (no-op otherwise)."""
    telemetry = _CURRENT
    if telemetry is not None:
        telemetry.event(kind, **fields)


@contextmanager
def span(stage: str, /, **fields) -> Iterator[Dict]:
    """Span on the active run; yields a throwaway dict when disabled.

    The disabled path is one global read and one dict allocation per
    *stage* — instrumentation points sit outside per-access loops, so
    telemetry overhead is bounded by stage count, not access count.
    """
    telemetry = _CURRENT
    if telemetry is None:
        yield {}
        return
    with telemetry.span(stage, **fields) as extras:
        yield extras


# ----------------------------------------------------------------------
# Run creation / attachment
# ----------------------------------------------------------------------

def create_run(
    root: Optional[Union[str, Path]] = None,
    command: str = "",
    argv: Optional[List[str]] = None,
) -> RunTelemetry:
    """Allocate a fresh run directory and write the seed manifest.

    Directory allocation is race-safe under concurrent creators: the
    candidate id embeds the pid and the creating ``mkdir`` is exclusive,
    so two processes (or two threads' retries) can never share a run dir.
    The runs root itself is created with ``exist_ok=True`` — parallel
    workers racing to create it is the expected case, not an error.
    """
    root = resolve_runs_root(root)
    root.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    attempt = 0
    while True:
        suffix = "" if attempt == 0 else f"-{attempt}"
        run_dir = root / f"{stamp}-p{os.getpid()}{suffix}"
        try:
            run_dir.mkdir(parents=False, exist_ok=False)
            break
        except FileExistsError:
            attempt += 1
    telemetry = RunTelemetry(run_dir, role="main")
    telemetry.update_manifest(
        format_version=TELEMETRY_FORMAT_VERSION,
        event_schema_version=EVENT_SCHEMA_VERSION,
        run_id=telemetry.run_id,
        command=command,
        argv=list(argv) if argv is not None else None,
        started=_isoformat(telemetry._started),
        host=platform.node(),
        platform=platform.platform(),
        python_version=platform.python_version(),
        status="running",
    )
    telemetry.event("run_started", command=command)
    return telemetry


def attach_worker(run_dir: Union[str, Path]) -> RunTelemetry:
    """A worker-process view of an existing run (events only)."""
    return RunTelemetry(run_dir, role="worker")


def describe_environment(context=None) -> Dict:
    """Library-version and tier fields for the manifest.

    ``context`` (an :class:`~repro.sim.experiment.ExperimentContext`)
    contributes machine digest, workloads, seed, budget, and the resolved
    fast-path gate.
    """
    import repro
    from repro.common.npsupport import HAVE_NUMPY, numpy
    from repro.sim.fastpath import fastpath_enabled
    from repro.sim.nativepath import (
        have_numba,
        native_enabled,
        resolve_kernel_jobs,
    )

    fields: Dict = {
        "repro_version": repro.__version__,
        "numpy_available": HAVE_NUMPY,
        "numpy_version": getattr(numpy, "__version__", None) if HAVE_NUMPY else None,
        "numba_available": have_numba(),
        "native_backend": native_enabled(),
        "kernel_jobs": resolve_kernel_jobs(),
    }
    if context is not None:
        from repro.sim.experiment import machine_digest

        fields.update(
            machine=context.machine.name,
            machine_digest=machine_digest(context.machine),
            llc=context.geometry.describe(),
            num_cores=context.machine.num_cores,
            workloads=list(context.workload_list),
            seed=context.seed,
            target_accesses=context.target_accesses,
            cache_dir=str(context.cache_dir) if context.cache_dir else None,
            fastpath=fastpath_enabled(context.fastpath),
        )
    return fields


# ----------------------------------------------------------------------
# Inspection (backs ``repro-sim runs list/show``)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RunInfo:
    """One run directory's manifest, as found on disk."""

    run_id: str
    path: Path
    manifest: Dict

    @property
    def status(self) -> str:
        return self.manifest.get("status", "unknown")


def list_runs(
    root: Optional[Union[str, Path]] = None,
    on_error=None,
) -> List[RunInfo]:
    """Every readable run under ``root``, oldest first.

    Unreadable, half-written, or structurally wrong manifests (valid JSON
    that is not an object counts — a crashed atomic rewrite cannot produce
    one, but a stray editor can) yield a ``status="corrupt"`` placeholder
    instead of raising — listing must survive crashed runs. ``on_error``,
    when given, is called as ``on_error(manifest_path, detail)`` once per
    corrupt manifest so CLIs can surface a one-line warning.
    """
    root = resolve_runs_root(root)
    if not root.is_dir():
        return []
    runs = []
    for run_dir in sorted(path for path in root.iterdir() if path.is_dir()):
        manifest_path = run_dir / MANIFEST_NAME
        if not manifest_path.exists():
            continue
        detail = None
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as error:
            manifest, detail = None, f"unreadable manifest ({error})"
        except ValueError:
            detail = "corrupt manifest (not valid JSON)"
            manifest = None
        if not isinstance(manifest, dict):
            if detail is None:
                detail = "corrupt manifest (not a JSON object)"
            manifest = {"status": "corrupt"}
            if on_error is not None:
                on_error(manifest_path, detail)
        else:
            version = manifest.get("format_version")
            if (isinstance(version, int)
                    and version > TELEMETRY_FORMAT_VERSION
                    and on_error is not None):
                # A newer writer's manifest still lists — fields we know
                # keep their meaning; the warning flags the rest.
                on_error(
                    manifest_path,
                    f"manifest format v{version} is newer than this "
                    f"reader (v{TELEMETRY_FORMAT_VERSION}); unknown "
                    f"fields ignored",
                )
        runs.append(RunInfo(run_id=run_dir.name, path=run_dir, manifest=manifest))
    return runs


_MANIFEST_TMP_MARKER = re.compile(r"^tmp\d+-" + re.escape(MANIFEST_NAME) + r"$")
"""Per-process temp name used by :meth:`RunTelemetry.update_manifest`.

A run killed between writing its temp manifest and the atomic rename
leaves ``tmp{pid}-manifest.json`` behind (the in-process ``finally``
cannot fire on SIGKILL); the sweep below mirrors what the stream cache's
maintenance helpers do for ``tmp{pid}-*`` artifacts.
"""

_ORPHAN_GRACE_SEC = 60.0
"""Minimum age before a temp manifest counts as orphaned.

A live run's atomic rewrite holds its temp file for microseconds; anything
younger than the grace period might belong to an in-flight writer and is
left alone.
"""


def orphan_manifest_tmps(
    root: Optional[Union[str, Path]] = None,
    min_age_sec: float = _ORPHAN_GRACE_SEC,
) -> List[Path]:
    """Orphaned ``tmp{pid}-manifest.json`` files under ``root``'s run dirs."""
    root = resolve_runs_root(root)
    if not root.is_dir():
        return []
    cutoff = time.time() - min_age_sec
    orphans: List[Path] = []
    for run_dir in sorted(path for path in root.iterdir() if path.is_dir()):
        for path in sorted(run_dir.glob(f"tmp*-{MANIFEST_NAME}")):
            if not _MANIFEST_TMP_MARKER.match(path.name):
                continue
            try:
                if path.stat().st_mtime <= cutoff:
                    orphans.append(path)
            except OSError:
                continue  # vanished mid-scan: someone else swept it
    return orphans


def sweep_orphan_manifests(
    root: Optional[Union[str, Path]] = None,
    min_age_sec: float = _ORPHAN_GRACE_SEC,
) -> List[Path]:
    """Delete orphaned manifest temp files; returns the paths removed.

    ``runs list`` calls this so a crashed run cannot leak temp manifests
    forever (the same contract ``cache info``/``clear`` honour for the
    stream cache's ``tmp{pid}-*`` artifacts).
    """
    removed: List[Path] = []
    for path in orphan_manifest_tmps(root, min_age_sec=min_age_sec):
        try:
            path.unlink()
            removed.append(path)
        except OSError:
            pass
    return removed


def load_run(
    run_id: str, root: Optional[Union[str, Path]] = None
) -> RunInfo:
    """The manifest of one run; unique prefixes of the id are accepted."""
    runs = list_runs(root)
    matches = [run for run in runs if run.run_id == run_id]
    if not matches:
        matches = [run for run in runs if run.run_id.startswith(run_id)]
    if not matches:
        raise ConfigError(
            f"no run {run_id!r} under {resolve_runs_root(root)}"
        )
    if len(matches) > 1:
        raise ConfigError(
            f"run id {run_id!r} is ambiguous: "
            f"{[run.run_id for run in matches]}"
        )
    return matches[0]


def read_events(
    run_dir: Union[str, Path], on_error=None, on_future=None
) -> List[Dict]:
    """Parse a run's event log, skipping torn or malformed lines.

    A line a killed worker never finished is data loss already — dropping
    it beats refusing to show the rest of the run. Non-object JSON lines
    are dropped the same way (every consumer treats events as dicts).
    ``on_error``, when given, is called once as ``on_error(path, count)``
    if any lines were skipped — or if the log itself is unreadable
    (``count=0`` then) — so CLIs can print a one-line warning.

    Events stamped with a ``schema_version`` newer than this reader's
    :data:`EVENT_SCHEMA_VERSION` are still returned (known fields keep
    their meaning across versions); ``on_future``, when given, is called
    once as ``on_future(path, max_version)`` so CLIs can warn without a
    traceback.
    """
    path = Path(run_dir) / EVENTS_NAME
    if not path.exists():
        return []
    events = []
    malformed = 0
    future_version = 0
    try:
        # errors="replace": a worker killed mid-write (or a disk hiccup)
        # can leave arbitrary bytes on the final line; the mojibake line
        # then fails JSON parsing and is counted, instead of a
        # UnicodeDecodeError taking down the whole read.
        with open(path, "r", encoding="utf-8",
                  errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    malformed += 1
                    continue
                if not isinstance(event, dict):
                    malformed += 1
                    continue
                version = event.get("schema_version", EVENT_SCHEMA_VERSION)
                if (isinstance(version, int)
                        and version > EVENT_SCHEMA_VERSION):
                    future_version = max(future_version, version)
                events.append(event)
    except OSError:
        if on_error is not None:
            on_error(path, 0)
        return events
    if malformed and on_error is not None:
        on_error(path, malformed)
    if future_version and on_future is not None:
        on_future(path, future_version)
    return events


def summarize_spans(events: List[Dict]) -> Dict[str, RunningStats]:
    """Aggregate span wall times per stage (for ``runs show``).

    Tolerant of malformed span events (non-numeric or missing wall times
    from torn writes): a bad event is skipped, never fatal.
    """
    stages: Dict[str, RunningStats] = {}
    for event in events:
        if not isinstance(event, dict) or event.get("kind") != "span":
            continue
        try:
            # duration_s is the monotonic-clock field; wall_sec is its
            # pre-versioning name (same value for span events).
            wall = float(event.get("duration_s",
                                   event.get("wall_sec", 0.0)))
        except (TypeError, ValueError):
            continue
        stage = event.get("stage", "?")
        if not isinstance(stage, str):
            stage = repr(stage)
        stages.setdefault(stage, RunningStats()).add(wall)
    return stages


EVENT_SUMMARY_EXACT_BYTES = 64 * 1024
"""Logs up to this size are line-counted exactly by the quick summary."""

EVENT_SUMMARY_TAIL_BYTES = 4 * 1024
"""Bytes read from the end of a large log for the last-event probe."""


def quick_event_summary(
    run_dir: Union[str, Path],
    exact_bytes: int = EVENT_SUMMARY_EXACT_BYTES,
    tail_bytes: int = EVENT_SUMMARY_TAIL_BYTES,
) -> Dict:
    """Bounded-cost event-log summary for ``runs list``.

    Reads at most ``exact_bytes`` (small logs: exact line count) or one
    ``tail_bytes`` slice (large logs: count extrapolated from the tail's
    mean line length, marked ``approx``), so listing a 1000-run root costs
    megabytes, not the gigabytes a full re-read of every ``events.jsonl``
    would. The experiment store answers the same question exactly when a
    database is present — this is the capped filesystem fallback.

    Returns ``{"events": int, "approx": bool, "last_kind": str|None,
    "last_t": float|None}``; a missing or unreadable log yields zero
    events.
    """
    path = Path(run_dir) / EVENTS_NAME
    summary: Dict = {"events": 0, "approx": False,
                     "last_kind": None, "last_t": None}
    try:
        size = path.stat().st_size
    except OSError:
        return summary
    if size == 0:
        return summary
    try:
        with open(path, "rb") as handle:
            if size <= exact_bytes:
                data = handle.read(exact_bytes + 1)
                tail = data
                count = data.count(b"\n")
                if data and not data.endswith(b"\n"):
                    count += 1  # torn final line still represents an event
            else:
                handle.seek(size - tail_bytes)
                tail = handle.read(tail_bytes)
                lines = tail.count(b"\n")
                if lines:
                    mean_line = len(tail) / lines
                    count = max(int(size / mean_line), lines)
                else:
                    count = 1
                summary["approx"] = True
    except OSError:
        return summary
    summary["events"] = count
    # Last complete line of the tail slice -> last event kind/time.
    complete = tail.rsplit(b"\n", 2)
    for chunk in reversed(complete):
        line = chunk.strip()
        if not line:
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(event, dict):
            summary["last_kind"] = event.get("kind")
            try:
                summary["last_t"] = float(event["t"])
            except (KeyError, TypeError, ValueError):
                pass
            break
    return summary


def _isoformat(timestamp: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(timestamp))
