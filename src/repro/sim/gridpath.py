"""Single-pass grid replay: whole configuration grids in one stream walk.

The paper's headline artifacts — the F7 capacity sweep, the A1/A2
ablations, the t2 configuration table — are *grids* of (policy, geometry,
parameter) cells over one recorded stream. Replaying once per cell wastes
the structure the exact fast paths already expose:

* **Associativity grids** (fixed ``num_sets``): LRU is a stack algorithm,
  so one capped stack walk at the grid's maximum ways classifies every
  access for **every** smaller associativity simultaneously —
  ``hit iff stack distance < ways`` (Mattson inclusion). A whole ways
  sweep is one walk plus a histogram threshold per cell.
* **Capacity grids** (varying ``num_sets``): sets are renamed, so cells do
  not share a walk — but they share everything geometry-independent. The
  grid layer re-partitions once per *distinct* ``num_sets`` and the oracle
  layer (:func:`repro.oracle.runner.run_oracle_study_grid`) shares the
  stream's next-use/annotation work across all cells.
* **Parameter grids** (fixed geometry, e.g. SRRIP ``rrpv_bits``): the
  set-partitioned engine's synchronous SRRIP kernel generalizes to a
  stacked variant axis (:func:`repro.sim.setpath._count_rrip_sync_stacked`)
  — all variants step through one numpy recurrence. Stochastic variants
  (BIP/BRRIP epsilons) and dueling variants (DIP/DRRIP) replay per-variant
  over the *shared* partition: each variant instantiates its own per-set
  RNG streams and PSEL series, so sharing the partition is exact.

Results produced by a shared pass carry the engine-assigned ``grid`` tier
(:data:`repro.policies.base.REPLAY_GRID`); cells that had to fall back to
an independent replay keep that replay's own tier — preserving the PR 5
contract that scalar-tier policies (SHiP, oracle wrappers, bound
instances) are never silently mis-replayed. Every grid cell is
bit-identical to its per-cell replay (``tests/sim/test_gridpath.py`` pins
the full matrix); DESIGN.md decision 10 has the exactness argument.
"""

from array import array
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.common.npsupport import should_vectorize
from repro.common.rng import derive_seed
from repro.policies.base import (
    REPLAY_DUELING,
    REPLAY_GRID,
    REPLAY_SET,
    REPLAY_STACK,
    ReplacementPolicy,
)
from repro.policies.registry import make_policy
from repro.policies.rrip import SrripPolicy
from repro.sim import telemetry
from repro.sim.engine import LlcOnlySimulator
from repro.sim.fastpath import (
    VECTORIZE_THRESHOLD,
    _histogram_walk,
    fastpath_enabled,
    replay_lru_fastpath,
)
from repro.sim.nativepath import try_native_replay
from repro.sim.results import LlcSimResult
from repro.sim.setpath import (
    _count_rrip_sync_stacked,
    _run_partitioned,
    partition_stream,
    setpath_tier_of,
    try_fast_replay,
)

PolicySpec = Union[str, Callable[[], ReplacementPolicy]]
"""A grid's policy axis: a registered name or a zero-arg factory.

Geometry grids need one *fresh unbound* instance per cell (policies bind
once), so a pre-built instance cannot span a grid — callers pass a name
(standard ``derive_seed(seed, "replay", name)`` seeding, identical to what
per-cell replay would use) or a factory producing configured instances.
"""


def lru_grid_hits(
    blocks: Sequence[int],
    num_sets: int,
    ways_grid: Sequence[int],
    use_numpy: Optional[bool] = None,
) -> Dict[int, int]:
    """Exact LRU hit counts for every associativity in ``ways_grid`` at once.

    One stack walk capped at ``max(ways_grid)`` yields every access's
    per-set stack distance; by Mattson inclusion ``hit iff distance < w``
    for each ``w``, so the whole grid reduces to a distance histogram and
    one cumulative-sum threshold per cell. Returns ``{ways: hits}``.

    ``use_numpy`` is accepted for signature symmetry with the other grid
    entry points but unused: the walk accumulates the histogram in-loop
    (:func:`repro.sim.fastpath._histogram_walk`) and the cumulative sum is
    over ``cap + 1`` integers, so there is nothing left to vectorize.
    """
    if not ways_grid:
        return {}
    cap = max(ways_grid)
    hist = _histogram_walk(
        blocks.tolist() if isinstance(blocks, array) else list(blocks),
        num_sets,
        cap,
    )
    cum = [0] * (cap + 1)
    running = 0
    for d, count in enumerate(hist):
        running += count
        cum[d] = running
    return {w: cum[w - 1] for w in ways_grid}


def _group_by_num_sets(geometries) -> Dict[int, List[int]]:
    """Grid cell indices grouped by ``num_sets`` (partition-sharing unit)."""
    groups: Dict[int, List[int]] = {}
    for idx, geometry in enumerate(geometries):
        groups.setdefault(geometry.num_sets, []).append(idx)
    return groups


def replay_lru_grid(
    stream: LlcStream,
    geometries: Sequence[CacheGeometry],
    use_numpy: Optional[bool] = None,
    profile=None,
) -> List[LlcSimResult]:
    """Replay ``stream`` under exact LRU for every geometry in one pass each.

    Cells are grouped by ``num_sets``; each group costs one capped stack
    walk (:func:`lru_grid_hits`) regardless of how many associativities it
    spans. Results are positionally aligned with ``geometries`` and
    bit-identical to per-cell :func:`repro.sim.fastpath.replay_lru_fastpath`
    replays, with the ``grid`` tier recorded.
    """
    n = len(stream.blocks)
    results: List[Optional[LlcSimResult]] = [None] * len(geometries)
    groups = _group_by_num_sets(geometries)
    walk_sec = 0.0
    for num_sets, indices in groups.items():
        start = perf_counter()
        hits_by_ways = lru_grid_hits(
            stream.blocks,
            num_sets,
            sorted({geometries[idx].ways for idx in indices}),
            use_numpy=use_numpy,
        )
        elapsed = perf_counter() - start
        walk_sec += elapsed
        share = elapsed / len(indices)
        for idx in indices:
            hits = hits_by_ways[geometries[idx].ways]
            results[idx] = LlcSimResult(
                policy="lru",
                stream_name=stream.name,
                accesses=n,
                hits=hits,
                misses=n - hits,
                elapsed_sec=share,
                tier=REPLAY_GRID,
                backend="python",
            )
    if profile is not None:
        profile["grid_groups"] = len(groups)
        profile["grid_cells"] = len(geometries)
        profile["distance_walk"] = walk_sec
    return results


def _fresh_instance(policy: PolicySpec, seed: int) -> ReplacementPolicy:
    """One fresh unbound instance of the grid's policy axis."""
    if isinstance(policy, str):
        return make_policy(policy, seed=derive_seed(seed, "replay", policy))
    if isinstance(policy, ReplacementPolicy):
        raise SimulationError(
            f"grid replay needs a fresh instance per cell; pass the name or "
            f"a factory instead of the {policy.name!r} instance"
        )
    if callable(policy):
        instance = policy()
        if not isinstance(instance, ReplacementPolicy) or instance.geometry is not None:
            raise SimulationError(
                "grid policy factory must return a fresh unbound "
                "ReplacementPolicy instance"
            )
        return instance
    raise SimulationError(f"not a grid policy spec: {policy!r}")


def _scalar_cell(stream, geometry, instance, observers=()) -> LlcSimResult:
    """Per-cell scalar-model fallback (the PR 5 contract, tier recorded)."""
    return LlcOnlySimulator(geometry, instance, observers=observers).run(stream)


def replay_geometry_grid(
    stream: LlcStream,
    geometries: Sequence[CacheGeometry],
    policy: PolicySpec = "lru",
    seed: int = 0,
    fastpath: Optional[bool] = None,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> List[LlcSimResult]:
    """Replay one policy across a whole geometry grid, sharing every pass.

    Dispatch by the policy's effective replay tier:

    * ``stack`` (plain LRU) — one capped stack walk per distinct
      ``num_sets`` classifies every associativity cell
      (:func:`replay_lru_grid`);
    * ``set``/``dueling`` — one stream partition per distinct ``num_sets``,
      shared by every cell of that group (the partition depends only on
      ``num_sets``); each cell steps a fresh instance's kernels over it;
    * ``scalar`` — or fast paths disabled — falls back to independent
      per-cell replays with that cell's own tier recorded.

    Results align positionally with ``geometries`` and are bit-identical
    to per-cell replays of the same spec.
    """
    start = perf_counter()
    n = len(stream.blocks)
    tier = setpath_tier_of(
        policy if isinstance(policy, str) else _fresh_instance(policy, seed)
    )
    if not fastpath_enabled(fastpath) or tier not in (
        REPLAY_STACK, REPLAY_SET, REPLAY_DUELING,
    ):
        results = []
        for geometry in geometries:
            cell = try_fast_replay(
                stream, geometry, policy if isinstance(policy, str)
                else _fresh_instance(policy, seed),
                seed=seed, fastpath=fastpath, use_numpy=use_numpy,
            )
            if cell is None:
                cell = _scalar_cell(
                    stream, geometry, _fresh_instance(policy, seed)
                )
            results.append(cell)
        if profile is not None:
            profile["grid_cells"] = len(geometries)
            profile["grid_fallback_cells"] = len(geometries)
        return results
    if tier == REPLAY_STACK:
        results = replay_lru_grid(
            stream, geometries, use_numpy=use_numpy, profile=profile
        )
    else:
        use_np = should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD)
        results = [None] * len(geometries)
        groups = _group_by_num_sets(geometries)
        for num_sets, indices in groups.items():
            part = partition_stream(
                stream.blocks, num_sets, use_numpy=use_np, profile=profile
            )
            for idx in indices:
                geometry = geometries[idx]
                cell_start = perf_counter()
                instance = _fresh_instance(policy, seed)
                instance.bind(geometry)
                hits, __ = _run_partitioned(
                    part, geometry, instance, None, use_np, profile=profile
                )
                results[idx] = LlcSimResult(
                    policy=instance.name,
                    stream_name=stream.name,
                    accesses=n,
                    hits=hits,
                    misses=n - hits,
                    elapsed_sec=perf_counter() - cell_start,
                    tier=REPLAY_GRID,
                    backend="numpy" if use_np else "python",
                )
        if profile is not None:
            profile["grid_groups"] = len(groups)
            profile["grid_cells"] = len(geometries)
    telemetry.emit(
        "span", stage="replay_grid", policy=results[0].policy if results else "",
        stream=stream.name, wall_sec=round(perf_counter() - start, 6),
        cells=len(geometries), groups=len(_group_by_num_sets(geometries)),
        accesses=n, tier=REPLAY_GRID,
    )
    return results


def replay_param_grid(
    stream: LlcStream,
    geometry: CacheGeometry,
    policies: Sequence[ReplacementPolicy],
    fastpath: Optional[bool] = None,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> List[LlcSimResult]:
    """Replay a parameter grid of policy variants at one fixed geometry.

    ``policies`` holds one fresh *unbound* instance per grid cell, each
    carrying its own parameters and seed. The stream is partitioned once
    and shared by every set-tier cell; exact-type :class:`SrripPolicy`
    variants additionally collapse into one stacked synchronous kernel
    (all ``rrpv_bits`` variants stepped together). Stochastic and dueling
    variants replay per-variant over the shared partition — exact because
    each variant owns its per-set RNG streams and PSEL series. Scalar-tier
    variants (and stack-tier LRU, which has no parameter axis to share)
    fall back to independent replays with their own tier recorded.
    """
    start = perf_counter()
    n = len(stream.blocks)
    instances = list(policies)
    for instance in instances:
        if not isinstance(instance, ReplacementPolicy):
            raise SimulationError(
                f"parameter grids take policy instances, got {instance!r}"
            )
        if instance.geometry is not None:
            raise SimulationError(
                f"parameter-grid instance {instance.name!r} is already "
                f"bound; grid cells need fresh instances"
            )
    results: List[Optional[LlcSimResult]] = [None] * len(instances)
    if not fastpath_enabled(fastpath):
        for idx, instance in enumerate(instances):
            results[idx] = _scalar_cell(stream, geometry, instance)
        return results
    use_np = should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD)
    tiers = [setpath_tier_of(instance) for instance in instances]
    part = None
    if any(tier in (REPLAY_SET, REPLAY_DUELING) for tier in tiers):
        part = partition_stream(
            stream.blocks, num_sets=geometry.num_sets, use_numpy=use_np,
            profile=profile,
        )
    # Exact-type SRRIP variants stack into one synchronous kernel.
    stacked = [
        idx for idx, instance in enumerate(instances)
        if type(instance) is SrripPolicy and tiers[idx] == REPLAY_SET
    ] if (part is not None and use_np and part.blocks_np is not None) else []
    if len(stacked) >= 2:
        kernel_start = perf_counter()
        hits_list = _count_rrip_sync_stacked(
            part, geometry.ways,
            [(instances[idx].rrpv_max, instances[idx].rrpv_max - 1)
             for idx in stacked],
        )
        elapsed = perf_counter() - kernel_start
        if profile is not None:
            profile["stacked_kernel"] = elapsed
            profile["stacked_variants"] = len(stacked)
        for idx, hits in zip(stacked, hits_list):
            instances[idx].bind(geometry)  # grid cells consume their instance
            results[idx] = LlcSimResult(
                policy=instances[idx].name,
                stream_name=stream.name,
                accesses=n,
                hits=hits,
                misses=n - hits,
                elapsed_sec=elapsed / len(stacked),
                tier=REPLAY_GRID,
                backend="numpy",
            )
    for idx, instance in enumerate(instances):
        if results[idx] is not None:
            continue
        tier = tiers[idx]
        if tier in (REPLAY_SET, REPLAY_DUELING):
            cell_start = perf_counter()
            instance.bind(geometry)
            hits, __ = _run_partitioned(
                part, geometry, instance, None, use_np, profile=profile
            )
            results[idx] = LlcSimResult(
                policy=instance.name,
                stream_name=stream.name,
                accesses=n,
                hits=hits,
                misses=n - hits,
                elapsed_sec=perf_counter() - cell_start,
                tier=REPLAY_GRID,
                backend="numpy" if use_np else "python",
            )
        elif tier == REPLAY_STACK:
            results[idx] = replay_lru_fastpath(
                stream, geometry, use_numpy=use_numpy, profile=profile
            )
        else:
            # Scalar-tier variants get the native backend when eligible
            # (exact unbound SHiP — parameter variants qualify, the kernel
            # reads each instance's own SHCT geometry); the env escape
            # hatch and everything else land on the scalar model.
            native = try_native_replay(
                stream, geometry, instance, use_numpy=use_numpy,
                profile=profile,
            )
            results[idx] = native if native is not None else _scalar_cell(
                stream, geometry, instance
            )
    telemetry.emit(
        "span", stage="replay_grid", policy="+".join(
            dict.fromkeys(r.policy for r in results)
        ),
        stream=stream.name, wall_sec=round(perf_counter() - start, 6),
        cells=len(instances), groups=1, accesses=n, tier=REPLAY_GRID,
    )
    return results
