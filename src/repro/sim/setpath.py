"""Exact set-partitioned replay for per-set replacement policies.

The scalar :class:`repro.cache.llc.SharedLlc` walk is exact for every
policy but pays full model overhead per access. The stack-distance fast
path (:mod:`repro.sim.fastpath`) removes that overhead for plain LRU only.
This module covers the rest of the policy matrix by exploiting a weaker
structural property than Mattson inclusion: for most policies the sets of
a set-associative cache are **independent state machines**. RRPV vectors,
recency stamps, NRU reference bits, per-way next-use values — all of it is
per-set state, read and written only by accesses mapping to that set. The
replay therefore decomposes exactly:

1. **Partition** — bucket the recorded stream by set index in one
   vectorized pass (stable ``argsort`` over ``block & (num_sets-1)``, with
   a pure-Python twin), keeping each access's global position.
2. **Per-set kernels** — replay each set's subsequence under a compact
   array-state kernel (RRPV list for SRRIP/BRRIP, ordered recency list for
   the LRU/LIP/BIP family, reference bits for NRU, next-use values for
   OPT). Kernels are bit-exact transcriptions of the scalar policies,
   including RNG draw order: stochastic policies draw from per-set streams
   (:meth:`repro.policies.base.ReplacementPolicy.set_rng`), so a set's
   draw indices depend only on its own fill sequence. Count-mode SRRIP
   goes one step further: it is deterministic, so all sets advance in
   lockstep through one synchronous numpy kernel over a padded
   set-by-position block matrix (:func:`_count_rrip_sync`).
3. **Two-phase dueling** (DIP/DRRIP) — sets couple only through the PSEL
   counter, and only leader sets write it. Replay leaders first (their
   behaviour is role-based, never PSEL-dependent), merge their miss
   positions into the exact PSEL time-series, then replay followers
   reading the reconstructed winner flag at each fill position.

Policies with genuinely global state — SHiP's SHCT is trained by every
set's fills, hits, and evictions — have no exact decomposition and stay on
the scalar model (tier ``scalar``); DESIGN.md decision 9 has the argument.

Observer-carrying replays additionally record the residency skeleton
(fills, evictions, way assignments) per set and stitch it back into global
fill order, reusing the fast path's metadata reconstruction and observer
replay verbatim — observers see exactly the callback sequence the scalar
model would have produced.

:func:`try_fast_replay` is the single dispatch point: it resolves the
effective tier (declared tier ∧ kernel availability), routes ``stack`` to
the stack-distance path and ``set``/``dueling`` here, and returns ``None``
for scalar so the caller can fall back to the full model.
"""

from array import array
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.common.npsupport import require_numpy, should_vectorize
from repro.common.rng import derive_seed
from repro.policies.base import (
    REPLAY_DUELING,
    REPLAY_SCALAR,
    REPLAY_SET,
    REPLAY_STACK,
    ReplacementPolicy,
)
from repro.policies.dip import BipPolicy, DipPolicy, DuelingController
from repro.policies.lru import LipPolicy, LruPolicy
from repro.policies.nru import NruPolicy
from repro.policies.opt import NO_NEXT_USE, BeladyOptPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.registry import POLICY_NAMES, make_policy, policy_class
from repro.policies.rrip import BrripPolicy, DrripPolicy, SrripPolicy
from repro.sim import telemetry
from repro.sim.fastpath import (
    VECTORIZE_THRESHOLD,
    LruReplayReconstruction,
    _reconstruct_numpy,
    _reconstruct_python,
    _replay_observers,
    fastpath_enabled,
    replay_lru_fastpath,
    replay_tier_of,
)
from repro.sim.nativepath import resolve_kernel_jobs, try_native_replay
from repro.sim.results import LlcSimResult

_FAMILY_RECENCY = "recency"
_FAMILY_RRIP = "rrip"
_FAMILY_NRU = "nru"
_FAMILY_RANDOM = "random"
_FAMILY_OPT = "opt"

_KERNEL_FAMILIES: Dict[type, str] = {
    LruPolicy: _FAMILY_RECENCY,
    LipPolicy: _FAMILY_RECENCY,
    BipPolicy: _FAMILY_RECENCY,
    DipPolicy: _FAMILY_RECENCY,
    SrripPolicy: _FAMILY_RRIP,
    BrripPolicy: _FAMILY_RRIP,
    DrripPolicy: _FAMILY_RRIP,
    NruPolicy: _FAMILY_NRU,
    RandomPolicy: _FAMILY_RANDOM,
    BeladyOptPolicy: _FAMILY_OPT,
}
"""Exact classes a set kernel exists for.

Keyed by exact type, deliberately: a subclass that changed behaviour must
not ride its parent's kernel (and it already resolves to the scalar tier
through the non-inheriting :meth:`ReplacementPolicy.replay_tier`, so this
table is the second of two independent guards).
"""

# Insertion modes of the recency (stamp-ordered) family.
_MODE_MRU = 0
_MODE_LIP = 1
_MODE_BIP = 2

_RECENCY_MODES = {LruPolicy: _MODE_MRU, LipPolicy: _MODE_LIP, BipPolicy: _MODE_BIP}


def setpath_tier_of(policy) -> str:
    """The *effective* replay tier of a policy name, class, or instance.

    The declared tier (:func:`repro.sim.fastpath.replay_tier_of`) demoted
    to ``scalar`` when no exact-type kernel exists in
    :data:`_KERNEL_FAMILIES` — both conditions must hold for the
    set-partitioned engine to run.
    """
    tier = replay_tier_of(policy)
    if tier not in (REPLAY_SET, REPLAY_DUELING):
        return tier
    if isinstance(policy, str):
        cls = policy_class(policy)
    elif isinstance(policy, type):
        cls = policy
    else:
        cls = type(policy)
    if cls is None or cls not in _KERNEL_FAMILIES:
        return REPLAY_SCALAR
    return tier


def replay_tier_table() -> Dict[str, str]:
    """Effective replay tier of every registered policy name, plus OPT."""
    table = {name: setpath_tier_of(name) for name in POLICY_NAMES}
    table["opt"] = setpath_tier_of(BeladyOptPolicy)
    return table


# ----------------------------------------------------------------------
# Phase 1: stream partition
# ----------------------------------------------------------------------

class StreamPartition:
    """The recorded stream bucketed by set index.

    ``blocks[starts[s]:starts[s+1]]`` is set ``s``'s access subsequence in
    stream order; ``order`` holds each grouped access's global stream
    position (``order_np``/``blocks_np`` are the same columns as numpy
    arrays when the vectorized bucketing built them, else ``None``).
    """

    __slots__ = (
        "num_sets", "blocks", "order", "starts", "order_np", "blocks_np",
    )


def partition_stream(
    blocks,
    num_sets: int,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> StreamPartition:
    """Bucket ``blocks`` by ``block & (num_sets - 1)`` preserving order.

    One stable ``argsort`` over the set-index column on the numpy path; a
    per-set bucket append on the Python twin. Both produce identical
    grouped columns (equivalence-tested).
    """
    n = len(blocks)
    part = StreamPartition()
    part.num_sets = num_sets
    start = perf_counter()
    if should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD):
        np = require_numpy()
        if isinstance(blocks, array) and blocks.typecode == "q":
            column = np.frombuffer(blocks, dtype=np.int64)
        else:
            column = np.asarray(blocks, dtype=np.int64)
        sets = column & (num_sets - 1)
        order_np = np.argsort(sets, kind="stable")
        counts = np.bincount(sets, minlength=num_sets)
        starts = np.zeros(num_sets + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        grouped = column[order_np]
        part.blocks = grouped.tolist()
        part.order = order_np.tolist()
        part.starts = starts.tolist()
        part.order_np = order_np
        part.blocks_np = grouped
        kernel = "numpy"
    else:
        mask = num_sets - 1
        buckets: List[List[int]] = [[] for __ in range(num_sets)]
        for i, block in enumerate(blocks):
            buckets[block & mask].append(i)
        order: List[int] = []
        starts = [0]
        for bucket in buckets:
            order.extend(bucket)
            starts.append(len(order))
        part.blocks = [blocks[i] for i in order]
        part.order = order
        part.starts = starts
        part.order_np = None
        part.blocks_np = None
        kernel = "python"
    if profile is not None:
        profile["partition"] = perf_counter() - start
        profile["partition_kernel"] = kernel
    return part


# ----------------------------------------------------------------------
# Phase 2a: count kernels (classification only, no residency skeleton)
# ----------------------------------------------------------------------

def _count_rrip(seg, ways, rmax, rng, throttle) -> int:
    """SRRIP (``rng`` None) / BRRIP count kernel for one set."""
    way_of = {}
    blk = [0] * ways
    rrpv = [rmax] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for block in seg:
        way = get(block)
        if way is not None:
            rrpv[way] = 0
            hits += 1
            continue
        if filled < ways:
            way = filled
            filled += 1
        else:
            top = max(rrpv)
            if top != rmax:
                # Aging: the scalar +1-all rounds until some way reaches
                # rmax add the same delta to every way.
                delta = rmax - top
                for w in range(ways):
                    rrpv[w] += delta
            way = rrpv.index(rmax)
            del way_of[blk[way]]
        if rng is None or rng.randrange(throttle) == 0:
            rrpv[way] = rmax - 1
        else:
            rrpv[way] = rmax
        blk[way] = block
        way_of[block] = way
    return hits


def _count_rrip_sync(part: StreamPartition, ways: int, rmax: int) -> int:
    """Synchronous vectorized SRRIP count kernel: all sets step together.

    SRRIP is deterministic (no RNG draws), so its per-set recurrence can
    run as one numpy computation over a padded ``(num_sets, longest_set)``
    block matrix: step ``i`` processes every set's ``i``-th access at
    once. State is a resident-block matrix and an RRPV matrix; hit
    detection is an equality broadcast, the +1-until-saturated aging
    rounds collapse to one per-row delta (same algebra as
    :func:`_count_rrip`), and the victim is each row's first RRPV-max way.
    Per-access Python overhead amortizes across all sets, which is where
    the set tier's headroom over the per-set list kernels comes from.

    Padding uses ``-1`` (block addresses are non-negative) and the
    resident matrix also initializes to ``-1``; ``active`` masks padded
    lanes out of hit detection so a padded ``-1`` can never "hit" a
    still-cold way, and misses are masked the same way so padded lanes
    never fill.
    """
    np = require_numpy()
    starts = np.asarray(part.starts, dtype=np.int64)
    lens = np.diff(starts)
    if len(lens) == 0 or part.blocks_np is None:
        return 0
    maxlen = int(lens.max())
    num_sets = part.num_sets
    seg = np.full((num_sets, maxlen), -1, dtype=np.int64)
    col = np.arange(maxlen)
    # Row-major boolean fill matches per-set order because blocks_np is
    # grouped by set with each set's subsequence in stream order.
    seg[col[None, :] < lens[:, None]] = part.blocks_np
    blk = np.full((num_sets, ways), -1, dtype=np.int64)
    rrpv = np.full((num_sets, ways), rmax, dtype=np.int64)
    filled = np.zeros(num_sets, dtype=np.int64)
    rows = np.arange(num_sets)
    hits = 0
    for i in range(maxlen):
        b = seg[:, i]
        active = b >= 0
        match = blk == b[:, None]
        is_hit = match.any(axis=1) & active
        hit_rows = rows[is_hit]
        if hit_rows.size:
            hit_ways = match[is_hit].argmax(axis=1)
            rrpv[hit_rows, hit_ways] = 0
            hits += hit_rows.size
        miss = active & ~is_hit
        if not miss.any():
            continue
        miss_rows = rows[miss]
        fill_count = filled[miss_rows]
        cold = fill_count < ways
        way = np.empty(miss_rows.size, dtype=np.int64)
        way[cold] = fill_count[cold]
        filled[miss_rows[cold]] += 1
        full_rows = miss_rows[~cold]
        if full_rows.size:
            sub = rrpv[full_rows]
            top = sub.max(axis=1)
            sub += (rmax - top)[:, None]
            way[~cold] = (sub == rmax).argmax(axis=1)
            rrpv[full_rows] = sub
        rrpv[miss_rows, way] = rmax - 1
        blk[miss_rows, way] = b[miss_rows]
    return hits


def _count_rrip_sync_stacked(
    part: StreamPartition, ways: int, configs
) -> List[int]:
    """Stacked synchronous SRRIP kernel: every parameter variant at once.

    ``configs`` is a sequence of ``(rmax, insertion_rrpv)`` pairs — one per
    grid variant. State generalizes :func:`_count_rrip_sync` by a leading
    variant axis flattened into the row dimension: row ``v * num_sets + s``
    is variant ``v``'s copy of set ``s``. Each step broadcasts the same
    block column to every variant (``np.tile``); per-row ``rmax``/insertion
    vectors (``np.repeat`` over the variant axis) parameterize the aging
    and fill updates; per-variant hits come back from one ``bincount`` over
    ``row // num_sets``. The per-step Python overhead — the reason a warm
    parameter sweep used to cost one full replay per variant — is paid once
    for the whole grid.

    Exactness: variants never interact (disjoint row blocks), so each
    variant's rows step through exactly the recurrence its own
    :func:`_count_rrip_sync` run would — the differential suite pins
    bit-identity per variant.

    Two representation changes keep the stacked step from costing what
    ``nv`` independent steps would:

    * **Compact block ids** — the kernel only ever compares blocks for
      equality, so the address column is remapped through ``np.unique``
      to dense ``int32`` ids once, halving the traffic of the dominant
      ``(rows, ways)`` comparison.
    * **Offset-form RRPVs** — the true RRPV of ``(row, way)`` is
      ``rel[row, way] + off[row]``. The aging rounds on a victimless
      miss add the same delta to every way of the row, which in offset
      form is one scatter-add into ``off`` instead of a gather / age /
      write-back round trip over the row's RRPV vector; hits and
      insertions store absolute values minus the row offset. ``argmax``
      over ``rel`` still finds the victim because the offset is uniform
      within a row.
    """
    np = require_numpy()
    nv = len(configs)
    starts = np.asarray(part.starts, dtype=np.int64)
    lens = np.diff(starts)
    if nv == 0 or len(lens) == 0 or part.blocks_np is None:
        return [0] * nv
    maxlen = int(lens.max())
    num_sets = part.num_sets
    ids = np.unique(part.blocks_np, return_inverse=True)[1].astype(np.int32)
    seg = np.full((num_sets, maxlen), -1, dtype=np.int32)
    col = np.arange(maxlen)
    seg[col[None, :] < lens[:, None]] = ids
    total = nv * num_sets
    rmax_rows = np.repeat(
        np.asarray([rmax for rmax, __ in configs], dtype=np.int64), num_sets
    )
    ins_rows = np.repeat(
        np.asarray([ins for __, ins in configs], dtype=np.int64), num_sets
    )
    blk = np.full((total, ways), -1, dtype=np.int32)
    rel = np.tile(rmax_rows[:, None], (1, ways))
    off = np.zeros(total, dtype=np.int64)
    filled = np.zeros(total, dtype=np.int64)
    hits = np.zeros(nv, dtype=np.int64)
    segT = np.tile(seg, (nv, 1)).T.copy()  # (maxlen, total), contiguous rows
    actT = segT >= 0
    match = np.empty((total, ways), dtype=bool)
    for i in range(maxlen):
        b = segT[i]
        np.equal(blk, b[:, None], out=match)
        is_hit = match.any(axis=1)
        is_hit &= actT[i]
        hit_rows = np.flatnonzero(is_hit)
        if hit_rows.size:
            hit_ways = match.argmax(axis=1)[hit_rows]
            rel[hit_rows, hit_ways] = -off[hit_rows]
            hits += is_hit.reshape(nv, num_sets).sum(axis=1)
        miss_rows = np.flatnonzero(actT[i] ^ is_hit)
        if not miss_rows.size:
            continue
        fill_count = filled[miss_rows]
        cold = fill_count < ways
        way = fill_count.copy()
        filled[miss_rows[cold]] += 1
        full_rows = miss_rows[~cold]
        if full_rows.size:
            sub = rel[full_rows]
            victim = sub.argmax(axis=1)
            top = sub[np.arange(full_rows.size), victim] + off[full_rows]
            off[full_rows] += rmax_rows[full_rows] - top
            way[~cold] = victim
        rel[miss_rows, way] = ins_rows[miss_rows] - off[miss_rows]
        blk[miss_rows, way] = b[miss_rows]
    return [int(h) for h in hits]


def _count_rrip_roles(seg, pos, ways, rmax, bimodal, rng, throttle,
                      use_b, fills) -> int:
    """DRRIP leader/follower count kernel for one set.

    Leaders pass ``use_b=None`` (``bimodal`` fixes the role: False = SRRIP
    constituent A, True = BRRIP constituent B) and a ``fills`` list that
    receives every miss's global position. Followers pass the per-access
    ``use_b`` flags reconstructed from the PSEL series.
    """
    way_of = {}
    blk = [0] * ways
    rrpv = [rmax] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for idx in range(len(seg)):
        block = seg[idx]
        way = get(block)
        if way is not None:
            rrpv[way] = 0
            hits += 1
            continue
        if fills is not None:
            fills.append(pos[idx])
        if filled < ways:
            way = filled
            filled += 1
        else:
            top = max(rrpv)
            if top != rmax:
                delta = rmax - top
                for w in range(ways):
                    rrpv[w] += delta
            way = rrpv.index(rmax)
            del way_of[blk[way]]
        b = bimodal if use_b is None else use_b[idx]
        if not b or rng.randrange(throttle) == 0:
            rrpv[way] = rmax - 1
        else:
            rrpv[way] = rmax
        blk[way] = block
        way_of[block] = way
    return hits


def _count_recency(seg, ways, mode, rng, throttle) -> int:
    """LRU/LIP/BIP count kernel: residents kept in LRU→MRU stamp order."""
    st: List[int] = []
    hits = 0
    for block in seg:
        if block in st:
            st.remove(block)
            st.append(block)
            hits += 1
            continue
        if len(st) == ways:
            del st[0]
        if mode == _MODE_MRU:
            st.append(block)
        elif mode == _MODE_LIP:
            st.insert(0, block)
        elif rng.randrange(throttle) == 0:
            st.append(block)
        else:
            st.insert(0, block)
    return hits


def _count_recency_roles(seg, pos, ways, mode, rng, throttle,
                         use_b, fills) -> int:
    """DIP leader/follower count kernel (see :func:`_count_rrip_roles`)."""
    st: List[int] = []
    hits = 0
    for idx in range(len(seg)):
        block = seg[idx]
        if block in st:
            st.remove(block)
            st.append(block)
            hits += 1
            continue
        if fills is not None:
            fills.append(pos[idx])
        if len(st) == ways:
            del st[0]
        m = mode if use_b is None else (_MODE_BIP if use_b[idx] else _MODE_MRU)
        if m == _MODE_MRU:
            st.append(block)
        elif m == _MODE_LIP:
            st.insert(0, block)
        elif rng.randrange(throttle) == 0:
            st.append(block)
        else:
            st.insert(0, block)
    return hits


def _count_nru(seg, ways) -> int:
    """NRU count kernel: one reference bit per way."""
    way_of = {}
    blk = [0] * ways
    bits = [0] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for block in seg:
        way = get(block)
        if way is not None:
            hits += 1
        else:
            if filled < ways:
                way = filled
                filled += 1
            else:
                # At ways == 1 the touch rule keeps the single bit set, so
                # no clear way exists; mirror the scalar model's way-0
                # fallback (unreachable for ways >= 2).
                way = bits.index(0) if 0 in bits else 0
                del way_of[blk[way]]
            blk[way] = block
            way_of[block] = way
        bits[way] = 1
        if 0 not in bits:
            for i in range(ways):
                bits[i] = 0
            bits[way] = 1
    return hits


def _count_random(seg, ways, rng) -> int:
    """Random count kernel: the per-set stream draws once per eviction."""
    way_of = {}
    blk = [0] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for block in seg:
        way = get(block)
        if way is not None:
            hits += 1
            continue
        if filled < ways:
            way = filled
            filled += 1
        else:
            way = rng.randrange(ways)
            del way_of[blk[way]]
        blk[way] = block
        way_of[block] = way
    return hits


def _count_opt(seg, seg_next, ways) -> int:
    """Belady OPT count kernel over the set's gathered next-use values."""
    way_of = {}
    blk = [0] * ways
    nxt = [NO_NEXT_USE] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for block, next_pos in zip(seg, seg_next):
        way = get(block)
        if way is not None:
            nxt[way] = next_pos
            hits += 1
            continue
        if filled < ways:
            way = filled
            filled += 1
        else:
            way = nxt.index(max(nxt))
            del way_of[blk[way]]
        nxt[way] = next_pos
        blk[way] = block
        way_of[block] = way
    return hits


# ----------------------------------------------------------------------
# Phase 2b: walk kernels (classification + residency skeleton recording)
# ----------------------------------------------------------------------

class _WalkBuf:
    """Skeleton accumulator shared by every set's walk kernel.

    Residency ids here are *concat ids*: assigned in set-processing order,
    remapped to global fill order by :func:`_assemble_walk`. The per-access
    ``distances``/``rids`` columns are indexed by global position directly
    (each set writes only its own positions); distances use the degenerate
    hit/miss encoding (0 for hits, ``ways`` for misses) — non-LRU policies
    have no stack distance, and nothing downstream of the walk reads more
    than the hit/miss classification.
    """

    __slots__ = ("n", "distances", "rids", "res_block", "res_fill",
                 "res_end", "res_way", "evicted", "live", "counter")

    def __init__(self, n: int):
        self.n = n
        self.distances = array("i", bytes(4 * n))
        self.rids = array("q", bytes(8 * n))
        self.res_block: List[int] = []
        self.res_fill: List[int] = []
        self.res_end: List[int] = []
        self.res_way: List[int] = []
        self.evicted: List[int] = []
        self.live: List[Tuple[int, int, int]] = []
        self.counter = 0


def _walk_rrip(seg, pos, ways, rmax, bimodal, rng, throttle, use_b, fills,
               buf, set_index) -> int:
    """RRIP walk kernel: plain (``use_b``/``fills`` None), leader, follower."""
    distances = buf.distances
    rids = buf.rids
    res_end = buf.res_end
    evicted = buf.evicted
    counter = buf.counter
    way_of = {}
    id_of = {}
    blk = [0] * ways
    rrpv = [rmax] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for idx in range(len(seg)):
        block = seg[idx]
        p = pos[idx]
        way = get(block)
        if way is not None:
            rrpv[way] = 0
            distances[p] = 0
            rids[p] = id_of[block]
            hits += 1
            continue
        distances[p] = ways
        if fills is not None:
            fills.append(p)
        new_id = counter
        counter += 1
        if filled < ways:
            way = filled
            filled += 1
            evicted.append(-1)
        else:
            top = max(rrpv)
            if top != rmax:
                delta = rmax - top
                for w in range(ways):
                    rrpv[w] += delta
            way = rrpv.index(rmax)
            victim = blk[way]
            vid = id_of.pop(victim)
            del way_of[victim]
            res_end[vid] = p
            evicted.append(vid)
        b = bimodal if use_b is None else use_b[idx]
        if not b or (rng is not None and rng.randrange(throttle) == 0):
            rrpv[way] = rmax - 1
        else:
            rrpv[way] = rmax
        blk[way] = block
        way_of[block] = way
        id_of[block] = new_id
        buf.res_block.append(block)
        buf.res_fill.append(p)
        res_end.append(-1)
        buf.res_way.append(way)
        rids[p] = new_id
    buf.counter = counter
    live = buf.live
    for w in range(filled):
        live.append((set_index, w, id_of[blk[w]]))
    return hits


def _walk_recency(seg, pos, ways, mode, rng, throttle, use_b, fills,
                  buf, set_index) -> int:
    """Recency-family walk kernel: plain LRU/LIP/BIP, DIP leader, follower."""
    distances = buf.distances
    rids = buf.rids
    res_end = buf.res_end
    evicted = buf.evicted
    counter = buf.counter
    st: List[int] = []
    way_of = {}
    id_of = {}
    blk = [0] * ways
    hits = 0
    for idx in range(len(seg)):
        block = seg[idx]
        p = pos[idx]
        rid = id_of.get(block)
        if rid is not None:
            st.remove(block)
            st.append(block)
            distances[p] = 0
            rids[p] = rid
            hits += 1
            continue
        distances[p] = ways
        if fills is not None:
            fills.append(p)
        new_id = counter
        counter += 1
        if len(st) == ways:
            victim = st.pop(0)
            vid = id_of.pop(victim)
            way = way_of.pop(victim)
            res_end[vid] = p
            evicted.append(vid)
        else:
            way = len(st)
            evicted.append(-1)
        m = mode if use_b is None else (_MODE_BIP if use_b[idx] else _MODE_MRU)
        if m == _MODE_MRU:
            st.append(block)
        elif m == _MODE_LIP:
            st.insert(0, block)
        elif rng.randrange(throttle) == 0:
            st.append(block)
        else:
            st.insert(0, block)
        way_of[block] = way
        id_of[block] = new_id
        blk[way] = block
        buf.res_block.append(block)
        buf.res_fill.append(p)
        res_end.append(-1)
        buf.res_way.append(way)
        rids[p] = new_id
    buf.counter = counter
    live = buf.live
    for w in range(len(st)):
        live.append((set_index, w, id_of[blk[w]]))
    return hits


def _walk_nru(seg, pos, ways, buf, set_index) -> int:
    """NRU walk kernel."""
    distances = buf.distances
    rids = buf.rids
    res_end = buf.res_end
    evicted = buf.evicted
    counter = buf.counter
    way_of = {}
    id_of = {}
    blk = [0] * ways
    bits = [0] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for idx in range(len(seg)):
        block = seg[idx]
        p = pos[idx]
        way = get(block)
        if way is not None:
            distances[p] = 0
            rids[p] = id_of[block]
            hits += 1
        else:
            distances[p] = ways
            new_id = counter
            counter += 1
            if filled < ways:
                way = filled
                filled += 1
                evicted.append(-1)
            else:
                # ways == 1: no clear bit exists; scalar falls back to 0.
                way = bits.index(0) if 0 in bits else 0
                victim = blk[way]
                vid = id_of.pop(victim)
                del way_of[victim]
                res_end[vid] = p
                evicted.append(vid)
            blk[way] = block
            way_of[block] = way
            id_of[block] = new_id
            buf.res_block.append(block)
            buf.res_fill.append(p)
            res_end.append(-1)
            buf.res_way.append(way)
            rids[p] = new_id
        bits[way] = 1
        if 0 not in bits:
            for i in range(ways):
                bits[i] = 0
            bits[way] = 1
    buf.counter = counter
    live = buf.live
    for w in range(filled):
        live.append((set_index, w, id_of[blk[w]]))
    return hits


def _walk_random(seg, pos, ways, rng, buf, set_index) -> int:
    """Random walk kernel."""
    distances = buf.distances
    rids = buf.rids
    res_end = buf.res_end
    evicted = buf.evicted
    counter = buf.counter
    way_of = {}
    id_of = {}
    blk = [0] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for idx in range(len(seg)):
        block = seg[idx]
        p = pos[idx]
        way = get(block)
        if way is not None:
            distances[p] = 0
            rids[p] = id_of[block]
            hits += 1
            continue
        distances[p] = ways
        new_id = counter
        counter += 1
        if filled < ways:
            way = filled
            filled += 1
            evicted.append(-1)
        else:
            way = rng.randrange(ways)
            victim = blk[way]
            vid = id_of.pop(victim)
            del way_of[victim]
            res_end[vid] = p
            evicted.append(vid)
        blk[way] = block
        way_of[block] = way
        id_of[block] = new_id
        buf.res_block.append(block)
        buf.res_fill.append(p)
        res_end.append(-1)
        buf.res_way.append(way)
        rids[p] = new_id
    buf.counter = counter
    live = buf.live
    for w in range(filled):
        live.append((set_index, w, id_of[blk[w]]))
    return hits


def _walk_opt(seg, seg_next, pos, ways, buf, set_index) -> int:
    """Belady OPT walk kernel."""
    distances = buf.distances
    rids = buf.rids
    res_end = buf.res_end
    evicted = buf.evicted
    counter = buf.counter
    way_of = {}
    id_of = {}
    blk = [0] * ways
    nxt = [NO_NEXT_USE] * ways
    filled = 0
    hits = 0
    get = way_of.get
    for idx in range(len(seg)):
        block = seg[idx]
        p = pos[idx]
        way = get(block)
        if way is not None:
            nxt[way] = seg_next[idx]
            distances[p] = 0
            rids[p] = id_of[block]
            hits += 1
            continue
        distances[p] = ways
        new_id = counter
        counter += 1
        if filled < ways:
            way = filled
            filled += 1
            evicted.append(-1)
        else:
            way = nxt.index(max(nxt))
            victim = blk[way]
            vid = id_of.pop(victim)
            del way_of[victim]
            res_end[vid] = p
            evicted.append(vid)
        nxt[way] = seg_next[idx]
        blk[way] = block
        way_of[block] = way
        id_of[block] = new_id
        buf.res_block.append(block)
        buf.res_fill.append(p)
        res_end.append(-1)
        buf.res_way.append(way)
        rids[p] = new_id
    buf.counter = counter
    live = buf.live
    for w in range(filled):
        live.append((set_index, w, id_of[blk[w]]))
    return hits


# ----------------------------------------------------------------------
# Phase 2c: two-phase dueling (PSEL time-series reconstruction)
# ----------------------------------------------------------------------

def _psel_steps(a_fills, b_fills, duel, use_np: bool):
    """Merge leader miss positions into the exact PSEL time-series.

    Returns ``(positions, values, flags)``: the sorted global positions of
    every leader miss (the only events that move PSEL), the PSEL value
    after each event (``values[0]``/``flags[0]`` describe the initial
    state, so both have one more entry than ``positions``), and the
    follower decision ``psel >= threshold`` after each event. The
    saturating walk itself stays scalar — saturation breaks ``cumsum`` —
    but the event merge vectorizes.
    """
    if use_np and (a_fills or b_fills):
        np = require_numpy()
        pos_np = np.asarray(a_fills + b_fills, dtype=np.int64)
        delta_np = np.ones(len(pos_np), dtype=np.int64)
        delta_np[len(a_fills):] = -1
        # Fill positions are unique (one access per position), so the
        # unstable default sort is deterministic here.
        order = np.argsort(pos_np)
        positions = pos_np[order].tolist()
        deltas = delta_np[order].tolist()
    else:
        events = sorted(
            [(p, 1) for p in a_fills] + [(p, -1) for p in b_fills]
        )
        positions = [p for p, __ in events]
        deltas = [d for __, d in events]
    psel = duel.psel
    psel_max = duel.psel_max
    threshold = duel.threshold
    values = [psel]
    flags = [psel >= threshold]
    for delta in deltas:
        if delta > 0:
            if psel < psel_max:
                psel += 1
        elif psel > 0:
            psel -= 1
        values.append(psel)
        flags.append(psel >= threshold)
    return positions, values, flags


def _make_flag_lookup(positions, flags, part: StreamPartition, use_np: bool):
    """Per-set follower-decision gather: ``lookup(lo, hi) -> [bool, ...]``.

    The flag for an access at global position ``p`` is the PSEL decision
    after every leader-miss event strictly before ``p`` — exactly what the
    scalar model reads at that access's fill (a follower's own miss never
    moves PSEL).
    """
    if use_np and part.order_np is not None:
        np = require_numpy()
        pos_np = np.asarray(positions, dtype=np.int64)
        flags_np = np.asarray(flags, dtype=bool)

        def lookup(lo: int, hi: int) -> List[bool]:
            idx = np.searchsorted(pos_np, part.order_np[lo:hi], side="left")
            return flags_np[idx].tolist()
    else:
        order = part.order

        def lookup(lo: int, hi: int) -> List[bool]:
            return [flags[bisect_left(positions, p)] for p in order[lo:hi]]

    return lookup


def _leader_pass(part: StreamPartition, geometry: CacheGeometry,
                 policy, buf: Optional[_WalkBuf]):
    """Replay every leader set; classify followers for the second phase.

    Returns ``(hits, a_fills, b_fills, followers)`` where the fill lists
    hold the global positions of every miss in A- and B-leader sets.
    """
    ways = geometry.ways
    starts = part.starts
    blocks = part.blocks
    order = part.order
    duel = policy.duel
    throttle = policy.throttle
    family = _KERNEL_FAMILIES[type(policy)]
    hits = 0
    a_fills: List[int] = []
    b_fills: List[int] = []
    followers: List[int] = []
    for s in range(part.num_sets):
        role = duel.role(s)
        if role == DuelingController.FOLLOWER:
            followers.append(s)
            continue
        lo, hi = starts[s], starts[s + 1]
        if lo == hi:
            continue
        seg = blocks[lo:hi]
        pos = order[lo:hi]
        is_b = role == DuelingController.LEADER_B
        rng = policy.set_rng(s) if is_b else None
        fills = b_fills if is_b else a_fills
        if family == _FAMILY_RRIP:
            rmax = policy.rrpv_max
            if buf is None:
                hits += _count_rrip_roles(
                    seg, pos, ways, rmax, is_b, rng, throttle, None, fills
                )
            else:
                hits += _walk_rrip(
                    seg, pos, ways, rmax, is_b, rng, throttle, None, fills,
                    buf, s,
                )
        else:
            mode = _MODE_BIP if is_b else _MODE_MRU
            if buf is None:
                hits += _count_recency_roles(
                    seg, pos, ways, mode, rng, throttle, None, fills
                )
            else:
                hits += _walk_recency(
                    seg, pos, ways, mode, rng, throttle, None, fills, buf, s
                )
    return hits, a_fills, b_fills, followers


def _follower_pass(part: StreamPartition, geometry: CacheGeometry,
                   policy, buf: Optional[_WalkBuf], lookup,
                   followers: List[int]) -> int:
    """Replay every follower set against the reconstructed PSEL flags."""
    ways = geometry.ways
    starts = part.starts
    blocks = part.blocks
    order = part.order
    throttle = policy.throttle
    family = _KERNEL_FAMILIES[type(policy)]
    hits = 0
    for s in followers:
        lo, hi = starts[s], starts[s + 1]
        if lo == hi:
            continue
        seg = blocks[lo:hi]
        pos = order[lo:hi]
        use_b = lookup(lo, hi)
        rng = policy.set_rng(s)
        if family == _FAMILY_RRIP:
            rmax = policy.rrpv_max
            if buf is None:
                hits += _count_rrip_roles(
                    seg, pos, ways, rmax, False, rng, throttle, use_b, None
                )
            else:
                hits += _walk_rrip(
                    seg, pos, ways, rmax, False, rng, throttle, use_b, None,
                    buf, s,
                )
        else:
            if buf is None:
                hits += _count_recency_roles(
                    seg, pos, ways, _MODE_MRU, rng, throttle, use_b, None
                )
            else:
                hits += _walk_recency(
                    seg, pos, ways, _MODE_MRU, rng, throttle, use_b, None,
                    buf, s,
                )
    return hits


def _sharded_follower_pass(part: StreamPartition, geometry: CacheGeometry,
                           policy, lookup, followers: List[int],
                           kernel_jobs: int) -> Tuple[int, int]:
    """Count-mode follower phase split across worker threads.

    Followers are independent of each other once the PSEL flag series is
    reconstructed — each reads its own contiguous slice of the partition,
    its own RNG stream, and the shared read-only ``lookup`` closure — so
    contiguous ranges of the follower list shard exactly like the plain
    set-tier count kernels (:func:`_plain_pass`). Per-set RNG streams are
    materialized serially first (``set_rng`` mutates a shared dict).
    Returns ``(hits, threads)`` with the thread count actually used.
    """
    for s in followers:
        policy.set_rng(s)
    jobs = min(kernel_jobs, len(followers))
    # Balanced contiguous ranges: exactly `jobs` non-empty shards.
    bounds = [(i * len(followers) // jobs, (i + 1) * len(followers) // jobs)
              for i in range(jobs)]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        shards = [
            pool.submit(_follower_pass, part, geometry, policy, None,
                        lookup, followers[lo:hi])
            for lo, hi in bounds
        ]
        return sum(shard.result() for shard in shards), jobs


def _gather_next_use(next_use, part: StreamPartition, use_np: bool):
    """Group the precomputed next-use column by the partition order."""
    if use_np and part.order_np is not None:
        np = require_numpy()
        if isinstance(next_use, array) and next_use.typecode == "q":
            column = np.frombuffer(next_use, dtype=np.int64)
        else:
            column = np.asarray(next_use, dtype=np.int64)
        return column[part.order_np].tolist()
    return [next_use[p] for p in part.order]


def _plain_pass_range(part: StreamPartition, geometry: CacheGeometry,
                      policy, buf: Optional[_WalkBuf], grouped_next,
                      s_lo: int, s_hi: int) -> int:
    """Replay the sets in ``[s_lo, s_hi)`` of a non-dueling policy.

    The per-set loop body of :func:`_plain_pass`, extracted so the
    intra-replay sharding can hand disjoint contiguous set ranges to
    worker threads. Thread-safety contract: each set's kernel state is
    local, each set is visited by exactly one caller, and any per-set RNG
    a stochastic family reads must already exist in ``policy._set_rngs``
    (sharded callers pre-create them serially — ``set_rng`` itself mutates
    a shared dict).
    """
    ways = geometry.ways
    starts = part.starts
    blocks = part.blocks
    order = part.order
    cls = type(policy)
    family = _KERNEL_FAMILIES[cls]
    hits = 0
    for s in range(s_lo, s_hi):
        lo, hi = starts[s], starts[s + 1]
        if lo == hi:
            continue
        seg = blocks[lo:hi]
        if family == _FAMILY_RRIP:
            rmax = policy.rrpv_max
            bimodal = cls is BrripPolicy
            rng = policy.set_rng(s) if bimodal else None
            throttle = policy.throttle if bimodal else 0
            if buf is None:
                hits += _count_rrip(seg, ways, rmax, rng, throttle)
            else:
                hits += _walk_rrip(
                    seg, order[lo:hi], ways, rmax, bimodal, rng, throttle,
                    None, None, buf, s,
                )
        elif family == _FAMILY_RECENCY:
            mode = _RECENCY_MODES[cls]
            rng = policy.set_rng(s) if mode == _MODE_BIP else None
            throttle = policy.throttle if mode == _MODE_BIP else 0
            if buf is None:
                hits += _count_recency(seg, ways, mode, rng, throttle)
            else:
                hits += _walk_recency(
                    seg, order[lo:hi], ways, mode, rng, throttle, None, None,
                    buf, s,
                )
        elif family == _FAMILY_NRU:
            if buf is None:
                hits += _count_nru(seg, ways)
            else:
                hits += _walk_nru(seg, order[lo:hi], ways, buf, s)
        elif family == _FAMILY_RANDOM:
            rng = policy.set_rng(s)
            if buf is None:
                hits += _count_random(seg, ways, rng)
            else:
                hits += _walk_random(seg, order[lo:hi], ways, rng, buf, s)
        else:  # _FAMILY_OPT
            seg_next = grouped_next[lo:hi]
            if buf is None:
                hits += _count_opt(seg, seg_next, ways)
            else:
                hits += _walk_opt(seg, seg_next, order[lo:hi], ways, buf, s)
    return hits


# Families whose kernels draw from per-set RNG streams; sharded passes
# pre-create every set's stream serially before spawning workers.
_STOCHASTIC_FAMILIES = frozenset({_FAMILY_RANDOM})
_STOCHASTIC_MODES = frozenset({_MODE_BIP})


def _needs_set_rngs(policy) -> bool:
    """True when ``policy``'s kernel reads ``set_rng`` streams."""
    cls = type(policy)
    family = _KERNEL_FAMILIES[cls]
    if family in _STOCHASTIC_FAMILIES:
        return True
    if family == _FAMILY_RRIP and cls is BrripPolicy:
        return True
    return (family == _FAMILY_RECENCY
            and _RECENCY_MODES[cls] in _STOCHASTIC_MODES)


def _plain_pass(part: StreamPartition, geometry: CacheGeometry,
                policy, buf: Optional[_WalkBuf], use_np: bool,
                kernel_jobs: int = 1) -> Tuple[int, int]:
    """Replay every set of a non-dueling per-set policy.

    With ``kernel_jobs > 1`` in count mode, the per-set loop is sharded
    across worker threads on contiguous set ranges — exact because the
    per-set decomposition already isolates every set's state and RNG
    stream (DESIGN.md decision 11), so the shard boundaries change nothing
    but wall-clock. Walk mode (shared skeleton buffer) stays serial.
    Returns ``(hits, threads)``: the worker-thread count actually used (1
    when the pass ran serially), which is what the result's backend
    provenance records — never the requested job count.
    """
    cls = type(policy)
    family = _KERNEL_FAMILIES[cls]
    grouped_next = None
    if family == _FAMILY_OPT:
        next_use = policy.next_use
        if len(next_use) != len(part.blocks):
            raise SimulationError(
                f"OPT replayed against a mismatched stream: next-use column "
                f"has {len(next_use)} entries for {len(part.blocks)} accesses"
            )
        grouped_next = _gather_next_use(next_use, part, use_np)
    num_sets = part.num_sets
    if buf is None and kernel_jobs > 1 and num_sets > 1:
        if _needs_set_rngs(policy):
            # set_rng lazily fills a shared dict; materialize every
            # stream before any worker thread reads it.
            for s in range(num_sets):
                policy.set_rng(s)
        jobs = min(kernel_jobs, num_sets)
        # Balanced contiguous ranges: exactly `jobs` non-empty shards, so
        # the provenance stamp always matches the threads actually used.
        bounds = [(i * num_sets // jobs, (i + 1) * num_sets // jobs)
                  for i in range(jobs)]
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            shards = [
                pool.submit(_plain_pass_range, part, geometry, policy, None,
                            grouped_next, lo, hi)
                for lo, hi in bounds
            ]
            return sum(shard.result() for shard in shards), jobs
    if (
        buf is None and use_np and part.blocks_np is not None
        and cls is SrripPolicy
    ):
        # Count-mode SRRIP has a fully synchronous vectorized kernel (no
        # RNG, no residency skeleton to record); BRRIP's per-set draws
        # and walk mode stay on the per-set kernels.
        return _count_rrip_sync(part, geometry.ways, policy.rrpv_max), 1
    return _plain_pass_range(part, geometry, policy, buf, grouped_next,
                             0, num_sets), 1


def _run_partitioned(part: StreamPartition, geometry: CacheGeometry,
                     policy, buf: Optional[_WalkBuf], use_np: bool,
                     profile=None, kernel_jobs: int = 1) -> Tuple[int, int]:
    """Replay every set (count mode when ``buf`` is None).

    Returns ``(hits, threads)`` — the hit count and the worker-thread
    count the sharded phase actually used (1 when everything ran
    serially). Dueling policies shard only the follower phase: the leader
    pass must run first to produce the PSEL event series, but once the
    flag lookup exists every follower set is independent
    (:func:`_sharded_follower_pass`), so ``kernel_jobs`` applies there.
    Walk mode (shared skeleton buffer) is always serial.
    """
    start = perf_counter()
    threads = 1
    if type(policy) in (DipPolicy, DrripPolicy):
        hits, a_fills, b_fills, followers = _leader_pass(
            part, geometry, policy, buf
        )
        psel_start = perf_counter()
        positions, __, flags = _psel_steps(
            a_fills, b_fills, policy.duel, use_np
        )
        lookup = _make_flag_lookup(positions, flags, part, use_np)
        if profile is not None:
            profile["psel_series"] = perf_counter() - psel_start
        if buf is None and kernel_jobs > 1 and len(followers) > 1:
            follower_hits, threads = _sharded_follower_pass(
                part, geometry, policy, lookup, followers, kernel_jobs
            )
            hits += follower_hits
        else:
            hits += _follower_pass(
                part, geometry, policy, buf, lookup, followers
            )
    else:
        hits, threads = _plain_pass(part, geometry, policy, buf, use_np,
                                    kernel_jobs=kernel_jobs)
    if profile is not None:
        profile["set_kernels"] = perf_counter() - start
        if threads > 1:
            profile["kernel_threads"] = threads
    return hits, threads


def reconstruct_psel_series(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy,
    use_numpy: Optional[bool] = None,
) -> Tuple[List[int], List[int]]:
    """The exact PSEL time-series of a dueling replay, from leaders alone.

    ``policy`` is an unbound :class:`DipPolicy`/:class:`DrripPolicy`
    instance. Returns ``(positions, values)``: the sorted global stream
    positions of every leader miss, and the PSEL value after each —
    ``values[0]`` is the initial PSEL, so ``len(values) ==
    len(positions) + 1``. ``values[bisect_right(positions, p)]`` is the
    PSEL the scalar model holds after processing the access at position
    ``p`` (the differential suite checks this against a scalar PSEL probe).
    """
    if setpath_tier_of(policy) != REPLAY_DUELING:
        raise SimulationError(
            f"policy {getattr(policy, 'name', policy)!r} is not a dueling "
            f"policy; no PSEL series exists"
        )
    use_np = should_vectorize(use_numpy, len(stream.blocks), VECTORIZE_THRESHOLD)
    part = partition_stream(stream.blocks, geometry.num_sets, use_numpy=use_np)
    policy.bind(geometry)
    __, a_fills, b_fills, ___ = _leader_pass(part, geometry, policy, None)
    positions, values, ____ = _psel_steps(a_fills, b_fills, policy.duel, use_np)
    return positions, values


# ----------------------------------------------------------------------
# Phase 3: walk assembly (concat ids → global fill order) + replay
# ----------------------------------------------------------------------

class SetReplayReconstruction(LruReplayReconstruction):
    """A set-partitioned replay's walk, in the fast path's layout.

    Identical field contract to :class:`LruReplayReconstruction` — so the
    metadata reconstruction and observer replay are reused verbatim — with
    one deliberate difference: ``distances`` carry only the degenerate
    hit/miss encoding (0 for hits, ``ways`` for misses). Non-LRU policies
    have no stack distance; consumers that need true reuse distances (the
    reuse probe) must build a canonical LRU walk separately.
    """

    __slots__ = ()


def _assemble_walk(buf: _WalkBuf, stream: LlcStream,
                   geometry: CacheGeometry, use_np: bool,
                   profile=None) -> SetReplayReconstruction:
    """Stitch per-set skeletons into a global fill-ordered walk."""
    start = perf_counter()
    walk = SetReplayReconstruction()
    n = buf.n
    count = buf.counter
    buf.live.sort()
    if use_np and count:
        np = require_numpy()
        fill_np = np.asarray(buf.res_fill, dtype=np.int64)
        perm = np.argsort(fill_np)  # fill positions are unique
        inv = np.empty(count, dtype=np.int64)
        inv[perm] = np.arange(count, dtype=np.int64)
        walk.res_block = np.asarray(buf.res_block, dtype=np.int64)[perm].tolist()
        walk.res_fill = fill_np[perm].tolist()
        walk.res_end = np.asarray(buf.res_end, dtype=np.int64)[perm].tolist()
        walk.res_way = np.asarray(buf.res_way, dtype=np.int64)[perm].tolist()
        evicted_np = np.asarray(buf.evicted, dtype=np.int64)
        mapped = np.where(
            evicted_np >= 0, inv[np.maximum(evicted_np, 0)], np.int64(-1)
        )
        walk.evicted_rid = mapped[perm].tolist()
        rids_np = np.frombuffer(buf.rids, dtype=np.int64)
        remapped = array("q", bytes(8 * n))
        np.frombuffer(remapped, dtype=np.int64)[...] = inv[rids_np]
        walk.rids = remapped
        walk.live_rids = [int(inv[cid]) for __, ___, cid in buf.live]
    else:
        perm = sorted(range(count), key=buf.res_fill.__getitem__)
        inv = [0] * count
        for global_rid, concat_rid in enumerate(perm):
            inv[concat_rid] = global_rid
        walk.res_block = [buf.res_block[c] for c in perm]
        walk.res_fill = [buf.res_fill[c] for c in perm]
        walk.res_end = [buf.res_end[c] for c in perm]
        walk.res_way = [buf.res_way[c] for c in perm]
        walk.evicted_rid = [
            inv[buf.evicted[c]] if buf.evicted[c] >= 0 else -1 for c in perm
        ]
        rids = buf.rids
        for i in range(n):
            rids[i] = inv[rids[i]]
        walk.rids = rids
        walk.live_rids = [inv[cid] for __, ___, cid in buf.live]
    walk.n = n
    walk.ways = geometry.ways
    walk.set_mask = geometry.num_sets - 1
    walk.distances = buf.distances
    walk.hits = n - count
    walk.misses = count
    walk.evictions = count - len(buf.live)
    if profile is not None:
        profile["assemble"] = perf_counter() - start
        start = perf_counter()
    kernel = "python"
    if use_np:
        if _reconstruct_numpy(walk, stream):
            kernel = "numpy"
    if kernel == "python":
        _reconstruct_python(walk, stream)
    if profile is not None:
        profile["reconstruct"] = perf_counter() - start
        profile["reconstruct_kernel"] = kernel
    return walk


def reconstruct_setpath_replay(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> SetReplayReconstruction:
    """Replay ``stream`` under ``policy`` rebuilding the full walk.

    ``policy`` must be an unbound setpath-eligible instance; it is bound
    here. The returned walk carries the same residency metadata contract
    as :func:`repro.sim.fastpath.reconstruct_lru_replay` (the probe layer
    consumes it), with degenerate distances (see
    :class:`SetReplayReconstruction`).
    """
    tier = setpath_tier_of(policy)
    if tier not in (REPLAY_SET, REPLAY_DUELING):
        raise SimulationError(
            f"policy {getattr(policy, 'name', policy)!r} is not "
            f"setpath-eligible (tier {tier!r})"
        )
    n = len(stream.blocks)
    use_np = should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD)
    part = partition_stream(
        stream.blocks, geometry.num_sets, use_numpy=use_np, profile=profile
    )
    policy.bind(geometry)
    buf = _WalkBuf(n)
    _run_partitioned(part, geometry, policy, buf, use_np, profile=profile)[0]
    return _assemble_walk(buf, stream, geometry, use_np, profile=profile)


def replay_setpath(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    observers: Tuple = (),
    use_numpy: Optional[bool] = None,
    profile=None,
    kernel_jobs: Optional[int] = None,
) -> LlcSimResult:
    """Replay ``stream`` under an unbound per-set policy instance.

    Drop-in replacement for
    ``LlcOnlySimulator(geometry, policy, observers).run(stream)`` for
    setpath-eligible policies: same hit/miss/eviction counts, same observer
    callbacks in the same order (equivalence-tested per policy). Without
    observers the replay is pure classification (count kernels, no
    skeleton). ``kernel_jobs`` (default from ``REPRO_SIM_KERNEL_JOBS``)
    shards the count-mode per-set loop across that many worker threads —
    the plain per-set loop for non-dueling policies
    (:func:`_plain_pass`), the follower phase for DIP/DRRIP once the PSEL
    series is reconstructed (:func:`_sharded_follower_pass`); both are
    bit-identical to the serial pass, and the backend provenance records
    the thread count actually used (``+threadsN``). ``profile``, when a
    dict, receives per-phase wall times (``partition``, ``set_kernels``,
    ``psel_series`` for dueling, ``kernel_threads`` when sharded,
    ``assemble``/``reconstruct``/``observer_replay`` with observers).
    """
    start = perf_counter()
    tier = setpath_tier_of(policy)
    if tier not in (REPLAY_SET, REPLAY_DUELING):
        raise SimulationError(
            f"policy {getattr(policy, 'name', policy)!r} is not "
            f"setpath-eligible (tier {tier!r})"
        )
    n = len(stream.blocks)
    use_np = should_vectorize(use_numpy, n, VECTORIZE_THRESHOLD)
    backend = "numpy" if use_np else "python"
    if observers:
        walk = reconstruct_setpath_replay(
            stream, geometry, policy, use_numpy=use_numpy, profile=profile
        )
        phase_start = perf_counter()
        _replay_observers(walk, stream, tuple(observers))
        if profile is not None:
            profile["observer_replay"] = perf_counter() - phase_start
        hits, misses = walk.hits, walk.misses
    else:
        jobs = resolve_kernel_jobs(kernel_jobs)
        part = partition_stream(
            stream.blocks, geometry.num_sets, use_numpy=use_np, profile=profile
        )
        policy.bind(geometry)
        hits, threads = _run_partitioned(part, geometry, policy, None, use_np,
                                         profile=profile, kernel_jobs=jobs)
        misses = n - hits
        if threads > 1:
            # The *effective* thread count — what the sharded phase really
            # used — never the requested job count: a cell whose tier
            # cannot shard (single set, walk mode, too few followers) must
            # not claim parallelism it did not have.
            backend = f"{backend}+threads{threads}"
    return LlcSimResult(
        policy=policy.name,
        stream_name=stream.name,
        accesses=n,
        hits=hits,
        misses=misses,
        elapsed_sec=perf_counter() - start,
        tier=tier,
        backend=backend,
    )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

def try_fast_replay(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy,
    seed: int = 0,
    observers: Tuple = (),
    fastpath: Optional[bool] = None,
    use_numpy: Optional[bool] = None,
    profile=None,
    native: Optional[bool] = None,
    kernel_jobs: Optional[int] = None,
) -> Optional[LlcSimResult]:
    """Replay through the fastest exact tier, or ``None`` for scalar.

    The single dispatch point the replay callers share: resolves the
    effective tier of ``policy`` (a registered name or an **unbound**
    instance), routes ``stack`` to the stack-distance path and
    ``set``/``dueling`` to the set-partitioned engine, and — when the tier
    resolves to scalar — offers the access to the native scalar backend
    (:func:`repro.sim.nativepath.try_native_replay`, gated by ``native`` /
    ``REPRO_SIM_NO_NATIVE``) before returning ``None`` for the model.
    Because the native hook sits behind the ``fastpath`` gate,
    ``fastpath=False`` still yields the pure scalar reference the
    differential suite compares everything against.

    ``seed`` feeds the standard ``derive_seed(seed, "replay", name)``
    stream only when ``policy`` is a name; an instance already carries its
    own seed, so callers with bespoke seed derivations (the oracle runner,
    the characterization report) pass instances. ``kernel_jobs`` shards
    the set-partitioned count kernels intra-replay (see
    :func:`replay_setpath`).
    """
    if not fastpath_enabled(fastpath):
        return None
    tier = setpath_tier_of(policy)
    if tier == REPLAY_STACK:
        result = replay_lru_fastpath(
            stream, geometry, observers=observers, use_numpy=use_numpy,
            profile=profile,
        )
    elif tier in (REPLAY_SET, REPLAY_DUELING):
        if isinstance(policy, ReplacementPolicy):
            instance = policy
        elif isinstance(policy, str):
            instance = make_policy(policy, seed=derive_seed(seed, "replay", policy))
        else:
            return None
        result = replay_setpath(
            stream, geometry, instance, observers=observers,
            use_numpy=use_numpy, profile=profile, kernel_jobs=kernel_jobs,
        )
    else:
        result = try_native_replay(
            stream, geometry, policy, observers=observers, native=native,
            use_numpy=use_numpy, profile=profile,
        )
        if result is None:
            return None
    telemetry.emit(
        "span", stage="replay", policy=result.policy,
        stream=result.stream_name, wall_sec=round(result.elapsed_sec, 6),
        accesses=result.accesses, hits=result.hits, misses=result.misses,
        fastpath=True, tier=result.tier, backend=result.backend,
    )
    return result
