"""LLC-only replay simulator.

Replays a recorded :class:`repro.cache.LlcStream` against a single
:class:`SharedLlc`. Because the stream was fixed by the recording pass,
every policy replayed this way sees identical accesses — the property OPT,
the oracle, and fair policy comparisons all rely on.

This model loop is also the *reference semantics* of every accelerated
replay tier: the stack fast path, the set-partitioned and dueling kernels
(:mod:`repro.sim.setpath`), and the native scalar/oracle backends
(:mod:`repro.sim.nativepath`) are all required to reproduce, bit for bit,
what this loop produces — hit/miss counts, per-set decision order, and
(for the oracle wrapper) the study counters. Results therefore carry
provenance: this simulator stamps ``backend="model"``; accelerated paths
stamp their tier/backend (``compact``/``numba``/``numpy``/``python``,
plus ``+threadsN`` when a replay genuinely sharded over N worker
threads). Disabling the accelerations (``fastpath=False``,
``native=False``, or the ``REPRO_SIM_NO_*`` environment toggles) must
always land back here. Stream columns are duck-typed — ``array.array``
from the builder, numpy views after a zero-copy load — and the loop only
relies on iteration and ``!=``, which both provide.
"""

from time import perf_counter
from typing import Tuple

from repro.cache.llc import SharedLlc
from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.policies.base import ReplacementPolicy
from repro.sim import telemetry
from repro.sim.results import LlcSimResult


class LlcOnlySimulator:
    """Drives one policy over recorded LLC streams."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        observers: Tuple = (),
    ):
        self.llc = SharedLlc(geometry, policy, observers=observers)

    def run(
        self, stream: LlcStream, flush: bool = True, profile=None
    ) -> LlcSimResult:
        """Replay ``stream`` to completion.

        The hot loop zips the four columns instead of indexing each per
        position (four fewer ``__getitem__`` calls per access) and hoists
        the access method into a local. The result records replay
        throughput as ``accesses_per_sec``.

        Args:
            stream: the recorded LLC demand stream.
            flush: notify observers of still-live residencies afterwards.
            profile: optional dict receiving per-stage wall times
                (``replay_loop``, ``flush``) for the replay profiler;
                ``None`` (the default) times nothing beyond the loop.
        """
        access = self.llc.access
        start = perf_counter()
        for core, pc, block, write in zip(*stream.columns()):
            access(core, pc, block, write != 0)
        elapsed = perf_counter() - start
        if flush:
            flush_start = perf_counter()
            self.llc.flush_residencies()
            if profile is not None:
                profile["flush"] = perf_counter() - flush_start
        if profile is not None:
            profile["replay_loop"] = elapsed
        result = LlcSimResult(
            policy=self.llc.policy.name,
            stream_name=stream.name,
            accesses=self.llc.access_count,
            hits=self.llc.hits,
            misses=self.llc.misses,
            elapsed_sec=elapsed,
            backend="model",
        )
        # One event per replay (never per access): telemetry overhead on a
        # warm replay cell is a single line append, disabled it is one
        # global None check inside telemetry.emit.
        telemetry.emit(
            "span", stage="replay", policy=result.policy,
            stream=result.stream_name, wall_sec=round(elapsed, 6),
            accesses=result.accesses, hits=result.hits,
            misses=result.misses, fastpath=False, tier=result.tier,
            backend=result.backend,
        )
        return result
