"""LLC-only replay simulator.

Replays a recorded :class:`repro.cache.LlcStream` against a single
:class:`SharedLlc`. Because the stream was fixed by the recording pass,
every policy replayed this way sees identical accesses — the property OPT,
the oracle, and fair policy comparisons all rely on.
"""

from typing import Tuple

from repro.cache.llc import SharedLlc
from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.policies.base import ReplacementPolicy
from repro.sim.results import LlcSimResult


class LlcOnlySimulator:
    """Drives one policy over recorded LLC streams."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        observers: Tuple = (),
    ):
        self.llc = SharedLlc(geometry, policy, observers=observers)

    def run(self, stream: LlcStream, flush: bool = True) -> LlcSimResult:
        """Replay ``stream`` to completion.

        Args:
            stream: the recorded LLC demand stream.
            flush: notify observers of still-live residencies afterwards.
        """
        cores, pcs, blocks, writes = stream.columns()
        access = self.llc.access
        for i in range(len(cores)):
            access(cores[i], pcs[i], blocks[i], writes[i] != 0)
        if flush:
            self.llc.flush_residencies()
        return LlcSimResult(
            policy=self.llc.policy.name,
            stream_name=stream.name,
            accesses=self.llc.access_count,
            hits=self.llc.hits,
            misses=self.llc.misses,
        )
