"""Result records for simulation runs."""

from dataclasses import dataclass, field
from typing import Dict

from repro.common.stats import ratio


@dataclass(frozen=True)
class LlcSimResult:
    """Outcome of replaying one LLC stream under one policy.

    ``elapsed_sec``/``accesses_per_sec`` report replay throughput; they are
    excluded from equality so that determinism checks (bit-identical
    results across serial and parallel runs) compare outcomes, not clocks.
    """

    policy: str
    stream_name: str
    accesses: int
    hits: int
    misses: int
    elapsed_sec: float = field(default=0.0, compare=False, repr=False)

    @property
    def accesses_per_sec(self) -> float:
        """Replay throughput (0.0 when the run was not timed)."""
        if self.elapsed_sec <= 0.0:
            return 0.0
        return self.accesses / self.elapsed_sec

    @property
    def miss_ratio(self) -> float:
        """Misses per access."""
        return ratio(self.misses, self.accesses)

    @property
    def hit_ratio(self) -> float:
        """Hits per access."""
        return ratio(self.hits, self.accesses)

    def miss_reduction_vs(self, baseline: "LlcSimResult") -> float:
        """Fractional miss reduction relative to ``baseline``.

        Positive means fewer misses than the baseline. Streams must match
        for the comparison to be meaningful; callers enforce that.
        """
        return ratio(baseline.misses - self.misses, baseline.misses)


@dataclass
class PolicyComparison:
    """Results of several policies over one identical stream."""

    stream_name: str
    results: Dict[str, LlcSimResult]

    def miss_reduction(self, policy: str, baseline: str = "lru") -> float:
        """Miss reduction of ``policy`` relative to ``baseline``."""
        return self.results[policy].miss_reduction_vs(self.results[baseline])

    def policies(self):
        """Policy names present, insertion-ordered."""
        return list(self.results)
