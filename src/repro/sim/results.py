"""Result records for simulation runs."""

from dataclasses import dataclass
from typing import Dict

from repro.common.stats import ratio


@dataclass(frozen=True)
class LlcSimResult:
    """Outcome of replaying one LLC stream under one policy."""

    policy: str
    stream_name: str
    accesses: int
    hits: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        """Misses per access."""
        return ratio(self.misses, self.accesses)

    @property
    def hit_ratio(self) -> float:
        """Hits per access."""
        return ratio(self.hits, self.accesses)

    def miss_reduction_vs(self, baseline: "LlcSimResult") -> float:
        """Fractional miss reduction relative to ``baseline``.

        Positive means fewer misses than the baseline. Streams must match
        for the comparison to be meaningful; callers enforce that.
        """
        return ratio(baseline.misses - self.misses, baseline.misses)


@dataclass
class PolicyComparison:
    """Results of several policies over one identical stream."""

    stream_name: str
    results: Dict[str, LlcSimResult]

    def miss_reduction(self, policy: str, baseline: str = "lru") -> float:
        """Miss reduction of ``policy`` relative to ``baseline``."""
        return self.results[policy].miss_reduction_vs(self.results[baseline])

    def policies(self):
        """Policy names present, insertion-ordered."""
        return list(self.results)
