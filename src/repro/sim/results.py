"""Result records for simulation runs."""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.stats import ratio


@dataclass(frozen=True)
class LlcSimResult:
    """Outcome of replaying one LLC stream under one policy.

    ``elapsed_sec``/``accesses_per_sec`` report replay throughput; they are
    excluded from equality so that determinism checks (bit-identical
    results across serial and parallel runs) compare outcomes, not clocks.
    ``tier`` records which replay engine produced the result (one of
    :data:`repro.policies.base.REPLAY_TIERS`); it too is excluded from
    equality — the whole point of the differential suite is that tiers
    agree on everything else. ``backend`` refines the provenance one step
    further: *which kernel implementation* inside that tier produced the
    counters (``model`` for the scalar object model, ``python``/``numpy``
    for the set-partitioned and fastpath kernels, ``compact``/``numba``
    for the native scalar backend, with a ``+threads{N}`` suffix when the
    per-set loop was sharded across worker threads). Like ``tier`` it is
    excluded from equality.
    """

    policy: str
    stream_name: str
    accesses: int
    hits: int
    misses: int
    elapsed_sec: float = field(default=0.0, compare=False, repr=False)
    tier: str = field(default="scalar", compare=False)
    backend: str = field(default="model", compare=False)

    @property
    def accesses_per_sec(self) -> float:
        """Replay throughput (0.0 when the run was not timed)."""
        if self.elapsed_sec <= 0.0:
            return 0.0
        return self.accesses / self.elapsed_sec

    @property
    def miss_ratio(self) -> float:
        """Misses per access."""
        return ratio(self.misses, self.accesses)

    @property
    def hit_ratio(self) -> float:
        """Hits per access."""
        return ratio(self.hits, self.accesses)

    def miss_reduction_vs(self, baseline: "LlcSimResult") -> float:
        """Fractional miss reduction relative to ``baseline``.

        Positive means fewer misses than the baseline. Streams must match
        for the comparison to be meaningful; callers enforce that.
        """
        return ratio(baseline.misses - self.misses, baseline.misses)

    def as_dict(self) -> Dict:
        """JSON-friendly view (telemetry events, golden fixtures)."""
        return {
            "policy": self.policy,
            "stream": self.stream_name,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_ratio": self.miss_ratio,
            "tier": self.tier,
            "backend": self.backend,
        }


@dataclass
class PolicyComparison:
    """Results of several policies over one identical stream."""

    stream_name: str
    results: Dict[str, LlcSimResult]

    def miss_reduction(self, policy: str, baseline: str = "lru") -> float:
        """Miss reduction of ``policy`` relative to ``baseline``."""
        return self.results[policy].miss_reduction_vs(self.results[baseline])

    def policies(self):
        """Policy names present, insertion-ordered."""
        return list(self.results)

    def as_dict(self) -> Dict:
        """JSON-friendly view (telemetry events, golden fixtures)."""
        return {
            "stream": self.stream_name,
            "results": {name: result.as_dict()
                        for name, result in self.results.items()},
        }


@dataclass(frozen=True)
class CellFailure:
    """A cell of the experiment matrix that exhausted its retry budget.

    In graceful (non-fail-fast) runs these stand in for the missing result
    in the position the real record would have occupied, so callers can
    tell exactly which (kind, workload, params) cells are absent. They are
    also what the run manifest's ``failures`` list serialises.
    """

    kind: str
    workload: str
    params: tuple
    error_type: str
    error: str
    attempts: int

    def as_dict(self) -> Dict:
        """JSON-friendly view for the run manifest."""
        return {
            "kind": self.kind,
            "workload": self.workload,
            "params": repr(self.params),
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
        }


def is_failure(result) -> bool:
    """True when a cell result slot holds a :class:`CellFailure`."""
    return isinstance(result, CellFailure)


def split_failures(results: Dict) -> "Tuple[Dict, List[CellFailure]]":
    """Partition a keyed result mapping into (successes, failures)."""
    ok, failed = {}, []
    for key, value in results.items():
        if is_failure(value):
            failed.append(value)
        else:
            ok[key] = value
    return ok, failed
