"""Exact stack-distance fast path for LRU replays.

LRU is a *stack algorithm* (Mattson et al., IBM Systems Journal 1970): the
blocks resident in a ``ways``-way set are always the ``ways`` most recently
used distinct blocks of that set, for every associativity simultaneously.
The hit/miss outcome of each access is therefore a pure function of its
per-set *stack distance* — the number of distinct blocks of the same set
touched since the previous access to the same block — and never of any
victim-selection bookkeeping: ``hit iff distance < ways``.

This module exploits that to replace the scalar
:meth:`repro.cache.llc.SharedLlc.access` loop (the dominant cost of a warm
sweep) for plain-LRU replays with three cheaper phases:

1. **Stack walk** — one lean pass computing every access's capped stack
   distance, the hit/miss classification, and the residency skeleton
   (fill/eviction positions, way assignment). The walk is inherently
   sequential (each distance depends on the whole preceding permutation of
   the set's stack) but touches a fraction of the state the full LLC model
   maintains per access.
2. **Residency metadata reconstruction** — per-residency hit counts,
   cross-core ("other") hit counts, core masks and write masks rebuilt
   *offline* from the classified stream. This phase is vectorized via
   ``numpy`` (``bincount``/``reduceat`` segmented reductions over the
   stream columns) with a pure-Python twin kept as fallback and reference.
3. **Observer replay** — registered :class:`ResidencyObserver` instances
   receive exactly the callback sequence the scalar ``SharedLlc`` would
   have produced: ``residency_ended`` for the victim then
   ``residency_started`` for the fill at each eviction, in stream order,
   and forced ``residency_ended`` flushes in (set, way) order at the end.

All three phases are deterministic and equivalence-tested against the
scalar path: results are **bit-identical** — same hits/misses/evictions,
same observer callbacks in the same order with the same arguments. This
stack-distance path is the ``stack`` replay tier; which tier a policy may
take is declared by the policy itself
(:meth:`repro.policies.base.ReplacementPolicy.replay_tier`) and resolved
by :func:`replay_tier_of` — non-LRU eligible policies go through the
set-partitioned engine (:mod:`repro.sim.setpath`) instead, and everything
else replays through the scalar model. ``REPRO_SIM_NO_FASTPATH=1`` (or
``--no-fastpath`` on the CLI) forces the scalar path everywhere.
"""

from array import array
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.envflag import env_flag
from repro.common.npsupport import require_numpy, should_vectorize
from repro.policies.base import REPLAY_SCALAR, REPLAY_STACK, ReplacementPolicy
from repro.policies.registry import policy_class
from repro.sim.results import LlcSimResult

FASTPATH_ENV = "REPRO_SIM_NO_FASTPATH"
"""Environment variable disabling the fast replay tiers when set truthy.

Parsed by :func:`repro.common.envflag.env_flag`: ``=0``/``=false``/``=no``
count as unset (the fast path stays on), anything else disables it.
"""

VECTORIZE_THRESHOLD = 4096
"""Stream length above which the numpy reconstruction wins (auto mode)."""


def fastpath_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the three-state fast-path gate.

    ``None`` (auto) enables the fast path unless :data:`FASTPATH_ENV` is
    set truthy in the environment (:func:`env_flag` semantics — ``=0`` and
    ``=false`` count as unset); ``True``/``False`` force it on/off
    regardless.
    """
    if flag is not None:
        return flag
    return not env_flag(FASTPATH_ENV)


def replay_tier_of(policy) -> str:
    """The replay tier ``policy`` *declares* (name, class, or instance).

    Resolution rules:

    * a registered name resolves through its class's
      :meth:`ReplacementPolicy.replay_tier` declaration (unknown names are
      scalar);
    * a class resolves through its own declaration — declarations never
      inherit, so an undeclared subclass of an eligible policy is scalar;
    * an instance resolves through its class, except that a *bound*
      instance (``geometry`` already set) is always scalar: it may carry
      pre-seeded replacement state no offline reconstruction can see.

    This is the declared tier only; the set-partitioned engine additionally
    requires an exact-type kernel (:func:`repro.sim.setpath.setpath_tier_of`
    folds both in).
    """
    if isinstance(policy, str):
        cls = policy_class(policy)
        return cls.replay_tier() if cls is not None else REPLAY_SCALAR
    if isinstance(policy, type):
        if issubclass(policy, ReplacementPolicy):
            return policy.replay_tier()
        return REPLAY_SCALAR
    if isinstance(policy, ReplacementPolicy):
        if policy.geometry is not None:
            return REPLAY_SCALAR
        return type(policy).replay_tier()
    return REPLAY_SCALAR


def fastpath_eligible(policy) -> bool:
    """True when a replay under ``policy`` may take the LRU stack path.

    Resolved through the policy's own tier declaration
    (:func:`replay_tier_of`): only classes declaring the ``stack`` tier —
    plain LRU — qualify. Subclasses (LIP/BIP/DIP), wrapped policies (the
    sharing oracle), and bound instances resolve to other tiers and replay
    through the set-partitioned engine or the scalar model.
    """
    return replay_tier_of(policy) == REPLAY_STACK


class LruReplayReconstruction:
    """Everything a scalar LRU replay produces, rebuilt offline.

    Per-access arrays (length ``n``):

    * ``distances`` — capped per-set LRU stack distance: exact values in
      ``[0, ways)`` for hits, the sentinel ``ways`` for any access whose
      true distance is ``>= ways`` (including cold first touches, whose
      distance is infinite). The cap is what makes the walk O(ways) per
      access; nothing downstream needs the uncapped tail.
    * ``rids`` — the residency id (fill order, 0-based) each access lands
      in.

    Per-residency arrays (length ``residencies``, fill order): block, fill
    access index, evicting access index (``-1`` while live), way, hit and
    other-hit counts, core/write masks. ``evicted_rid[j]`` is the residency
    evicted by fill ``j`` (``-1`` for fills into empty frames), and
    ``live_rids`` lists the residencies still resident at end-of-stream in
    the (set, way) order the scalar flush visits them.
    """

    __slots__ = (
        "n", "ways", "set_mask", "hits", "misses", "evictions",
        "distances", "rids",
        "res_block", "res_fill", "res_end", "res_way",
        "res_hits", "res_other_hits", "res_core_mask", "res_write_mask",
        "evicted_rid", "live_rids",
    )

    @property
    def residencies(self) -> int:
        """Number of residencies (= fills = misses)."""
        return len(self.res_block)


def lru_stack_distances(
    blocks: Sequence[int], num_sets: int, ways: int
) -> array:
    """Capped per-set LRU stack distance of every access.

    Returns an ``array('i')``: exact distances in ``[0, ways)`` for hits
    and the sentinel ``ways`` for any access whose distance is ``>= ways``
    (cold misses included). ``hit iff distances[i] < ways`` is the exact
    outcome of a ``ways``-way LRU replay — and, by Mattson inclusion,
    ``hit iff distances[i] < w`` is the exact outcome for **every**
    ``w <= ways`` at the same ``num_sets``, which is what the grid layer
    (:mod:`repro.sim.gridpath`) thresholds a whole associativity sweep
    against.
    """
    return _distance_walk(list(blocks), num_sets, ways)


def _distance_walk(blocks: List[int], num_sets: int, ways: int) -> array:
    """Distances-only stack walk (no residency skeleton).

    The middle ground between :func:`_count_walk` (counters only) and
    :func:`_stack_walk` (full skeleton): per-set stack lists plus the
    capped distance of every access, skipping the residency id/way
    bookkeeping nothing distance-driven needs. Two deviations from the
    sibling walks, both because grid walks run at the *largest*
    associativity of the grid: the lists are kept MRU-first, so
    ``st.index`` both *is* the stack distance and terminates after
    ``distance`` comparisons (temporally local accesses resolve in a
    couple of steps instead of scanning most of a ``ways``-deep stack),
    and membership is tested against a per-set ``set`` shadow, so a miss
    costs one O(1) probe instead of a full-stack scan.
    """
    set_mask = num_sets - 1
    distances = array("i", bytes(4 * len(blocks)))
    stacks = [[] for __ in range(num_sets)]
    members = [set() for __ in range(num_sets)]
    for i, block in enumerate(blocks):
        s = block & set_mask
        st = stacks[s]
        if block in members[s]:
            idx = st.index(block)
            distances[i] = idx
            del st[idx]
        else:
            distances[i] = ways
            mem = members[s]
            if len(st) == ways:
                mem.discard(st.pop())
            mem.add(block)
        st.insert(0, block)
    return distances


def _histogram_walk(blocks: List[int], num_sets: int, ways: int) -> List[int]:
    """Stack walk reduced to the capped-distance histogram in-loop.

    The same MRU-first, set-shadowed walk as :func:`_distance_walk`, but
    all a ways grid needs is the *histogram* of capped distances — so the
    per-access distance store collapses to a counter increment and no
    distances array is materialized. ``result[d]`` counts accesses at
    stack distance ``d``; ``result[ways]`` counts the capped misses.
    """
    set_mask = num_sets - 1
    counts = [0] * (ways + 1)
    stacks = [[] for __ in range(num_sets)]
    members = [set() for __ in range(num_sets)]
    for block in blocks:
        s = block & set_mask
        st = stacks[s]
        if block in members[s]:
            idx = st.index(block)
            counts[idx] += 1
            del st[idx]
        else:
            counts[ways] += 1
            mem = members[s]
            if len(st) == ways:
                mem.discard(st.pop())
            mem.add(block)
        st.insert(0, block)
    return counts


def _count_walk(
    blocks: List[int], num_sets: int, ways: int
) -> Tuple[int, int, int, int]:
    """Classification-only stack walk: ``(n, hits, misses, evictions)``.

    The minimal form of the walk for replays with no observers attached:
    per-set MRU-ordered lists only, no distances, no residency skeleton.
    Membership and move-to-MRU are C-level scans over at most ``ways``
    ints, so the per-access cost is a handful of bytecodes.
    """
    set_mask = num_sets - 1
    stacks = [[] for __ in range(num_sets)]
    hits = 0
    for block in blocks:
        st = stacks[block & set_mask]
        if block in st:
            st.remove(block)
            st.append(block)
            hits += 1
        elif len(st) == ways:
            del st[0]
            st.append(block)
        else:
            st.append(block)
    n = len(blocks)
    misses = n - hits
    occupancy = sum(len(st) for st in stacks)
    return n, hits, misses, misses - occupancy


def _stack_walk(blocks: List[int], num_sets: int, ways: int) -> LruReplayReconstruction:
    """Phase 1: the sequential stack walk.

    One pass maintaining, per set, the resident blocks in LRU→MRU order
    (a plain list of at most ``ways`` ints — ``list.index`` over <= 16
    entries runs at C speed) plus two global dicts mapping resident blocks
    to their residency id and way. Produces distances, hit/miss flags
    (implicit in the distances), and the complete residency skeleton.
    """
    out = LruReplayReconstruction()
    n = len(blocks)
    set_mask = num_sets - 1
    distances = array("i", bytes(4 * n))
    rids = array("q", bytes(8 * n))
    stacks = [[] for __ in range(num_sets)]
    res_of = {}  # block -> live residency id (blocks are unique per set)
    way_of = {}  # block -> way currently holding it
    res_block: List[int] = []
    res_fill: List[int] = []
    res_end: List[int] = []
    res_way: List[int] = []
    evicted_rid: List[int] = []
    hits = 0

    res_of_get = res_of.get
    for i, block in enumerate(blocks):
        rid = res_of_get(block)
        if rid is not None:
            st = stacks[block & set_mask]
            idx = st.index(block)
            distances[i] = len(st) - 1 - idx
            del st[idx]
            st.append(block)
            rids[i] = rid
            hits += 1
            continue
        distances[i] = ways
        st = stacks[block & set_mask]
        new_rid = len(res_block)
        if len(st) == ways:
            victim = st.pop(0)
            victim_rid = res_of.pop(victim)
            res_end[victim_rid] = i
            way = way_of.pop(victim)
            evicted_rid.append(victim_rid)
        else:
            # While the set is filling, the scalar model picks the lowest
            # free way; with no back-invalidation during replay that is
            # exactly the number of blocks already resident.
            way = len(st)
            evicted_rid.append(-1)
        st.append(block)
        res_of[block] = new_rid
        way_of[block] = way
        res_block.append(block)
        res_fill.append(i)
        res_end.append(-1)
        res_way.append(way)
        rids[i] = new_rid

    out.n = n
    out.ways = ways
    out.set_mask = set_mask
    out.hits = hits
    out.misses = n - hits
    out.evictions = len(res_block) - len(res_of)
    out.distances = distances
    out.rids = rids
    out.res_block = res_block
    out.res_fill = res_fill
    out.res_end = res_end
    out.res_way = res_way
    out.evicted_rid = evicted_rid
    # The scalar flush walks sets in index order and ways in way order.
    out.live_rids = sorted(
        res_of.values(),
        key=lambda rid: (res_block[rid] & set_mask, res_way[rid]),
    )
    return out


# ----------------------------------------------------------------------
# Phase 2: residency metadata reconstruction (vectorized + Python twin)
# ----------------------------------------------------------------------

_MAX_NUMPY_CORE = 62
"""Highest core id the int64 mask kernel handles (1 << core must fit)."""


def _reconstruct_python(walk: LruReplayReconstruction, stream: LlcStream) -> None:
    """Pure-Python metadata pass (reference implementation)."""
    count = walk.residencies
    res_hits = [0] * count
    res_other = [0] * count
    res_cmask = [0] * count
    res_wmask = [0] * count
    fill_core = [0] * count
    cores, __, ___, writes = stream.columns()
    ways = walk.ways
    distances = walk.distances
    rids = walk.rids
    for i in range(walk.n):
        rid = rids[i]
        core = cores[i]
        bit = 1 << core
        if distances[i] < ways:
            res_hits[rid] += 1
            res_cmask[rid] |= bit
            if writes[i]:
                res_wmask[rid] |= bit
            if core != fill_core[rid]:
                res_other[rid] += 1
        else:
            fill_core[rid] = core
            res_cmask[rid] = bit
            res_wmask[rid] = bit if writes[i] else 0
    walk.res_hits = res_hits
    walk.res_other_hits = res_other
    walk.res_core_mask = res_cmask
    walk.res_write_mask = res_wmask


def _reconstruct_numpy(walk: LruReplayReconstruction, stream: LlcStream) -> bool:
    """Vectorized metadata pass; returns False when it must defer.

    Segmented reductions over the (stable) rid-sorted stream columns:
    ``bincount`` for hit and other-hit counts, ``bitwise_or.reduceat`` for
    the core and write masks. Defers to the Python twin for core ids too
    wide for int64 masks (never the case for the paper's 8-core machine).
    """
    np = require_numpy()
    count = walk.residencies
    if count == 0:
        walk.res_hits = []
        walk.res_other_hits = []
        walk.res_core_mask = []
        walk.res_write_mask = []
        return True
    cores_np, __, ___, writes_np = stream.numpy_columns()
    if int(cores_np.max()) > _MAX_NUMPY_CORE:
        return False
    rids_np = np.frombuffer(walk.rids, dtype=np.int64)
    dist_np = np.frombuffer(walk.distances, dtype=np.int32)
    hit_mask = dist_np < walk.ways

    res_fill_np = np.asarray(walk.res_fill, dtype=np.int64)
    fill_core = cores_np[res_fill_np].astype(np.int64)
    core_bits = np.left_shift(np.int64(1), cores_np.astype(np.int64))

    res_hits = np.bincount(rids_np[hit_mask], minlength=count)
    other = hit_mask & (cores_np.astype(np.int64) != fill_core[rids_np])
    res_other = np.bincount(rids_np[other], minlength=count)

    order = np.argsort(rids_np, kind="stable")
    counts = np.bincount(rids_np, minlength=count)
    starts = np.zeros(count, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    sorted_bits = core_bits[order]
    res_cmask = np.bitwise_or.reduceat(sorted_bits, starts)
    write_bits = np.where(writes_np[order] != 0, sorted_bits, np.int64(0))
    res_wmask = np.bitwise_or.reduceat(write_bits, starts)

    walk.res_hits = res_hits.tolist()
    walk.res_other_hits = res_other.tolist()
    walk.res_core_mask = res_cmask.tolist()
    walk.res_write_mask = res_wmask.tolist()
    return True


def reconstruct_lru_replay(
    stream: LlcStream,
    geometry: CacheGeometry,
    use_numpy: Optional[bool] = None,
    profile=None,
) -> LruReplayReconstruction:
    """Classify ``stream`` under exact LRU and rebuild residency metadata.

    ``use_numpy`` selects the metadata-reconstruction kernel explicitly;
    ``None`` auto-selects by availability and stream size. Both kernels
    return bit-identical metadata (equivalence-tested). ``profile``, when
    a dict, receives per-phase wall times (``stack_walk``,
    ``reconstruct``) plus the kernel that ran (``reconstruct_kernel``:
    ``"numpy"`` or ``"python"``) for the replay profiler.
    """
    blocks = stream.blocks
    start = perf_counter()
    walk = _stack_walk(
        blocks.tolist() if isinstance(blocks, array) else list(blocks),
        geometry.num_sets,
        geometry.ways,
    )
    if profile is not None:
        profile["stack_walk"] = perf_counter() - start
        start = perf_counter()
    kernel = "python"
    if should_vectorize(use_numpy, walk.n, VECTORIZE_THRESHOLD):
        if _reconstruct_numpy(walk, stream):
            kernel = "numpy"
    if kernel == "python":
        _reconstruct_python(walk, stream)
    if profile is not None:
        profile["reconstruct"] = perf_counter() - start
        profile["reconstruct_kernel"] = kernel
    return walk


# ----------------------------------------------------------------------
# Phase 3: observer replay
# ----------------------------------------------------------------------

def _replay_observers(
    walk: LruReplayReconstruction, stream: LlcStream, observers: Tuple
) -> None:
    """Emit the exact callback sequence the scalar replay would produce."""
    pcs = stream.pcs
    cores = stream.cores
    res_block = walk.res_block
    res_fill = walk.res_fill
    res_way = walk.res_way
    res_hits = walk.res_hits
    res_other = walk.res_other_hits
    res_cmask = walk.res_core_mask
    res_wmask = walk.res_write_mask
    set_mask = walk.set_mask

    def emit_ended(rid: int, end_ordinal: int, forced: bool) -> None:
        block = res_block[rid]
        fill = res_fill[rid]
        for observer in observers:
            observer.residency_ended(
                block,
                block & set_mask,
                fill + 1,
                end_ordinal,
                pcs[fill],
                cores[fill],
                res_cmask[rid],
                res_wmask[rid],
                res_hits[rid],
                res_other[rid],
                forced,
            )

    for rid, (fill, victim_rid) in enumerate(zip(res_fill, walk.evicted_rid)):
        if victim_rid >= 0:
            # The scalar model ends the victim's residency before the fill
            # callbacks of the access that evicted it.
            emit_ended(victim_rid, fill + 1, False)
        block = res_block[rid]
        for observer in observers:
            observer.residency_started(
                block, block & set_mask, fill + 1, pcs[fill], cores[fill]
            )
    for rid in walk.live_rids:
        emit_ended(rid, walk.n, True)


def replay_lru_fastpath(
    stream: LlcStream,
    geometry: CacheGeometry,
    observers: Tuple = (),
    use_numpy: Optional[bool] = None,
    profile=None,
) -> LlcSimResult:
    """Replay ``stream`` under exact LRU via the stack-distance fast path.

    Drop-in replacement for
    ``LlcOnlySimulator(geometry, LruPolicy(), observers).run(stream)``:
    same hit/miss/eviction counts, same observer callbacks in the same
    order. Observer work happens after classification (phase 3), so when
    no observers are attached the replay is pure classification.
    ``profile``, when a dict, receives per-phase wall times (see
    :func:`reconstruct_lru_replay`, plus ``observer_replay``).
    """
    start = perf_counter()
    if observers:
        walk = reconstruct_lru_replay(
            stream, geometry, use_numpy=use_numpy, profile=profile
        )
        phase_start = perf_counter()
        _replay_observers(walk, stream, tuple(observers))
        if profile is not None:
            profile["observer_replay"] = perf_counter() - phase_start
        n, hits, misses = walk.n, walk.hits, walk.misses
    else:
        blocks = stream.blocks
        n, hits, misses, __ = _count_walk(
            blocks.tolist() if isinstance(blocks, array) else list(blocks),
            geometry.num_sets,
            geometry.ways,
        )
        if profile is not None:
            profile["count_walk"] = perf_counter() - start
    elapsed = perf_counter() - start
    return LlcSimResult(
        policy="lru",
        stream_name=stream.name,
        accesses=n,
        hits=hits,
        misses=misses,
        elapsed_sec=elapsed,
        tier=REPLAY_STACK,
        backend="python",
    )
