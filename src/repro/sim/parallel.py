"""Parallel experiment engine.

The experiment matrix — (workload, policy, capacity) cells — is
embarrassingly parallel: every cell replays a recorded LLC stream that is
fully determined by (machine, seed, access budget), so cells can run in any
process, in any order, and must produce bit-identical results. This module
fans the matrix out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* each worker process builds one :class:`ExperimentContext` mirroring the
  parent's configuration (same machine, seed, budget, disk cache);
* a worker records — or loads from the persistent disk cache — each
  workload's stream once per process, then replays every policy a cell
  asks for;
* cells return compact result records (plain dataclasses), and the parent
  reassembles them in submission order, so output never depends on
  scheduling.

``jobs <= 1`` executes the identical cell functions inline in the parent —
the serial and parallel paths share one implementation, which is what makes
the bit-identical guarantee structural rather than aspirational.
"""

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.sim.results import PolicyComparison

DEFAULT_JOBS_ENV = "REPRO_SIM_JOBS"
"""Environment variable supplying a default worker count."""


def normalize_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``--jobs`` value: None/0 means "use every core"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


def jobs_from_env(default: int = 1) -> int:
    """Worker count from :data:`DEFAULT_JOBS_ENV` (benches route through
    this so ``REPRO_SIM_JOBS=4 pytest benchmarks`` parallelises recording)."""
    raw = os.environ.get(DEFAULT_JOBS_ENV)
    if not raw:
        return default
    try:
        return normalize_jobs(int(raw))
    except ValueError:
        raise ConfigError(f"{DEFAULT_JOBS_ENV}={raw!r} is not an integer") from None


def scaled_geometry(geometry: CacheGeometry, factor: float) -> CacheGeometry:
    """The LLC geometry with capacity scaled by ``factor`` (same ways/block).

    ``CacheGeometry`` requires a power-of-two set count and a capacity that
    is a multiple of ``ways * block_bytes``, so arbitrary factors cannot be
    honoured exactly: the scaled set count is snapped to the nearest power
    of two (ties round up, floor one set). Power-of-two factors such as
    0.5/1/2/4 are exact; fractional factors like 0.3 or 0.75 land on the
    closest valid geometry instead of silently truncating the capacity into
    an invalid one.

    Raises:
        ConfigError: if ``factor`` is not a positive finite number.
    """
    if not isinstance(factor, (int, float)) or isinstance(factor, bool):
        raise ConfigError(f"capacity factor must be a number, got {factor!r}")
    if not math.isfinite(factor) or factor <= 0:
        raise ConfigError(f"capacity factor must be positive and finite, got {factor!r}")
    target = geometry.num_sets * factor
    if target <= 1:
        num_sets = 1
    else:
        lower = 1 << int(math.floor(math.log2(target)))
        upper = lower * 2
        # Nearest power of two by linear distance; exact targets stay put,
        # midpoints round up (the larger LLC is the conservative choice).
        num_sets = upper if (upper - target) <= (target - lower) else lower
    size_bytes = num_sets * geometry.ways * geometry.block_bytes
    return CacheGeometry(size_bytes, geometry.ways, geometry.block_bytes)


@dataclass(frozen=True)
class ExperimentCell:
    """One schedulable unit of the experiment matrix.

    ``kind`` selects the analysis; ``params`` is the kind-specific
    parameter tuple (hashable and picklable). Cells are pure functions of
    (context configuration, workload, params).
    """

    kind: str
    workload: str
    params: tuple = ()


def execute_cell(context, cell: ExperimentCell):
    """Run one cell against ``context``. Shared by serial and worker paths."""
    artifacts = context.artifacts(cell.workload)
    if cell.kind == "record":
        return cell.workload, artifacts
    if cell.kind == "compare":
        policies, include_opt = cell.params
        return context.compare_policies(
            cell.workload, list(policies), include_opt=include_opt
        )
    if cell.kind == "oracle":
        base, mode, release, turnovers = cell.params
        return context.oracle_study(
            cell.workload, base=base, mode=mode, release=release,
            horizon_turnovers=turnovers,
        )
    if cell.kind == "sweep":
        from repro.oracle.runner import run_oracle_study

        factor, base, turnovers = cell.params
        return run_oracle_study(
            artifacts.stream, scaled_geometry(context.geometry, factor),
            base=base, horizon_turnovers=turnovers, seed=context.seed,
            fastpath=context.fastpath,
        )
    if cell.kind == "predict":
        from repro.predictors.harness import PredictorHarness
        from repro.predictors.registry import make_predictor
        from repro.sim.multipass import run_policy_on_stream

        (predictor_name,) = cell.params
        harness = PredictorHarness(make_predictor(predictor_name))
        run_policy_on_stream(
            artifacts.stream, context.geometry, "lru",
            seed=context.seed, observers=(harness,),
            fastpath=context.fastpath,
        )
        return harness.matrix
    raise ConfigError(f"unknown experiment cell kind {cell.kind!r}")


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

_WORKER_CONTEXT = None


def _init_worker(
    machine, target_accesses, seed, workloads, cache_dir, fastpath=None
) -> None:
    """Build this worker's context once; cells then share its stream cache."""
    from repro.sim.experiment import ExperimentContext

    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ExperimentContext(
        machine, target_accesses=target_accesses, seed=seed,
        workloads=workloads, cache_dir=cache_dir, fastpath=fastpath,
    )


def _run_cell(cell: ExperimentCell):
    return execute_cell(_WORKER_CONTEXT, cell)


def run_cells(
    context, cells: Sequence[ExperimentCell], jobs: Optional[int] = 1
) -> List:
    """Execute ``cells`` and return their results in submission order.

    ``jobs <= 1`` runs inline on ``context`` (populating its caches);
    otherwise a process pool fans out and the parent's in-memory cache is
    left untouched. Either way the returned records are bit-identical.
    """
    jobs = normalize_jobs(jobs)
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [execute_cell(context, cell) for cell in cells]

    # Contiguous chunks keep one workload's cells in one worker, so a
    # worker records/loads each stream at most once per process.
    chunksize = max(1, len(cells) // (jobs * 2))
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(cells)),
        initializer=_init_worker,
        initargs=(
            context.machine, context.target_accesses, context.seed,
            list(context.workload_list), context.cache_dir, context.fastpath,
        ),
    ) as executor:
        return list(executor.map(_run_cell, cells, chunksize=chunksize))


# ----------------------------------------------------------------------
# Matrix helpers (what the CLI and benches actually call)
# ----------------------------------------------------------------------

def _sorted_by_workload(cells: List[ExperimentCell]) -> List[ExperimentCell]:
    """Group same-workload cells adjacently (stream-recording locality)
    without reordering the caller-visible result mapping."""
    return sorted(cells, key=lambda cell: cell.workload)


def prefetch_artifacts(
    context, names: Iterable[str], jobs: Optional[int] = 1
) -> List[Tuple[str, object]]:
    """Record/load artifacts for many workloads in parallel."""
    cells = [ExperimentCell("record", name) for name in names]
    return run_cells(context, cells, jobs=jobs)


def compare_many(
    context,
    workloads: Iterable[str],
    policies: Sequence[str],
    include_opt: bool = False,
    jobs: Optional[int] = 1,
) -> Dict[str, PolicyComparison]:
    """Policy comparisons for many workloads, keyed by workload."""
    workloads = list(workloads)
    cells = [
        ExperimentCell("compare", name, (tuple(policies), include_opt))
        for name in workloads
    ]
    results = run_cells(context, cells, jobs=jobs)
    return dict(zip(workloads, results))


def oracle_many(
    context,
    workloads: Iterable[str],
    base: str = "lru",
    mode: str = "both",
    release: str = "budget",
    turnovers: float = 1.75,
    jobs: Optional[int] = 1,
) -> Dict[str, object]:
    """Oracle studies for many workloads, keyed by workload."""
    workloads = list(workloads)
    cells = [
        ExperimentCell("oracle", name, (base, mode, release, turnovers))
        for name in workloads
    ]
    results = run_cells(context, cells, jobs=jobs)
    return dict(zip(workloads, results))


def sweep_many(
    context,
    workloads: Iterable[str],
    factors: Sequence[float],
    base: str = "lru",
    turnovers: float = 1.75,
    jobs: Optional[int] = 1,
) -> Dict[Tuple[float, str], object]:
    """Capacity-sweep oracle studies keyed by (factor, workload)."""
    workloads = list(workloads)
    keys = [(factor, name) for factor in factors for name in workloads]
    cells = _sorted_by_workload([
        ExperimentCell("sweep", name, (factor, base, turnovers))
        for factor, name in keys
    ])
    results = run_cells(context, cells, jobs=jobs)
    by_cell = {
        (cell.params[0], cell.workload): result
        for cell, result in zip(cells, results)
    }
    return {key: by_cell[key] for key in keys}


def predict_many(
    context,
    workloads: Iterable[str],
    predictors: Sequence[str],
    jobs: Optional[int] = 1,
) -> Dict[Tuple[str, str], object]:
    """Predictor confusion matrices keyed by (workload, predictor)."""
    workloads = list(workloads)
    keys = [(name, predictor) for name in workloads for predictor in predictors]
    cells = [
        ExperimentCell("predict", name, (predictor,))
        for name, predictor in keys
    ]
    results = run_cells(context, cells, jobs=jobs)
    return dict(zip(keys, results))
