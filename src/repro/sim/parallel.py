"""Parallel experiment engine.

The experiment matrix — (workload, policy, capacity) cells — is
embarrassingly parallel: every cell replays a recorded LLC stream that is
fully determined by (machine, seed, access budget), so cells can run in any
process, in any order, and must produce bit-identical results. This module
fans the matrix out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* each worker process builds one :class:`ExperimentContext` mirroring the
  parent's configuration (same machine, seed, budget, disk cache);
* a worker records — or loads from the persistent disk cache — each
  workload's stream once per process, then replays every policy a cell
  asks for;
* cells return compact result records (plain dataclasses), and the parent
  reassembles them in submission order, so output never depends on
  scheduling.

``jobs <= 1`` executes the identical cell functions inline in the parent —
the serial and parallel paths share one implementation, which is what makes
the bit-identical guarantee structural rather than aspirational.

Fault tolerance: by default (``fail_fast=True``) any cell error aborts the
run, exactly as before. With ``fail_fast=False`` each failing cell is
retried up to ``retries`` times with exponential backoff — including cells
lost to a *dying worker process*, which breaks the pool and forces a pool
rebuild — and a cell that exhausts its budget (or exceeds ``timeout``
seconds after dispatch) yields a :class:`~repro.sim.results.CellFailure`
in its result slot instead of aborting the sweep. Failures are recorded in
the active telemetry run's manifest and event log.
"""

import math
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError, SimulationError
from repro.sim import telemetry
from repro.sim.results import CellFailure, PolicyComparison

DEFAULT_JOBS_ENV = "REPRO_SIM_JOBS"
"""Environment variable supplying a default worker count."""

DEFAULT_RETRIES = 1
"""Extra attempts granted to a failing cell in graceful mode."""

DEFAULT_BACKOFF = 0.25
"""Base delay (seconds) before retrying a failed cell; doubles per retry."""

MAX_BACKOFF = 30.0
"""Ceiling (seconds) on any single retry delay.

The exponential ``backoff * 2**(attempts-1)`` schedule is unbounded; with
a high ``--retries`` budget the tail delays would otherwise stall a sweep
for minutes per cell. Both the serial sleep and the pool's ``not_before``
deadlines clamp to this ceiling.
"""


def retry_delay(backoff: float, attempts: int) -> float:
    """The capped exponential delay before retry number ``attempts``.

    ``attempts`` is the number of attempts already made (>= 1). Shared by
    the serial loop (which sleeps it) and the pool path (which turns it
    into a ``not_before`` deadline) so both schedules stay identical.
    """
    return min(backoff * (2 ** (attempts - 1)), MAX_BACKOFF)

FAULT_ENV = "REPRO_SIM_FAULT_INJECT"
"""Fault-injection hook (tests only): ``kind:workload:mode``.

``mode`` is one of ``raise`` (the cell raises a :class:`SimulationError`
every time), ``exit`` (the executing process dies via ``os._exit`` —
breaking the pool, exactly like a segfault or an OOM kill), or ``flaky``
(the cell raises once, then succeeds on retry; requires
:data:`FAULT_STATE_ENV` to point at a scratch directory for the
fired-once marker), or ``hang`` (the cell sleeps 5 s before proceeding —
long enough to trip a short ``timeout`` without racing worker start-up).
``workload`` may be ``*``.
"""

FAULT_STATE_ENV = "REPRO_SIM_FAULT_STATE"
"""Scratch directory holding ``flaky`` fault markers (shared by workers)."""


def _maybe_inject_fault(cell: "ExperimentCell") -> None:
    """Crash or raise on behalf of the test-only fault-injection hook."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    try:
        kind, workload, mode = spec.split(":")
    except ValueError:
        raise ConfigError(
            f"{FAULT_ENV}={spec!r}: expected 'kind:workload:mode'"
        ) from None
    if cell.kind != kind or workload not in ("*", cell.workload):
        return
    if mode == "exit":
        os._exit(17)
    if mode == "hang":
        time.sleep(5.0)
        return
    if mode == "flaky":
        state_dir = os.environ.get(FAULT_STATE_ENV)
        if not state_dir:
            raise ConfigError(f"{FAULT_ENV} mode 'flaky' needs {FAULT_STATE_ENV}")
        marker = os.path.join(
            state_dir, f"fired-{cell.kind}-{cell.workload}"
        )
        try:
            # Atomic create-once: the first attempt (in whichever process)
            # claims the marker and fails; every later attempt succeeds.
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        raise SimulationError(
            f"injected flaky fault in cell ({cell.kind}, {cell.workload})"
        )
    if mode == "raise":
        raise SimulationError(
            f"injected fault in cell ({cell.kind}, {cell.workload})"
        )
    raise ConfigError(f"{FAULT_ENV}={spec!r}: unknown mode {mode!r}")


def normalize_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``--jobs`` value: None/0 means "use every core"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


def jobs_from_env(default: int = 1) -> int:
    """Worker count from :data:`DEFAULT_JOBS_ENV` (benches route through
    this so ``REPRO_SIM_JOBS=4 pytest benchmarks`` parallelises recording)."""
    raw = os.environ.get(DEFAULT_JOBS_ENV)
    if not raw:
        return default
    try:
        return normalize_jobs(int(raw))
    except ValueError:
        raise ConfigError(f"{DEFAULT_JOBS_ENV}={raw!r} is not an integer") from None


def scaled_geometry(geometry: CacheGeometry, factor: float) -> CacheGeometry:
    """The LLC geometry with capacity scaled by ``factor`` (same ways/block).

    ``CacheGeometry`` requires a power-of-two set count and a capacity that
    is a multiple of ``ways * block_bytes``, so arbitrary factors cannot be
    honoured exactly: the scaled set count is snapped to the nearest power
    of two (ties round up, floor one set). Power-of-two factors such as
    0.5/1/2/4 are exact; fractional factors like 0.3 or 0.75 land on the
    closest valid geometry instead of silently truncating the capacity into
    an invalid one.

    Raises:
        ConfigError: if ``factor`` is not a positive finite number.
    """
    if not isinstance(factor, (int, float)) or isinstance(factor, bool):
        raise ConfigError(f"capacity factor must be a number, got {factor!r}")
    if not math.isfinite(factor) or factor <= 0:
        raise ConfigError(f"capacity factor must be positive and finite, got {factor!r}")
    target = geometry.num_sets * factor
    if target <= 1:
        num_sets = 1
    else:
        lower = 1 << int(math.floor(math.log2(target)))
        upper = lower * 2
        # Nearest power of two by linear distance; exact targets stay put,
        # midpoints round up (the larger LLC is the conservative choice).
        num_sets = upper if (upper - target) <= (target - lower) else lower
    size_bytes = num_sets * geometry.ways * geometry.block_bytes
    return CacheGeometry(size_bytes, geometry.ways, geometry.block_bytes)


@dataclass(frozen=True)
class ExperimentCell:
    """One schedulable unit of the experiment matrix.

    ``kind`` selects the analysis; ``params`` is the kind-specific
    parameter tuple (hashable and picklable). Cells are pure functions of
    (context configuration, workload, params).
    """

    kind: str
    workload: str
    params: tuple = ()


def execute_cell(context, cell: ExperimentCell):
    """Run one cell against ``context``. Shared by serial and worker paths."""
    _maybe_inject_fault(cell)
    if cell.kind in ("fuzz", "fuzz_full"):
        # Fuzz cells carry their whole scenario in params and build their
        # own machines; they must dispatch before the artifact fetch, whose
        # registry lookup would reject the scenario id as a workload name.
        from repro.sim import fuzz

        if cell.kind == "fuzz":
            return fuzz.execute_fuzz_cell(context, cell)
        return fuzz.execute_fuzz_full_cell(context, cell)
    artifacts = context.artifacts(cell.workload)
    if cell.kind == "record":
        return cell.workload, artifacts
    if cell.kind == "compare":
        policies, include_opt = cell.params
        return context.compare_policies(
            cell.workload, list(policies), include_opt=include_opt
        )
    if cell.kind == "oracle":
        base, mode, release, turnovers = cell.params
        return context.oracle_study(
            cell.workload, base=base, mode=mode, release=release,
            horizon_turnovers=turnovers,
        )
    if cell.kind == "sweep":
        from repro.oracle.runner import run_oracle_study

        factor, base, turnovers = cell.params
        return run_oracle_study(
            artifacts.stream, scaled_geometry(context.geometry, factor),
            base=base, horizon_turnovers=turnovers, seed=context.seed,
            fastpath=context.fastpath,
        )
    if cell.kind == "sweep_grid":
        from repro.oracle.runner import run_oracle_study_grid

        factors, base, turnovers = cell.params
        return run_oracle_study_grid(
            artifacts.stream,
            [scaled_geometry(context.geometry, factor) for factor in factors],
            base=base, horizon_turnovers=turnovers, seed=context.seed,
            fastpath=context.fastpath,
        )
    if cell.kind == "inspect":
        from repro.sim.probes import inspect_workload

        policy, probe_names = cell.params
        return inspect_workload(
            context, cell.workload, policy=policy,
            probes=list(probe_names) if probe_names else None,
        )
    if cell.kind == "predict":
        from repro.predictors.harness import PredictorHarness
        from repro.predictors.registry import make_predictor
        from repro.sim.multipass import run_policy_on_stream

        (predictor_name,) = cell.params
        harness = PredictorHarness(make_predictor(predictor_name))
        run_policy_on_stream(
            artifacts.stream, context.geometry, "lru",
            seed=context.seed, observers=(harness,),
            fastpath=context.fastpath,
        )
        return harness.matrix
    raise ConfigError(f"unknown experiment cell kind {cell.kind!r}")


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

_WORKER_CONTEXT = None


def _init_worker(
    machine, target_accesses, seed, workloads, cache_dir, fastpath=None,
    telemetry_dir=None,
) -> None:
    """Build this worker's context once; cells then share its stream cache.

    ``telemetry_dir`` attaches the worker to the parent's run so its stage
    spans land in the shared event log (appends are line-atomic).
    """
    from repro.sim.experiment import ExperimentContext

    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ExperimentContext(
        machine, target_accesses=target_accesses, seed=seed,
        workloads=workloads, cache_dir=cache_dir, fastpath=fastpath,
    )
    if telemetry_dir is not None:
        telemetry.set_current(telemetry.attach_worker(telemetry_dir))


def _run_cell(cell: ExperimentCell):
    return execute_cell(_WORKER_CONTEXT, cell)


def _cell_failure(cell: ExperimentCell, error: BaseException,
                  attempts: int) -> CellFailure:
    failure = CellFailure(
        kind=cell.kind, workload=cell.workload, params=cell.params,
        error_type=type(error).__name__, error=str(error) or repr(error),
        attempts=attempts,
    )
    telemetry.emit("cell_failed", cell_kind=failure.kind,
                   workload=failure.workload, error_type=failure.error_type,
                   error=failure.error, attempts=failure.attempts)
    return failure


def _emit_cell_done(cell: ExperimentCell, duration: float) -> None:
    """Per-cell completion event: the progress heartbeat `db tail` renders."""
    telemetry.emit("cell_done", cell_kind=cell.kind, workload=cell.workload,
                   duration_s=round(duration, 6))


def _record_cell_summary(results: List) -> None:
    """Fold the cells' outcome into the active run manifest, if any."""
    recorder = telemetry.current()
    if recorder is None or recorder.role != "main":
        return
    failures = [r for r in results if isinstance(r, CellFailure)]
    recorder.update_manifest(
        cells={
            "total": len(results),
            "completed": len(results) - len(failures),
            "failed": len(failures),
        },
        failures=[failure.as_dict() for failure in failures],
    )


def _run_cells_serial(
    context, cells: List[ExperimentCell], fail_fast: bool,
    retries: int, backoff: float,
) -> List:
    results = []
    for cell in cells:
        if fail_fast:
            started = time.perf_counter()
            results.append(execute_cell(context, cell))
            _emit_cell_done(cell, time.perf_counter() - started)
            continue
        attempts = 0
        while True:
            attempts += 1
            started = time.perf_counter()
            try:
                results.append(execute_cell(context, cell))
                _emit_cell_done(cell, time.perf_counter() - started)
                break
            except Exception as error:
                if attempts > retries:
                    results.append(_cell_failure(cell, error, attempts))
                    break
                telemetry.emit("cell_retry", cell_kind=cell.kind,
                               workload=cell.workload, attempt=attempts,
                               error_type=type(error).__name__)
                time.sleep(retry_delay(backoff, attempts))
    return results


class CellTimeoutError(SimulationError):
    """A cell missed its completion deadline (parent-side bookkeeping)."""


def _run_cells_pool(
    context, cells: List[ExperimentCell], jobs: int, fail_fast: bool,
    retries: int, timeout: Optional[float], backoff: float,
) -> List:
    """Fan cells out over a process pool, surviving worker deaths.

    Submission is windowed to ``jobs`` outstanding futures so a dispatched
    cell starts (nearly) immediately — which is what makes ``timeout``,
    measured from dispatch, a deadline on the cell itself rather than on
    its queueing luck. A dead worker breaks the whole
    :class:`ProcessPoolExecutor`; the loop absorbs that by rebuilding the
    pool and re-dispatching every unfinished cell, charging one attempt to
    each (the victim cannot be told apart from its queued pool-mates).
    Every cell implicated in a break is *quarantined*: its retries run
    solo, so a second crash identifies the true victim unambiguously and
    an innocent pool-mate cannot be starved by a deterministic crasher —
    which matters now that grid replay makes cells few and large (a
    two-workload sweep is two cells, both always in flight together).
    """
    recorder = telemetry.current()
    initargs = (
        context.machine, context.target_accesses, context.seed,
        list(context.workload_list), context.cache_dir, context.fastpath,
        str(recorder.run_dir) if recorder is not None else None,
    )
    max_workers = min(jobs, len(cells))

    def make_pool():
        return ProcessPoolExecutor(
            max_workers=max_workers, initializer=_init_worker,
            initargs=initargs,
        )

    if fail_fast:
        retries = 0
    results: List = [None] * len(cells)
    queue = list(range(len(cells)))  # indices awaiting (re-)dispatch
    queue.reverse()  # pop() dispatches in submission order
    attempts = [0] * len(cells)
    not_before = [0.0] * len(cells)  # backoff deadlines
    pending: Dict = {}  # future -> (index, dispatch monotonic time)
    quarantine: set = set()  # crash-implicated indices; re-dispatched solo
    executor = make_pool()

    def fail_or_retry(index: int, error: BaseException) -> None:
        cell = cells[index]
        if fail_fast:
            raise error
        if attempts[index] > retries:
            results[index] = _cell_failure(cell, error, attempts[index])
            return
        telemetry.emit("cell_retry", cell_kind=cell.kind,
                       workload=cell.workload, attempt=attempts[index],
                       error_type=type(error).__name__)
        not_before[index] = time.monotonic() + retry_delay(
            backoff, attempts[index]
        )
        queue.append(index)

    try:
        while queue or pending:
            now = time.monotonic()
            while queue and len(pending) < max_workers:
                # Dispatch backoff-ready cells first; if everything queued
                # is still backing off and nothing is running, just wait
                # out the nearest deadline.
                if pending and quarantine.intersection(
                    idx for idx, __ in pending.values()
                ):
                    break  # a quarantined cell runs solo; nothing joins it
                ready = [i for i in reversed(queue) if not_before[i] <= now]
                if pending:
                    # Quarantined cells wait for an idle pool (solo run).
                    ready = [i for i in ready if i not in quarantine]
                if not ready:
                    if pending:
                        break
                    wait_for = min(not_before[i] for i in queue) - now
                    time.sleep(max(wait_for, 0.0))
                    now = time.monotonic()
                    continue
                index = ready[0]
                queue.remove(index)
                attempts[index] += 1
                pending[executor.submit(_run_cell, cells[index])] = (index, now)
            if not pending:
                continue
            poll = 0.1 if timeout is not None else None
            done, __ = wait(set(pending), timeout=poll,
                            return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                index, dispatched = pending.pop(future)
                error = future.exception()
                if error is None:
                    results[index] = future.result()
                    _emit_cell_done(cells[index],
                                    time.monotonic() - dispatched)
                elif isinstance(error, BrokenProcessPool):
                    # The pool is gone; every sibling future is dead too.
                    pending[future] = (index, 0.0)
                    broken = True
                    break
                else:
                    fail_or_retry(index, error)
            if broken:
                telemetry.emit("pool_broken", pending=len(pending))
                if fail_fast:
                    raise SimulationError(
                        "a worker process died (crash or kill); rerun "
                        "without --fail-fast to complete with partial "
                        "results"
                    )
                executor.shutdown(wait=False, cancel_futures=True)
                for future, (index, __) in pending.items():
                    quarantine.add(index)
                    fail_or_retry(
                        index,
                        SimulationError("worker process died mid-cell"),
                    )
                pending.clear()
                executor = make_pool()
                continue
            if timeout is not None:
                now = time.monotonic()
                for future in [f for f, (__, t0) in pending.items()
                               if now - t0 > timeout]:
                    index, t0 = pending.pop(future)
                    future.cancel()  # a running cell keeps its worker busy
                    fail_or_retry(index, CellTimeoutError(
                        f"cell ({cells[index].kind}, {cells[index].workload}) "
                        f"exceeded {timeout}s deadline"
                    ))
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return results


def run_cells(
    context,
    cells: Sequence[ExperimentCell],
    jobs: Optional[int] = 1,
    fail_fast: bool = True,
    retries: int = DEFAULT_RETRIES,
    timeout: Optional[float] = None,
    backoff: float = DEFAULT_BACKOFF,
) -> List:
    """Execute ``cells`` and return their results in submission order.

    ``jobs <= 1`` runs inline on ``context`` (populating its caches);
    otherwise a process pool fans out and the parent's in-memory cache is
    left untouched. Either way the returned records are bit-identical.

    Args:
        fail_fast: True (default) aborts on the first cell error, exactly
            as the engine always behaved. False degrades gracefully: each
            failing cell is retried, then replaced by a
            :class:`~repro.sim.results.CellFailure` in its result slot
            while every other cell still completes.
        retries: extra attempts per failing cell (graceful mode only).
        timeout: per-cell completion deadline in seconds, measured from
            dispatch to a worker (graceful parallel mode only; ``None``
            disables). A timed-out cell is retried like any failure, but
            its still-running attempt keeps occupying one worker slot.
        backoff: base retry delay; doubles with each retry of a cell.
    """
    jobs = normalize_jobs(jobs)
    cells = list(cells)
    if timeout is not None and timeout <= 0:
        raise ConfigError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    telemetry.emit("cells_start", total=len(cells), jobs=jobs,
                   fail_fast=fail_fast, retries=retries, timeout=timeout)
    if jobs <= 1 or len(cells) <= 1:
        results = _run_cells_serial(context, cells, fail_fast, retries, backoff)
    else:
        results = _run_cells_pool(
            context, cells, jobs, fail_fast, retries, timeout, backoff
        )
    failed = sum(isinstance(r, CellFailure) for r in results)
    telemetry.emit("cells_done", total=len(results), failed=failed)
    _record_cell_summary(results)
    return results


# ----------------------------------------------------------------------
# Matrix helpers (what the CLI and benches actually call)
# ----------------------------------------------------------------------

def _sorted_by_workload(cells: List[ExperimentCell]) -> List[ExperimentCell]:
    """Group same-workload cells adjacently (stream-recording locality)
    without reordering the caller-visible result mapping."""
    return sorted(cells, key=lambda cell: cell.workload)


def prefetch_artifacts(
    context, names: Iterable[str], jobs: Optional[int] = 1, **run_kwargs
) -> List[Tuple[str, object]]:
    """Record/load artifacts for many workloads in parallel."""
    cells = [ExperimentCell("record", name) for name in names]
    return run_cells(context, cells, jobs=jobs, **run_kwargs)


def compare_many(
    context,
    workloads: Iterable[str],
    policies: Sequence[str],
    include_opt: bool = False,
    jobs: Optional[int] = 1,
    **run_kwargs,
) -> Dict[str, PolicyComparison]:
    """Policy comparisons for many workloads, keyed by workload.

    ``run_kwargs`` (``fail_fast``/``retries``/``timeout``/``backoff``)
    forward to :func:`run_cells`; in graceful mode a failed workload's
    value is its :class:`~repro.sim.results.CellFailure` — use
    :func:`repro.sim.results.split_failures` to partition. Same for the
    other ``*_many`` helpers.
    """
    workloads = list(workloads)
    cells = [
        ExperimentCell("compare", name, (tuple(policies), include_opt))
        for name in workloads
    ]
    results = run_cells(context, cells, jobs=jobs, **run_kwargs)
    return dict(zip(workloads, results))


def oracle_many(
    context,
    workloads: Iterable[str],
    base: str = "lru",
    mode: str = "both",
    release: str = "budget",
    turnovers: float = 1.75,
    jobs: Optional[int] = 1,
    **run_kwargs,
) -> Dict[str, object]:
    """Oracle studies for many workloads, keyed by workload."""
    workloads = list(workloads)
    cells = [
        ExperimentCell("oracle", name, (base, mode, release, turnovers))
        for name in workloads
    ]
    results = run_cells(context, cells, jobs=jobs, **run_kwargs)
    return dict(zip(workloads, results))


def sweep_many(
    context,
    workloads: Iterable[str],
    factors: Sequence[float],
    base: str = "lru",
    turnovers: float = 1.75,
    jobs: Optional[int] = 1,
    **run_kwargs,
) -> Dict[Tuple[float, str], object]:
    """Capacity-sweep oracle studies keyed by (factor, workload).

    Each workload is ONE ``sweep_grid`` cell evaluating the whole factor
    axis in a single pass over its stream
    (:func:`repro.oracle.runner.run_oracle_study_grid` shares the
    geometry-invariant passes across capacity points), so parallelism is
    per-stream rather than per capacity cell. The returned mapping is
    unchanged: bit-identical studies keyed by ``(factor, workload)`` in the
    historical order; a failed workload's :class:`CellFailure` occupies
    every one of its factor slots.
    """
    workloads = list(workloads)
    factors = tuple(factors)
    keys = [(factor, name) for factor in factors for name in workloads]
    cells = _sorted_by_workload([
        ExperimentCell("sweep_grid", name, (factors, base, turnovers))
        for name in workloads
    ])
    results = run_cells(context, cells, jobs=jobs, **run_kwargs)
    by_workload = {}
    for cell, result in zip(cells, results):
        if isinstance(result, CellFailure):
            by_workload[cell.workload] = {f: result for f in factors}
        else:
            by_workload[cell.workload] = dict(zip(factors, result))
    return {(factor, name): by_workload[name][factor] for factor, name in keys}


def inspect_many(
    context,
    workloads: Iterable[str],
    policy: str = "lru",
    probes: Optional[Sequence[str]] = None,
    jobs: Optional[int] = 1,
    **run_kwargs,
) -> Dict[str, object]:
    """Probe reports for many workloads, keyed by workload.

    Probe summaries are plain data (:class:`repro.sim.probes.ProbeReport`
    is picklable), so workers serialize their payloads back to the parent
    exactly like every other cell record; ``probes=None`` lets each cell
    pick the policy's default probe set.
    """
    workloads = list(workloads)
    cells = [
        ExperimentCell(
            "inspect", name, (policy, tuple(probes) if probes else ())
        )
        for name in workloads
    ]
    results = run_cells(context, cells, jobs=jobs, **run_kwargs)
    return dict(zip(workloads, results))


def predict_many(
    context,
    workloads: Iterable[str],
    predictors: Sequence[str],
    jobs: Optional[int] = 1,
    **run_kwargs,
) -> Dict[Tuple[str, str], object]:
    """Predictor confusion matrices keyed by (workload, predictor)."""
    workloads = list(workloads)
    keys = [(name, predictor) for name in workloads for predictor in predictors]
    cells = [
        ExperimentCell("predict", name, (predictor,))
        for name, predictor in keys
    ]
    results = run_cells(context, cells, jobs=jobs, **run_kwargs)
    return dict(zip(keys, results))
