"""Simulation engines and experiment orchestration.

* :class:`LlcOnlySimulator` — replays a recorded LLC stream against one
  policy (the workhorse of all policy comparisons).
* ``multipass`` — records the LLC stream once per workload and exposes
  helpers that replay it under named policies, OPT, and oracle wrappers.
* ``experiment`` — caches per-workload streams so the benches and examples
  pay the expensive hierarchy pass once.
"""

from repro.sim.engine import LlcOnlySimulator
from repro.sim.results import LlcSimResult, PolicyComparison
from repro.sim.multipass import (
    record_llc_stream,
    run_opt,
    run_policy_on_stream,
)
from repro.sim.experiment import ExperimentContext, WorkloadArtifacts
from repro.sim.sampling import (
    SampledLlcSimulator,
    SampledResult,
    sampled_geometry,
    sampled_substream,
)
from repro.sim.fuzz import (
    FuzzConfig,
    detect_inversions,
    replay_corpus_cell,
    replay_scenario_full,
    run_fuzz_campaign,
    run_fuzz_scenario,
    sample_scenario,
)

__all__ = [
    "LlcOnlySimulator",
    "LlcSimResult",
    "PolicyComparison",
    "record_llc_stream",
    "run_opt",
    "run_policy_on_stream",
    "ExperimentContext",
    "WorkloadArtifacts",
    "SampledLlcSimulator",
    "SampledResult",
    "sampled_geometry",
    "sampled_substream",
    "FuzzConfig",
    "detect_inversions",
    "replay_corpus_cell",
    "replay_scenario_full",
    "run_fuzz_campaign",
    "run_fuzz_scenario",
    "sample_scenario",
]
