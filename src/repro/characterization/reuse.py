"""LRU stack-distance (reuse-distance) profiling of LLC streams.

The Mattson stack algorithm: keep all blocks in recency order; the reuse
distance of an access is the number of *distinct* blocks touched since the
previous access to the same block (its depth in the stack). The histogram
yields the miss count of a fully-associative LRU cache of any capacity in
one profiling pass — used as an independent cross-check of the simulator
and to anchor the F7 capacity sweep.

The stack is depth-capped: distances beyond ``max_depth`` are lumped into
the cold/far bucket, keeping profiling O(n * max_depth) worst case while
remaining exact for every capacity of interest (<= max_depth blocks).
"""

from typing import Dict, List, Sequence

from repro.common.errors import ConfigError
from repro.common.stats import ratio


class ReuseDistanceProfiler:
    """Streaming stack-distance histogram."""

    FAR = -1
    """Histogram key for cold misses and distances beyond ``max_depth``."""

    def __init__(self, max_depth: int = 1 << 16):
        if max_depth <= 0:
            raise ConfigError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self._stack: List[int] = []  # MRU at index 0
        self._resident = set()
        self.histogram: Dict[int, int] = {}
        self.accesses = 0

    def access(self, block: int) -> int:
        """Record one access; returns its stack distance (FAR if cold/deep)."""
        self.accesses += 1
        stack = self._stack
        if block in self._resident:
            distance = stack.index(block)
            stack.pop(distance)
            stack.insert(0, block)
            if distance >= self.max_depth:
                distance = self.FAR
        else:
            distance = self.FAR
            self._resident.add(block)
            stack.insert(0, block)
            if len(stack) > self.max_depth:
                dropped = stack.pop()
                self._resident.discard(dropped)
        self.histogram[distance] = self.histogram.get(distance, 0) + 1
        return distance

    def profile(self, blocks: Sequence[int]) -> "ReuseDistanceProfiler":
        """Profile a whole block sequence; returns self for chaining."""
        for block in blocks:
            self.access(block)
        return self

    def misses_at(self, capacity_blocks: int) -> int:
        """Miss count of a fully-associative LRU cache of that capacity.

        Raises:
            ConfigError: when the capacity exceeds the profiled depth (the
                histogram cannot distinguish distances past ``max_depth``).
        """
        if capacity_blocks > self.max_depth:
            raise ConfigError(
                f"capacity {capacity_blocks} exceeds profiled depth {self.max_depth}"
            )
        missing = self.histogram.get(self.FAR, 0)
        for distance, count in self.histogram.items():
            if distance != self.FAR and distance >= capacity_blocks:
                missing += count
        return missing

    def miss_ratio_at(self, capacity_blocks: int) -> float:
        """Miss ratio of a fully-associative LRU cache of that capacity."""
        return ratio(self.misses_at(capacity_blocks), self.accesses)
