"""Per-PC sharing ambiguity profile.

A PC-indexed fill-time predictor can only work if each fill PC's
residencies are predominantly shared or predominantly private. This
observer measures exactly that: for every fill PC, the split of its
residencies' outcomes, summarised as the *PC-majority accuracy* — the
accuracy of an ideal, unbounded, offline predictor that assigns every PC
its majority class. That number upper-bounds any PC-indexed table, however
large; when it is low, the feature itself is ambiguous (halo loops whose
PCs touch only shared rows are predictable; task loops whose single PC
touches whatever payload arrives are not), which is the paper's explanation
for the PC predictor's failure.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cache.llc import ResidencyObserver
from repro.characterization.hits import popcount
from repro.common.stats import ratio


@dataclass(frozen=True)
class PcProfile:
    """Aggregated per-PC sharing statistics of one run."""

    distinct_pcs: int
    total_fills: int
    shared_fills: int
    majority_correct: int
    pure_pcs: int
    mixed_pcs: int

    @property
    def majority_accuracy(self) -> float:
        """Accuracy of the ideal offline per-PC majority predictor.

        The upper bound for any PC-indexed fill-time sharing predictor.
        """
        return ratio(self.majority_correct, self.total_fills)

    @property
    def base_rate(self) -> float:
        """Fraction of fills whose residency turned out shared."""
        return ratio(self.shared_fills, self.total_fills)

    @property
    def mixed_pc_fraction(self) -> float:
        """Fraction of fill PCs whose residencies mix both outcomes."""
        return ratio(self.mixed_pcs, self.distinct_pcs)


class PcSharingProfiler(ResidencyObserver):
    """Observer accumulating per-fill-PC shared/private outcome counts."""

    def __init__(self):
        self._counts: Dict[int, List[int]] = {}  # pc -> [private, shared]

    def residency_ended(
        self, block, set_index, fill_ordinal, end_ordinal, fill_pc, fill_core,
        core_mask, write_mask, hits, other_hits, forced,
    ) -> None:
        counts = self._counts.get(fill_pc)
        if counts is None:
            counts = [0, 0]
            self._counts[fill_pc] = counts
        counts[1 if popcount(core_mask) >= 2 else 0] += 1

    def finalize(self) -> PcProfile:
        """Fold the per-PC counts into a :class:`PcProfile`."""
        total = shared = majority = pure = mixed = 0
        for private_count, shared_count in self._counts.values():
            total += private_count + shared_count
            shared += shared_count
            majority += max(private_count, shared_count)
            if private_count and shared_count:
                mixed += 1
            else:
                pure += 1
        return PcProfile(
            distinct_pcs=len(self._counts),
            total_fills=total,
            shared_fills=shared,
            majority_correct=majority,
            pure_pcs=pure,
            mixed_pcs=mixed,
        )

    def per_pc_counts(self) -> List[Tuple[int, int, int]]:
        """Raw ``(pc, private_fills, shared_fills)`` rows (for reports)."""
        return [(pc, c[0], c[1]) for pc, c in sorted(self._counts.items())]
