"""Shared-vs-private residency classification and hit accounting.

Definitions (paper section 2): a block is **shared in a residency** when at
least two distinct cores issue demand accesses to it between its fill and
its eviction; otherwise the residency is **private**. A shared residency is
**read-only shared** when no core wrote during it, else **read-write
shared**. Hits are attributed to the classification of the residency that
served them.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cache.llc import ResidencyObserver
from repro.common.stats import ratio


def popcount(mask: int) -> int:
    """Number of set bits (sharer count of a core mask)."""
    return mask.bit_count()


@dataclass
class HitBreakdown:
    """Aggregated residency/hit statistics of one simulated LLC run."""

    residencies: int = 0
    shared_residencies: int = 0
    ro_shared_residencies: int = 0
    rw_shared_residencies: int = 0
    hits: int = 0
    shared_hits: int = 0
    ro_shared_hits: int = 0
    rw_shared_hits: int = 0
    dead_residencies: int = 0
    dead_private_residencies: int = 0
    degree_residencies: Dict[int, int] = field(default_factory=dict)
    degree_hits: Dict[int, int] = field(default_factory=dict)

    @property
    def private_residencies(self) -> int:
        """Residencies touched by exactly one core."""
        return self.residencies - self.shared_residencies

    @property
    def private_hits(self) -> int:
        """Hits served by private residencies."""
        return self.hits - self.shared_hits

    @property
    def shared_residency_fraction(self) -> float:
        """Fraction of residencies that were shared (F2 x-series)."""
        return ratio(self.shared_residencies, self.residencies)

    @property
    def shared_hit_fraction(self) -> float:
        """Fraction of LLC hits served by shared residencies (F1)."""
        return ratio(self.shared_hits, self.hits)

    @property
    def hit_density_ratio(self) -> float:
        """Hits-per-shared-residency over hits-per-residency (F2).

        Values above 1 mean shared blocks earn a disproportionate share of
        hits — the paper's motivation for protecting them.
        """
        overall = ratio(self.hits, self.residencies)
        shared = ratio(self.shared_hits, self.shared_residencies)
        return ratio(shared, overall)

    @property
    def ro_fraction_of_shared_hits(self) -> float:
        """Read-only share of the shared-residency hits (F3)."""
        return ratio(self.ro_shared_hits, self.shared_hits)

    @property
    def dead_fill_fraction(self) -> float:
        """Fraction of residencies that never produced a hit."""
        return ratio(self.dead_residencies, self.residencies)


class SharingClassifier(ResidencyObserver):
    """Observer accumulating a :class:`HitBreakdown`."""

    def __init__(self):
        self.breakdown = HitBreakdown()

    def residency_ended(
        self, block, set_index, fill_ordinal, end_ordinal, fill_pc, fill_core,
        core_mask, write_mask, hits, other_hits, forced,
    ) -> None:
        b = self.breakdown
        b.residencies += 1
        b.hits += hits
        degree = popcount(core_mask)
        b.degree_residencies[degree] = b.degree_residencies.get(degree, 0) + 1
        b.degree_hits[degree] = b.degree_hits.get(degree, 0) + hits
        shared = degree >= 2
        if shared:
            b.shared_residencies += 1
            b.shared_hits += hits
            if write_mask:
                b.rw_shared_residencies += 1
                b.rw_shared_hits += hits
            else:
                b.ro_shared_residencies += 1
                b.ro_shared_hits += hits
        if hits == 0:
            b.dead_residencies += 1
            if not shared:
                b.dead_private_residencies += 1
