"""Temporal stability of per-block sharing behaviour.

A fill-time history predictor indexed by block address implicitly assumes a
block's next residency repeats its last residency's behaviour. This
observer measures exactly that assumption: the Markov transition counts of
the shared/private bit across a block's *consecutive* residencies, plus how
many blocks ever exhibit both behaviours. Low self-transition probability
(short "sharing phases") is the mechanism behind the paper's negative
predictability result.
"""

from dataclasses import dataclass
from typing import Dict

from repro.cache.llc import ResidencyObserver
from repro.characterization.hits import popcount
from repro.common.stats import ratio


@dataclass
class PhaseStats:
    """Sharing-bit transition statistics across consecutive residencies."""

    shared_to_shared: int = 0
    shared_to_private: int = 0
    private_to_shared: int = 0
    private_to_private: int = 0
    blocks_always_shared: int = 0
    blocks_always_private: int = 0
    blocks_bimodal: int = 0
    single_residency_blocks: int = 0

    @property
    def transitions(self) -> int:
        """Total consecutive-residency pairs observed."""
        return (
            self.shared_to_shared
            + self.shared_to_private
            + self.private_to_shared
            + self.private_to_private
        )

    @property
    def p_shared_given_shared(self) -> float:
        """P(next residency shared | last residency shared)."""
        return ratio(
            self.shared_to_shared, self.shared_to_shared + self.shared_to_private
        )

    @property
    def p_private_given_private(self) -> float:
        """P(next residency private | last residency private)."""
        return ratio(
            self.private_to_private, self.private_to_private + self.private_to_shared
        )

    @property
    def last_value_accuracy(self) -> float:
        """Accuracy of the ideal 'predict last residency's bit' predictor.

        This upper-bounds any per-block one-bit history predictor — an
        address-indexed table can at best remember the last outcome without
        aliasing, so this number caps T3's address predictor.
        """
        correct = self.shared_to_shared + self.private_to_private
        return ratio(correct, self.transitions)

    @property
    def bimodal_block_fraction(self) -> float:
        """Fraction of multi-residency blocks that flip behaviour at least once."""
        multi = (
            self.blocks_always_shared + self.blocks_always_private + self.blocks_bimodal
        )
        return ratio(self.blocks_bimodal, multi)


class SharingPhaseTracker(ResidencyObserver):
    """Observer accumulating :class:`PhaseStats`.

    Keeps two bits per distinct block (last outcome, flipped-ever) plus a
    residency count; memory is proportional to the block footprint.
    """

    _UNSEEN = -1

    def __init__(self):
        self._last: Dict[int, int] = {}
        self._count: Dict[int, int] = {}
        self._flipped: Dict[int, bool] = {}
        self.stats = PhaseStats()

    def residency_ended(
        self, block, set_index, fill_ordinal, end_ordinal, fill_pc, fill_core,
        core_mask, write_mask, hits, other_hits, forced,
    ) -> None:
        shared = 1 if popcount(core_mask) >= 2 else 0
        stats = self.stats
        last = self._last.get(block, self._UNSEEN)
        if last != self._UNSEEN:
            if last and shared:
                stats.shared_to_shared += 1
            elif last and not shared:
                stats.shared_to_private += 1
            elif shared:
                stats.private_to_shared += 1
            else:
                stats.private_to_private += 1
            if last != shared:
                self._flipped[block] = True
        self._last[block] = shared
        self._count[block] = self._count.get(block, 0) + 1

    def finalize(self) -> PhaseStats:
        """Fold per-block summaries into the stats; call after the run."""
        stats = self.stats
        stats.blocks_always_shared = 0
        stats.blocks_always_private = 0
        stats.blocks_bimodal = 0
        stats.single_residency_blocks = 0
        for block, count in self._count.items():
            if count == 1:
                stats.single_residency_blocks += 1
                continue
            if self._flipped.get(block):
                stats.blocks_bimodal += 1
            elif self._last[block]:
                stats.blocks_always_shared += 1
            else:
                stats.blocks_always_private += 1
        return stats
