"""One-call characterization of a recorded LLC stream.

Bundles the classifier and phase tracker into a single replay under a
chosen policy and returns everything the characterization figures need.
"""

from dataclasses import dataclass
from typing import Optional

from repro.cache.stream import LlcStream
from repro.characterization.hits import HitBreakdown, SharingClassifier
from repro.characterization.phases import PhaseStats, SharingPhaseTracker
from repro.common.config import CacheGeometry
from repro.policies.registry import make_policy
from repro.sim.results import LlcSimResult


@dataclass(frozen=True)
class CharacterizationReport:
    """Everything one characterization replay produces."""

    result: LlcSimResult
    breakdown: HitBreakdown
    phases: PhaseStats


def characterize_stream(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy_name: str = "lru",
    seed: int = 0,
    track_phases: bool = True,
    fastpath: Optional[bool] = None,
) -> CharacterizationReport:
    """Replay ``stream`` under ``policy_name`` with characterization attached.

    Args:
        stream: recorded LLC demand stream.
        geometry: LLC geometry for the replay.
        policy_name: replacement policy governing residencies.
        seed: seed for stochastic policies.
        track_phases: also collect per-block phase statistics (costs memory
            proportional to the block footprint).
        fastpath: three-state gate for the exact stack-distance fast path
            on plain-LRU replays (None = auto; results are bit-identical
            either way).
    """
    # Imported here rather than at module level: repro.sim.experiment
    # imports this module, and pulling the engine in lazily keeps the
    # package import graph acyclic whichever package is imported first.
    from repro.sim.engine import LlcOnlySimulator
    from repro.sim.fastpath import (
        fastpath_eligible,
        fastpath_enabled,
        replay_lru_fastpath,
    )

    classifier = SharingClassifier()
    observers = [classifier]
    phase_tracker = SharingPhaseTracker() if track_phases else None
    if phase_tracker is not None:
        observers.append(phase_tracker)
    if fastpath_eligible(policy_name) and fastpath_enabled(fastpath):
        result = replay_lru_fastpath(
            stream, geometry, observers=tuple(observers)
        )
    else:
        policy = make_policy(policy_name, seed=seed)
        simulator = LlcOnlySimulator(geometry, policy, observers=tuple(observers))
        result = simulator.run(stream)
    phases = phase_tracker.finalize() if phase_tracker is not None else PhaseStats()
    return CharacterizationReport(
        result=result, breakdown=classifier.breakdown, phases=phases
    )
