"""One-call characterization of a recorded LLC stream.

Bundles the classifier and phase tracker into a single replay under a
chosen policy and returns everything the characterization figures need.
Also renders probe reports (:func:`render_probe_report`) — rendering
lives here, beside the other human-readable characterization output,
and works purely from the JSON payload so ``repro-sim runs show`` can
render summaries loaded back from disk.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.stream import LlcStream
from repro.characterization.hits import HitBreakdown, SharingClassifier
from repro.characterization.phases import PhaseStats, SharingPhaseTracker
from repro.common.config import CacheGeometry
from repro.policies.registry import make_policy
from repro.sim.results import LlcSimResult


@dataclass(frozen=True)
class CharacterizationReport:
    """Everything one characterization replay produces."""

    result: LlcSimResult
    breakdown: HitBreakdown
    phases: PhaseStats


def characterize_stream(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy_name: str = "lru",
    seed: int = 0,
    track_phases: bool = True,
    fastpath: Optional[bool] = None,
) -> CharacterizationReport:
    """Replay ``stream`` under ``policy_name`` with characterization attached.

    Args:
        stream: recorded LLC demand stream.
        geometry: LLC geometry for the replay.
        policy_name: replacement policy governing residencies.
        seed: seed for stochastic policies.
        track_phases: also collect per-block phase statistics (costs memory
            proportional to the block footprint).
        fastpath: three-state gate for the exact replay fast paths
            (stack-distance for LRU, set-partitioned for the rest of the
            eligible matrix; None = auto; results are bit-identical
            either way).
    """
    # Imported here rather than at module level: repro.sim.experiment
    # imports this module, and pulling the engine in lazily keeps the
    # package import graph acyclic whichever package is imported first.
    from repro.sim.engine import LlcOnlySimulator
    from repro.sim.setpath import try_fast_replay

    classifier = SharingClassifier()
    observers = [classifier]
    phase_tracker = SharingPhaseTracker() if track_phases else None
    if phase_tracker is not None:
        observers.append(phase_tracker)
    # The instance (not the name) goes to the dispatch: this caller seeds
    # with the plain ``seed`` rather than a derived stream, and passing
    # the instance keeps that on every tier.
    result = try_fast_replay(
        stream, geometry, make_policy(policy_name, seed=seed),
        observers=tuple(observers), fastpath=fastpath,
    )
    if result is None:
        policy = make_policy(policy_name, seed=seed)
        simulator = LlcOnlySimulator(geometry, policy, observers=tuple(observers))
        result = simulator.run(stream)
    phases = phase_tracker.finalize() if phase_tracker is not None else PhaseStats()
    return CharacterizationReport(
        result=result, breakdown=classifier.breakdown, phases=phases
    )


# ----------------------------------------------------------------------
# Probe-report rendering (repro-sim inspect / runs show)
# ----------------------------------------------------------------------

def _fraction(part, whole) -> float:
    return part / whole if whole else 0.0


def _render_sharing(summary: Dict, render_table) -> str:
    rows = [
        ["shared", summary["shared_residencies"], summary["shared_hits"],
         summary["shared_residency_fraction"], summary["shared_hit_fraction"]],
        ["  read-only", summary["ro_shared_residencies"],
         summary["ro_shared_hits"], "", ""],
        ["  read-write", summary["rw_shared_residencies"],
         summary["rw_shared_hits"], "", ""],
        ["private", summary["private_residencies"], summary["private_hits"],
         1.0 - summary["shared_residency_fraction"],
         1.0 - summary["shared_hit_fraction"]],
        ["total", summary["residencies"], summary["hits"], 1.0, 1.0],
    ]
    table = render_table(
        ["class", "residencies", "hits", "res frac", "hit frac"], rows,
        title="sharing breakdown (paper F1-F3):",
    )
    return (
        f"{table}\n"
        f"hit density ratio (shared/overall): "
        f"{summary['hit_density_ratio']:.4f}   "
        f"dead fills: {summary['dead_fill_fraction']:.4f}"
    )


def _render_sets(summary: Dict, render_table) -> str:
    rows = [
        [entry["set"], entry["misses"], entry["hits"], entry["evictions"],
         entry["live"]]
        for entry in summary["hottest_sets"]
    ]
    table = render_table(
        ["set", "misses", "hits", "evictions", "live"], rows,
        title=f"hottest sets (of {summary['num_sets']}):",
    )
    misses = summary["misses"]
    return (
        f"{table}\n"
        f"per-set misses: mean {misses['mean']:.1f}, min {misses['min']:.0f}, "
        f"max {misses['max']:.0f} (imbalance "
        f"{summary['miss_imbalance']:.2f}x)"
    )


def _render_evictions(summary: Dict, render_table) -> str:
    rows = []
    for reason, stats in summary["reasons"].items():
        lifetime = stats["lifetime_accesses"]
        rows.append([
            reason, stats["count"], stats["fraction"], stats["dead"],
            stats["shared"], lifetime["mean"],
        ])
    return render_table(
        ["reason", "count", "fraction", "dead", "shared", "mean lifetime"],
        rows, title="eviction reasons:",
    )


def _render_reuse(summary: Dict, render_table) -> str:
    rows = []
    for label in ("shared", "private"):
        side = summary[label]
        total = side["hits"] + side["misses"]
        rows.append([
            label, side["hits"], side["misses"],
            _fraction(side["hits"], total), side["mean_hit_distance"],
        ])
    return render_table(
        ["class", "hits", "misses", "hit ratio", "mean hit distance"],
        rows,
        title=f"reuse distances (lru-stack model, {summary['ways']} ways):",
    )


def _render_psel(summary: Dict, render_table) -> str:
    final = summary.get("final") or {}
    line = (
        f"set-dueling PSEL: final {final.get('psel')}"
        f"/{final.get('psel_max')} "
        f"(threshold {final.get('threshold')}, "
        f"winning {final.get('winning')!s}), "
        f"{len(summary['samples'])} samples every "
        f"{summary['sample_every']} accesses"
    )
    samples = summary["samples"]
    if samples:
        path = " -> ".join(str(psel) for __, psel in samples[:16])
        suffix = " ..." if len(samples) > 16 else ""
        line += f"\npsel trajectory: {path}{suffix}"
    return line


def _render_shct(summary: Dict, render_table) -> str:
    size = summary["shct_size"]
    histogram = summary["final_histogram"]
    dead = histogram.get("0", 0)
    rows = [[value, count, _fraction(count, size)]
            for value, count in histogram.items()]
    table = render_table(
        ["counter", "entries", "fraction"], rows,
        title=f"SHCT occupancy ({size} entries, max {summary['counter_max']}):",
    )
    return (
        f"{table}\n"
        f"dead signatures: {dead} ({_fraction(dead, size):.4f}), "
        f"{len(summary['samples'])} samples every "
        f"{summary['sample_every']} accesses"
    )


def _render_rrpv(summary: Dict, render_table) -> str:
    if not summary["histogram"]:
        return "rrpv: no evictions sampled"
    total = sum(summary["histogram"].values())
    rows = [[value, count, _fraction(count, total)]
            for value, count in summary["histogram"].items()]
    return render_table(
        ["rrpv", "ways", "fraction"], rows,
        title=(
            f"victim-set RRPV distribution at eviction "
            f"({summary['evictions_sampled']} evictions, "
            f"max {summary['rrpv_max']}):"
        ),
    )


def _render_coherence(summary: Dict, render_table) -> str:
    rows = [
        [kind, count, summary["distinct_blocks"].get(kind, 0)]
        for kind, count in summary["events"].items()
    ]
    if not rows:
        return "coherence: no events observed"
    return render_table(
        ["event", "count", "distinct blocks"], rows,
        title=f"coherence events ({summary['num_cores']} cores):",
    )


_PROBE_RENDERERS = {
    "sharing": _render_sharing,
    "sets": _render_sets,
    "evictions": _render_evictions,
    "reuse": _render_reuse,
    "psel": _render_psel,
    "shct": _render_shct,
    "rrpv": _render_rrpv,
    "coherence": _render_coherence,
}


def _render_generic(name: str, summary: Dict) -> str:
    lines = [f"{name}:"]
    for key, value in summary.items():
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)


def render_probe_report(payload) -> str:
    """Human-readable rendering of a probe report.

    Accepts a :class:`repro.sim.probes.ProbeReport` or its ``as_dict()``
    JSON payload (``runs show`` renders payloads read back from disk).
    Unknown probe names fall back to a generic key/value dump, so older
    renderers degrade gracefully on newer payloads.
    """
    from repro.analysis.tables import render_table

    if hasattr(payload, "as_dict"):
        payload = payload.as_dict()
    result = payload["result"]
    lines: List[str] = [
        f"probe report: workload {payload['workload']}, "
        f"policy {payload['policy']}, tier {payload['tier']}",
        f"replay: {result['accesses']} accesses, {result['hits']} hits, "
        f"{result['misses']} misses "
        f"(miss ratio {result['miss_ratio']:.4f})",
    ]
    profile = payload.get("profile") or {}
    stages = [
        (stage, wall) for stage, wall in profile.items()
        if isinstance(wall, (int, float)) and stage != "total"
    ]
    if stages:
        stages.sort(key=lambda item: -item[1])
        rendered = ", ".join(f"{stage} {wall:.3f}s" for stage, wall in stages)
        total = profile.get("total")
        if isinstance(total, (int, float)):
            rendered += f" (total {total:.3f}s)"
        lines.append(f"profile: {rendered}")
    for name, summary in payload.get("probes", {}).items():
        renderer = _PROBE_RENDERERS.get(name)
        lines.append("")
        if renderer is None:
            lines.append(_render_generic(name, summary))
        else:
            lines.append(renderer(summary, render_table))
    return "\n".join(lines)
