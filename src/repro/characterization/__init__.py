"""Characterization of LLC sharing behaviour (the paper's sections 3-4).

All analyses are :class:`repro.cache.ResidencyObserver` implementations that
attach to any simulated LLC (full-hierarchy or replay):

* :class:`SharingClassifier` — per-residency shared/private classification,
  hit breakdown, read-only vs read-write split, sharing-degree histogram.
* :class:`SharingPhaseTracker` — temporal stability of a block's sharing
  behaviour across consecutive residencies (the quantity fill-time history
  predictors implicitly bet on).
* :class:`ReuseDistanceProfiler` — LRU stack-distance histogram of the LLC
  stream, with a miss-ratio-curve helper.
"""

from repro.characterization.hits import HitBreakdown, SharingClassifier, popcount
from repro.characterization.pc_profile import PcProfile, PcSharingProfiler
from repro.characterization.phases import PhaseStats, SharingPhaseTracker
from repro.characterization.reuse import ReuseDistanceProfiler
from repro.characterization.report import CharacterizationReport, characterize_stream

__all__ = [
    "HitBreakdown",
    "SharingClassifier",
    "popcount",
    "PcProfile",
    "PcSharingProfiler",
    "PhaseStats",
    "SharingPhaseTracker",
    "ReuseDistanceProfiler",
    "CharacterizationReport",
    "characterize_stream",
]
