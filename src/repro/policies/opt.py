"""Belady's optimal replacement (OPT / MIN), offline.

OPT evicts the resident block whose next use lies farthest in the future.
It needs the future, so it can only run in *replay mode*: over a recorded
:class:`repro.cache.LlcStream` whose per-position next-use indices were
precomputed by :func:`compute_next_use`. The policy tracks, per way, the
stream position at which the resident block is next accessed, and the
victim is the way with the maximum (a never-again block wins outright).

The LLC-level access stream is recorded once under the baseline hierarchy
and replayed identically for every policy, so OPT's miss count is the exact
offline optimum for that stream (Belady's algorithm is optimal for caches
without bypass; ties are broken by way index, which does not affect the
miss count).
"""

from array import array
from typing import Optional, Sequence

from repro.common.errors import SimulationError
from repro.common.npsupport import require_numpy, should_vectorize
from repro.policies.base import REPLAY_SET, ReplacementPolicy

NO_NEXT_USE = 1 << 62
"""Sentinel next-use position meaning "never accessed again"."""

VECTORIZE_THRESHOLD = 4096
"""Stream length above which the numpy next-use kernel wins (auto mode)."""


def compute_next_use(
    blocks: Sequence[int], use_numpy: Optional[bool] = None
) -> array:
    """For each stream position, the position of that block's next access.

    Positions with no later access of the same block get
    :data:`NO_NEXT_USE`. Two equivalent implementations: a pure-Python
    backward scan with a last-seen map, and a numpy unique-index pass
    (one values-only sort of ``(block << log2(n)) | position`` packed keys;
    each key's successor within its block run *is* the next use).
    ``use_numpy`` selects explicitly; ``None`` auto-selects by availability
    and size. Both return bit-identical ``array('q')`` columns.
    """
    if should_vectorize(use_numpy, len(blocks), VECTORIZE_THRESHOLD):
        vectorized = _compute_next_use_numpy(blocks)
        if vectorized is not None:
            return vectorized
    return _compute_next_use_python(blocks)


def _compute_next_use_python(blocks: Sequence[int]) -> array:
    """Backward scan with a last-seen map (the reference implementation)."""
    next_use = array("q", bytes(8 * len(blocks)))
    last_seen = {}
    for i in range(len(blocks) - 1, -1, -1):
        block = blocks[i]
        next_use[i] = last_seen.get(block, NO_NEXT_USE)
        last_seen[block] = i
    return next_use


def _compute_next_use_numpy(blocks: Sequence[int]) -> Optional[array]:
    """Vectorized next-use via one values-only sort of packed keys.

    Packs ``(block << shift) | position`` into int64 (``2^shift >= n``) so a
    plain ``sort`` groups equal blocks with ascending positions; bit-shift
    decoding then links each position to its successor in the same run.
    Blocks too large to pack are first factorized to dense ids (an extra
    sort inside ``np.unique``). Returns ``None`` when even dense ids cannot
    pack (n >= 2^31), signalling the caller to use the Python scan.
    """
    np = require_numpy()
    if isinstance(blocks, array) and blocks.typecode == "q" and len(blocks):
        column = np.frombuffer(blocks, dtype=np.int64)
    else:
        column = np.asarray(blocks, dtype=np.int64)
    n = len(column)
    if n == 0:
        return array("q")
    shift = max(n - 1, 1).bit_length()
    if int(column.min()) < 0 or (int(column.max()) >> (63 - shift)) != 0:
        __, column = np.unique(column, return_inverse=True)
        column = column.astype(np.int64, copy=False)
        if ((n - 1) >> (63 - shift)) != 0:  # even dense ids overflow the pack
            return None

    keys = (column << shift) | np.arange(n, dtype=np.int64)
    keys.sort()
    positions = keys & ((1 << shift) - 1)
    ids = keys >> shift

    out = array("q", bytes(8 * n))
    next_use = np.frombuffer(out, dtype=np.int64)
    next_use[...] = NO_NEXT_USE
    linked = np.nonzero(ids[1:] == ids[:-1])[0]
    next_use[positions[linked]] = positions[linked + 1]
    return out


class BeladyOptPolicy(ReplacementPolicy):
    """Belady's MIN over a precomputed next-use sequence (replay only)."""

    name = "opt"

    # Per-way next-use positions are indexed by the *global* stream
    # ordinal, which the set partition preserves per access: exact under
    # set-partitioned replay.
    REPLAY_TIER = REPLAY_SET

    def __init__(self, next_use: array):
        super().__init__()
        self._next_use = next_use

    @property
    def next_use(self) -> array:
        """The precomputed next-use column (read by replay kernels)."""
        return self._next_use

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self._way_next = [[NO_NEXT_USE] * self.ways for __ in range(self.num_sets)]

    def _current_ordinal(self) -> int:
        if self.llc is None:
            raise SimulationError("OPT policy used without an attached LLC")
        ordinal = self.llc.access_count - 1
        if ordinal >= len(self._next_use):
            raise SimulationError(
                f"OPT replayed past its stream: ordinal {ordinal} >= "
                f"{len(self._next_use)} (stream/policy mismatch)"
            )
        return ordinal

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self._way_next[set_index][way] = self._next_use[self._current_ordinal()]

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        self._way_next[set_index][way] = self._next_use[self._current_ordinal()]

    def select_victim(self, set_index) -> int:
        nexts = self._way_next[set_index]
        return nexts.index(max(nexts))

    def rank_victims(self, set_index) -> list:
        nexts = self._way_next[set_index]
        return sorted(range(self.ways), key=lambda way: -nexts[way])

    def introspect(self) -> dict:
        snapshot = super().introspect()
        snapshot["stream_length"] = len(self._next_use)
        never = sum(1 for v in self._next_use if v == NO_NEXT_USE)
        snapshot["never_reused_accesses"] = never
        snapshot["never_reused_fraction"] = (
            never / len(self._next_use) if len(self._next_use) else 0.0
        )
        if self.geometry is None:
            return snapshot
        resident_never = sum(
            1 for nexts in self._way_next for v in nexts if v == NO_NEXT_USE
        )
        snapshot["resident_never_reused_ways"] = resident_never
        return snapshot
