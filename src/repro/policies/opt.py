"""Belady's optimal replacement (OPT / MIN), offline.

OPT evicts the resident block whose next use lies farthest in the future.
It needs the future, so it can only run in *replay mode*: over a recorded
:class:`repro.cache.LlcStream` whose per-position next-use indices were
precomputed by :func:`compute_next_use`. The policy tracks, per way, the
stream position at which the resident block is next accessed, and the
victim is the way with the maximum (a never-again block wins outright).

The LLC-level access stream is recorded once under the baseline hierarchy
and replayed identically for every policy, so OPT's miss count is the exact
offline optimum for that stream (Belady's algorithm is optimal for caches
without bypass; ties are broken by way index, which does not affect the
miss count).
"""

from array import array
from typing import Sequence

from repro.common.errors import SimulationError
from repro.policies.base import ReplacementPolicy

NO_NEXT_USE = 1 << 62
"""Sentinel next-use position meaning "never accessed again"."""


def compute_next_use(blocks: Sequence[int]) -> array:
    """For each stream position, the position of that block's next access.

    Runs a single backward scan with a last-seen map; positions with no
    later access of the same block get :data:`NO_NEXT_USE`.
    """
    next_use = array("q", bytes(8 * len(blocks)))
    last_seen = {}
    for i in range(len(blocks) - 1, -1, -1):
        block = blocks[i]
        next_use[i] = last_seen.get(block, NO_NEXT_USE)
        last_seen[block] = i
    return next_use


class BeladyOptPolicy(ReplacementPolicy):
    """Belady's MIN over a precomputed next-use sequence (replay only)."""

    name = "opt"

    def __init__(self, next_use: array):
        super().__init__()
        self._next_use = next_use

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self._way_next = [[NO_NEXT_USE] * self.ways for __ in range(self.num_sets)]

    def _current_ordinal(self) -> int:
        if self.llc is None:
            raise SimulationError("OPT policy used without an attached LLC")
        ordinal = self.llc.access_count - 1
        if ordinal >= len(self._next_use):
            raise SimulationError(
                f"OPT replayed past its stream: ordinal {ordinal} >= "
                f"{len(self._next_use)} (stream/policy mismatch)"
            )
        return ordinal

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self._way_next[set_index][way] = self._next_use[self._current_ordinal()]

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        self._way_next[set_index][way] = self._next_use[self._current_ordinal()]

    def select_victim(self, set_index) -> int:
        nexts = self._way_next[set_index]
        return nexts.index(max(nexts))

    def rank_victims(self, set_index) -> list:
        nexts = self._way_next[set_index]
        return sorted(range(self.ways), key=lambda way: -nexts[way])
