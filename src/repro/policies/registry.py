"""Name-based policy construction.

OPT is deliberately absent: it needs a recorded stream's next-use array and
is built by ``repro.sim.multipass`` instead.
"""

from typing import Callable, Dict, Optional, Type

from repro.common.errors import ConfigError
from repro.policies.base import ReplacementPolicy
from repro.policies.dip import BipPolicy, DipPolicy
from repro.policies.lru import LipPolicy, LruPolicy
from repro.policies.nru import NruPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.rrip import BrripPolicy, DrripPolicy, SrripPolicy
from repro.policies.ship import ShipPolicy

_FACTORIES: Dict[str, Callable[[int], ReplacementPolicy]] = {
    "lru": lambda seed: LruPolicy(),
    "lip": lambda seed: LipPolicy(),
    "nru": lambda seed: NruPolicy(),
    "random": lambda seed: RandomPolicy(seed),
    "bip": lambda seed: BipPolicy(seed),
    "dip": lambda seed: DipPolicy(seed),
    "srrip": lambda seed: SrripPolicy(),
    "brrip": lambda seed: BrripPolicy(seed),
    "drrip": lambda seed: DrripPolicy(seed),
    "ship": lambda seed: ShipPolicy(),
}

_CLASSES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": LruPolicy,
    "lip": LipPolicy,
    "nru": NruPolicy,
    "random": RandomPolicy,
    "bip": BipPolicy,
    "dip": DipPolicy,
    "srrip": SrripPolicy,
    "brrip": BrripPolicy,
    "drrip": DrripPolicy,
    "ship": ShipPolicy,
}

POLICY_NAMES = tuple(sorted(_FACTORIES))
"""All policy names constructible by :func:`make_policy`."""


def policy_class(name: str) -> Optional[Type[ReplacementPolicy]]:
    """The class a registered name constructs, or ``None`` if unknown.

    The replay-tier resolution (:func:`repro.sim.fastpath.replay_tier_of`)
    uses this to read a named policy's :meth:`ReplacementPolicy.replay_tier`
    declaration without constructing an instance.
    """
    return _CLASSES.get(name)


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Construct an unbound policy by name.

    Args:
        name: one of :data:`POLICY_NAMES`.
        seed: RNG seed for the stochastic policies (random/BIP/DIP/BRRIP/
            DRRIP); ignored by deterministic ones.

    Raises:
        ConfigError: for an unknown name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
    return factory(seed)
