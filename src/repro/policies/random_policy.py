"""Random replacement: the zero-information baseline."""

from repro.policies.base import REPLAY_SET, ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evicts a uniformly random way; keeps no recency state.

    Victim draws come from per-set RNG streams (:meth:`set_rng`), so each
    set's draw sequence depends only on its own eviction order — what makes
    the set-partitioned replay exact.
    """

    name = "random"

    REPLAY_TIER = REPLAY_SET

    def __init__(self, seed: int = 0):
        super().__init__()
        self._rng_seed = seed

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        pass

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        pass

    def select_victim(self, set_index) -> int:
        return self.set_rng(set_index).randrange(self.ways)

    def rank_victims(self, set_index) -> list:
        order = list(range(self.ways))
        self.set_rng(set_index).shuffle(order)
        return order

    def introspect(self) -> dict:
        snapshot = super().introspect()
        snapshot["seed"] = self._rng_seed
        snapshot["set_rng_streams"] = len(self._set_rngs)
        return snapshot
