"""Random replacement: the zero-information baseline."""

from repro.common.rng import DeterministicRng
from repro.policies.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evicts a uniformly random way; keeps no recency state."""

    name = "random"

    def __init__(self, seed: int = 0):
        super().__init__()
        self._rng = DeterministicRng(seed)

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        pass

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        pass

    def select_victim(self, set_index) -> int:
        return self._rng.randrange(self.ways)

    def rank_victims(self, set_index) -> list:
        order = list(range(self.ways))
        self._rng.shuffle(order)
        return order
