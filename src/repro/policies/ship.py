"""SHiP-PC: signature-based hit prediction (Wu et al., MICRO 2011).

RRIP metadata plus a table of saturating counters (the SHCT) indexed by a
hashed *fill-PC signature*. A fill whose signature has historically earned
re-references is inserted with a long re-reference interval (RRPV max-1);
one predicted dead-on-arrival is inserted distant (RRPV max). On a first
hit the resident block's signature counter is incremented; a residency that
ends without any hit decrements it.

SHiP is the closest existing policy to a sharing-aware one the paper
evaluates: it already keys insertion on the fill PC, exactly the feature
the paper's PC-based *sharing* predictor probes — so comparing the two
isolates whether the PC carries sharing (rather than mere reuse)
information.
"""

from repro.common.errors import ConfigError
from repro.policies.base import REPLAY_SCALAR
from repro.policies.rrip import SrripPolicy


class ShipPolicy(SrripPolicy):
    """SHiP-PC on an SRRIP substrate."""

    name = "ship"

    # Deliberately scalar: the SHCT is written by *every* set's fills,
    # hits, and evictions (not just leaders), so the counter a fill reads
    # depends on the global interleaving of all sets' events — no exact
    # per-set decomposition exists (DESIGN.md decision 9 has the
    # counterexample).
    REPLAY_TIER = REPLAY_SCALAR

    def __init__(self, rrpv_bits: int = 2, shct_bits: int = 14, counter_bits: int = 2):
        super().__init__(rrpv_bits)
        if shct_bits <= 0 or counter_bits <= 0:
            raise ConfigError("shct_bits and counter_bits must be positive")
        self.shct_size = 1 << shct_bits
        self._shct_mask = self.shct_size - 1
        self.counter_max = (1 << counter_bits) - 1
        self._shct = [self.counter_max // 2 + 1] * self.shct_size

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self._signature = [[0] * self.ways for __ in range(self.num_sets)]
        self._outcome = [[0] * self.ways for __ in range(self.num_sets)]

    def _hash_pc(self, pc: int) -> int:
        """Fold the PC into the SHCT index space."""
        return ((pc >> 2) ^ (pc >> 11) ^ (pc >> 19)) & self._shct_mask

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        signature = self._hash_pc(pc)
        self._signature[set_index][way] = signature
        self._outcome[set_index][way] = 0
        if self._shct[signature] == 0:
            self._rrpv[set_index][way] = self.rrpv_max
        else:
            self._rrpv[set_index][way] = self.rrpv_max - 1

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        self._rrpv[set_index][way] = 0
        if not self._outcome[set_index][way]:
            self._outcome[set_index][way] = 1
            signature = self._signature[set_index][way]
            if self._shct[signature] < self.counter_max:
                self._shct[signature] += 1

    def on_evict(self, set_index, way, block) -> None:
        if not self._outcome[set_index][way]:
            signature = self._signature[set_index][way]
            if self._shct[signature] > 0:
                self._shct[signature] -= 1

    def shct_histogram(self) -> dict:
        """Counter-value distribution over the whole SHCT (probe layer)."""
        counts = {}
        for value in self._shct:
            counts[value] = counts.get(value, 0) + 1
        return counts

    def introspect(self) -> dict:
        snapshot = super().introspect()
        histogram = self.shct_histogram()
        initial = self.counter_max // 2 + 1
        trained = self.shct_size - histogram.get(initial, 0)
        snapshot["shct_size"] = self.shct_size
        snapshot["counter_max"] = self.counter_max
        snapshot["shct_histogram"] = {str(k): v for k, v in sorted(histogram.items())}
        snapshot["shct_trained_entries"] = trained
        snapshot["shct_dead_entries"] = histogram.get(0, 0)
        return snapshot
