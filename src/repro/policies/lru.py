"""LRU and LIP (LRU-insertion policy).

Both use monotone recency stamps: one global counter, one stamp per way.
The victim is the way with the smallest stamp; a hit refreshes the stamp.
LIP differs only at insertion: a filled block receives a stamp *below* the
current set minimum, i.e. it is inserted at the LRU position and must earn
a hit to be promoted (Qureshi et al., ISCA 2007).
"""

from repro.policies.base import REPLAY_SET, REPLAY_STACK, ReplacementPolicy


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement with MRU insertion."""

    name = "lru"

    # Plain LRU is a stack algorithm: hit/miss is a pure function of the
    # per-set stack distance, served by repro.sim.fastpath.
    REPLAY_TIER = REPLAY_STACK

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self._clock = 0
        self._stamps = [[0] * self.ways for __ in range(self.num_sets)]

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def select_victim(self, set_index) -> int:
        stamps = self._stamps[set_index]
        return stamps.index(min(stamps))

    def rank_victims(self, set_index) -> list:
        stamps = self._stamps[set_index]
        return sorted(range(self.ways), key=stamps.__getitem__)

    def preferred_victim(self, set_index, blocked) -> tuple:
        # Stamp order is a pure sort (ties broken by way index, matching
        # sorted()'s stability), so two linear scans replace the default's
        # rank_victims() sort on this eviction-path hot spot.
        stamps = self._stamps[set_index]
        first = stamps.index(min(stamps))
        best = -1
        best_stamp = 0
        for way, stamp in enumerate(stamps):
            if blocked[way] <= 0 and (best < 0 or stamp < best_stamp):
                best, best_stamp = way, stamp
        return best, first


class LipPolicy(LruPolicy):
    """LRU-insertion policy: fills land at the LRU position."""

    name = "lip"

    # Not a stack algorithm (insertion depth breaks inclusion), but each
    # set evolves independently: exact under set-partitioned replay.
    REPLAY_TIER = REPLAY_SET

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        stamps = self._stamps[set_index]
        stamps[way] = min(stamps) - 1
