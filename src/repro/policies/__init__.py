"""LLC replacement policies.

All the policies the paper's comparison space covers:

* classics — :class:`LruPolicy`, :class:`RandomPolicy`, :class:`NruPolicy`
* insertion-policy family — :class:`LipPolicy`, :class:`BipPolicy`,
  :class:`DipPolicy` (set dueling)
* re-reference interval prediction — :class:`SrripPolicy`,
  :class:`BrripPolicy`, :class:`DrripPolicy` (set dueling)
* signature-based — :class:`ShipPolicy` (SHiP-PC)
* offline optimal — :class:`BeladyOptPolicy` (replay mode only)

Use :func:`make_policy` to build by name; the sharing-aware oracle and
predictor wrappers live in ``repro.oracle`` and ``repro.predictors``.
"""

from repro.policies.base import ReplacementPolicy
from repro.policies.lru import LipPolicy, LruPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.nru import NruPolicy
from repro.policies.dip import BipPolicy, DipPolicy, DuelingController
from repro.policies.rrip import BrripPolicy, DrripPolicy, SrripPolicy
from repro.policies.ship import ShipPolicy
from repro.policies.opt import BeladyOptPolicy, compute_next_use
from repro.policies.registry import POLICY_NAMES, make_policy

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "LipPolicy",
    "RandomPolicy",
    "NruPolicy",
    "BipPolicy",
    "DipPolicy",
    "DuelingController",
    "SrripPolicy",
    "BrripPolicy",
    "DrripPolicy",
    "ShipPolicy",
    "BeladyOptPolicy",
    "compute_next_use",
    "POLICY_NAMES",
    "make_policy",
]
