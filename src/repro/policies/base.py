"""Replacement-policy interface.

A policy owns only its replacement metadata (recency stamps, RRPVs,
signature tables, ...); tag state lives in the LLC. The LLC calls:

* :meth:`ReplacementPolicy.on_fill` when a block is installed into a way
  (every fill corresponds to one demand miss),
* :meth:`ReplacementPolicy.on_hit` on a demand hit,
* :meth:`ReplacementPolicy.select_victim` when a fill finds its set full,
* :meth:`ReplacementPolicy.on_evict` after the victim leaves.

Policies that need global context (the sharing-oracle wrapper keys its
annotations by LLC access ordinal) read it from :attr:`llc`, which the LLC
sets at attach time.
"""

from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng, derive_seed

REPLAY_STACK = "stack"
"""Exact Mattson stack-distance replay (plain LRU only)."""

REPLAY_SET = "set"
"""Exact set-partitioned replay: sets are independent state machines."""

REPLAY_DUELING = "dueling"
"""Set-partitioned replay with two-phase PSEL reconstruction (DIP/DRRIP)."""

REPLAY_SCALAR = "scalar"
"""No exact fast path is known; replay through the scalar cache model."""

REPLAY_GRID = "grid"
"""Grid replay: one pass amortised across a whole configuration grid.

Never *declared* by a policy — it is an engine tier stamped on results by
:mod:`repro.sim.gridpath` when a cell's counters came out of a shared
single-pass walk (stack-distance thresholding across ways, a stacked
parameter kernel, or a shared set partition) rather than an independent
replay (see DESIGN.md decision 10).
"""

REPLAY_TIERS = (REPLAY_STACK, REPLAY_SET, REPLAY_DUELING, REPLAY_SCALAR)
"""Every declarable replay tier, fastest-first (see DESIGN.md decision 9);
:data:`REPLAY_GRID` is engine-assigned and deliberately absent here."""


class ReplacementPolicy(ABC):
    """Base class of all LLC replacement policies."""

    name: str = "base"

    REPLAY_TIER: str = REPLAY_SCALAR
    """Replay tier this class declares itself exact under.

    Deliberately **not inherited**: :meth:`replay_tier` reads the declaring
    class's own ``__dict__``, so a subclass that changes behaviour without
    re-declaring its tier falls back to the scalar model instead of being
    silently mis-replayed by the parent's kernel. Wrappers and new policies
    opt in explicitly (the eligibility registry the fast paths dispatch on).
    """

    def __init__(self):
        self.geometry = None
        self.num_sets = 0
        self.ways = 0
        self.llc = None
        self._rng_seed: Optional[int] = None
        self._set_rngs: Dict[int, DeterministicRng] = {}

    @classmethod
    def replay_tier(cls) -> str:
        """The replay tier declared *on this exact class* (see REPLAY_TIER)."""
        return cls.__dict__.get("REPLAY_TIER", REPLAY_SCALAR)

    def set_rng(self, set_index: int) -> DeterministicRng:
        """Lazily-created independent RNG stream for one set.

        Stochastic policies draw per-set rather than from one global
        stream so that draw indices depend only on the set's own fill
        sequence — the property that makes set-partitioned replay exact
        (DESIGN.md decision 9). Streams are keyed off the policy seed via
        :func:`derive_seed`, so a whole replay stays reproducible.
        """
        if self._rng_seed is None:
            raise SimulationError(
                f"policy {self.name} requested a set RNG without a seed"
            )
        rng = self._set_rngs.get(set_index)
        if rng is None:
            rng = DeterministicRng(derive_seed(self._rng_seed, "set", set_index))
            self._set_rngs[set_index] = rng
        return rng

    def bind(self, geometry: CacheGeometry) -> None:
        """Size the policy's metadata to ``geometry``.

        Subclasses must call ``super().bind(geometry)`` first and may then
        allocate per-set/per-way state. Binding twice is a bug.
        """
        if self.geometry is not None:
            raise SimulationError(f"policy {self.name} bound twice")
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self.ways = geometry.ways

    def attach(self, llc) -> None:
        """Give the policy a back-reference to its LLC (set by the LLC)."""
        self.llc = llc

    @abstractmethod
    def on_fill(self, set_index: int, way: int, block: int, pc: int, core: int, is_write: bool) -> None:
        """A demand miss installed ``block`` into ``way`` of ``set_index``."""

    @abstractmethod
    def on_hit(self, set_index: int, way: int, block: int, pc: int, core: int, is_write: bool) -> None:
        """A demand access hit ``block`` resident in ``way``."""

    @abstractmethod
    def select_victim(self, set_index: int) -> int:
        """Choose the way to evict from a *full* set."""

    def on_evict(self, set_index: int, way: int, block: int) -> None:
        """The block in ``way`` was evicted (override if state must react)."""

    def rank_victims(self, set_index: int) -> list:
        """Every way of the set in eviction-preference order (best first).

        ``rank_victims(s)[0]`` must equal what :meth:`select_victim` would
        choose, including any metadata side effects selection implies (RRIP
        aging). The sharing-aware wrapper uses the full ranking to skip
        protected blocks while otherwise deferring to the base policy — this
        method is what makes the oracle "generic" in the paper's sense.
        """
        raise NotImplementedError(
            f"policy {self.name} does not support ranked victim selection"
        )

    def preferred_victim(self, set_index: int, blocked) -> tuple:
        """``(way, first)``: the best victim not flagged in ``blocked``.

        ``first`` is the unconstrained top choice (``rank_victims(s)[0]``);
        ``way`` is the first way in preference order with
        ``blocked[way] <= 0``, or ``-1`` when every way is blocked. The
        default walks :meth:`rank_victims` — keeping its contractual side
        effects — so behaviour is identical for any ranked base; policies
        whose ranking is a pure sort (LRU) override this with a sort-free
        scan, which is what the eviction-heavy oracle replays hit.
        """
        order = self.rank_victims(set_index)
        first = order[0]
        for way in order:
            if blocked[way] <= 0:
                return way, first
        return -1, first

    def introspect(self) -> dict:
        """JSON-able snapshot of the policy's internal state.

        The probe layer (:mod:`repro.sim.probes`) folds this into its
        machine-readable reports. The base contract: keys are plain strings,
        values JSON-serialisable, and reading the snapshot never mutates
        replacement state. Subclasses extend the dict with their own
        internals (PSEL value, SHCT histogram, RRPV bits, ...).
        """
        return {"policy": self.name}

    def __repr__(self) -> str:
        bound = self.geometry.describe() if self.geometry else "unbound"
        return f"{type(self).__name__}({bound})"
