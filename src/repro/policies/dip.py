"""BIP and DIP (dynamic insertion policy), Qureshi et al., ISCA 2007.

BIP inserts at LRU except for a 1-in-``bip_throttle`` fraction of fills that
go to MRU — enough to adapt when the working set changes while still
filtering thrashing fills. DIP set-duels LRU against BIP: a few *leader
sets* always run one constituent, a saturating PSEL counter scores their
misses, and every other (follower) set adopts the currently winning policy.

:class:`DuelingController` is shared with DRRIP.
"""

from repro.common.errors import ConfigError
from repro.policies.base import REPLAY_DUELING, REPLAY_SET
from repro.policies.lru import LruPolicy


class DuelingController:
    """Set-dueling machinery: leader-set mapping plus the PSEL counter.

    Leader sets are spread through the index space: within every window of
    ``num_sets / num_leaders_each`` sets, the first set leads for policy A
    and the middle set leads for policy B. PSEL counts *misses*: a miss in
    an A-leader increments (evidence against A), a miss in a B-leader
    decrements. Followers use policy B when PSEL's MSB says A is losing.
    """

    LEADER_A = 0
    LEADER_B = 1
    FOLLOWER = 2

    def __init__(self, num_sets: int, num_leaders_each: int = 32, psel_bits: int = 10):
        if num_leaders_each <= 0 or 2 * num_leaders_each > num_sets:
            raise ConfigError(
                f"cannot place 2*{num_leaders_each} leader sets in {num_sets} sets"
            )
        self._window = num_sets // num_leaders_each
        self._half_window = self._window // 2
        self._psel_max = (1 << psel_bits) - 1
        self._psel = self._psel_max // 2
        self._threshold = 1 << (psel_bits - 1)

    def role(self, set_index: int) -> int:
        """LEADER_A / LEADER_B / FOLLOWER for this set."""
        offset = set_index % self._window
        if offset == 0:
            return self.LEADER_A
        if offset == self._half_window:
            return self.LEADER_B
        return self.FOLLOWER

    def record_miss(self, set_index: int) -> None:
        """Update PSEL when a leader set misses."""
        offset = set_index % self._window
        if offset == 0:
            if self._psel < self._psel_max:
                self._psel += 1
        elif offset == self._half_window:
            if self._psel > 0:
                self._psel -= 1

    def use_policy_b(self, set_index: int) -> bool:
        """Which constituent this set should apply for the current fill."""
        role = self.role(set_index)
        if role == self.LEADER_A:
            return False
        if role == self.LEADER_B:
            return True
        return self._psel >= self._threshold

    @property
    def psel(self) -> int:
        """Current PSEL value (exposed for tests and ablations)."""
        return self._psel

    @property
    def psel_max(self) -> int:
        """Saturation ceiling of the PSEL counter."""
        return self._psel_max

    @property
    def threshold(self) -> int:
        """PSEL value at and above which followers adopt policy B."""
        return self._threshold

    def describe(self) -> dict:
        """JSON-able snapshot of the dueling state (probe layer)."""
        return {
            "psel": self._psel,
            "psel_max": self._psel_max,
            "threshold": self._threshold,
            "leader_window": self._window,
            "winning": "B" if self._psel >= self._threshold else "A",
        }


class BipPolicy(LruPolicy):
    """Bimodal insertion: LRU insertion except 1/``bip_throttle`` at MRU.

    Epsilon draws come from per-set RNG streams (:meth:`set_rng`), so each
    set's draw sequence depends only on its own fill order — the property
    that keeps set-partitioned replay exact.
    """

    name = "bip"

    REPLAY_TIER = REPLAY_SET

    def __init__(self, seed: int = 0, bip_throttle: int = 32):
        super().__init__()
        if bip_throttle <= 0:
            raise ConfigError(f"bip_throttle must be positive, got {bip_throttle}")
        self._rng_seed = seed
        self._throttle = bip_throttle

    @property
    def throttle(self) -> int:
        """1-in-``throttle`` fills insert at MRU (read by replay kernels)."""
        return self._throttle

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        stamps = self._stamps[set_index]
        if self.set_rng(set_index).randrange(self._throttle) == 0:
            self._clock += 1
            stamps[way] = self._clock
        else:
            stamps[way] = min(stamps) - 1


class DipPolicy(LruPolicy):
    """Dynamic insertion policy: set-duels LRU (A) against BIP (B)."""

    name = "dip"

    # Sets couple only through PSEL, and only leader sets write it: exact
    # under the two-phase (leaders, then followers) partitioned replay.
    REPLAY_TIER = REPLAY_DUELING

    def __init__(self, seed: int = 0, bip_throttle: int = 32,
                 num_leaders_each: int = 32, psel_bits: int = 10):
        super().__init__()
        self._rng_seed = seed
        self._throttle = bip_throttle
        self._num_leaders_each = num_leaders_each
        self._psel_bits = psel_bits
        self.duel = None

    @property
    def throttle(self) -> int:
        """BIP epsilon of constituent B (read by replay kernels)."""
        return self._throttle

    def bind(self, geometry) -> None:
        super().bind(geometry)
        # Clamp the leader count for small caches: at most half the sets
        # can lead (the paper-standard 32 assumes thousands of sets).
        leaders = max(1, min(self._num_leaders_each, self.num_sets // 2))
        self.duel = DuelingController(self.num_sets, leaders, self._psel_bits)

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self.duel.record_miss(set_index)
        stamps = self._stamps[set_index]
        use_bip = self.duel.use_policy_b(set_index)
        if not use_bip or self.set_rng(set_index).randrange(self._throttle) == 0:
            self._clock += 1
            stamps[way] = self._clock
        else:
            stamps[way] = min(stamps) - 1

    def introspect(self) -> dict:
        snapshot = super().introspect()
        snapshot["duel"] = self.duel.describe() if self.duel else None
        snapshot["constituents"] = {"A": "lru", "B": "bip"}
        return snapshot
