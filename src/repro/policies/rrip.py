"""RRIP family (Jaleel et al., ISCA 2010): SRRIP, BRRIP, DRRIP.

Each way holds an M-bit re-reference prediction value (RRPV). Hits promote
to RRPV 0 (hit-priority variant); the victim is any way at the maximum RRPV
(2^M - 1), aging every way when none qualifies. SRRIP inserts at
``max - 1`` ("long re-reference interval"); BRRIP inserts at ``max`` except
for a 1-in-32 fraction at ``max - 1``; DRRIP set-duels the two.
"""

from repro.common.errors import ConfigError
from repro.policies.base import REPLAY_DUELING, REPLAY_SET, ReplacementPolicy
from repro.policies.dip import DuelingController


class SrripPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion."""

    name = "srrip"

    # RRPVs, aging, and victim choice are all per-set state: exact under
    # set-partitioned replay.
    REPLAY_TIER = REPLAY_SET

    def __init__(self, rrpv_bits: int = 2):
        super().__init__()
        if rrpv_bits <= 0:
            raise ConfigError(f"rrpv_bits must be positive, got {rrpv_bits}")
        self.rrpv_max = (1 << rrpv_bits) - 1

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self._rrpv = [[self.rrpv_max] * self.ways for __ in range(self.num_sets)]

    def insertion_rrpv(self, set_index: int) -> int:
        """RRPV assigned to a fresh fill (overridden by BRRIP/DRRIP)."""
        return self.rrpv_max - 1

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self._rrpv[set_index][way] = self.insertion_rrpv(set_index)

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        self._rrpv[set_index][way] = 0

    def select_victim(self, set_index) -> int:
        rrpvs = self._rrpv[set_index]
        rrpv_max = self.rrpv_max
        while True:
            for way in range(self.ways):
                if rrpvs[way] == rrpv_max:
                    return way
            for way in range(self.ways):
                rrpvs[way] += 1

    def rank_victims(self, set_index) -> list:
        # Perform the same aging select_victim would, so the wrapper's
        # choice leaves the set in the state SRRIP expects, then order by
        # descending RRPV (stalest first, way index breaking ties).
        rrpvs = self._rrpv[set_index]
        rrpv_max = self.rrpv_max
        while rrpv_max not in rrpvs:
            for way in range(self.ways):
                rrpvs[way] += 1
        return sorted(range(self.ways), key=lambda way: -rrpvs[way])

    def rrpv_values(self, set_index: int) -> tuple:
        """Read-only snapshot of one set's RRPVs (probe layer)."""
        return tuple(self._rrpv[set_index])

    def introspect(self) -> dict:
        snapshot = super().introspect()
        snapshot["rrpv_max"] = self.rrpv_max
        if self.geometry is None:
            return snapshot
        counts = {}
        for rrpvs in self._rrpv:
            for value in rrpvs:
                counts[value] = counts.get(value, 0) + 1
        snapshot["rrpv_histogram"] = {str(k): v for k, v in sorted(counts.items())}
        return snapshot


class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: distant insertion except 1/``throttle`` long.

    Throttle draws come from per-set RNG streams (:meth:`set_rng`), so each
    set's draw sequence depends only on its own fill order — what makes the
    set-partitioned replay exact.
    """

    name = "brrip"

    REPLAY_TIER = REPLAY_SET

    def __init__(self, seed: int = 0, rrpv_bits: int = 2, throttle: int = 32):
        super().__init__(rrpv_bits)
        self._rng_seed = seed
        self._throttle = throttle

    @property
    def throttle(self) -> int:
        """1-in-``throttle`` fills insert long (read by replay kernels)."""
        return self._throttle

    def insertion_rrpv(self, set_index: int) -> int:
        if self.set_rng(set_index).randrange(self._throttle) == 0:
            return self.rrpv_max - 1
        return self.rrpv_max


class DrripPolicy(SrripPolicy):
    """Dynamic RRIP: set-duels SRRIP (A) against BRRIP (B)."""

    name = "drrip"

    # Sets couple only through PSEL, and only leader sets write it: exact
    # under the two-phase (leaders, then followers) partitioned replay.
    REPLAY_TIER = REPLAY_DUELING

    def __init__(self, seed: int = 0, rrpv_bits: int = 2, throttle: int = 32,
                 num_leaders_each: int = 32, psel_bits: int = 10):
        super().__init__(rrpv_bits)
        self._rng_seed = seed
        self._throttle = throttle
        self._num_leaders_each = num_leaders_each
        self._psel_bits = psel_bits
        self.duel = None

    @property
    def throttle(self) -> int:
        """BRRIP epsilon of constituent B (read by replay kernels)."""
        return self._throttle

    def bind(self, geometry) -> None:
        super().bind(geometry)
        # Clamp the leader count for small caches (see DipPolicy.bind).
        leaders = max(1, min(self._num_leaders_each, self.num_sets // 2))
        self.duel = DuelingController(self.num_sets, leaders, self._psel_bits)

    def insertion_rrpv(self, set_index: int) -> int:
        if self.duel.use_policy_b(set_index):
            if self.set_rng(set_index).randrange(self._throttle) == 0:
                return self.rrpv_max - 1
            return self.rrpv_max
        return self.rrpv_max - 1

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self.duel.record_miss(set_index)
        super().on_fill(set_index, way, block, pc, core, is_write)

    def introspect(self) -> dict:
        snapshot = super().introspect()
        snapshot["duel"] = self.duel.describe() if self.duel else None
        snapshot["constituents"] = {"A": "srrip", "B": "brrip"}
        return snapshot
