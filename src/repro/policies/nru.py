"""Not-recently-used replacement.

One reference bit per way. Hits and fills set the bit; the victim is the
lowest-numbered way with a clear bit. When every bit in the set is set,
all bits except the just-touched information are cleared (the classic
one-bit approximation of LRU used by several commercial LLCs).
"""

from repro.policies.base import REPLAY_SET, ReplacementPolicy


class NruPolicy(ReplacementPolicy):
    """One-reference-bit NRU."""

    name = "nru"

    # Reference bits never leave their set: exact under set-partitioned
    # replay.
    REPLAY_TIER = REPLAY_SET

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self._ref = [[0] * self.ways for __ in range(self.num_sets)]

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self._touch(set_index, way)

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        self._touch(set_index, way)

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._ref[set_index]
        bits[way] = 1
        if all(bits):
            for i in range(self.ways):
                bits[i] = 0
            bits[way] = 1

    def select_victim(self, set_index) -> int:
        bits = self._ref[set_index]
        for way in range(self.ways):
            if not bits[way]:
                return way
        # Unreachable while _touch maintains at least one clear bit in a
        # full set, but stay safe if state was externally perturbed.
        return 0

    def rank_victims(self, set_index) -> list:
        bits = self._ref[set_index]
        clear = [way for way in range(self.ways) if not bits[way]]
        set_ways = [way for way in range(self.ways) if bits[way]]
        return clear + set_ways

    def introspect(self) -> dict:
        snapshot = super().introspect()
        if self.geometry is None:
            return snapshot
        total = self.num_sets * self.ways
        set_bits = sum(sum(bits) for bits in self._ref)
        histogram = {}
        for bits in self._ref:
            count = sum(bits)
            histogram[count] = histogram.get(count, 0) + 1
        snapshot["ref_bits_set"] = set_bits
        snapshot["ref_bits_total"] = total
        snapshot["ref_bit_fraction"] = set_bits / total if total else 0.0
        snapshot["sets_by_ref_count"] = {
            str(k): v for k, v in sorted(histogram.items())
        }
        return snapshot
