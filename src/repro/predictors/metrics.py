"""Confusion-matrix metrics for fill-time sharing prediction."""

from dataclasses import dataclass

from repro.common.stats import ratio


@dataclass
class ConfusionMatrix:
    """Binary prediction outcomes; "positive" means predicted/actually shared."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    def update(self, predicted: bool, actual: bool) -> None:
        """Record one (prediction, truth) pair."""
        if predicted:
            if actual:
                self.true_positive += 1
            else:
                self.false_positive += 1
        elif actual:
            self.false_negative += 1
        else:
            self.true_negative += 1

    @property
    def total(self) -> int:
        """Scored fills."""
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        """Fraction of fills predicted correctly."""
        return ratio(self.true_positive + self.true_negative, self.total)

    @property
    def precision(self) -> float:
        """Of the fills predicted shared, the fraction actually shared —
        low precision means the policy would protect dead/private blocks."""
        return ratio(self.true_positive, self.true_positive + self.false_positive)

    @property
    def recall(self) -> float:
        """Of the actually shared fills, the fraction predicted shared
        (the paper's *coverage* of sharing)."""
        return ratio(self.true_positive, self.true_positive + self.false_negative)

    @property
    def coverage(self) -> float:
        """Fraction of all fills flagged shared (how aggressively the
        predictor would engage the protection mechanism)."""
        return ratio(self.true_positive + self.false_positive, self.total)

    @property
    def base_rate(self) -> float:
        """Fraction of fills actually shared (the class prior)."""
        return ratio(self.true_positive + self.false_negative, self.total)

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return ratio(2 * p * r, p + r)

    def merge(self, other: "ConfusionMatrix") -> None:
        """Accumulate another matrix into this one."""
        self.true_positive += other.true_positive
        self.false_positive += other.false_positive
        self.true_negative += other.true_negative
        self.false_negative += other.false_negative
