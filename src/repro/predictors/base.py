"""Sharing-predictor interface.

A predictor is consulted at fill time (:meth:`SharingPredictor.predict`)
and trained when the residency's ground truth becomes known at eviction
(:meth:`SharingPredictor.train`) — the online protocol a real LLC
controller would follow, which the paper's predictability study models.
"""

from abc import ABC, abstractmethod


class SharingPredictor(ABC):
    """Base class of all fill-time sharing predictors."""

    name: str = "base"

    @abstractmethod
    def predict(self, block: int, pc: int, core: int) -> bool:
        """Predict whether the block filled by (block, pc, core) will be
        shared during the residency starting now."""

    @abstractmethod
    def train(self, block: int, pc: int, core: int, was_shared: bool) -> None:
        """Learn the outcome of a residency that was filled by
        (block, pc, core)."""

    def reset(self) -> None:
        """Forget all history (override when the predictor keeps state)."""

    def storage_bits(self) -> int:
        """Hardware budget of the design in bits (0 for stateless)."""
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
