"""Online predictor evaluation harness.

:class:`PredictorHarness` is a residency observer: at each fill it makes a
prediction with the tables *as of that moment* and logs it; when the
residency ends it scores the logged prediction against the ground truth and
trains the predictor — exactly the information flow available to a real
fill-time predictor (truth only materialises at eviction).

The same harness doubles as the glue for predictor-*driven* replacement:
:func:`predictor_hint_source` routes the harness's fill-time predictions
into a :class:`repro.oracle.SharingAwareWrapper`, so the F8 experiment
("how much of the oracle's gain does a realistic predictor capture?") uses
the identical protection mechanism as the oracle — only the hint differs.
"""

from typing import Dict, Tuple

from repro.cache.llc import ResidencyObserver
from repro.characterization.hits import popcount
from repro.predictors.base import SharingPredictor
from repro.predictors.metrics import ConfusionMatrix


class PredictorHarness(ResidencyObserver):
    """Scores and trains one predictor online during an LLC run."""

    def __init__(self, predictor: SharingPredictor, warmup_fills: int = 0):
        self.predictor = predictor
        self.warmup_fills = warmup_fills
        self.matrix = ConfusionMatrix()
        self._pending: Dict[int, Tuple[bool, int]] = {}
        self._fills_seen = 0

    def residency_started(self, block, set_index, fill_ordinal, pc, core) -> None:
        prediction = self.predictor.predict(block, pc, core)
        self._fills_seen += 1
        self._pending[fill_ordinal] = (prediction, self._fills_seen)

    def residency_ended(
        self, block, set_index, fill_ordinal, end_ordinal, fill_pc, fill_core,
        core_mask, write_mask, hits, other_hits, forced,
    ) -> None:
        pending = self._pending.pop(fill_ordinal, None)
        was_shared = popcount(core_mask) >= 2
        if pending is not None:
            prediction, fill_number = pending
            if fill_number > self.warmup_fills:
                self.matrix.update(prediction, was_shared)
        self.predictor.train(block, fill_pc, fill_core, was_shared)

    def last_prediction_for(self, fill_ordinal: int):
        """The pending prediction for a live residency (tests only)."""
        entry = self._pending.get(fill_ordinal)
        return entry[0] if entry is not None else None


def predictor_hint_source(predictor: SharingPredictor):
    """Hint source for :class:`SharingAwareWrapper` backed by ``predictor``.

    Attach the corresponding :class:`PredictorHarness` (wrapping the *same*
    predictor instance) to the LLC so training happens; the wrapper only
    consumes predictions. A boolean predictor yields a cross-core-use budget
    of 1 — protect until the first cross-core hit — since it cannot say how
    much sharing to expect.
    """

    def hint(llc, block: int, pc: int, core: int) -> int:
        return 1 if predictor.predict(block, pc, core) else 0

    return hint
