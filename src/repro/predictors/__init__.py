"""Fill-time sharing predictors (the paper's section 6).

A realistic implementation of the sharing oracle needs the LLC controller
to *predict*, at fill time, whether the incoming block will be shared
during its residency. The paper studies two history-based designs — a
table indexed by the filled block's address and one indexed by the fill
instruction's program counter — and reports that neither reaches usable
accuracy. This package implements both (plus a hybrid and the trivial
baselines), an online evaluation harness that scores predictions against
per-residency ground truth, and the glue to drive the sharing-aware policy
wrapper from a predictor instead of the oracle.
"""

from repro.predictors.base import SharingPredictor
from repro.predictors.tables import (
    AddressSharingPredictor,
    HybridSharingPredictor,
    PcSharingPredictor,
)
from repro.predictors.baselines import AlwaysSharedPredictor, NeverSharedPredictor
from repro.predictors.lastvalue import LastValuePredictor
from repro.predictors.region import RegionSharingPredictor
from repro.predictors.metrics import ConfusionMatrix
from repro.predictors.harness import PredictorHarness, predictor_hint_source
from repro.predictors.registry import PREDICTOR_NAMES, make_predictor

__all__ = [
    "SharingPredictor",
    "AddressSharingPredictor",
    "PcSharingPredictor",
    "HybridSharingPredictor",
    "AlwaysSharedPredictor",
    "NeverSharedPredictor",
    "LastValuePredictor",
    "RegionSharingPredictor",
    "ConfusionMatrix",
    "PredictorHarness",
    "predictor_hint_source",
    "PREDICTOR_NAMES",
    "make_predictor",
]
