"""Region-granularity sharing predictor (the paper's "future work", built).

The paper concludes that block-address and PC histories are too unstable
and that usable prediction "will require other architectural and/or
high-level program semantic features". Sharing is a property of *data
structures* — a shared tree, a read-shared point array, a private scratch
buffer — and data structures occupy contiguous regions. A history table
indexed by the fill address's enclosing region (page-sized by default)
aggregates the outcomes of all blocks of a structure, which is both more
stable than per-block history (F9's bimodal flips average out) and
naturally alias-tolerant (one structure maps to few entries).

The counters are wider-ranged than the block predictor's so one region
entry can integrate many residencies before committing.
"""

from repro.common.errors import ConfigError
from repro.predictors.tables import _CounterTablePredictor


class RegionSharingPredictor(_CounterTablePredictor):
    """History table indexed by the filled block's enclosing region."""

    name = "region"

    def __init__(self, index_bits: int = 12, counter_bits: int = 3,
                 region_blocks: int = 64, tag_bits: int = 0,
                 default_shared: bool = False):
        if region_blocks <= 0 or region_blocks & (region_blocks - 1):
            raise ConfigError(
                f"region_blocks must be a positive power of two, got "
                f"{region_blocks}"
            )
        super().__init__(index_bits=index_bits, counter_bits=counter_bits,
                         tag_bits=tag_bits, default_shared=default_shared)
        self.region_blocks = region_blocks
        self._region_shift = region_blocks.bit_length() - 1

    def _key(self, block: int, pc: int, core: int) -> int:
        return block >> self._region_shift
