"""Idealized last-value sharing predictor.

An *unbounded* per-block table remembering each block's most recent
residency outcome. This is what the realistic address-indexed counter table
aspires to be with infinite capacity, no aliasing, and a one-residency
learning rate: its accuracy equals the last-value stability measured by
:class:`repro.characterization.SharingPhaseTracker`
(``PhaseStats.last_value_accuracy``) plus the prior for first-seen blocks.
Comparing T3's realistic tables against this bound separates the accuracy
lost to table constraints from the accuracy the *feature* (per-block
history) fundamentally cannot provide — the paper's central diagnostic.
"""

from typing import Dict

from repro.predictors.base import SharingPredictor


class LastValuePredictor(SharingPredictor):
    """Unbounded per-block last-outcome predictor (analysis bound)."""

    name = "lastvalue"

    def __init__(self, default_shared: bool = False):
        self.default_shared = default_shared
        self._last: Dict[int, bool] = {}

    def predict(self, block: int, pc: int, core: int) -> bool:
        return self._last.get(block, self.default_shared)

    def train(self, block: int, pc: int, core: int, was_shared: bool) -> None:
        self._last[block] = was_shared

    def reset(self) -> None:
        self._last.clear()

    def storage_bits(self) -> int:
        """Unbounded by design; reports the bits currently in use."""
        return len(self._last)
