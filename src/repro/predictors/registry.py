"""Name-based predictor construction."""

from typing import Callable, Dict

from repro.common.errors import ConfigError
from repro.predictors.base import SharingPredictor
from repro.predictors.baselines import AlwaysSharedPredictor, NeverSharedPredictor
from repro.predictors.lastvalue import LastValuePredictor
from repro.predictors.region import RegionSharingPredictor
from repro.predictors.tables import (
    AddressSharingPredictor,
    HybridSharingPredictor,
    PcSharingPredictor,
)

_FACTORIES: Dict[str, Callable[[], SharingPredictor]] = {
    "address": AddressSharingPredictor,
    "pc": PcSharingPredictor,
    "hybrid": HybridSharingPredictor,
    "always": AlwaysSharedPredictor,
    "lastvalue": LastValuePredictor,
    "region": RegionSharingPredictor,
    "never": NeverSharedPredictor,
}

PREDICTOR_NAMES = tuple(sorted(_FACTORIES))
"""All predictor names constructible by :func:`make_predictor`."""


def make_predictor(name: str, **kwargs) -> SharingPredictor:
    """Construct a predictor by name, forwarding table-sizing kwargs.

    Raises:
        ConfigError: for an unknown name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown predictor {name!r}; choose from {PREDICTOR_NAMES}"
        ) from None
    return factory(**kwargs)
