"""Trivial predictor baselines bounding the design space."""

from repro.predictors.base import SharingPredictor


class AlwaysSharedPredictor(SharingPredictor):
    """Predicts shared for every fill (recall 1, precision = base rate)."""

    name = "always"

    def predict(self, block: int, pc: int, core: int) -> bool:
        return True

    def train(self, block: int, pc: int, core: int, was_shared: bool) -> None:
        pass


class NeverSharedPredictor(SharingPredictor):
    """Predicts private for every fill (the do-nothing controller)."""

    name = "never"

    def predict(self, block: int, pc: int, core: int) -> bool:
        return False

    def train(self, block: int, pc: int, core: int, was_shared: bool) -> None:
        pass
