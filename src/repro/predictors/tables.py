"""History-table sharing predictors: address-indexed, PC-indexed, hybrid.

Both single-feature designs are direct-mapped tables of saturating
counters. The address predictor bets that a block's next residency repeats
its previous residencies' behaviour; the PC predictor bets that all fills
from one instruction behave alike. ``tag_bits`` optionally adds partial
tags: on a tag mismatch the entry is not trusted (the default prediction is
returned) and training reallocates the entry — isolating the accuracy loss
caused by aliasing from the loss inherent to the feature, which the A2
ablation quantifies.
"""

from repro.common.errors import ConfigError
from repro.predictors.base import SharingPredictor


def _mix(value: int) -> int:
    """Cheap integer hash to spread low-entropy keys across the table."""
    value = (value ^ (value >> 16)) * 0x45D9F3B
    value = (value ^ (value >> 13)) * 0x45D9F3B
    return value ^ (value >> 16)


class _CounterTablePredictor(SharingPredictor):
    """Shared machinery of the address and PC predictors."""

    def __init__(self, index_bits: int = 14, counter_bits: int = 2,
                 tag_bits: int = 0, default_shared: bool = False):
        if index_bits <= 0 or counter_bits <= 0 or tag_bits < 0:
            raise ConfigError("index_bits/counter_bits must be positive, tag_bits >= 0")
        self.index_bits = index_bits
        self.size = 1 << index_bits
        self._index_mask = self.size - 1
        self.counter_max = (1 << counter_bits) - 1
        self.threshold = (self.counter_max + 1) // 2
        self.tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self.default_shared = default_shared
        self._counters = [self.threshold - 1 if self.threshold > 0 else 0] * self.size
        self._tags = [0] * self.size if tag_bits else None
        self._counter_bits = counter_bits

    def _key(self, block: int, pc: int, core: int) -> int:
        raise NotImplementedError

    def _slot(self, key: int):
        hashed = _mix(key)
        index = hashed & self._index_mask
        tag = (hashed >> self.index_bits) & self._tag_mask
        return index, tag

    def predict(self, block: int, pc: int, core: int) -> bool:
        index, tag = self._slot(self._key(block, pc, core))
        if self._tags is not None and self._tags[index] != tag:
            return self.default_shared
        return self._counters[index] >= self.threshold

    def train(self, block: int, pc: int, core: int, was_shared: bool) -> None:
        index, tag = self._slot(self._key(block, pc, core))
        if self._tags is not None and self._tags[index] != tag:
            # Reallocate: fresh entry biased toward the observed outcome.
            self._tags[index] = tag
            self._counters[index] = self.threshold if was_shared else self.threshold - 1
            return
        if was_shared:
            if self._counters[index] < self.counter_max:
                self._counters[index] += 1
        elif self._counters[index] > 0:
            self._counters[index] -= 1

    def reset(self) -> None:
        initial = self.threshold - 1 if self.threshold > 0 else 0
        for i in range(self.size):
            self._counters[i] = initial
        if self._tags is not None:
            for i in range(self.size):
                self._tags[i] = 0

    def storage_bits(self) -> int:
        return self.size * (self._counter_bits + self.tag_bits)


class AddressSharingPredictor(_CounterTablePredictor):
    """History table indexed by the filled block's address."""

    name = "address"

    def _key(self, block: int, pc: int, core: int) -> int:
        return block


class PcSharingPredictor(_CounterTablePredictor):
    """History table indexed by the PC of the fill-triggering instruction."""

    name = "pc"

    def _key(self, block: int, pc: int, core: int) -> int:
        return pc


class HybridSharingPredictor(SharingPredictor):
    """Tournament hybrid of the address and PC predictors.

    A chooser table (indexed by PC) tracks which component has been more
    accurate for fills from each instruction and forwards that component's
    prediction — the standard two-level tournament arrangement. Both
    components train on every outcome; the chooser trains only when the
    components disagree.
    """

    name = "hybrid"

    def __init__(self, index_bits: int = 14, counter_bits: int = 2,
                 chooser_bits: int = 12):
        if chooser_bits <= 0:
            raise ConfigError(f"chooser_bits must be positive, got {chooser_bits}")
        self.address = AddressSharingPredictor(index_bits, counter_bits)
        self.pc = PcSharingPredictor(index_bits, counter_bits)
        self.chooser_size = 1 << chooser_bits
        self._chooser_mask = self.chooser_size - 1
        self._chooser = [1] * self.chooser_size  # 2-bit: >=2 prefers address
        self._chooser_bits = chooser_bits

    def _chooser_index(self, pc: int) -> int:
        return _mix(pc) & self._chooser_mask

    def predict(self, block: int, pc: int, core: int) -> bool:
        if self._chooser[self._chooser_index(pc)] >= 2:
            return self.address.predict(block, pc, core)
        return self.pc.predict(block, pc, core)

    def train(self, block: int, pc: int, core: int, was_shared: bool) -> None:
        addr_prediction = self.address.predict(block, pc, core)
        pc_prediction = self.pc.predict(block, pc, core)
        if addr_prediction != pc_prediction:
            index = self._chooser_index(pc)
            if addr_prediction == was_shared:
                if self._chooser[index] < 3:
                    self._chooser[index] += 1
            elif self._chooser[index] > 0:
                self._chooser[index] -= 1
        self.address.train(block, pc, core, was_shared)
        self.pc.train(block, pc, core, was_shared)

    def reset(self) -> None:
        self.address.reset()
        self.pc.reset()
        for i in range(self.chooser_size):
            self._chooser[i] = 1

    def storage_bits(self) -> int:
        return (
            self.address.storage_bits()
            + self.pc.storage_bits()
            + self.chooser_size * 2
        )
