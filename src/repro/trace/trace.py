"""In-memory trace container backed by parallel arrays.

Traces routinely hold millions of accesses; storing them as four parallel
``array`` columns keeps memory roughly 10x below a list of objects and lets
the simulator iterate with plain integer indexing.
"""

from array import array
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import TraceError
from repro.trace.record import Access


class Trace:
    """An ordered, immutable sequence of memory accesses.

    Built via :class:`TraceBuilder` or :func:`Trace.from_accesses`. Columns
    are exposed read-only for bulk consumers (the simulator, numpy-based
    analysis); item access materialises :class:`Access` records.
    """

    def __init__(
        self,
        tids: array,
        pcs: array,
        addrs: array,
        writes: array,
        name: str = "trace",
    ):
        lengths = {len(tids), len(pcs), len(addrs), len(writes)}
        if len(lengths) != 1:
            raise TraceError(f"column lengths disagree: {sorted(lengths)}")
        self._tids = tids
        self._pcs = pcs
        self._addrs = addrs
        self._writes = writes
        self.name = name

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access], name: str = "trace") -> "Trace":
        """Build a trace from an iterable of :class:`Access` records."""
        builder = TraceBuilder(name=name)
        for access in accesses:
            builder.append(access.tid, access.pc, access.addr, access.is_write)
        return builder.build()

    @property
    def tids(self) -> array:
        """Thread-id column."""
        return self._tids

    @property
    def pcs(self) -> array:
        """Program-counter column."""
        return self._pcs

    @property
    def addrs(self) -> array:
        """Byte-address column."""
        return self._addrs

    @property
    def writes(self) -> array:
        """Is-write column (0/1)."""
        return self._writes

    @property
    def num_threads(self) -> int:
        """1 + the maximum thread id appearing in the trace (0 if empty)."""
        if not self._tids:
            return 0
        return max(self._tids) + 1

    def __len__(self) -> int:
        return len(self._tids)

    def __getitem__(self, index: int) -> Access:
        return Access(
            self._tids[index],
            self._pcs[index],
            self._addrs[index],
            bool(self._writes[index]),
        )

    def __iter__(self) -> Iterator[Access]:
        for i in range(len(self._tids)):
            yield Access(
                self._tids[i], self._pcs[i], self._addrs[i], bool(self._writes[i])
            )

    def columns(self) -> Tuple[array, array, array, array]:
        """The four parallel columns ``(tids, pcs, addrs, writes)``.

        This is the form the simulator's hot loop consumes.
        """
        return self._tids, self._pcs, self._addrs, self._writes

    def numpy_columns(self) -> Tuple:
        """``(tids, pcs, addrs, writes)`` as read-only zero-copy numpy views.

        Raises :class:`RuntimeError` when numpy is unavailable; bulk
        consumers fall back to :meth:`columns`.
        """
        from repro.common.npsupport import frozen_view, require_numpy

        np = require_numpy()
        return (
            frozen_view(self._tids, np.int16),
            frozen_view(self._pcs, np.int64),
            frozen_view(self._addrs, np.int64),
            frozen_view(self._writes, np.int8),
        )

    def slice(self, start: int, stop: Optional[int] = None) -> "Trace":
        """A new trace covering ``[start, stop)`` of this one."""
        return Trace(
            self._tids[start:stop],
            self._pcs[start:stop],
            self._addrs[start:stop],
            self._writes[start:stop],
            name=f"{self.name}[{start}:{stop if stop is not None else ''}]",
        )

    def filter_thread(self, tid: int) -> "Trace":
        """A new trace holding only accesses of thread ``tid``."""
        builder = TraceBuilder(name=f"{self.name}/tid{tid}")
        tids, pcs, addrs, writes = self.columns()
        for i in range(len(tids)):
            if tids[i] == tid:
                builder.append(tids[i], pcs[i], addrs[i], bool(writes[i]))
        return builder.build()

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, len={len(self)}, threads={self.num_threads})"


class TraceBuilder:
    """Incremental trace constructor.

    Appends are cheap column pushes; :meth:`build` freezes the columns into a
    :class:`Trace` without copying.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self._tids = array("h")
        self._pcs = array("q")
        self._addrs = array("q")
        self._writes = array("b")

    def append(self, tid: int, pc: int, addr: int, is_write: bool) -> None:
        """Append one access."""
        if tid < 0:
            raise TraceError(f"negative thread id {tid}")
        if addr < 0 or pc < 0:
            raise TraceError(f"negative address/pc ({addr}, {pc})")
        self._tids.append(tid)
        self._pcs.append(pc)
        self._addrs.append(addr)
        self._writes.append(1 if is_write else 0)

    def append_access(self, access: Access) -> None:
        """Append one :class:`Access` record."""
        self.append(access.tid, access.pc, access.addr, access.is_write)

    def extend(self, accesses: Iterable[Access]) -> None:
        """Append many :class:`Access` records."""
        for access in accesses:
            self.append_access(access)

    def __len__(self) -> int:
        return len(self._tids)

    def build(self) -> Trace:
        """Freeze into a :class:`Trace` (the builder should be discarded)."""
        return Trace(self._tids, self._pcs, self._addrs, self._writes, name=self.name)


def concatenate(traces: List[Trace], name: str = "concat") -> Trace:
    """Concatenate traces end-to-end preserving order."""
    builder = TraceBuilder(name=name)
    for trace in traces:
        tids, pcs, addrs, writes = trace.columns()
        builder._tids.extend(tids)
        builder._pcs.extend(pcs)
        builder._addrs.extend(addrs)
        builder._writes.extend(writes)
    return builder.build()
