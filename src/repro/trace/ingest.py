"""External trace ingestion (ChampSim / Pin-style).

Real-application traces enter the pipeline through this module and come
out as ordinary :class:`~repro.trace.trace.Trace` objects, so everything
downstream — hierarchy recording, replay tiers, probes, the fuzzing
harness — treats them exactly like synthetic generator output.

Two formats are supported:

* **ChampSim** binary instruction traces: fixed 64-byte records
  ``{ip u64, is_branch u8, branch_taken u8, destination_registers u8[2],
  source_registers u8[4], destination_memory u64[2], source_memory
  u64[4]}``, little-endian. Each non-zero ``source_memory`` slot becomes a
  load and each non-zero ``destination_memory`` slot a store, in record
  order. ChampSim traces are single-threaded; all accesses carry the
  ``tid`` passed by the caller (default 0). ``.gz`` and ``.xz`` files are
  decompressed transparently.
* **Pin** ``pinatrace``-style text: one access per line. The classic
  two-column form ``<pc>: R <addr>`` (tid 0) and a multi-threaded
  four-column form ``<tid> <R|W> <addr> <pc>`` are both recognised, per
  line. ``#``-prefixed lines and blanks are skipped.

Addresses and PCs are masked to 63 bits so they fit the signed i64 trace
columns.
"""

import gzip
import lzma
import struct
from pathlib import Path
from typing import Optional, Union

from repro.common.errors import TraceError
from repro.trace.trace import Trace, TraceBuilder

CHAMPSIM_RECORD = struct.Struct("<QBB2B4B2Q4Q")
"""One ChampSim ``input_instr`` record (64 bytes, little-endian)."""

_I63_MASK = (1 << 63) - 1

_FORMATS = ("auto", "champsim", "pin")


def _open_maybe_compressed(path: Path):
    suffix = path.suffix.lower()
    if suffix == ".gz":
        return gzip.open(path, "rb")
    if suffix == ".xz":
        return lzma.open(path, "rb")
    return open(path, "rb")


def read_champsim_trace(path: Union[str, Path], tid: int = 0,
                        limit: Optional[int] = None,
                        name: Optional[str] = None) -> Trace:
    """Decode a ChampSim binary instruction trace into a :class:`Trace`.

    ``limit`` caps the number of *memory accesses* emitted (not
    instruction records); ``None`` reads the whole file.
    """
    path = Path(path)
    record = CHAMPSIM_RECORD
    builder = TraceBuilder(name=name or path.name)
    with _open_maybe_compressed(path) as handle:
        while limit is None or len(builder) < limit:
            chunk = handle.read(record.size)
            if not chunk:
                break
            if len(chunk) != record.size:
                raise TraceError(
                    f"{path}: truncated ChampSim record "
                    f"({len(chunk)} of {record.size} bytes)"
                )
            fields = record.unpack(chunk)
            ip = fields[0] & _I63_MASK
            dest_mem = fields[8:10]
            src_mem = fields[10:14]
            for addr in src_mem:
                if addr:
                    builder.append(tid, ip, addr & _I63_MASK, False)
                    if limit is not None and len(builder) >= limit:
                        break
            for addr in dest_mem:
                if limit is not None and len(builder) >= limit:
                    break
                if addr:
                    builder.append(tid, ip, addr & _I63_MASK, True)
    if not len(builder):
        raise TraceError(f"{path}: no memory accesses decoded")
    return builder.build()


def _parse_int(token: str, path: Path, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise TraceError(f"{path}:{lineno}: bad number {token!r}")


def _parse_pin_line(parts, path: Path, lineno: int):
    """One pin-text access as ``(tid, pc, addr, is_write)``, or None."""
    if len(parts) == 3 and parts[0].endswith(":"):
        # pinatrace classic: "<pc>: R <addr>"
        op = parts[1].upper()
        if op not in ("R", "W"):
            raise TraceError(f"{path}:{lineno}: bad op {parts[1]!r}")
        pc = _parse_int(parts[0][:-1], path, lineno)
        addr = _parse_int(parts[2], path, lineno)
        return 0, pc, addr, op == "W"
    if len(parts) == 4:
        # multi-threaded: "<tid> <R|W> <addr> <pc>"
        op = parts[1].upper()
        if op not in ("R", "W"):
            raise TraceError(f"{path}:{lineno}: bad op {parts[1]!r}")
        tid = _parse_int(parts[0], path, lineno)
        addr = _parse_int(parts[2], path, lineno)
        pc = _parse_int(parts[3], path, lineno)
        return tid, pc, addr, op == "W"
    raise TraceError(
        f"{path}:{lineno}: unrecognised pin line ({len(parts)} fields)"
    )


def read_pin_trace(path: Union[str, Path], limit: Optional[int] = None,
                   name: Optional[str] = None) -> Trace:
    """Decode a Pin ``pinatrace``-style text trace into a :class:`Trace`."""
    path = Path(path)
    builder = TraceBuilder(name=name or path.name)
    with _open_maybe_compressed(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            if limit is not None and len(builder) >= limit:
                break
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                raise TraceError(f"{path}:{lineno}: not a text trace")
            if not line or line.startswith("#") or line.startswith("//"):
                continue
            parts = line.split()
            tid, pc, addr, is_write = _parse_pin_line(parts, path, lineno)
            builder.append(tid, pc & _I63_MASK, addr & _I63_MASK, is_write)
    if not len(builder):
        raise TraceError(f"{path}: no memory accesses decoded")
    return builder.build()


def _sniff_format(path: Path) -> str:
    """Guess champsim-vs-pin from the filename, then the leading bytes."""
    stem = path.name.lower()
    if "champsim" in stem:
        return "champsim"
    if "pin" in stem or stem.endswith(".out") or stem.endswith(".txt"):
        return "pin"
    with _open_maybe_compressed(path) as handle:
        head = handle.read(256)
    try:
        text = head.decode("utf-8")
    except UnicodeDecodeError:
        return "champsim"
    printable = sum(ch.isprintable() or ch in "\r\n\t" for ch in text)
    return "pin" if text and printable == len(text) else "champsim"


def read_external_trace(path: Union[str, Path], fmt: str = "auto",
                        tid: int = 0, limit: Optional[int] = None,
                        name: Optional[str] = None) -> Trace:
    """Ingest an external trace file in any supported format.

    ``fmt`` is ``"champsim"``, ``"pin"``, or ``"auto"`` (sniff by filename
    then content).
    """
    if fmt not in _FORMATS:
        raise TraceError(f"unknown trace format {fmt!r}; expected {_FORMATS}")
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    if fmt == "auto":
        fmt = _sniff_format(path)
    if fmt == "champsim":
        return read_champsim_trace(path, tid=tid, limit=limit, name=name)
    return read_pin_trace(path, limit=limit, name=name)
