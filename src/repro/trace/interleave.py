"""Interleaving of per-thread access streams into one global trace.

Workload models generate each thread's access sequence independently; the
interleaver merges them into a single global order the shared LLC observes.
Round-robin with randomised burst lengths models the loose lock-step of
data-parallel phases (threads make progress at similar rates but interleave
at a granularity of tens of accesses, not single instructions), which is the
regime the paper's CMP traces exhibit.
"""

from typing import List, Sequence, Tuple

from repro.common.rng import DeterministicRng
from repro.trace.trace import Trace, TraceBuilder

ThreadStream = Sequence[Tuple[int, int, bool]]
"""One thread's accesses as ``(pc, addr, is_write)`` triples."""


def interleave_streams(
    streams: List[ThreadStream],
    rng: DeterministicRng,
    min_burst: int = 8,
    max_burst: int = 64,
    name: str = "trace",
) -> Trace:
    """Merge per-thread streams into a globally ordered trace.

    Threads take turns in random order; each turn consumes a random burst of
    ``min_burst..max_burst`` accesses from the chosen thread. Every access of
    every stream appears exactly once, in per-thread order.

    Args:
        streams: one sequence of ``(pc, addr, is_write)`` per thread; the
            list index is the thread id.
        rng: deterministic RNG controlling turn order and burst lengths.
        min_burst: minimum accesses consumed per turn.
        max_burst: maximum accesses consumed per turn.
        name: name of the produced trace.
    """
    if min_burst <= 0 or max_burst < min_burst:
        raise ValueError(f"bad burst range [{min_burst}, {max_burst}]")

    builder = TraceBuilder(name=name)
    cursors = [0] * len(streams)
    live = [tid for tid, stream in enumerate(streams) if len(stream) > 0]

    while live:
        tid = live[rng.randrange(len(live))]
        stream = streams[tid]
        cursor = cursors[tid]
        burst = rng.randint(min_burst, max_burst)
        end = min(cursor + burst, len(stream))
        for pc, addr, is_write in stream[cursor:end]:
            builder.append(tid, pc, addr, is_write)
        cursors[tid] = end
        if end == len(stream):
            live.remove(tid)

    return builder.build()
