"""Binary trace file format.

Layout (little-endian):

    magic    4 bytes  b"RTRC"
    version  u32      currently 1
    count    u64      number of accesses
    nthreads u32      number of threads (informational)
    namelen  u32      length of the UTF-8 trace name
    name     bytes
    columns  tids as i16[count], pcs as i64[count],
             addrs as i64[count], writes as i8[count]

Files whose path ends in ``.gz`` are transparently gzip-compressed. Columns
are stored column-major so readers can bulk-load each with one ``frombytes``.
"""

import gzip
import struct
from array import array
from pathlib import Path
from typing import Union

from repro.common.errors import TraceError
from repro.trace.trace import Trace

_MAGIC = b"RTRC"
_VERSION = 1
_HEADER = struct.Struct("<4sIQII")


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def write_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Serialise ``trace`` to ``path`` (gzip if the name ends in .gz)."""
    path = Path(path)
    name_bytes = trace.name.encode("utf-8")
    tids, pcs, addrs, writes = trace.columns()
    with _open(path, "wb") as handle:
        handle.write(
            _HEADER.pack(_MAGIC, _VERSION, len(trace), trace.num_threads, len(name_bytes))
        )
        handle.write(name_bytes)
        handle.write(tids.tobytes())
        handle.write(pcs.tobytes())
        handle.write(addrs.tobytes())
        handle.write(writes.tobytes())


def read_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`write_trace`.

    Raises:
        TraceError: on a bad magic number, unsupported version, or a
            truncated file.
    """
    path = Path(path)
    with _open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceError(f"{path}: truncated header")
        magic, version, count, __, namelen = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceError(f"{path}: bad magic {magic!r}")
        if version != _VERSION:
            raise TraceError(f"{path}: unsupported version {version}")
        name = handle.read(namelen).decode("utf-8")

        def load(typecode: str, item_size: int) -> array:
            column = array(typecode)
            blob = handle.read(count * item_size)
            if len(blob) != count * item_size:
                raise TraceError(f"{path}: truncated column ({typecode})")
            column.frombytes(blob)
            return column

        tids = load("h", 2)
        pcs = load("q", 8)
        addrs = load("q", 8)
        writes = load("b", 1)
    return Trace(tids, pcs, addrs, writes, name=name)
