"""Trace substrate: access records, in-memory traces, file I/O, interleaving.

A *trace* is the ordered sequence of memory accesses a multi-threaded
application issues, globally interleaved across threads. Each access carries
the issuing thread id, the program counter of the instruction, the byte
address touched, and whether it was a write — exactly the information the
paper's pin-based tracing captured, and all that the characterization,
oracle, and predictor studies consume.
"""

from repro.trace.record import Access
from repro.trace.trace import Trace, TraceBuilder, concatenate
from repro.trace.io import read_trace, write_trace
from repro.trace.interleave import interleave_streams
from repro.trace.stats import TraceStatistics, compute_trace_statistics

__all__ = [
    "Access",
    "Trace",
    "TraceBuilder",
    "concatenate",
    "read_trace",
    "write_trace",
    "interleave_streams",
    "TraceStatistics",
    "compute_trace_statistics",
]
