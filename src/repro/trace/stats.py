"""Whole-trace statistics (pre-simulation characterization).

These are properties of the raw access stream, independent of any cache:
footprint, read/write mix, per-thread balance, and the *static* sharing
profile — which blocks are ever touched by more than one thread. The
cache-dependent (per-residency) sharing analysis lives in
``repro.characterization``.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.addressing import BLOCK_BYTES_DEFAULT
from repro.common.stats import ratio
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one trace.

    Attributes:
        name: trace name.
        num_accesses: total accesses.
        num_threads: number of threads.
        num_writes: store count.
        footprint_blocks: distinct blocks touched.
        shared_blocks: distinct blocks touched by >= 2 threads.
        accesses_to_shared: accesses landing on those shared blocks.
        per_thread_accesses: access count per thread id.
        distinct_pcs: distinct program counters.
    """

    name: str
    num_accesses: int
    num_threads: int
    num_writes: int
    footprint_blocks: int
    shared_blocks: int
    accesses_to_shared: int
    per_thread_accesses: Tuple[int, ...]
    distinct_pcs: int

    @property
    def write_fraction(self) -> float:
        """Stores as a fraction of all accesses."""
        return ratio(self.num_writes, self.num_accesses)

    @property
    def shared_block_fraction(self) -> float:
        """Fraction of the block footprint that is (statically) shared."""
        return ratio(self.shared_blocks, self.footprint_blocks)

    @property
    def shared_access_fraction(self) -> float:
        """Fraction of accesses that land on statically shared blocks."""
        return ratio(self.accesses_to_shared, self.num_accesses)

    @property
    def footprint_bytes(self) -> int:
        """Footprint in bytes (block-granular)."""
        return self.footprint_blocks * BLOCK_BYTES_DEFAULT


def compute_trace_statistics(
    trace: Trace, block_bytes: int = BLOCK_BYTES_DEFAULT
) -> TraceStatistics:
    """Single pass over ``trace`` computing :class:`TraceStatistics`."""
    tids, pcs, addrs, writes = trace.columns()
    num_threads = trace.num_threads

    # Per block: bitmask of threads that touched it, and its access count.
    toucher_mask: Dict[int, int] = {}
    block_accesses: Dict[int, int] = {}
    per_thread = [0] * num_threads
    num_writes = 0
    seen_pcs = set()

    for i in range(len(tids)):
        tid = tids[i]
        block = addrs[i] // block_bytes
        per_thread[tid] += 1
        num_writes += writes[i]
        seen_pcs.add(pcs[i])
        toucher_mask[block] = toucher_mask.get(block, 0) | (1 << tid)
        block_accesses[block] = block_accesses.get(block, 0) + 1

    shared_blocks = 0
    accesses_to_shared = 0
    for block, mask in toucher_mask.items():
        if mask & (mask - 1):  # more than one bit set => >= 2 threads
            shared_blocks += 1
            accesses_to_shared += block_accesses[block]

    return TraceStatistics(
        name=trace.name,
        num_accesses=len(trace),
        num_threads=num_threads,
        num_writes=num_writes,
        footprint_blocks=len(toucher_mask),
        shared_blocks=shared_blocks,
        accesses_to_shared=accesses_to_shared,
        per_thread_accesses=tuple(per_thread),
        distinct_pcs=len(seen_pcs),
    )
