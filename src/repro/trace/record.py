"""The single-access record type.

:class:`Access` is the user-facing record. The hot simulator loops never
allocate these — they iterate the trace's parallel arrays directly — but
APIs that hand individual accesses to user code (builders, filters, tests)
use this named type for clarity.
"""

from typing import NamedTuple


class Access(NamedTuple):
    """One memory access of one thread.

    Attributes:
        tid: issuing thread id, ``0 <= tid < num_threads``.
        pc: program counter of the memory instruction.
        addr: byte address accessed.
        is_write: True for a store, False for a load.
    """

    tid: int
    pc: int
    addr: int
    is_write: bool

    def block(self, block_bytes: int = 64) -> int:
        """Block address containing this access."""
        return self.addr // block_bytes
