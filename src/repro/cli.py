"""Command-line interface: ``repro-sim``.

Subcommands mirror the paper's studies:

* ``characterize`` — shared/private hit breakdown per workload (F1-F3)
* ``compare``      — policy shoot-out incl. OPT on identical streams (F4/F5)
* ``oracle``       — sharing-oracle gains over a base policy (F6)
* ``predict``      — fill-time predictor accuracy study (T3)
* ``sweep``        — oracle gain vs LLC capacity (F7)
* ``phases``       — per-block sharing stability and PC ambiguity (F9/T4)
* ``mix``          — sharing-oracle on a multi-programmed mix (F10)
* ``record``       — record a workload's LLC stream to a file
* ``replay``       — replay a recorded stream under chosen policies
* ``inspect``      — microarchitectural probe report per workload
* ``fuzz``         — scenario fuzzing: mine policy inversions at scale
* ``bench``        — timed warm-sweep cells -> BENCH_<rev>.json trajectory
* ``cache``        — inspect or clear the persistent stream cache
* ``list``         — available workloads, policies, profiles

``compare``/``oracle``/``sweep``/``predict`` accept ``--jobs N`` to fan the
experiment matrix out over worker processes (``--jobs 0`` = every core),
and every subcommand shares a persistent on-disk stream cache (default
``~/.cache/repro-sim``; override with ``--cache-dir`` or the
``REPRO_SIM_CACHE_DIR`` environment variable, disable with ``--no-cache``)
so the expensive hierarchy recording pass is paid once per machine.

Examples::

    repro-sim characterize --profile scaled-4mb --workloads streamcluster
    repro-sim oracle --base lru --profile scaled-8mb --jobs 4
    repro-sim predict --predictors address pc hybrid
    repro-sim cache info
"""

import argparse
import json
import math
import os
import sys
from contextlib import contextmanager
from typing import List, Optional

from repro.analysis.aggregate import append_group_means, append_summary_rows
from repro.analysis.tables import render_table
from repro.common.config import PROFILE_NAMES
from repro.common.errors import ReproError
from repro.policies.registry import POLICY_NAMES
from repro.predictors.registry import PREDICTOR_NAMES
from repro.sim import telemetry
from repro.sim.experiment import (
    AUTO_CACHE_DIR,
    ExperimentContext,
    cache_entries,
    clear_cache,
    orphan_tmp_entries,
    resolve_cache_dir,
    shared_context,
)
from repro.sim.parallel import (
    DEFAULT_RETRIES,
    compare_many,
    inspect_many,
    oracle_many,
    predict_many,
    sweep_many,
)
from repro.sim.results import is_failure, split_failures
from repro.workloads.registry import workload_names


def _positive_int(text: str) -> int:
    """argparse type: reject nonpositive values at parse time, not in a
    worker process halfway through a sweep."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: integer >= 0 (``--jobs 0`` means every core)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: strictly positive float (timeouts, horizons)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _capacity_multiple(text: str) -> float:
    """argparse type: a sweep capacity multiple, validated at parse time.

    Multiples must be positive finite powers of two (0.25, 0.5, 1, 2, ...):
    :func:`repro.sim.parallel.scaled_geometry` snaps the scaled set count to
    the nearest power of two, so any other multiple would silently land on
    a different capacity than requested — reject it with a one-line error
    instead of sweeping a geometry the user did not ask for.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"capacity multiple must be positive and finite, got {value}"
        )
    if 2.0 ** round(math.log2(value)) != value:
        raise argparse.ArgumentTypeError(
            f"capacity multiple {value} is not a power of two; the swept "
            f"geometry would snap to a different capacity (use 0.25, 0.5, "
            f"1, 2, 4, ...)"
        )
    return value


class _SizesAction(argparse.Action):
    """``--sizes`` list action rejecting duplicate multiples up front."""

    def __call__(self, parser, namespace, values, option_string=None):
        seen = set()
        for value in values:
            if value in seen:
                parser.error(
                    f"argument {option_string}: duplicate capacity "
                    f"multiple {value}"
                )
            seen.add(value)
        setattr(namespace, self.dest, tuple(values))


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="scaled-4mb", choices=PROFILE_NAMES,
        help="machine profile (default: scaled-4mb)",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="NAME",
        help="workload subset (default: all)",
    )
    parser.add_argument(
        "--accesses", type=_positive_int, default=300_000,
        help="per-workload access budget (default: 300000)",
    )
    parser.add_argument("--seed", type=_nonnegative_int, default=42,
                        help="base seed")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent stream cache directory "
             "(default: $REPRO_SIM_CACHE_DIR or ~/.cache/repro-sim)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent stream cache",
    )
    telemetry_group = parser.add_mutually_exclusive_group()
    telemetry_group.add_argument(
        "--telemetry", dest="telemetry", action="store_true", default=True,
        help="record a run manifest + event log under <cache>/runs "
             "(default: on; inspect with 'repro-sim runs list/show')",
    )
    telemetry_group.add_argument(
        "--no-telemetry", dest="telemetry", action="store_false",
        help="disable run telemetry (outputs are byte-identical)",
    )
    _add_db_argument(parser)
    _add_fastpath_argument(parser)


def _add_db_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", nargs="?", const="auto", default=None, metavar="PATH",
        help="mirror this run live into the experiment store (bare --db "
             "uses expdb.sqlite3 inside the runs root; also enabled by "
             "$REPRO_SIM_DB; JSONL files remain the source of truth)",
    )


def _add_fastpath_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="force the scalar cache model even for replay-tier-eligible "
             "policies (LRU stack-distance and the set-partitioned "
             "RRIP/DIP/NRU/random/OPT tiers; results are bit-identical, "
             "this only trades speed)",
    )
    parser.add_argument(
        "--no-native", action="store_true",
        help="disable the native scalar-tier backend (numba/compact SHiP "
             "kernels); scalar-tier replays take the object model instead "
             "(results are bit-identical, this only trades speed)",
    )
    parser.add_argument(
        "--kernel-jobs", type=_nonnegative_int, default=None, metavar="N",
        help="worker threads sharding the set-partitioned kernels within "
             "one replay (1 = serial, 0 = all cores; exact — per-set "
             "state and RNG streams are independent; default: "
             "$REPRO_SIM_KERNEL_JOBS or serial)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_nonnegative_int, default=1, metavar="N",
        help="worker processes for the experiment matrix "
             "(1 = serial, 0 = all cores; results are bit-identical)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort the whole run on the first cell error (default: "
             "retry, then complete with partial results and record the "
             "failures in the run manifest)",
    )
    parser.add_argument(
        "--retries", type=_nonnegative_int, default=DEFAULT_RETRIES,
        metavar="N",
        help=f"retry budget per failing cell (default: {DEFAULT_RETRIES}; "
             "ignored under --fail-fast)",
    )
    parser.add_argument(
        "--cell-timeout", type=_positive_float, default=None, metavar="SEC",
        help="per-cell completion deadline in seconds (parallel graceful "
             "mode only; default: none)",
    )


def _run_kwargs(args) -> dict:
    """:func:`repro.sim.parallel.run_cells` knobs from parsed flags."""
    return {
        "fail_fast": getattr(args, "fail_fast", False),
        "retries": getattr(args, "retries", DEFAULT_RETRIES),
        "timeout": getattr(args, "cell_timeout", None),
    }


def _cache_spec(args):
    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    return AUTO_CACHE_DIR


def _fastpath_spec(args) -> Optional[bool]:
    """Three-state fastpath gate from the CLI flag (None = auto)."""
    return False if getattr(args, "no_fastpath", False) else None


def _context(args) -> ExperimentContext:
    context = shared_context(
        args.profile, args.accesses, args.seed, cache_dir=_cache_spec(args)
    )
    context.fastpath = _fastpath_spec(args)
    # Exported as environment rather than threaded through the context so
    # worker processes (pool initializer re-reads os.environ) and every
    # library entry point see the same gates.
    if getattr(args, "no_native", False):
        from repro.sim.nativepath import NO_NATIVE_ENV

        os.environ[NO_NATIVE_ENV] = "1"
    if getattr(args, "kernel_jobs", None) is not None:
        from repro.sim.nativepath import KERNEL_JOBS_ENV

        os.environ[KERNEL_JOBS_ENV] = str(args.kernel_jobs)
    if args.workloads:
        unknown = set(args.workloads) - set(workload_names())
        if unknown:
            raise SystemExit(f"unknown workloads: {sorted(unknown)}")
        context.workload_list = list(args.workloads)
    return context


def _runs_root(args):
    """Where this invocation's run records live (tracks --cache-dir)."""
    spec = getattr(args, "cache_dir", None)
    if spec:
        return telemetry.resolve_runs_root(cache_dir=spec)
    return telemetry.resolve_runs_root()


@contextmanager
def _telemetry_run(args, command: str, context=None):
    """Scope one CLI invocation as a telemetry run (or a no-op).

    Emits the manifest skeleton up front, activates the recorder so every
    stage span from here (including worker processes) lands in the event
    log, and seals the manifest with the final status — ``failed`` on an
    exception, ``completed_with_failures`` when graceful mode recorded
    failed cells, ``completed`` otherwise.
    """
    if not getattr(args, "telemetry", True):
        yield None
        return
    run = telemetry.create_run(
        _runs_root(args), command=command,
        argv=getattr(args, "_argv", None) or sys.argv[1:],
    )
    run.update_manifest(**telemetry.describe_environment(context))
    _attach_db_sink(args, run)
    with telemetry.activate(run):
        try:
            yield run
        except BaseException as error:
            run.finish(status="failed",
                       error=f"{type(error).__name__}: {error}")
            print(f"telemetry: run {run.run_id} -> {run.run_dir}",
                  file=sys.stderr)
            raise
    cells = run.manifest.get("cells") or {}
    status = "completed_with_failures" if cells.get("failed") else "completed"
    run.finish(status=status)
    print(f"telemetry: run {run.run_id} -> {run.run_dir}", file=sys.stderr)


def _attach_db_sink(args, run) -> None:
    """Mirror the run into the experiment store when --db/REPRO_SIM_DB asks.

    A database problem must never take down the run itself — the JSONL
    files are the source of truth and remain ingestable post hoc — so any
    failure here degrades to a one-line warning.
    """
    from repro.sim.expdb import LiveDbWriter, resolve_db_path

    try:
        db_path = resolve_db_path(getattr(args, "db", None),
                                  _runs_root(args))
        if db_path is None:
            return
        run.attach_sink(LiveDbWriter(db_path, run))
    except Exception as error:  # noqa: BLE001 - observability is optional
        print(f"warning: experiment store disabled for this run: "
              f"{type(error).__name__}: {error}", file=sys.stderr)


def _report_failures(failures) -> None:
    """Surface graceful-mode cell failures on stderr (tables skip them).

    Grid cells (one ``sweep_grid`` cell spanning every capacity point of a
    workload) surface the same :class:`CellFailure` in several result
    slots; report each distinct failure once.
    """
    for failure in dict.fromkeys(failures):
        print(
            f"warning: cell ({failure.kind}, {failure.workload}) failed "
            f"after {failure.attempts} attempt(s): "
            f"{failure.error_type}: {failure.error}",
            file=sys.stderr,
        )


def cmd_list(args) -> int:
    print("workloads :", ", ".join(workload_names()))
    print("policies  :", ", ".join(POLICY_NAMES), "(+ opt via compare --opt)")
    print("predictors:", ", ".join(PREDICTOR_NAMES))
    print("profiles  :", ", ".join(PROFILE_NAMES))
    return 0


def cmd_characterize(args) -> int:
    context = _context(args)
    rows = []
    with _telemetry_run(args, "characterize", context):
        reports = {name: context.characterize(name)
                   for name in context.workload_list}
    for name, report in reports.items():
        b = report.breakdown
        rows.append([
            name,
            report.result.accesses,
            report.result.miss_ratio,
            b.shared_residency_fraction,
            b.shared_hit_fraction,
            b.hit_density_ratio,
            b.ro_fraction_of_shared_hits,
        ])
    from repro.workloads.registry import get_workload as _get_workload

    append_group_means(rows, numeric_columns=[2, 3, 4, 5, 6],
                       group_of=lambda name: _get_workload(name).suite)
    append_summary_rows(rows, numeric_columns=[2, 3, 4, 5, 6])
    print(render_table(
        ["workload", "llc_accesses", "miss_ratio", "shared_res_frac",
         "shared_hit_frac", "hit_density", "ro_share"],
        rows,
        title=f"Characterization ({args.profile}, LRU residencies)",
    ))
    return 0


def cmd_compare(args) -> int:
    context = _context(args)
    with _telemetry_run(args, "compare", context) as run:
        if run:
            run.update_manifest(
                policies=list(args.policies) + (["opt"] if args.opt else []),
                jobs=args.jobs,
            )
        comparisons = compare_many(
            context, context.workload_list, args.policies,
            include_opt=args.opt, jobs=args.jobs, **_run_kwargs(args),
        )
    comparisons, failures = split_failures(comparisons)
    _report_failures(failures)
    rows = []
    for name, comparison in comparisons.items():
        rows.append([name] + [comparison.results[p].miss_ratio
                              for p in comparison.policies()])
    headers = ["workload"] + (args.policies + (["opt"] if args.opt else []))
    append_summary_rows(rows, numeric_columns=list(range(1, len(headers))))
    print(render_table(headers, rows,
                       title=f"LLC miss ratios ({args.profile})"))
    return 0


def cmd_oracle(args) -> int:
    context = _context(args)
    with _telemetry_run(args, "oracle", context) as run:
        if run:
            run.update_manifest(policies=[args.base], jobs=args.jobs)
        studies = oracle_many(
            context, context.workload_list, base=args.base, mode=args.mode,
            turnovers=args.turnovers, jobs=args.jobs, **_run_kwargs(args),
        )
    studies, failures = split_failures(studies)
    _report_failures(failures)
    rows = []
    for name, study in studies.items():
        rows.append([
            name,
            study.base.miss_ratio,
            study.oracle.miss_ratio,
            study.miss_reduction,
            study.shared_fill_fraction,
        ])
    append_summary_rows(rows, numeric_columns=[1, 2, 3, 4])
    print(render_table(
        ["workload", f"{args.base}_mr", "oracle_mr", "miss_reduction",
         "shared_fills"],
        rows,
        title=f"Sharing-oracle study (base={args.base}, {args.profile})",
    ))
    return 0


def cmd_predict(args) -> int:
    context = _context(args)
    with _telemetry_run(args, "predict", context) as run:
        if run:
            run.update_manifest(predictors=list(args.predictors),
                                jobs=args.jobs)
        matrices = predict_many(
            context, context.workload_list, args.predictors, jobs=args.jobs,
            **_run_kwargs(args),
        )
    matrices, failures = split_failures(matrices)
    _report_failures(failures)
    rows = []
    for (name, predictor_name), m in matrices.items():
        rows.append([
            f"{name}/{predictor_name}",
            m.total, m.base_rate, m.accuracy, m.precision, m.recall,
            m.coverage,
        ])
    print(render_table(
        ["workload/predictor", "fills", "base_rate", "accuracy",
         "precision", "recall", "coverage"],
        rows,
        title=f"Fill-time sharing predictability ({args.profile})",
    ))
    return 0


SWEEP_FACTORS = (0.5, 1.0, 2.0, 4.0)
"""LLC capacity multiples explored by the F7-style sweep."""


def cmd_sweep(args) -> int:
    from repro.analysis.aggregate import amean
    from repro.sim.parallel import scaled_geometry

    factors = args.sizes if getattr(args, "sizes", None) else SWEEP_FACTORS
    context = _context(args)
    with _telemetry_run(args, "sweep", context) as run:
        if run:
            run.update_manifest(policies=[args.base], jobs=args.jobs,
                                factors=list(factors))
        studies = sweep_many(
            context, context.workload_list, factors,
            base=args.base, turnovers=args.turnovers, jobs=args.jobs,
            **_run_kwargs(args),
        )
    studies, failures = split_failures(studies)
    _report_failures(failures)
    rows = []
    for factor in factors:
        per_workload = [studies[(factor, name)]
                        for name in context.workload_list
                        if (factor, name) in studies]
        if not per_workload:
            continue  # every cell of this capacity point failed
        reductions = [study.miss_reduction for study in per_workload]
        miss_ratios = [study.base.miss_ratio for study in per_workload]
        rows.append([scaled_geometry(context.geometry, factor).describe(),
                     amean(miss_ratios), amean(reductions), max(reductions)])
    print(render_table(
        ["llc", f"avg_{args.base}_mr", "avg_oracle_red", "max_oracle_red"],
        rows,
        title=f"Oracle gain vs LLC capacity (base={args.base})",
    ))
    return 0


def cmd_cache(args) -> int:
    spec = args.cache_dir if args.cache_dir else AUTO_CACHE_DIR
    directory = resolve_cache_dir(spec)
    if args.action == "clear":
        removed = clear_cache(spec)
        print(f"removed {removed} cached artifact file(s) from {directory}")
        return 0
    from repro.oracle.runner import annotation_memo_stats

    entries = cache_entries(spec)
    orphans = orphan_tmp_entries(spec)
    streams = [e for e in entries if e[0].name.endswith((".rllc", ".rllc.gz"))]
    total = sum(size for __, size in entries)
    memo = annotation_memo_stats()
    print(render_table(
        ["metric", "value"],
        [
            ["cache directory", str(directory)],
            ["cached streams", len(streams)],
            ["total files", len(entries)],
            ["total bytes", total],
            ["orphan tmp files", len(orphans)],
            ["orphan tmp bytes", sum(size for __, size in orphans)],
            # The in-memory oracle-annotation memo (this process): LRU-
            # bounded per (stream, horizon-window, cap); see
            # repro.oracle.runner.ANNOTATION_MEMO_CAPACITY.
            ["annotation memo entries",
             f"{memo['entries']}/{memo['capacity']}"],
            ["annotation memo hits", memo["hits"]],
            ["annotation memo misses", memo["misses"]],
            ["annotation memo evictions", memo["evictions"]],
        ],
        title="Persistent stream cache",
    ))
    return 0


def cmd_phases(args) -> int:
    from repro.characterization.pc_profile import PcSharingProfiler
    from repro.characterization.phases import SharingPhaseTracker
    from repro.sim.multipass import run_policy_on_stream

    context = _context(args)
    rows = []
    with _telemetry_run(args, "phases", context):
        for name in context.workload_list:
            artifacts = context.artifacts(name)
            tracker, profiler = SharingPhaseTracker(), PcSharingProfiler()
            run_policy_on_stream(
                artifacts.stream, context.geometry, "lru",
                seed=args.seed, observers=(tracker, profiler),
                fastpath=context.fastpath,
            )
            stats = tracker.finalize()
            profile = profiler.finalize()
            rows.append([
                name, stats.transitions, stats.last_value_accuracy,
                stats.bimodal_block_fraction, profile.majority_accuracy,
                profile.mixed_pc_fraction,
            ])
    print(render_table(
        ["workload", "transitions", "last_value_acc", "bimodal_blocks",
         "pc_majority_acc", "mixed_pcs"],
        rows,
        title=f"Sharing stability and PC ambiguity ({args.profile})",
    ))
    return 0


def cmd_mix(args) -> int:
    from repro.oracle.runner import run_oracle_study
    from repro.sim.multipass import record_llc_stream
    from repro.workloads.multiprogram import MultiprogramMix

    context = _context(args)
    mix = MultiprogramMix(args.components)
    with _telemetry_run(args, "mix", context):
        trace = mix.generate(
            num_threads=context.machine.num_cores,
            scale=context.machine.scale,
            target_accesses=args.accesses,
            seed=args.seed,
        )
        stream, stats = record_llc_stream(trace, context.machine)
        study = run_oracle_study(
            stream, context.geometry, base=args.base,
            fastpath=context.fastpath,
        )
    print(render_table(
        ["metric", "value"],
        [
            ["mix", mix.name],
            ["llc accesses", stats.llc_accesses],
            [f"{args.base} miss ratio", study.base.miss_ratio],
            ["oracle miss ratio", study.oracle.miss_ratio],
            ["oracle miss reduction", study.miss_reduction],
            ["shared fill fraction", study.shared_fill_fraction],
        ],
        title=f"Multi-programmed oracle study ({args.profile})",
    ))
    return 0


def cmd_record(args) -> int:
    from repro.cache.stream_io import write_llc_stream

    context = _context(args)
    with _telemetry_run(args, "record", context):
        for name in context.workload_list:
            artifacts = context.artifacts(name)
            path = f"{args.out_prefix}{name}.rllc.gz"
            write_llc_stream(artifacts.stream, path)
            print(f"recorded {name}: {len(artifacts.stream)} LLC accesses"
                  f" -> {path}")
    return 0


def cmd_replay(args) -> int:
    from repro.cache.stream_io import read_llc_stream
    from repro.common.config import profile as load_profile
    from repro.common.errors import ConfigError
    from repro.common.rng import derive_seed
    from repro.policies.registry import make_policy
    from repro.sim.multipass import run_opt, run_policy_on_stream
    from repro.sim.sampling import SampledLlcSimulator

    geometry = load_profile(args.profile).llc
    if args.sample_ratio > 1:
        if args.opt:
            raise ConfigError(
                "--opt needs the full stream; it cannot be combined with "
                "--sample-ratio > 1"
            )
        if geometry.num_sets % args.sample_ratio != 0:
            # Reject before any stream is read or replayed.
            raise ConfigError(
                f"--sample-ratio {args.sample_ratio} must divide the "
                f"{geometry.num_sets} LLC sets of profile {args.profile}"
            )
    rows = []
    for path in args.streams:
        stream = read_llc_stream(path)
        row = [stream.name]
        for policy in args.policies:
            if args.sample_ratio > 1:
                # The sampled-set slice derives from the seed (and stream)
                # so sampled replays are reproducible from the seed alone,
                # matching the fuzz harness's campaign cells.
                simulator = SampledLlcSimulator.from_seed(
                    geometry,
                    make_policy(policy,
                                seed=derive_seed(args.seed, "replay", policy)),
                    args.seed, args.sample_ratio, stream.name,
                )
                row.append(simulator.run(stream).miss_ratio)
            else:
                result = run_policy_on_stream(stream, geometry, policy,
                                              seed=args.seed,
                                              fastpath=_fastpath_spec(args))
                row.append(result.miss_ratio)
        if args.opt:
            row.append(
                run_opt(stream, geometry,
                        fastpath=_fastpath_spec(args)).miss_ratio
            )
        rows.append(row)
    headers = ["stream"] + list(args.policies) + (["opt"] if args.opt else [])
    suffix = (f", 1/{args.sample_ratio} sets sampled"
              if args.sample_ratio > 1 else "")
    print(render_table(headers, rows,
                       title=f"Replayed miss ratios ({args.profile}{suffix})"))
    return 0


def cmd_inspect(args) -> int:
    from repro.characterization.report import render_probe_report

    context = _context(args)
    probes = list(args.probes) if args.probes else None
    with _telemetry_run(args, "inspect", context) as run:
        if run:
            run.update_manifest(
                policies=[args.policy], jobs=args.jobs,
                probes=probes if probes else "auto",
            )
        reports = inspect_many(
            context, context.workload_list, policy=args.policy,
            probes=probes, jobs=args.jobs, **_run_kwargs(args),
        )
        reports, failures = split_failures(reports)
        if run:
            # Machine-readable twin of the rendered report, one JSON file
            # per workload inside the run directory ('runs show' re-renders
            # them later without re-simulating).
            for name, report in reports.items():
                payload_path = run.run_dir / f"inspect_{name}.json"
                payload_path.write_text(
                    json.dumps(report.as_dict(), indent=2) + "\n",
                    encoding="utf-8",
                )
    _report_failures(failures)
    for index, report in enumerate(reports.values()):
        if index:
            print()
        print(render_probe_report(report))
    return 0


def _parse_trace_spec(spec: str):
    """``PATH`` or ``PATH:FMT`` -> (path, fmt) for the trace ingester.

    A trailing ``:token`` that looks like a format name (no path
    separators or dots) but isn't a known format is rejected — a typo'd
    format must not silently degrade into a missing-file cell failure.
    """
    from repro.trace.ingest import _FORMATS

    path, sep, fmt = spec.rpartition(":")
    if sep and fmt in _FORMATS:
        return path, fmt
    if sep and fmt and "/" not in fmt and "." not in fmt:
        raise argparse.ArgumentTypeError(
            f"unknown trace format {fmt!r}; expected one of "
            f"{', '.join(_FORMATS)}"
        )
    return spec, "auto"


def _fuzz_config(args):
    from repro.sim.fuzz import FuzzConfig

    return FuzzConfig(
        seed=args.seed,
        scenarios=args.scenarios,
        policies=tuple(args.policies),
        base=args.base,
        accesses=args.accesses,
        sample_ratio=args.sample_ratio,
        flip_margin=args.flip_margin,
        spike_threshold=args.spike_threshold,
        mix_fraction=args.mix_fraction,
        max_full=args.max_full,
        trace_files=tuple(args.trace),
        fastpath=_fastpath_spec(args),
    )


def _flip_labels(record) -> str:
    flips = record.get("flips") or []
    labels = [f"{f['expected_better']}>{f['expected_worse']}" for f in flips]
    return ",".join(labels) if labels else "-"


def cmd_fuzz_run(args) -> int:
    from repro.sim.fuzz import run_fuzz_campaign

    config = _fuzz_config(args)
    with _telemetry_run(args, "fuzz", None) as run:
        if run:
            run.update_manifest(fuzz=config.as_dict(), jobs=args.jobs)
        corpus = run_fuzz_campaign(
            config, jobs=args.jobs, **_run_kwargs(args)
        )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(corpus, handle, indent=2, sort_keys=True)
        handle.write("\n")
    interesting = corpus["interesting"]
    mismatches = corpus["mismatches"]
    failures = corpus["failures"]
    print(render_table(
        ["metric", "value"],
        [
            ["scenarios run", len(corpus["scenarios"])],
            ["frontier (best->worst)", " > ".join(corpus["frontier"])],
            ["interesting cells", len(interesting)],
            ["full-fidelity re-runs", len(corpus["full"])],
            ["sampled-vs-full mismatches", len(mismatches)],
            ["failed cells", len(failures)],
            ["corpus", args.output],
        ],
        title=f"Fuzz campaign (seed {config.seed}, "
              f"1/{config.sample_ratio} sets sampled)",
    ))
    for failure in failures:
        print(f"warning: cell ({failure['kind']}, {failure['workload']}) "
              f"failed: {failure['error_type']}: {failure['error']}",
              file=sys.stderr)
    if mismatches:
        for entry in mismatches:
            print(f"error: cell {entry['id']} sampled-vs-full MISMATCH: "
                  f"{entry}", file=sys.stderr)
        return 1
    return 0


def cmd_fuzz_triage(args) -> int:
    from repro.sim.fuzz import corpus_scenario, load_corpus

    corpus = load_corpus(args.corpus)
    means = corpus.get("policy_mean_miss_ratio", {})
    print(render_table(
        ["policy", "mean miss ratio"],
        [[policy, round(means.get(policy, 0.0), 4)]
         for policy in corpus["frontier"]],
        title=f"Reference frontier ({len(corpus['scenarios'])} scenarios, "
              f"seed {corpus['config']['seed']})",
    ))
    rows = []
    for scenario_id in corpus["interesting"][: args.limit]:
        record = corpus_scenario(corpus, scenario_id)
        full = corpus.get("full", {}).get(scenario_id)
        rows.append([
            scenario_id, record["kind"],
            f"c{record['cores']} {record['llc_sets']}x{record['llc_ways']}",
            _flip_labels(record),
            round(record.get("oracle_gain", 0.0), 4),
            "yes" if record.get("oracle_spike") else "no",
            ("ok" if full["sampled_match"] and full["fastpath_match"]
             else "MISMATCH") if full else "-",
        ])
    shown = len(rows)
    total = len(corpus["interesting"])
    print(render_table(
        ["cell", "kind", "machine", "flips", "oracle gain", "spike",
         "full check"],
        rows,
        title=f"Interesting cells ({shown} of {total} shown)",
    ))
    if corpus.get("mismatches"):
        print(f"error: corpus records {len(corpus['mismatches'])} "
              f"sampled-vs-full mismatch(es)", file=sys.stderr)
        return 1
    return 0


def cmd_fuzz_replay_cell(args) -> int:
    from repro.sim.fuzz import (
        DEFAULT_PROBES,
        load_corpus,
        replay_corpus_cell,
    )

    corpus = load_corpus(args.corpus)
    probes = () if args.no_probes else DEFAULT_PROBES
    record = replay_corpus_cell(corpus, args.cell_id, probes=probes)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    rows = [
        ["llc accesses", record["llc_accesses"]],
        ["sampled accesses", record["sampled_accesses"]],
        ["sampled counts match corpus",
         "yes" if record["sampled_match"] else "NO"],
        ["substream matches reference sampler",
         "yes" if record["sampled_reference_match"] else "NO"],
        ["full tiered matches --no-fastpath",
         "yes" if record["fastpath_match"] else "NO"],
        ["full oracle gain", round(record["oracle_gain_full"], 4)],
    ]
    for policy, cell in record["full"].items():
        rows.append([f"{policy} full miss ratio",
                     round(cell["miss_ratio"], 4)])
    print(render_table(
        ["check", "value"], rows,
        title=f"Full-fidelity replay of {args.cell_id}",
    ))
    ok = (record["sampled_match"] and record["sampled_reference_match"]
          and record["fastpath_match"])
    if not ok:
        print(f"error: cell {args.cell_id} did NOT reproduce bit-identically",
              file=sys.stderr)
        return 1
    return 0


def cmd_fuzz(args) -> int:
    handler = {
        "run": cmd_fuzz_run,
        "triage": cmd_fuzz_triage,
        "replay-cell": cmd_fuzz_replay_cell,
    }[args.fuzz_action]
    return handler(args)


def cmd_bench(args) -> int:
    from repro.sim.bench import GOLDEN_CELL, run_bench

    repeats = args.repeats
    if args.quick:
        args.accesses = min(args.accesses, 60_000)
        repeats = min(repeats, 2)
    context = _context(args)
    with _telemetry_run(args, "bench", context):
        payload, path = run_bench(
            context, workload=args.workload, repeats=repeats,
            out_dir=args.out_dir,
        )
    rows = [
        [name, cell["min_sec"], cell["mean_sec"],
         round(cell["accesses_per_sec"])]
        for name, cell in payload["cells"].items()
    ]
    print(render_table(
        ["cell", "min_sec", "mean_sec", "acc_per_sec"], rows,
        title=(
            f"Bench {payload['rev']} ({args.profile}, {args.workload}, "
            f"{payload['target_accesses']} accesses, min of {repeats})"
        ),
    ))
    overhead = payload["disabled_probe_overhead"]
    print(f"disabled-probe overhead on {GOLDEN_CELL}: {overhead:+.4%}")
    speedups = payload.get("setpath_speedups") or {}
    if speedups:
        rendered = ", ".join(
            f"{name} {value:.2f}x" for name, value in speedups.items()
        )
        print(f"set-partitioned speedup vs scalar twin: {rendered}")
    grid_speedups = payload.get("gridpath_speedups") or {}
    if grid_speedups:
        rendered = ", ".join(
            f"{name} {value:.2f}x" for name, value in grid_speedups.items()
        )
        print(f"grid-replay speedup vs per-cell twin: {rendered}")
    native_speedups = payload.get("nativepath_speedups") or {}
    if native_speedups:
        rendered = ", ".join(
            f"{name} {value:.2f}x" for name, value in native_speedups.items()
        )
        print(f"native scalar-backend speedup vs model twin: {rendered}")
    vs = payload.get("vs_previous")
    if vs:
        print(f"golden throughput vs {vs['rev']}: "
              f"{vs['golden_speedup']:.3f}x")
    print(f"wrote {path}")
    _ingest_bench_result(args, path)
    failed = False
    if args.max_overhead is not None and overhead > args.max_overhead:
        print(
            f"error: disabled-probe overhead {overhead:.4%} exceeds the "
            f"{args.max_overhead:.2%} bound",
            file=sys.stderr,
        )
        failed = True
    if args.min_setpath_speedup is not None:
        for name, value in speedups.items():
            if value < args.min_setpath_speedup:
                print(
                    f"error: {name} is only {value:.2f}x its scalar twin "
                    f"(bound {args.min_setpath_speedup:.2f}x) — the "
                    f"set-partitioned tier may have silently fallen back",
                    file=sys.stderr,
                )
                failed = True
    if args.min_gridpath_speedup is not None:
        for name, value in grid_speedups.items():
            if value < args.min_gridpath_speedup:
                print(
                    f"error: {name} is only {value:.2f}x its per-cell twin "
                    f"(bound {args.min_gridpath_speedup:.2f}x) — the grid "
                    f"replay may have degenerated to independent replays",
                    file=sys.stderr,
                )
                failed = True
    if args.min_nativepath_speedup is not None:
        for name, value in native_speedups.items():
            if value < args.min_nativepath_speedup:
                print(
                    f"error: {name} is only {value:.2f}x its model twin "
                    f"(bound {args.min_nativepath_speedup:.2f}x) — the "
                    f"native scalar backend may have silently fallen back",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


def _ingest_bench_result(args, path) -> None:
    """Index a freshly written BENCH_<rev>.json when --db/REPRO_SIM_DB is on.

    Keeps the experiment store's bench trajectory current without a
    manual ``db ingest``; when the store is off this is a no-op, and like
    the live sink a database problem only costs a warning.
    """
    from repro.sim.expdb import connect, ingest_bench_file, resolve_db_path

    try:
        db_path = resolve_db_path(getattr(args, "db", None),
                                  _runs_root(args))
        if db_path is None:
            return
        conn = connect(db_path)
        try:
            ingest_bench_file(conn, path)
        finally:
            conn.close()
    except Exception as error:  # noqa: BLE001 - observability is optional
        print(f"warning: bench result not indexed: "
              f"{type(error).__name__}: {error}", file=sys.stderr)


def _warn_corrupt(path, detail) -> None:
    """One-line stderr warning for a corrupt telemetry file (no traceback)."""
    print(f"warning: {path}: {detail}", file=sys.stderr)


def _render_probe_payloads(run_dir) -> None:
    """Fold any inspect_*.json probe reports of a run into ``runs show``."""
    from repro.characterization.report import render_probe_report

    for path in sorted(run_dir.glob("inspect_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            _warn_corrupt(path, "corrupt probe report; skipping")
            continue
        if not isinstance(payload, dict) or "result" not in payload:
            _warn_corrupt(path, "unrecognized probe report; skipping")
            continue
        print()
        try:
            print(render_probe_report(payload))
        except (KeyError, TypeError, ValueError):
            _warn_corrupt(path, "truncated probe report; skipping")


def _event_summaries(root, runs):
    """Per-run event count + last kind for ``runs list``.

    Exact counts come from the experiment store when one sits next to the
    runs root (one SELECT for every run); runs the store does not know
    fall back to :func:`telemetry.quick_event_summary`, whose cost is
    capped per run however large the event log grew — a 1000-run root
    must list in interactive time, not O(n·events).
    """
    from repro.sim.expdb import DB_FILENAME, connect, resolve_db_path

    summaries = {}
    db_path = resolve_db_path(None, root)
    if db_path is None:
        db_path = root / DB_FILENAME
    if db_path.is_file():
        try:
            conn = connect(db_path, create=False)
            try:
                for row in conn.execute(
                    "SELECT run_id, events_count, last_event_kind"
                    " FROM runs WHERE events_count IS NOT NULL"
                ):
                    summaries[row["run_id"]] = (
                        row["events_count"], row["last_event_kind"], False
                    )
            finally:
                conn.close()
        except Exception:  # noqa: BLE001 - a broken index never blocks list
            summaries = {}
    for run in runs:
        if run.run_id not in summaries:
            quick = telemetry.quick_event_summary(run.path)
            summaries[run.run_id] = (
                quick["events"], quick["last_kind"], quick["approx"]
            )
    return summaries


def cmd_runs(args) -> int:
    root = _runs_root(args)
    if args.action == "list":
        swept = telemetry.sweep_orphan_manifests(root)
        if swept:
            print(
                f"warning: swept {len(swept)} orphaned manifest temp "
                f"file(s) left by killed runs",
                file=sys.stderr,
            )
        rows = []
        runs = telemetry.list_runs(
            root,
            on_error=lambda path, detail: _warn_corrupt(path, detail),
        )
        summaries = _event_summaries(root, runs)
        for run in runs:
            manifest = run.manifest
            cells = manifest.get("cells")
            if not isinstance(cells, dict):
                cells = {}
            workloads = manifest.get("workloads")
            events, last_kind, approx = summaries[run.run_id]
            rows.append([
                run.run_id,
                manifest.get("command", "?"),
                run.status,
                manifest.get("machine", "?"),
                len(workloads) if isinstance(workloads, list) else "?",
                cells.get("completed", ""),
                cells.get("failed", ""),
                f"~{events}" if approx else events,
                last_kind or "-",
                manifest.get("wall_sec", ""),
            ])
        print(render_table(
            ["run", "command", "status", "machine", "workloads",
             "cells_ok", "cells_failed", "events", "last_event",
             "wall_sec"],
            rows,
            title=f"Telemetry runs ({root})",
        ))
        return 0

    # A killed run can leave a manifest temp file in the directory being
    # shown; sweep the orphan window here the way `runs list` does so a
    # `show` racing a kill never trips over the tmp artifact.
    swept = telemetry.sweep_orphan_manifests(root)
    if swept:
        print(
            f"warning: swept {len(swept)} orphaned manifest temp "
            f"file(s) left by killed runs",
            file=sys.stderr,
        )
    run = telemetry.load_run(args.run_id, root)
    skip = {"failures", "argv"}
    rows = [[key, value] for key, value in run.manifest.items()
            if key not in skip]
    print(render_table(["field", "value"], rows,
                       title=f"Run {run.run_id} manifest"))
    events = telemetry.read_events(
        run.path,
        on_error=lambda path, count: _warn_corrupt(
            path, f"skipped {count} malformed event line(s)"
        ),
    )
    stages = telemetry.summarize_spans(events)
    if stages:
        stage_rows = []
        for stage, stats in sorted(stages.items()):
            view = stats.as_dict()
            stage_rows.append([
                stage, view["count"], round(view["total"], 4),
                round(view["mean"], 4), round(view["max"], 4),
            ])
        print(render_table(
            ["stage", "spans", "total_sec", "mean_sec", "max_sec"],
            stage_rows, title="Stage spans",
        ))
    failures = run.manifest.get("failures")
    if isinstance(failures, list) and failures:
        print(render_table(
            ["cell", "workload", "error", "attempts"],
            [[f.get("kind"), f.get("workload"),
              f"{f.get('error_type')}: {f.get('error')}", f.get("attempts")]
             for f in failures if isinstance(f, dict)],
            title="Failed cells",
        ))
    _render_probe_payloads(run.path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Sharing-aware LLC replacement studies (IISWC 2013 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list workloads/policies/profiles")

    p = subparsers.add_parser("characterize", help="shared-vs-private hit breakdown")
    _add_common_arguments(p)

    p = subparsers.add_parser("compare", help="policy comparison on identical streams")
    _add_common_arguments(p)
    _add_jobs_argument(p)
    p.add_argument("--policies", nargs="*",
                   default=["lru", "dip", "srrip", "drrip", "ship"],
                   choices=POLICY_NAMES)
    p.add_argument("--opt", action="store_true", help="include Belady's OPT")

    p = subparsers.add_parser("oracle", help="sharing-oracle gain study")
    _add_common_arguments(p)
    _add_jobs_argument(p)
    p.add_argument("--base", default="lru", choices=POLICY_NAMES)
    p.add_argument("--mode", default="both",
                   choices=("victim-exempt", "insert-promote", "both"))
    p.add_argument("--turnovers", type=_positive_float, default=1.75,
                   help="oracle retention horizon in cache turnovers")

    p = subparsers.add_parser("predict", help="fill-time predictor accuracy")
    _add_common_arguments(p)
    _add_jobs_argument(p)
    p.add_argument("--predictors", nargs="*", default=["address", "pc", "hybrid"],
                   choices=PREDICTOR_NAMES)

    p = subparsers.add_parser("sweep", help="oracle gain vs LLC capacity")
    _add_common_arguments(p)
    _add_jobs_argument(p)
    p.add_argument("--base", default="lru", choices=POLICY_NAMES)
    p.add_argument("--turnovers", type=_positive_float, default=1.75)
    p.add_argument(
        "--sizes", nargs="+", type=_capacity_multiple, action=_SizesAction,
        default=None, metavar="X",
        help="capacity multiples to sweep (positive powers of two, no "
             f"duplicates; default: {' '.join(str(f) for f in SWEEP_FACTORS)})",
    )

    p = subparsers.add_parser("phases",
                              help="sharing stability and PC ambiguity")
    _add_common_arguments(p)

    p = subparsers.add_parser("mix",
                              help="oracle study on a multi-programmed mix")
    _add_common_arguments(p)
    p.add_argument("--components", nargs="+",
                   default=["swaptions", "canneal"],
                   help="workload names composing the mix")
    p.add_argument("--base", default="lru", choices=POLICY_NAMES)

    p = subparsers.add_parser("record", help="record LLC streams to files")
    _add_common_arguments(p)
    p.add_argument("--out-prefix", default="stream_",
                   help="output filename prefix (default: stream_)")

    p = subparsers.add_parser("replay", help="replay recorded streams")
    p.add_argument("streams", nargs="+", help="stream files from 'record'")
    p.add_argument("--profile", default="scaled-4mb", choices=PROFILE_NAMES)
    p.add_argument("--policies", nargs="*", default=["lru", "srrip"],
                   choices=POLICY_NAMES)
    p.add_argument("--opt", action="store_true", help="include Belady's OPT")
    p.add_argument("--seed", type=_nonnegative_int, default=42)
    p.add_argument("--sample-ratio", type=_positive_int, default=1,
                   metavar="N",
                   help="simulate only every Nth LLC set (UMON-style set "
                        "sampling; 1 = full simulation)")
    _add_fastpath_argument(p)

    p = subparsers.add_parser(
        "inspect",
        help="microarchitectural probe report (per-set/per-policy counters)",
    )
    _add_common_arguments(p)
    _add_jobs_argument(p)
    p.add_argument("--policy", default="lru", choices=POLICY_NAMES,
                   help="replacement policy governing the probed replay")
    from repro.sim.probes import PROBE_NAMES

    p.add_argument(
        "--probes", nargs="*", default=None, metavar="NAME",
        choices=PROBE_NAMES,
        help=f"probe subset (default: auto-select for the policy; "
             f"choices: {', '.join(PROBE_NAMES)})",
    )

    p = subparsers.add_parser(
        "fuzz",
        help="scenario fuzzing: mine policy inversions at scale",
    )
    fuzz_sub = p.add_subparsers(dest="fuzz_action", required=True)

    fp = fuzz_sub.add_parser(
        "run", help="run a seeded campaign and emit inversions.json"
    )
    fp.add_argument("--scenarios", type=_nonnegative_int, default=100,
                    metavar="N",
                    help="synthetic scenarios to sample (default: 100)")
    fp.add_argument("--seed", type=_nonnegative_int, default=42,
                    help="campaign seed; every cell derives from it")
    fp.add_argument("--policies", nargs="*",
                    default=["lru", "lip", "srrip", "drrip", "ship"],
                    choices=POLICY_NAMES,
                    help="policy grid replayed per scenario")
    fp.add_argument("--base", default="lru", choices=POLICY_NAMES,
                    help="oracle base policy (default: lru)")
    fp.add_argument("--accesses", type=_positive_int, default=6000,
                    help="per-scenario trace budget (default: 6000)")
    fp.add_argument("--sample-ratio", type=_positive_int, default=4,
                    metavar="N",
                    help="simulate every Nth LLC set during the campaign "
                         "sweep (default: 4)")
    fp.add_argument("--flip-margin", type=_positive_float, default=0.02,
                    metavar="FRAC",
                    help="miss-ratio margin declaring an ordering flip "
                         "(default: 0.02)")
    fp.add_argument("--spike-threshold", type=_positive_float, default=0.08,
                    metavar="FRAC",
                    help="sampled oracle gain declaring a spike "
                         "(default: 0.08)")
    fp.add_argument("--mix-fraction", type=float, default=0.25,
                    metavar="FRAC",
                    help="fraction of scenarios drawn as f10-style "
                         "multiprogram mixes (default: 0.25)")
    fp.add_argument("--max-full", type=_nonnegative_int, default=16,
                    metavar="N",
                    help="cap on full-fidelity re-runs of interesting "
                         "cells (default: 16)")
    fp.add_argument("--trace", action="append", default=[],
                    type=_parse_trace_spec, metavar="PATH[:FMT]",
                    help="ingest an external ChampSim/Pin trace as an "
                         "extra scenario (FMT: champsim|pin|auto; "
                         "repeatable)")
    fp.add_argument("--output", default="inversions.json", metavar="FILE",
                    help="corpus output path (default: inversions.json)")
    fp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="directory whose runs/ receives telemetry "
                         "(default: $REPRO_SIM_CACHE_DIR or "
                         "~/.cache/repro-sim)")
    tg = fp.add_mutually_exclusive_group()
    tg.add_argument("--telemetry", dest="telemetry", action="store_true",
                    default=True, help="record a telemetry run (default)")
    tg.add_argument("--no-telemetry", dest="telemetry",
                    action="store_false", help="disable run telemetry")
    _add_db_argument(fp)
    _add_jobs_argument(fp)
    _add_fastpath_argument(fp)

    fp = fuzz_sub.add_parser(
        "triage", help="summarise a corpus: frontier + interesting cells"
    )
    fp.add_argument("corpus", help="inversions.json from 'fuzz run'")
    fp.add_argument("--limit", type=_positive_int, default=20,
                    help="interesting cells to show (default: 20)")

    fp = fuzz_sub.add_parser(
        "replay-cell",
        help="reproduce one corpus cell at full fidelity with probes",
    )
    fp.add_argument("corpus", help="inversions.json from 'fuzz run'")
    fp.add_argument("cell_id", help="scenario id (e.g. s00042)")
    fp.add_argument("--output", default=None, metavar="FILE",
                    help="write the full-fidelity record as JSON")
    fp.add_argument("--no-probes", action="store_true",
                    help="skip probe evidence (faster)")

    p = subparsers.add_parser(
        "bench",
        help="timed warm-sweep cells -> BENCH_<rev>.json trajectory",
    )
    _add_common_arguments(p)
    p.add_argument("--workload", default="streamcluster",
                   help="bench workload (default: streamcluster)")
    p.add_argument("--repeats", type=_positive_int, default=3,
                   help="timing repeats per cell; minimum is reported")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized run: caps accesses at 60k and repeats at 2")
    p.add_argument("--out-dir", default="benchmarks/results", metavar="DIR",
                   help="directory receiving BENCH_<rev>.json "
                        "(default: benchmarks/results)")
    p.add_argument(
        "--max-overhead", type=_positive_float, default=None, metavar="FRAC",
        help="fail (exit 1) when the disabled-probe overhead on the golden "
             "warm-replay cell exceeds this fraction (CI uses 0.02)",
    )
    p.add_argument(
        "--min-setpath-speedup", type=_positive_float, default=None,
        metavar="X",
        help="fail (exit 1) when any set-partitioned cell is less than X "
             "times faster than its forced-scalar twin (CI uses 2.0)",
    )
    p.add_argument(
        "--min-gridpath-speedup", type=_positive_float, default=None,
        metavar="X",
        help="fail (exit 1) when the grid-replay cell is less than X "
             "times faster than its independent per-cell twin (CI uses 2.0)",
    )
    p.add_argument(
        "--min-nativepath-speedup", type=_positive_float, default=None,
        metavar="X",
        help="fail (exit 1) when the native SHiP cell is less than X "
             "times faster than its forced-model twin (CI uses 2.0)",
    )

    p = subparsers.add_parser("cache",
                              help="inspect or clear the persistent stream cache")
    p.add_argument("action", choices=("info", "clear"),
                   help="info: show location/size; clear: delete artifacts")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory (default: $REPRO_SIM_CACHE_DIR "
                        "or ~/.cache/repro-sim)")

    p = subparsers.add_parser(
        "runs", help="inspect telemetry run manifests and event logs"
    )
    p.add_argument("action", choices=("list", "show"),
                   help="list: one row per run; show: manifest + stage "
                        "spans + failed cells of one run")
    p.add_argument("run_id", nargs="?", default=None,
                   help="run id (unique prefixes accepted; required for "
                        "'show')")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory whose runs/ to inspect")

    from repro.sim.expdb.cli import add_db_parser

    add_db_parser(subparsers)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "characterize": cmd_characterize,
    "compare": cmd_compare,
    "oracle": cmd_oracle,
    "predict": cmd_predict,
    "sweep": cmd_sweep,
    "phases": cmd_phases,
    "mix": cmd_mix,
    "record": cmd_record,
    "replay": cmd_replay,
    "inspect": cmd_inspect,
    "fuzz": cmd_fuzz,
    "bench": cmd_bench,
    "cache": cmd_cache,
    "runs": cmd_runs,
}


def _cmd_db(args) -> int:
    from repro.sim.expdb.cli import cmd_db

    return cmd_db(args)


_COMMANDS["db"] = _cmd_db


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # The manifest must record the invocation actually parsed — which is
    # `argv` when a caller (tests, `db replay --exec`) passed one — or
    # `db replay` would reconstruct the host process's command line.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    if args.command == "runs" and args.action == "show" and not args.run_id:
        print("error: 'runs show' needs a run id", file=sys.stderr)
        return 2
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `repro-sim ... | head` closes stdout early. Point stdout at
        # devnull so the interpreter's exit-time flush doesn't raise a
        # second BrokenPipeError, and exit with the conventional
        # 128+SIGPIPE code instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
