"""repro — sharing-aware last-level cache replacement (IISWC 2013).

A full reproduction of Natarajan & Chaudhuri, "Characterizing
multi-threaded applications for designing sharing-aware last-level cache
replacement policies" (IISWC 2013): synthetic multi-threaded workload
models for PARSEC / SPLASH-2 / SPEC OMP, a functional CMP cache-hierarchy
simulator with coherent private levels and a shared inclusive LLC, the full
replacement-policy zoo (LRU through SHiP and Belady's OPT), the paper's
generic fill-time sharing oracle, and the address-/PC-indexed sharing
predictors of its predictability study.

Quickstart::

    from repro import ExperimentContext, profile

    ctx = ExperimentContext(profile("scaled-4mb"))
    report = ctx.characterize("streamcluster")
    print(report.breakdown.shared_hit_fraction)
    study = ctx.oracle_study("streamcluster", base="lru")
    print(study.miss_reduction)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction log.
"""

from repro.common.config import (
    CacheGeometry,
    MachineConfig,
    PROFILE_NAMES,
    full_4mb,
    full_8mb,
    profile,
    scaled_4mb,
    scaled_8mb,
)
from repro.oracle.runner import OracleStudyResult, run_oracle_study
from repro.sim.experiment import ExperimentContext, WorkloadArtifacts, shared_context
from repro.sim.multipass import record_llc_stream, run_opt, run_policy_on_stream
from repro.workloads.registry import get_workload, iter_workloads, workload_names

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "MachineConfig",
    "PROFILE_NAMES",
    "full_4mb",
    "full_8mb",
    "profile",
    "scaled_4mb",
    "scaled_8mb",
    "OracleStudyResult",
    "run_oracle_study",
    "record_llc_stream",
    "run_opt",
    "run_policy_on_stream",
    "ExperimentContext",
    "WorkloadArtifacts",
    "shared_context",
    "get_workload",
    "iter_workloads",
    "workload_names",
    "__version__",
]
