"""Building and consuming fill-time sharing annotations.

Two annotation flavours:

* :func:`build_stream_annotation` — **policy-free** (the oracle proper).
  For every stream position it counts the future accesses to that block by
  *other* cores within a retention horizon. A fill's positive budget means
  "this block will be shared during a residency of achievable length";
  the wrapper protects the block until those cross-core uses have been
  served. Because every position is annotated, fills occurring at
  positions that were hits under some other policy still find their
  budget — annotation and replay align by stream ordinal regardless of
  policy.
* :func:`build_sharing_annotation` — **policy-conditioned** ground truth:
  replays a concrete policy and logs each residency's realised cross-core
  uses at its fill ordinal. This is the per-residency truth the
  characterization and predictor studies consume; it is *not* useful as an
  oracle hint for the same policy (its budgets are exhausted exactly at the
  recorded eviction points, making the oracle a fixed point of the base).
"""

from array import array
from collections import deque
from typing import Dict, Optional, Union

from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.npsupport import require_numpy, should_vectorize
from repro.common.rng import derive_seed
from repro.oracle.residency import FillSharingLog
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import make_policy
from repro.sim.engine import LlcOnlySimulator

DEFAULT_HORIZON_FACTOR = 8
"""Retention horizon in units of LLC capacity (in blocks)."""

BUDGET_CAP = 127
"""Budgets saturate here; protection beyond ~100 uses changes nothing."""

VECTORIZE_THRESHOLD = 4096
"""Stream length above which the numpy annotation kernel wins (auto mode)."""


def build_stream_annotation(
    stream: LlcStream,
    geometry: CacheGeometry,
    horizon_factor: int = DEFAULT_HORIZON_FACTOR,
    cap: int = BUDGET_CAP,
    use_numpy: Optional[bool] = None,
) -> array:
    """Annotate every stream position with its future cross-core uses.

    ``budgets[i + 1]`` (ordinals are 1-based) is the number of accesses to
    ``blocks[i]`` by cores other than ``cores[i]`` within the next
    ``horizon_factor * geometry.num_blocks`` stream positions, saturated at
    ``cap``. The horizon models the longest residency worth engineering
    for: sharing farther out than several full cache turnovers cannot be
    captured by any replacement decision made now.

    Two equivalent implementations selected by ``use_numpy`` (``None``
    auto-selects): a pure-Python backward scan with sliding-window deques,
    and a vectorized grouped-searchsorted pass. Bit-identical outputs.
    """
    if horizon_factor <= 0 or cap <= 0:
        raise ConfigError("horizon_factor and cap must be positive")
    if should_vectorize(use_numpy, len(stream), VECTORIZE_THRESHOLD):
        vectorized = _build_stream_annotation_numpy(
            stream, geometry, horizon_factor, cap
        )
        if vectorized is not None:
            return vectorized
    return _build_stream_annotation_python(stream, geometry, horizon_factor, cap)


def _build_stream_annotation_python(
    stream: LlcStream,
    geometry: CacheGeometry,
    horizon_factor: int,
    cap: int,
) -> array:
    """Reference backward scan: per block a deque of future (position, core)
    pairs trimmed to the sliding window, plus per-core counts inside it.
    O(stream length)."""
    horizon = horizon_factor * geometry.num_blocks
    cores_col, __, blocks_col, __ = stream.columns()
    n = len(stream)
    budgets = array("i", bytes(4 * (n + 1)))

    future: Dict[int, deque] = {}
    counts: Dict[int, list] = {}
    num_cores = max(stream.num_cores, 1)

    for i in range(n - 1, -1, -1):
        block = blocks_col[i]
        core = cores_col[i]
        block_future = future.get(block)
        if block_future is None:
            block_future = deque()
            future[block] = block_future
            counts[block] = [0] * (num_cores + 1)  # [-1] slot holds total
        block_counts = counts[block]
        limit = i + horizon
        while block_future and block_future[-1][0] > limit:
            __, dropped_core = block_future.pop()
            block_counts[dropped_core] -= 1
            block_counts[-1] -= 1
        budget = block_counts[-1] - block_counts[core]
        budgets[i + 1] = budget if budget < cap else cap
        block_future.appendleft((i, core))
        block_counts[core] += 1
        block_counts[-1] += 1

    return budgets


def _build_stream_annotation_numpy(
    stream: LlcStream,
    geometry: CacheGeometry,
    horizon_factor: int,
    cap: int,
) -> Optional[array]:
    """Vectorized annotation via packed-key sorts and one searchsorted each.

    Each access is packed into ``(group << shift) | position`` (with
    ``2^shift >= n``), so one values-only sort lines every group up as a
    contiguous run of ascending positions. For access ``i`` with window end
    ``limit``, the count of same-group accesses in ``(i, limit]`` is
    ``searchsorted(keys, (group << shift) | limit, 'right') - rank(i) - 1``.
    Doing this once grouped by block and once grouped by (block, core)
    yields total and same-core future counts; their difference is the
    cross-core budget. Blocks too large to pack are factorized to dense ids
    first; returns ``None`` when even dense ids cannot pack (caller falls
    back to the Python scan).
    """
    np = require_numpy()
    n = len(stream)
    budgets = array("i", bytes(4 * (n + 1)))
    if n == 0:
        return budgets
    horizon = horizon_factor * geometry.num_blocks
    cores_np, __, blocks_np, __ = stream.numpy_columns()
    num_cores = max(int(cores_np.max()) + 1, 1)
    shift = max(n - 1, 1).bit_length()

    groups = blocks_np
    # The (block, core) grouping needs block * num_cores + core to pack
    # beside a position; factorize when raw block addresses are too wide.
    if int(groups.min()) < 0 or (
        (int(groups.max()) * num_cores + num_cores) >> (63 - shift)
    ) != 0:
        __, groups = np.unique(groups, return_inverse=True)
        groups = groups.astype(np.int64, copy=False)
        if (n * num_cores) >> (63 - shift) != 0:
            return None

    positions = np.arange(n, dtype=np.int64)
    limits = np.minimum(positions + horizon, n - 1)
    mask = (1 << shift) - 1

    def future_counts(group_ids):
        keys = (group_ids << shift) | positions
        queries = (group_ids << shift) | limits
        keys.sort()
        ranks = np.empty(n, dtype=np.int64)
        ranks[keys & mask] = positions
        return np.searchsorted(keys, queries, side="right") - ranks - 1

    total = future_counts(groups)
    same_core = future_counts(groups * num_cores + cores_np.astype(np.int64))
    clipped = np.minimum(total - same_core, cap).astype(np.int32)
    # array('i') exposes a writable buffer; fill ordinals 1..n in place.
    np.frombuffer(budgets, dtype=np.int32)[1:] = clipped
    return budgets


def build_sharing_annotation(
    stream: LlcStream,
    geometry: CacheGeometry,
    policy: Union[str, ReplacementPolicy] = "lru",
    seed: int = 0,
) -> array:
    """Run ``policy`` over ``stream`` logging realised per-residency budgets.

    Returns ``budgets`` with ``budgets[fill_ordinal]`` holding the
    cross-core uses the residency starting at that fill served under this
    policy (zero at ordinals that were hits). See the module docstring for
    when to prefer this over :func:`build_stream_annotation`.
    """
    if isinstance(policy, str):
        policy = make_policy(policy, seed=derive_seed(seed, "annotate", policy))
    log = FillSharingLog(len(stream))
    simulator = LlcOnlySimulator(geometry, policy, observers=(log,))
    simulator.run(stream)
    return log.budgets


class AnnotationHintSource:
    """A wrapper hint source backed by a precomputed annotation array.

    Matches :class:`SharingAwareWrapper`'s hint signature and keys into
    ``budgets`` by the wrapping LLC's current access ordinal (== the fill
    ordinal during an ``on_fill``). Being a recognizable *class* — rather
    than a closure — is what lets the native backend
    (:mod:`repro.sim.nativepath`) detect that a wrapper's hints are pure
    offline data and export them as a stream-aligned int column instead of
    calling back into Python per fill; ``budgets`` and ``cap`` are read
    for exactly that export. Exact type matters: a subclass that overrides
    ``__call__`` no longer guarantees ``hint(i) == budgets[i]`` and must
    fall back to the object model.
    """

    __slots__ = ("budgets", "cap")

    def __init__(self, budgets: array, cap: int = BUDGET_CAP):
        self.budgets = budgets
        self.cap = cap

    def __call__(self, llc, block: int, pc: int, core: int) -> int:
        return self.budgets[llc.access_count]


def oracle_hint_source(budgets: array, cap: int = BUDGET_CAP):
    """Adapt an annotation budget array into a wrapper hint source.

    Returns an :class:`AnnotationHintSource`; ``cap`` documents the
    saturation bound the budgets were built with (the native backend uses
    it to pick a safe hint-column dtype).
    """
    return AnnotationHintSource(budgets, cap=cap)
