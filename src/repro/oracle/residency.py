"""Fill-ordinal-indexed sharing annotation log.

Records, for every fill of a run, the residency's *cross-core use budget*:
how many demand hits cores other than the filler issued to the block before
it left the LLC. A budget of zero means the residency was private (or the
sharing never produced an LLC hit); a positive budget both flags the fill
as will-be-shared and tells the oracle wrapper how long protection is worth
holding. Fill ordinals are the LLC's access ordinal at fill time, identical
across replays of one stream — the property that lets a log from pass *k*
annotate the fills of pass *k+1*.
"""

from array import array

from repro.cache.llc import ResidencyObserver
from repro.characterization.hits import popcount


class FillSharingLog(ResidencyObserver):
    """Observer building the ``fill ordinal -> cross-core uses`` array."""

    def __init__(self, stream_length: int):
        # Ordinals are 1-based (the LLC pre-increments), hence +1.
        self.budgets = array("i", bytes(4 * (stream_length + 1)))
        self.shared_fills = 0
        self.total_fills = 0

    def residency_ended(
        self, block, set_index, fill_ordinal, end_ordinal, fill_pc, fill_core,
        core_mask, write_mask, hits, other_hits, forced,
    ) -> None:
        self.total_fills += 1
        self.budgets[fill_ordinal] = other_hits
        if popcount(core_mask) >= 2:
            self.shared_fills += 1
