"""The generic sharing-aware policy wrapper.

:class:`SharingAwareWrapper` composes a *hint source* — the oracle's
annotation, or a realistic predictor — with any base policy exposing
``rank_victims``. The hint for a fill is an integer cross-core-use budget:
0 means "will not be shared this residency"; a positive value both flags
the fill as will-be-shared and bounds how long protecting it can pay off.

Protection mechanisms (``mode``; the A1 ablation sweeps them):

* ``victim-exempt`` — a way holding a hinted block is skipped during victim
  selection while any unhinted way exists. The base policy's preference
  order is respected among unhinted ways, and when every way is protected
  the wrapper falls back to the base's first choice, so it degrades to the
  base policy on hint-free workloads.
* ``insert-promote`` — a hinted fill is promoted to the base policy's
  highest-priority state (via a synthetic hit), biasing recency/RRPV
  without constraining victim choice.
* ``both`` — the two combined (default; the strongest oracle).

Release policies (``release``; also in A1):

* ``budget`` (default) — each cross-core hit decrements the block's
  remaining budget; protection is released when it reaches zero. A block
  whose predicted sharing has fully materialised competes under the base
  policy like any other block, so dead-after-sharing blocks (migratory
  records) cannot pin capacity.
* ``first-share`` — released at the first cross-core hit (the weakest
  oracle; equivalent to ``budget`` when hints come from a boolean
  predictor, whose budget is 1).
* ``never`` — protection lasts the whole residency.
"""

from typing import Callable

from repro.common.errors import ConfigError
from repro.policies.base import REPLAY_SCALAR, ReplacementPolicy

PROTECTION_MODES = ("victim-exempt", "insert-promote", "both")
"""Valid ``mode`` values for :class:`SharingAwareWrapper`."""

RELEASE_POLICIES = ("budget", "first-share", "never")
"""Valid ``release`` values for :class:`SharingAwareWrapper`."""

HintSource = Callable[[object, int, int, int], int]
"""``hint(llc, block, pc, core) -> cross-core-use budget`` at fill time."""


class SharingAwareWrapper(ReplacementPolicy):
    """Sharing-awareness layered over any ranked-victim base policy."""

    # Explicitly scalar (tiers never inherit, but the wrapper documents
    # its own ineligibility): hints key off the global access ordinal and
    # protection state interacts with the base policy mid-selection, so no
    # per-set kernel reproduces it.
    REPLAY_TIER = REPLAY_SCALAR

    def __init__(self, base: ReplacementPolicy, hint_source: HintSource,
                 mode: str = "both", release: str = "budget"):
        super().__init__()
        if mode not in PROTECTION_MODES:
            raise ConfigError(f"unknown mode {mode!r}; choose from {PROTECTION_MODES}")
        if release not in RELEASE_POLICIES:
            raise ConfigError(
                f"unknown release {release!r}; choose from {RELEASE_POLICIES}"
            )
        self.base = base
        self.hint_source = hint_source
        self.mode = mode
        self.release = release
        self.name = f"oracle-{mode}({base.name})"
        self.protected_fills = 0
        self.exemptions_applied = 0
        self.releases = 0

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self.base.bind(geometry)
        # Remaining cross-core-use budget per way; 0 = unprotected.
        self._budget = [[0] * self.ways for __ in range(self.num_sets)]
        self._fill_core = [[0] * self.ways for __ in range(self.num_sets)]

    def attach(self, llc) -> None:
        super().attach(llc)
        self.base.attach(llc)

    def on_fill(self, set_index, way, block, pc, core, is_write) -> None:
        self.base.on_fill(set_index, way, block, pc, core, is_write)
        budget = int(self.hint_source(self.llc, block, pc, core))
        self._budget[set_index][way] = budget
        self._fill_core[set_index][way] = core
        if budget > 0:
            self.protected_fills += 1
            if self.mode != "victim-exempt":
                # Synthetic hit: the base promotes exactly as it would on a
                # real re-reference, whatever its metadata looks like.
                self.base.on_hit(set_index, way, block, pc, core, is_write)

    def on_hit(self, set_index, way, block, pc, core, is_write) -> None:
        self.base.on_hit(set_index, way, block, pc, core, is_write)
        if (
            self.release != "never"
            and self._budget[set_index][way] > 0
            and core != self._fill_core[set_index][way]
        ):
            if self.release == "first-share":
                self._budget[set_index][way] = 0
            else:
                self._budget[set_index][way] -= 1
            if self._budget[set_index][way] == 0:
                self.releases += 1

    def select_victim(self, set_index) -> int:
        budgets = self._budget[set_index]
        if self.mode == "insert-promote" or not any(budgets):
            # Nothing to exempt: defer entirely to the base so a hint-free
            # run is bit-identical to the unwrapped policy (including its
            # RNG consumption).
            return self.base.select_victim(set_index)
        way, first = self.base.preferred_victim(set_index, budgets)
        if way < 0:
            return first
        if way != first:
            self.exemptions_applied += 1
        return way

    def on_evict(self, set_index, way, block) -> None:
        self.base.on_evict(set_index, way, block)
        self._budget[set_index][way] = 0

    def rank_victims(self, set_index) -> list:
        order = self.base.rank_victims(set_index)
        if self.mode == "insert-promote":
            return order
        budgets = self._budget[set_index]
        return [w for w in order if budgets[w] <= 0] + [
            w for w in order if budgets[w] > 0
        ]
