"""The generic sharing oracle (the paper's section 5).

The oracle answers, at fill time, "will this block be shared during the
residency that starts now?" — information no real controller has, obtained
here by a prior pass over the same recorded LLC stream. The
:class:`SharingAwareWrapper` composes that answer with *any* base
replacement policy: predicted-shared fills are protected (exempted from
victim selection while unprotected candidates exist, and/or promoted at
insertion), everything else is left to the base policy. The gap between the
wrapped and plain policy quantifies the headroom sharing-awareness offers —
the paper's headline 6%/10% average LRU miss reductions at 4MB/8MB.
"""

from repro.oracle.residency import FillSharingLog
from repro.oracle.annotate import (
    AnnotationHintSource,
    build_sharing_annotation,
    build_stream_annotation,
    oracle_hint_source,
)
from repro.oracle.wrapper import (
    PROTECTION_MODES,
    RELEASE_POLICIES,
    SharingAwareWrapper,
)
from repro.oracle.runner import (
    ANNOTATION_MEMO_CAPACITY,
    DEFAULT_HORIZON_TURNOVERS,
    OracleStudyResult,
    annotation_memo_clear,
    annotation_memo_stats,
    run_oracle_study,
)

__all__ = [
    "FillSharingLog",
    "AnnotationHintSource",
    "build_sharing_annotation",
    "build_stream_annotation",
    "oracle_hint_source",
    "PROTECTION_MODES",
    "RELEASE_POLICIES",
    "SharingAwareWrapper",
    "ANNOTATION_MEMO_CAPACITY",
    "DEFAULT_HORIZON_TURNOVERS",
    "OracleStudyResult",
    "annotation_memo_clear",
    "annotation_memo_stats",
    "run_oracle_study",
]
