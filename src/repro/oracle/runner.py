"""End-to-end oracle studies over one recorded LLC stream."""

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import List, Optional, Sequence, Tuple
from weakref import ref

from repro.cache.stream import LlcStream
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.oracle.annotate import (
    BUDGET_CAP,
    build_stream_annotation,
    oracle_hint_source,
)
from repro.oracle.residency import FillSharingLog
from repro.oracle.wrapper import SharingAwareWrapper
from repro.policies.registry import make_policy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.results import LlcSimResult
from repro.sim.setpath import try_fast_replay


MAX_HORIZON_FACTOR = 10
"""Upper bound on the auto-derived horizon, in LLC-capacity multiples.

At low base miss ratios the turnover rule would ask for enormous horizons;
past roughly ten capacity multiples the annotation starts promising sharing
no replacement decision can actually bridge, and over-protection causes
regressions on near-fitting workloads. The sweep behind this constant is
the A1/F7 territory: cap 10 preserves the average gains at both LLC sizes
while eliminating every per-app regression.
"""

DEFAULT_HORIZON_TURNOVERS = 1.75
"""How many cache turnovers a protected block may be held for.

A block that is never reused survives roughly one turnover — the time the
base policy takes to replace the whole cache, ``num_blocks / miss_ratio``
accesses. Protection is worth engineering for sharing that arrives within a
small multiple of that; sharing farther out is unreachable for any
replacement decision made at fill time. Because miss ratios fall with
capacity, the horizon in accesses grows *super-linearly* with LLC size,
which is what makes the oracle's gains grow from the 4MB to the 8MB
configuration (the paper's 6% -> 10%).
"""


ANNOTATION_MEMO_CAPACITY = 32
"""LRU bound on the annotation memo, in (stream, window, cap) entries.

An annotation array is 4 bytes per access; a long capacity sweep over many
streams could otherwise accumulate one array per (stream, window) pair
with nothing ever letting go while the streams stay referenced by the
experiment context. 32 comfortably covers every window a single study
grid produces while keeping the worst case bounded.
"""

_ANNOTATION_MEMO: "OrderedDict" = OrderedDict()
"""LRU cache of stream annotations, keyed by (stream ref, window, cap).

The policy-free annotation depends on the geometry only through the window
``horizon_factor * geometry.num_blocks`` (and the saturation cap), so one
computation serves every sweep cell whose window coincides — in particular
every A1 variant of one study, and any capacity cells whose factor/horizon
products collide. Keys hold weak stream references (annotations die with
their stream) and the mapping is bounded at
:data:`ANNOTATION_MEMO_CAPACITY` entries, least-recently-used first out.
Guarded by a lock: sharded replays may annotate from worker threads.
"""

_ANNOTATION_MEMO_LOCK = Lock()
_ANNOTATION_MEMO_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}


def _drop_dead_annotations(_dead_ref) -> None:
    """Weakref callback: purge every entry whose stream has died."""
    with _ANNOTATION_MEMO_LOCK:
        for key in [k for k in _ANNOTATION_MEMO if k[0]() is None]:
            del _ANNOTATION_MEMO[key]


def stream_annotation(
    stream: LlcStream,
    geometry: CacheGeometry,
    horizon_factor: int,
    cap: int = BUDGET_CAP,
):
    """Annotation budgets for one (stream, window) pair, computed once.

    Exactly :func:`repro.oracle.annotate.build_stream_annotation`, shared
    across all callers whose effective window
    (``horizon_factor * geometry.num_blocks``, ``cap``) matches.
    """
    key = (
        ref(stream, _drop_dead_annotations),
        horizon_factor * geometry.num_blocks,
        cap,
    )
    with _ANNOTATION_MEMO_LOCK:
        budgets = _ANNOTATION_MEMO.get(key)
        if budgets is not None:
            _ANNOTATION_MEMO.move_to_end(key)
            _ANNOTATION_MEMO_COUNTERS["hits"] += 1
            return budgets
        _ANNOTATION_MEMO_COUNTERS["misses"] += 1
    budgets = build_stream_annotation(
        stream, geometry, horizon_factor=horizon_factor, cap=cap
    )
    with _ANNOTATION_MEMO_LOCK:
        # A racing thread may have inserted the same key meanwhile; both
        # computed bit-identical arrays, so last-writer-wins is harmless.
        _ANNOTATION_MEMO[key] = budgets
        _ANNOTATION_MEMO.move_to_end(key)
        while len(_ANNOTATION_MEMO) > ANNOTATION_MEMO_CAPACITY:
            _ANNOTATION_MEMO.popitem(last=False)
            _ANNOTATION_MEMO_COUNTERS["evictions"] += 1
    return budgets


def annotation_memo_stats() -> dict:
    """Occupancy and hit/miss/eviction counters of the annotation memo.

    Per-process and in-memory (``repro-sim cache info`` renders them for
    the running process); ``entries`` counts live cached annotations,
    ``capacity`` is :data:`ANNOTATION_MEMO_CAPACITY`.
    """
    with _ANNOTATION_MEMO_LOCK:
        return {
            "entries": len(_ANNOTATION_MEMO),
            "capacity": ANNOTATION_MEMO_CAPACITY,
            **_ANNOTATION_MEMO_COUNTERS,
        }


def annotation_memo_clear() -> None:
    """Empty the annotation memo and zero its counters."""
    with _ANNOTATION_MEMO_LOCK:
        _ANNOTATION_MEMO.clear()
        for counter in _ANNOTATION_MEMO_COUNTERS:
            _ANNOTATION_MEMO_COUNTERS[counter] = 0


@dataclass(frozen=True)
class OracleStudyResult:
    """Base-vs-oracle comparison for one (stream, geometry, base) triple."""

    base: LlcSimResult
    oracle: LlcSimResult
    shared_fill_fraction: float
    protected_fills: int
    exemptions: int
    horizon_factor: int = 0

    @property
    def miss_reduction(self) -> float:
        """Fractional miss reduction of the oracle over the base policy."""
        return self.oracle.miss_reduction_vs(self.base)


def run_oracle_study(
    stream: LlcStream,
    geometry: CacheGeometry,
    base: str = "lru",
    mode: str = "both",
    release: str = "budget",
    horizon_turnovers: float = DEFAULT_HORIZON_TURNOVERS,
    horizon_factor: Optional[int] = None,
    cap: int = BUDGET_CAP,
    seed: int = 0,
    fastpath: Optional[bool] = None,
    native: Optional[bool] = None,
) -> OracleStudyResult:
    """Measure the sharing oracle's gain over ``base`` on ``stream``.

    Three steps: (1) replay the plain base policy for the baseline miss
    count (also logging its realised residencies, reported as
    ``shared_fill_fraction``); (2) build the policy-free future-sharing
    annotation of the stream; (3) replay the oracle-wrapped base consuming
    that annotation. Both replays see the identical stream, so the miss
    delta is attributable to sharing-aware protection alone.

    Args:
        stream: recorded LLC demand stream.
        geometry: LLC geometry.
        base: base policy name.
        mode: protection mechanism (see ``PROTECTION_MODES``).
        release: protection release policy (see ``RELEASE_POLICIES``).
        horizon_turnovers: retention horizon in cache turnovers of the base
            policy (see :data:`DEFAULT_HORIZON_TURNOVERS`); converted to
            capacity multiples using the measured base miss ratio.
        horizon_factor: explicit horizon in capacity multiples, overriding
            ``horizon_turnovers`` when given.
        cap: budget saturation value.
        seed: seed for stochastic base policies (both replays re-seed the
            base identically so only the oracle differs).
        fastpath: three-state gate for the exact replay fast paths on the
            base replay — stack-distance for plain LRU, set-partitioned
            for other eligible bases (None = auto).
        native: three-state gate for the native scalar backend on the
            oracle-wrapped replay — annotation-backed wrappers over {LRU,
            SRRIP, SHiP} lower onto the compiled/compact oracle kernels
            (:func:`repro.sim.nativepath.replay_oracle_nativepath`, bit-
            identical); ``False`` or ``REPRO_SIM_NO_NATIVE`` restores the
            scalar object model.
    """
    return run_oracle_variants(
        stream, geometry, [(mode, release)], base=base,
        horizon_turnovers=horizon_turnovers, horizon_factor=horizon_factor,
        cap=cap, seed=seed, fastpath=fastpath, native=native,
    )[0]


def _base_pass(
    stream: LlcStream,
    geometry: CacheGeometry,
    base: str,
    horizon_turnovers: float,
    horizon_factor: Optional[int],
    seed: int,
    fastpath: Optional[bool],
) -> Tuple[LlcSimResult, float, int]:
    """The variant-independent prefix of an oracle study.

    Replays the plain base once (logging realised fill sharing) and derives
    the retention horizon from its miss ratio. Nothing here depends on the
    protection mode or release policy, which is what lets a whole A1
    variant grid share one base pass.
    """

    def fresh_base():
        return make_policy(base, seed=derive_seed(seed, "oracle-base", base))

    base_log = FillSharingLog(len(stream))
    # The instance (not the name) goes to the dispatch so the base keeps
    # its "oracle-base" seed derivation on every tier.
    base_result = try_fast_replay(
        stream, geometry, fresh_base(), observers=(base_log,),
        fastpath=fastpath,
    )
    if base_result is None:
        base_result = LlcOnlySimulator(
            geometry, fresh_base(), observers=(base_log,)
        ).run(stream)
    shared_fill_fraction = (
        base_log.shared_fills / base_log.total_fills if base_log.total_fills else 0.0
    )

    if horizon_factor is None:
        miss_ratio = max(base_result.miss_ratio, 1e-3)
        horizon_factor = max(
            1, min(int(horizon_turnovers / miss_ratio), MAX_HORIZON_FACTOR)
        )
    return base_result, shared_fill_fraction, horizon_factor


def run_oracle_variants(
    stream: LlcStream,
    geometry: CacheGeometry,
    variants: Sequence[Tuple[str, str]],
    base: str = "lru",
    horizon_turnovers: float = DEFAULT_HORIZON_TURNOVERS,
    horizon_factor: Optional[int] = None,
    cap: int = BUDGET_CAP,
    seed: int = 0,
    fastpath: Optional[bool] = None,
    native: Optional[bool] = None,
) -> List[OracleStudyResult]:
    """One oracle study per ``(mode, release)`` variant, sharing every
    variant-independent pass.

    The base replay, the measured fill-sharing fraction, the horizon
    derivation, and the stream annotation do not depend on the protection
    variant — only the wrapped oracle replay does. A whole A1-style
    ablation therefore costs one base pass, one annotation, and one
    wrapped replay per variant, with every cell bit-identical to an
    independent :func:`run_oracle_study` call. Results align positionally
    with ``variants``. The wrapped replay routes through the replay
    dispatch, so annotation-backed wrappers over {LRU, SRRIP, SHiP} take
    the native oracle kernels unless gated off (``fastpath=False``,
    ``native=False``, or their environment toggles); the wrapper's study
    counters are identical either way.
    """
    if horizon_turnovers <= 0:
        raise ConfigError(
            f"horizon_turnovers must be positive, got {horizon_turnovers}"
        )
    base_result, shared_fill_fraction, horizon_factor = _base_pass(
        stream, geometry, base, horizon_turnovers, horizon_factor, seed,
        fastpath,
    )
    budgets = stream_annotation(stream, geometry, horizon_factor, cap=cap)
    studies = []
    for mode, release in variants:
        wrapper = SharingAwareWrapper(
            make_policy(base, seed=derive_seed(seed, "oracle-base", base)),
            oracle_hint_source(budgets, cap=cap), mode, release=release,
        )
        oracle_result = try_fast_replay(
            stream, geometry, wrapper, fastpath=fastpath, native=native,
        )
        if oracle_result is None:
            oracle_result = LlcOnlySimulator(geometry, wrapper).run(stream)
        studies.append(OracleStudyResult(
            base=base_result,
            oracle=oracle_result,
            shared_fill_fraction=shared_fill_fraction,
            protected_fills=wrapper.protected_fills,
            exemptions=wrapper.exemptions_applied,
            horizon_factor=horizon_factor,
        ))
    return studies


def run_oracle_study_grid(
    stream: LlcStream,
    geometries: Sequence[CacheGeometry],
    base: str = "lru",
    mode: str = "both",
    release: str = "budget",
    horizon_turnovers: float = DEFAULT_HORIZON_TURNOVERS,
    horizon_factor: Optional[int] = None,
    cap: int = BUDGET_CAP,
    seed: int = 0,
    fastpath: Optional[bool] = None,
    native: Optional[bool] = None,
) -> List[OracleStudyResult]:
    """One oracle study per geometry over a single stream — the F7 grid.

    The per-cell passes that genuinely depend on the geometry (the
    observer-carrying base replay, the wrapped oracle replay) run per cell;
    everything geometry-invariant is shared through the per-stream memos —
    annotations whose effective window coincides
    (:func:`stream_annotation`) are computed once, and capacity cells that
    pull OPT comparisons share the stream's next-use column
    (:func:`repro.sim.multipass.stream_next_use`). Cells are bit-identical
    to independent :func:`run_oracle_study` calls and align positionally
    with ``geometries``.
    """
    return [
        run_oracle_study(
            stream, geometry, base=base, mode=mode, release=release,
            horizon_turnovers=horizon_turnovers,
            horizon_factor=horizon_factor, cap=cap, seed=seed,
            fastpath=fastpath, native=native,
        )
        for geometry in geometries
    ]
