"""Plain-text table rendering for bench and CLI output.

Tables render in GitHub-markdown-compatible form so bench output can be
pasted straight into EXPERIMENTS.md.
"""

from typing import Iterable, List, Sequence

from repro.sim.results import is_failure

FAILED_CELL = "FAILED"
"""What a graceful-mode :class:`~repro.sim.results.CellFailure` renders as
(instead of leaking the dataclass repr into a table or CSV)."""


def format_cell(value, float_digits: int = 4) -> str:
    """Render one cell: floats fixed-precision, everything else ``str``.

    A :class:`~repro.sim.results.CellFailure` placeholder renders as
    :data:`FAILED_CELL` — the failure details belong in the run manifest
    and on stderr, not inside a result table.
    """
    if is_failure(value):
        return FAILED_CELL
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_digits: int = 4,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned markdown table.

    The first column is left-aligned (labels); the rest right-aligned
    (numbers).
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        padded = [
            cells[0].ljust(widths[0]),
            *(cell.rjust(widths[i + 1]) for i, cell in enumerate(cells[1:])),
        ]
        return "| " + " | ".join(padded) + " |"

    rule = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(rule)
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
