"""Figure-series containers.

A paper figure is a set of named series over a shared x-axis (workloads on
the x-axis, one bar/line per configuration). :class:`FigureSeries` holds
that structure; :func:`render_series` prints it as the table the benches
emit (x values as rows, series as columns).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.tables import render_table


@dataclass
class FigureSeries:
    """Data behind one figure: x labels plus named y-series."""

    figure_id: str
    x_label: str
    x_values: List[str] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add_point(self, x_value: str, series_name: str, y: float) -> None:
        """Append one (x, y) point to ``series_name``.

        X values are created on first use and must arrive in the same order
        for every series (each series must be as long as the x-axis when
        rendered).
        """
        if x_value not in self.x_values:
            self.x_values.append(x_value)
        self.series.setdefault(series_name, []).append(y)

    def column(self, series_name: str) -> List[float]:
        """One series' y-values."""
        return self.series[series_name]

    def validate(self) -> None:
        """Check every series covers the full x-axis.

        Raises:
            ValueError: on a ragged series.
        """
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} points for "
                    f"{len(self.x_values)} x-values"
                )


def render_series(figure: FigureSeries, float_digits: int = 4) -> str:
    """Render a figure's series as an aligned table."""
    figure.validate()
    headers = [figure.x_label, *figure.series.keys()]
    rows = [
        [x, *(figure.series[name][i] for name in figure.series)]
        for i, x in enumerate(figure.x_values)
    ]
    return render_table(headers, rows, float_digits=float_digits,
                        title=f"[{figure.figure_id}]")
