"""Miss-ratio curves (MRC) from a single profiling pass.

Uses the Mattson stack-distance histogram of an LLC stream to produce the
fully-associative LRU miss ratio at *every* capacity at once — the
one-pass alternative to simulating each size. Set-associative LRU tracks
the fully-associative curve closely at the paper's 16-way associativity, so
the MRC serves as an independent cross-check of the simulator (tested) and
as the cheap scout for capacity sweeps (F7).
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cache.stream import LlcStream
from repro.characterization.reuse import ReuseDistanceProfiler
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class MissRatioCurve:
    """A monotone non-increasing miss-ratio curve over block capacities."""

    stream_name: str
    accesses: int
    points: Tuple[Tuple[int, float], ...]  # (capacity_blocks, miss_ratio)

    def miss_ratio_at(self, capacity_blocks: int) -> float:
        """Miss ratio at one of the computed capacities.

        Raises:
            ConfigError: if the capacity was not part of the sweep.
        """
        for capacity, miss_ratio in self.points:
            if capacity == capacity_blocks:
                return miss_ratio
        raise ConfigError(
            f"capacity {capacity_blocks} not in curve "
            f"({[c for c, __ in self.points]})"
        )

    def knee_capacity(self, threshold: float = 0.5) -> int:
        """Smallest computed capacity whose miss ratio is below ``threshold``.

        Returns the largest capacity when none qualifies — a capacity-bound
        stream whose working set exceeds the sweep.
        """
        for capacity, miss_ratio in self.points:
            if miss_ratio < threshold:
                return capacity
        return self.points[-1][0]


def compute_mrc(
    stream: LlcStream,
    capacities_blocks: Sequence[int],
    max_depth: int = 1 << 17,
) -> MissRatioCurve:
    """Profile ``stream`` once and evaluate the LRU MRC at each capacity.

    Args:
        stream: recorded LLC demand stream.
        capacities_blocks: capacities (in blocks) to evaluate, any order.
        max_depth: stack-depth cap; must cover the largest capacity.

    Raises:
        ConfigError: on an empty capacity list or one exceeding the depth.
    """
    capacities = sorted(set(capacities_blocks))
    if not capacities:
        raise ConfigError("need at least one capacity")
    if capacities[-1] > max_depth:
        raise ConfigError(
            f"largest capacity {capacities[-1]} exceeds max_depth {max_depth}"
        )
    profiler = ReuseDistanceProfiler(max_depth=max_depth)
    for block in stream.blocks:
        profiler.access(block)
    points: List[Tuple[int, float]] = [
        (capacity, profiler.miss_ratio_at(capacity)) for capacity in capacities
    ]
    return MissRatioCurve(
        stream_name=stream.name, accesses=len(stream), points=tuple(points)
    )
