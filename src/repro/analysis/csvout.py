"""CSV export of result tables."""

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write ``rows`` under ``headers`` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path
