"""CSV export of result tables."""

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.sim.results import is_failure


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write ``rows`` under ``headers`` to ``path``; returns the path.

    Graceful-mode :class:`~repro.sim.results.CellFailure` placeholders are
    written as the explicit token ``FAILED`` rather than their repr, so
    downstream spreadsheet/pandas consumers see a recognizable sentinel.
    """
    from repro.analysis.tables import FAILED_CELL

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(
                [FAILED_CELL if is_failure(cell) else cell for cell in row]
            )
    return path
