"""Aggregation helpers for per-workload result tables."""

from typing import Callable, List, Sequence

from repro.common.stats import geometric_mean, safe_div


def amean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return safe_div(sum(values), len(values), 0.0)


def gmean_speedups(values: Sequence[float]) -> float:
    """Geometric mean of ratio-like values (must be positive)."""
    return geometric_mean(values)


def append_summary_rows(
    rows: List[List],
    numeric_columns: Sequence[int],
    label: str = "mean",
) -> List[List]:
    """Append an arithmetic-mean row over ``numeric_columns``.

    Non-numeric columns of the summary row are blanked; column 0 receives
    ``label``. Returns ``rows`` for chaining.
    """
    if not rows:
        return rows
    summary: List = [""] * len(rows[0])
    summary[0] = label
    for col in numeric_columns:
        summary[col] = amean([row[col] for row in rows])
    rows.append(summary)
    return rows


def append_group_means(
    rows: List[List],
    numeric_columns: Sequence[int],
    group_of: Callable[[str], str],
    label_prefix: str = "mean/",
) -> List[List]:
    """Append one arithmetic-mean row per group (the paper's per-suite rows).

    Groups are derived from each row's first column via ``group_of`` (e.g.
    workload name -> suite), preserved in first-appearance order. Returns
    ``rows`` for chaining.
    """
    if not rows:
        return rows
    groups: List[str] = []
    members = {}
    for row in rows:
        group = group_of(row[0])
        if group not in members:
            groups.append(group)
            members[group] = []
        members[group].append(row)
    for group in groups:
        summary: List = [""] * len(rows[0])
        summary[0] = f"{label_prefix}{group}"
        for col in numeric_columns:
            summary[col] = amean([row[col] for row in members[group]])
        rows.append(summary)
    return rows
