"""Reporting helpers: ASCII tables, CSV export, aggregation, figure series."""

from repro.analysis.tables import format_cell, render_table
from repro.analysis.csvout import write_csv
from repro.analysis.aggregate import (
    amean,
    append_group_means,
    append_summary_rows,
    gmean_speedups,
)
from repro.analysis.mrc import MissRatioCurve, compute_mrc
from repro.analysis.series import FigureSeries, render_series

__all__ = [
    "format_cell",
    "render_table",
    "write_csv",
    "amean",
    "append_group_means",
    "append_summary_rows",
    "gmean_speedups",
    "MissRatioCurve",
    "compute_mrc",
    "FigureSeries",
    "render_series",
]
