"""Coherence substrate: sharer directory for the private cache levels.

The CMP hierarchy keeps the private L1/L2 caches coherent with an
invalidation protocol. For a functional (hit/miss) study only the *sharer
sets* matter — which cores hold a valid private copy of each block — so the
directory tracks exactly that, as a bitmask per block, plus the dirty owner
where one exists.
"""

from repro.coherence.directory import Directory

__all__ = ["Directory"]
