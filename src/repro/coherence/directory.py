"""Sharer directory for the private cache levels.

One entry per block currently cached in at least one private hierarchy:
a bitmask of cores holding a valid copy. Dirty blocks additionally record
their single owner so writeback traffic can be counted. The directory is a
bookkeeping structure — invalidation of the private caches themselves is
performed by the hierarchy, which consults the masks returned here.
"""

from typing import Dict, Iterator, List, Tuple

from repro.common.errors import SimulationError


class Directory:
    """Tracks which cores privately cache each block.

    All methods are O(1) dict operations; masks are plain ints with bit
    ``c`` set when core ``c`` holds the block.
    """

    def __init__(self, num_cores: int):
        if num_cores <= 0:
            raise SimulationError(f"directory needs positive core count, got {num_cores}")
        self.num_cores = num_cores
        self._full_mask = (1 << num_cores) - 1
        self._sharers: Dict[int, int] = {}
        self._dirty_owner: Dict[int, int] = {}

    def sharers(self, block: int) -> int:
        """Sharer bitmask of ``block`` (0 when privately uncached)."""
        return self._sharers.get(block, 0)

    def is_cached(self, block: int) -> bool:
        """True when any core privately caches ``block``."""
        return block in self._sharers

    def add_sharer(self, block: int, core: int) -> None:
        """Record that ``core`` now holds a private copy of ``block``."""
        self._sharers[block] = self._sharers.get(block, 0) | (1 << core)

    def remove_sharer(self, block: int, core: int) -> None:
        """Record that ``core`` dropped its private copy of ``block``."""
        mask = self._sharers.get(block, 0) & ~(1 << core)
        if mask:
            self._sharers[block] = mask
        else:
            self._sharers.pop(block, None)
        if self._dirty_owner.get(block) == core:
            del self._dirty_owner[block]

    def set_exclusive(self, block: int, core: int, dirty: bool = True) -> int:
        """Make ``core`` the sole (dirty) owner; returns the mask of *other*
        cores that must be invalidated by the caller."""
        bit = 1 << core
        others = self._sharers.get(block, 0) & ~bit
        self._sharers[block] = bit
        if dirty:
            self._dirty_owner[block] = core
        return others

    def dirty_owner(self, block: int) -> int:
        """Core owning ``block`` dirty, or -1."""
        return self._dirty_owner.get(block, -1)

    def clear_block(self, block: int) -> int:
        """Drop every sharer of ``block`` (LLC back-invalidation); returns
        the mask of cores that held it."""
        mask = self._sharers.pop(block, 0)
        self._dirty_owner.pop(block, None)
        return mask

    def iter_cores(self, mask: int) -> Iterator[int]:
        """Yield core ids present in ``mask``."""
        core = 0
        while mask:
            if mask & 1:
                yield core
            mask >>= 1
            core += 1

    def entries(self) -> List[Tuple[int, int]]:
        """Snapshot of ``(block, mask)`` pairs (for tests/debugging)."""
        return list(self._sharers.items())

    def __len__(self) -> int:
        return len(self._sharers)
