"""Small statistics helpers used across the library and the benches."""

import math
from typing import Dict, Iterable, Optional


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning ``default`` when the denominator is zero."""
    if denominator == 0:
        return default
    return numerator / denominator


def ratio(part: float, whole: float) -> float:
    """Fraction ``part / whole`` with a 0-denominator guard."""
    return safe_div(part, whole, 0.0)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; returns 0.0 for an empty input.

    Raises:
        ValueError: if any value is not strictly positive (geomeans over
            speedups/ratios require positivity; zero would silently collapse
            the mean).
    """
    total = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        total += math.log(value)
        count += 1
    if count == 0:
        return 0.0
    return math.exp(total / count)


class RunningStats:
    """Streaming min/max/mean over a sequence of floats.

    Telemetry span aggregation (``repro-sim runs show``) folds many event
    wall times into one of these per stage without holding the events.
    """

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation in."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 before any observation)."""
        return safe_div(self.total, self.count, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view; min/max are 0.0 before any observation."""
        empty = self.count == 0
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
        }

    def __repr__(self) -> str:
        return (f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
                f"min={self.min:.6g}, max={self.max:.6g})")


class CounterBag:
    """A dict-backed bundle of named integer counters.

    Hot simulator paths bump attributes of dedicated stats objects instead;
    CounterBag serves reporting code where flexibility beats speed.
    """

    def __init__(self, initial: Optional[Dict[str, int]] = None):
        self._counts: Dict[str, int] = dict(initial or {})

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (creating it at 0)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def fraction(self, part: str, whole: str) -> float:
        """Ratio of two counters with a 0-denominator guard."""
        return ratio(self.get(part), self.get(whole))

    def merge(self, other: "CounterBag") -> None:
        """Add every counter of ``other`` into this bag."""
        for name, value in other._counts.items():
            self.add(name, value)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterBag({inner})"
