"""Deterministic random-number utilities.

Every stochastic component in the library (workload generators, the Random
replacement policy, BIP's epsilon insertions) draws from a
:class:`DeterministicRng` seeded through :func:`derive_seed`, so a whole
experiment is reproducible bit-for-bit from a single base seed.
"""

import random
import zlib


def derive_seed(base_seed: int, *components) -> int:
    """Derive a child seed from a base seed and a sequence of labels.

    Mixing goes through CRC32 of the rendered components so that distinct
    label tuples give uncorrelated child streams while remaining stable
    across processes and Python versions (unlike ``hash``).
    """
    text = "/".join(str(part) for part in components)
    mixed = zlib.crc32(text.encode("utf-8"))
    return (base_seed * 0x9E3779B1 + mixed) & 0xFFFFFFFF


class DeterministicRng(random.Random):
    """A ``random.Random`` whose construction documents determinism intent.

    Behaviourally identical to ``random.Random(seed)``; the subclass exists
    so grepping for nondeterminism only has to look for bare ``random.``
    usage.
    """

    def __init__(self, seed: int):
        super().__init__(seed)
        self.initial_seed = seed

    def spawn(self, *components) -> "DeterministicRng":
        """Create an independent child RNG keyed by ``components``."""
        return DeterministicRng(derive_seed(self.initial_seed, *components))
