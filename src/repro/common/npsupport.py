"""Optional numpy acceleration gate.

Vectorized kernels (next-use computation, annotation scans, column views)
import numpy through this module so that every accelerated path degrades to
its pure-Python twin on interpreters without numpy. Design decision #4
(deterministic everything) still holds: both paths are equivalence-tested
to produce bit-identical outputs, so which one runs never changes a result.
"""

from repro.common.envflag import env_flag

NO_NUMPY_ENV = "REPRO_SIM_NO_NUMPY"
"""Set (to a truthy value — see :func:`repro.common.envflag.env_flag`) to
pretend numpy is absent.

CI's no-numpy job and the pure-Python equivalence tests use this to drive
every kernel down its Python twin without uninstalling anything.
``REPRO_SIM_NO_NUMPY=0``/``=false`` count as unset, not as a request to
drop numpy.
"""

if env_flag(NO_NUMPY_ENV):
    numpy = None
else:
    try:  # pragma: no cover - exercised implicitly by every vectorized kernel
        import numpy
    except ImportError:  # pragma: no cover - numpy ships with the toolchain
        numpy = None

HAVE_NUMPY = numpy is not None
"""True when numpy is importable; vectorized kernels key off this."""


def require_numpy():
    """The numpy module, or a :class:`RuntimeError` when unavailable.

    Callers that were explicitly asked to vectorize (``use_numpy=True``)
    use this to fail loudly instead of silently falling back.
    """
    if numpy is None:
        raise RuntimeError("numpy is not available in this interpreter")
    return numpy


def frozen_view(column, dtype):
    """Zero-copy read-only numpy view over one ``array.array`` column."""
    np = require_numpy()
    if len(column) == 0:
        return np.empty(0, dtype=dtype)
    view = np.frombuffer(column, dtype=dtype)
    view.flags.writeable = False
    return view


def should_vectorize(use_numpy, length: int, threshold: int) -> bool:
    """Resolve the three-state ``use_numpy`` flag for one kernel call.

    ``None`` means auto: vectorize when numpy exists and the input is big
    enough for the numpy call overhead to pay for itself. ``True`` demands
    numpy (raising when missing); ``False`` forces the Python path.
    """
    if use_numpy is None:
        return HAVE_NUMPY and length >= threshold
    if use_numpy:
        require_numpy()
        return True
    return False
