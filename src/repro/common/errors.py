"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid machine, cache, or workload configuration."""


class TraceError(ReproError):
    """A malformed trace file or an inconsistent access stream."""


class SimulationError(ReproError):
    """An internal invariant of the simulator was violated."""
