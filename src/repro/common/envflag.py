"""Boolean environment-variable toggles, parsed consistently.

Every ``REPRO_SIM_*`` escape hatch (``REPRO_SIM_NO_FASTPATH``,
``REPRO_SIM_NO_NUMPY``, ``REPRO_SIM_NO_NATIVE``) is a boolean *flag*: the
user either asked for the toggle or did not. The obvious
``os.environ.get(NAME)`` truthiness check gets the common negative
spellings wrong — ``REPRO_SIM_NO_FASTPATH=0`` or ``=false`` would
*disable* the fast path, the opposite of what the user wrote — so every
toggle resolves through :func:`env_flag` instead.
"""

import os
from typing import Mapping, Optional

FALSE_WORDS = frozenset({"", "0", "false", "no", "off"})
"""Values (case-insensitive, whitespace-stripped) that mean *unset*."""


def env_flag(name: str, environ: Optional[Mapping[str, str]] = None) -> bool:
    """True when the environment variable ``name`` is set to a truthy value.

    Unset counts as False, as does any spelling a user plausibly means
    "no" by: empty string, ``0``, ``false``, ``no``, ``off`` (any case,
    surrounding whitespace ignored). Everything else — ``1``, ``true``,
    ``yes``, arbitrary text — counts as set. ``environ`` defaults to
    ``os.environ`` and exists for tests.
    """
    if environ is None:
        environ = os.environ
    value = environ.get(name)
    if value is None:
        return False
    return value.strip().lower() not in FALSE_WORDS
