"""Shared substrate: configuration, addressing, RNG, statistics, errors.

Everything in this package is policy- and workload-agnostic. The rest of the
library builds on these primitives.
"""

from repro.common.addressing import (
    BLOCK_BYTES_DEFAULT,
    block_address,
    block_of,
    byte_address,
    is_power_of_two,
    log2_exact,
)
from repro.common.config import (
    CacheGeometry,
    MachineConfig,
    full_4mb,
    full_8mb,
    scaled_4mb,
    scaled_8mb,
    profile,
    PROFILE_NAMES,
)
from repro.common.envflag import FALSE_WORDS, env_flag
from repro.common.errors import ConfigError, ReproError, SimulationError, TraceError
from repro.common.rng import DeterministicRng, derive_seed
from repro.common.stats import CounterBag, geometric_mean, ratio, safe_div

__all__ = [
    "BLOCK_BYTES_DEFAULT",
    "block_address",
    "block_of",
    "byte_address",
    "is_power_of_two",
    "log2_exact",
    "CacheGeometry",
    "MachineConfig",
    "full_4mb",
    "full_8mb",
    "scaled_4mb",
    "scaled_8mb",
    "profile",
    "PROFILE_NAMES",
    "FALSE_WORDS",
    "env_flag",
    "ConfigError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "DeterministicRng",
    "derive_seed",
    "CounterBag",
    "geometric_mean",
    "ratio",
    "safe_div",
]
