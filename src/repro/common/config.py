"""Machine and cache-geometry configuration.

The paper simulates an 8-core CMP with private L1/L2 caches per core and a
shared, inclusive last-level cache (LLC) of 4MB or 8MB, 16-way, 64-byte
blocks. Pure-Python simulation at that scale is infeasible for full suite
sweeps, so the default profiles scale every capacity by ``SCALE_FACTOR``
(workload footprints are scaled by the same ratio in
``repro.workloads.scaling``), which preserves working-set : capacity ratios
and therefore policy orderings. ``full_4mb``/``full_8mb`` restore the paper's
literal geometry.
"""

from dataclasses import dataclass, field, replace

from repro.common.addressing import BLOCK_BYTES_DEFAULT, is_power_of_two, log2_exact
from repro.common.errors import ConfigError

SCALE_FACTOR = 16
"""Capacity divisor applied by the scaled profiles."""

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level.

    Attributes:
        size_bytes: total capacity in bytes.
        ways: associativity.
        block_bytes: line size in bytes.
    """

    size_bytes: int
    ways: int
    block_bytes: int = BLOCK_BYTES_DEFAULT

    def __post_init__(self):
        if self.ways <= 0:
            raise ConfigError(f"associativity must be positive, got {self.ways}")
        if not is_power_of_two(self.block_bytes):
            raise ConfigError(f"block size must be a power of two, got {self.block_bytes}")
        if self.size_bytes <= 0 or self.size_bytes % (self.ways * self.block_bytes) != 0:
            raise ConfigError(
                f"capacity {self.size_bytes} is not a multiple of "
                f"ways*block ({self.ways}*{self.block_bytes})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(
                f"geometry {self.size_bytes}B/{self.ways}w/{self.block_bytes}B "
                f"yields a non-power-of-two set count {self.num_sets}"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.block_bytes)

    @property
    def num_blocks(self) -> int:
        """Total number of block frames."""
        return self.size_bytes // self.block_bytes

    @property
    def set_index_bits(self) -> int:
        """Number of block-address bits used for the set index."""
        return log2_exact(self.num_sets)

    def set_index(self, block_addr: int) -> int:
        """Map a block address to its set index."""
        return block_addr & (self.num_sets - 1)

    def tag(self, block_addr: int) -> int:
        """Extract the tag (the block address above the index bits)."""
        return block_addr >> self.set_index_bits

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``256KB 16-way 64B``."""
        if self.size_bytes % MB == 0:
            size = f"{self.size_bytes // MB}MB"
        elif self.size_bytes % KB == 0:
            size = f"{self.size_bytes // KB}KB"
        else:
            size = f"{self.size_bytes}B"
        return f"{size} {self.ways}-way {self.block_bytes}B"


@dataclass(frozen=True)
class MachineConfig:
    """A full CMP configuration: core count plus the three-level hierarchy.

    The hierarchy is private L1D and private unified L2 per core, under one
    shared inclusive LLC (the paper's organisation). ``name`` labels result
    rows; ``scale`` records the capacity divisor relative to the paper's
    machine (1 for full size) so reports can say what was simulated.
    """

    name: str
    num_cores: int
    l1: CacheGeometry
    l2: CacheGeometry
    llc: CacheGeometry
    scale: int = 1

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ConfigError(f"core count must be positive, got {self.num_cores}")
        if not (self.l1.block_bytes == self.l2.block_bytes == self.llc.block_bytes):
            raise ConfigError("all cache levels must share one block size")
        if not self.l1.size_bytes <= self.l2.size_bytes <= self.llc.size_bytes:
            raise ConfigError("hierarchy capacities must be non-decreasing (L1<=L2<=LLC)")
        if self.llc.size_bytes < self.num_cores * self.l2.size_bytes:
            # Inclusion of every private L2 in the shared LLC requires the
            # LLC to be at least as large as the sum of the L2s.
            raise ConfigError(
                "inclusive LLC must be at least num_cores * L2 capacity "
                f"({self.num_cores} * {self.l2.size_bytes} > {self.llc.size_bytes})"
            )

    @property
    def block_bytes(self) -> int:
        """Block size shared by every level."""
        return self.llc.block_bytes

    def with_llc_size(self, size_bytes: int) -> "MachineConfig":
        """Return a copy with a different LLC capacity (same ways/block).

        Idempotent in the name: resizing an already-resized machine replaces
        the ``@llc=`` suffix instead of stacking a second one (suffixes feed
        cache keys and result-row labels, so stacking silently forked both).
        """
        new_llc = replace(self.llc, size_bytes=size_bytes)
        base_name = self.name.split("@llc=", 1)[0]
        return replace(self, llc=new_llc, name=f"{base_name}@llc={size_bytes}")

    def describe(self) -> str:
        """Multi-line configuration summary (used by the T2 bench)."""
        lines = [
            f"machine          : {self.name}",
            f"cores            : {self.num_cores}",
            f"L1D (per core)   : {self.l1.describe()}",
            f"L2 (per core)    : {self.l2.describe()}",
            f"LLC (shared)     : {self.llc.describe()}, inclusive",
            f"scale vs paper   : 1/{self.scale}" if self.scale != 1 else "scale vs paper   : full size",
        ]
        return "\n".join(lines)


NUM_CORES_DEFAULT = 8
"""Paper machine: 8-core CMP."""


def full_4mb(num_cores: int = NUM_CORES_DEFAULT) -> MachineConfig:
    """The paper's 4MB-LLC machine at full size."""
    return MachineConfig(
        name="full-4mb",
        num_cores=num_cores,
        l1=CacheGeometry(32 * KB, 8),
        l2=CacheGeometry(256 * KB, 8),
        llc=CacheGeometry(4 * MB, 16),
        scale=1,
    )


def full_8mb(num_cores: int = NUM_CORES_DEFAULT) -> MachineConfig:
    """The paper's 8MB-LLC machine at full size."""
    return MachineConfig(
        name="full-8mb",
        num_cores=num_cores,
        l1=CacheGeometry(32 * KB, 8),
        l2=CacheGeometry(256 * KB, 8),
        llc=CacheGeometry(8 * MB, 16),
        scale=1,
    )


def scaled_4mb(num_cores: int = NUM_CORES_DEFAULT) -> MachineConfig:
    """The 4MB machine with every capacity divided by ``SCALE_FACTOR``."""
    return MachineConfig(
        name="scaled-4mb",
        num_cores=num_cores,
        l1=CacheGeometry(32 * KB // SCALE_FACTOR, 8),
        l2=CacheGeometry(256 * KB // SCALE_FACTOR, 8),
        llc=CacheGeometry(4 * MB // SCALE_FACTOR, 16),
        scale=SCALE_FACTOR,
    )


def scaled_8mb(num_cores: int = NUM_CORES_DEFAULT) -> MachineConfig:
    """The 8MB machine with every capacity divided by ``SCALE_FACTOR``."""
    return MachineConfig(
        name="scaled-8mb",
        num_cores=num_cores,
        l1=CacheGeometry(32 * KB // SCALE_FACTOR, 8),
        l2=CacheGeometry(256 * KB // SCALE_FACTOR, 8),
        llc=CacheGeometry(8 * MB // SCALE_FACTOR, 16),
        scale=SCALE_FACTOR,
    )


_PROFILES = {
    "scaled-4mb": scaled_4mb,
    "scaled-8mb": scaled_8mb,
    "full-4mb": full_4mb,
    "full-8mb": full_8mb,
}

PROFILE_NAMES = tuple(sorted(_PROFILES))
"""Names accepted by :func:`profile` and the CLI ``--profile`` flag."""


def profile(name: str, num_cores: int = NUM_CORES_DEFAULT) -> MachineConfig:
    """Look up a machine profile by name.

    Raises:
        ConfigError: for an unknown profile name.
    """
    try:
        factory = _PROFILES[name]
    except KeyError:
        raise ConfigError(f"unknown profile {name!r}; choose from {PROFILE_NAMES}") from None
    return factory(num_cores)
