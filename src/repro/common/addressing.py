"""Address arithmetic helpers.

The simulator works on *block addresses* (byte address with the block-offset
bits stripped) everywhere past the trace layer; these helpers centralise the
conversions so that block size appears in exactly one place per config.
"""

BLOCK_BYTES_DEFAULT = 64
"""Cache block size used throughout the paper's configuration (bytes)."""


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power-of-two ``value``.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def block_of(byte_addr: int, block_bytes: int = BLOCK_BYTES_DEFAULT) -> int:
    """Convert a byte address to its containing block address."""
    return byte_addr // block_bytes


def block_address(byte_addr: int, block_bytes: int = BLOCK_BYTES_DEFAULT) -> int:
    """Alias of :func:`block_of`; reads better at some call sites."""
    return byte_addr // block_bytes


def byte_address(block_addr: int, block_bytes: int = BLOCK_BYTES_DEFAULT) -> int:
    """Convert a block address back to the first byte address it covers."""
    return block_addr * block_bytes
