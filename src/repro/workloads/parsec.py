"""PARSEC application models.

Footprints are expressed in 64-byte blocks *at full scale* (the paper's
4MB-LLC machine has 65,536 LLC block frames) and divided by the generator
scale. The sharing structure of each model follows the published PARSEC
characterizations: blackscholes/swaptions nearly sharing-free, canneal
capacity-bound with diffuse RW sharing, dedup/x264 pipeline sharing,
streamcluster dominated by a read-shared point set, bodytrack task-parallel
with a read-shared model, fluidanimate neighbour sharing plus particle
migration.
"""

from repro.workloads.base import GeneratorContext, WorkloadModel
from repro.workloads.kernels import (
    emit_broadcast,
    emit_halo_exchange,
    emit_lock_hotspot,
    emit_migratory,
    emit_private_hotset,
    emit_private_stream,
    emit_producer_consumer,
    emit_shared_readonly,
    emit_shared_rw_random,
    emit_task_queue,
)


class Blackscholes(WorkloadModel):
    """Embarrassingly parallel option pricing; essentially no sharing."""

    name = "blackscholes"
    suite = "parsec"
    description = "data-parallel option pricing: private streams + tiny shared input"

    def setup(self, ctx: GeneratorContext) -> None:
        options = ctx.regions.allocate("options", ctx.scaled(96 * 1024))
        self.option_parts = options.split(ctx.num_threads)
        self.params = ctx.regions.allocate("params", ctx.scaled(256))
        self.pc_price = ctx.pcs.allocate()
        self.pc_params = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("params", iteration), self.params,
            self.pc_params, accesses_per_thread=32, skew=1.0,
        )
        emit_private_stream(
            ctx.streams, self.option_parts, self.pc_price,
            write_fraction=0.25, rng=ctx.rng.spawn("price", iteration),
        )


class Bodytrack(WorkloadModel):
    """Particle-filter body tracking: shared model, task queue, broadcasts."""

    name = "bodytrack"
    suite = "parsec"
    description = "task-parallel tracking: read-shared body model + work queue"

    def setup(self, ctx: GeneratorContext) -> None:
        self.model = ctx.regions.allocate("bodymodel", ctx.scaled(32 * 1024))
        self.frame = ctx.regions.allocate("frame", ctx.scaled(4 * 1024))
        self.queue = ctx.regions.allocate("queue", ctx.scaled(64))
        self.tasks = ctx.regions.allocate("tasks", ctx.scaled(96 * 1024))
        scratch = ctx.regions.allocate("scratch", ctx.scaled(8 * 1024) * ctx.num_threads)
        self.scratch_parts = scratch.split(ctx.num_threads)
        self.pc_model = ctx.pcs.allocate()
        self.pc_frame_w = ctx.pcs.allocate()
        self.pc_frame_r = ctx.pcs.allocate()
        self.pc_queue = ctx.pcs.allocate()
        self.pc_task = ctx.pcs.allocate()
        self.pc_scratch = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_broadcast(
            ctx.streams, self.frame, writer_tid=0,
            pc_write=self.pc_frame_w, pc_read=self.pc_frame_r,
        )
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("model", iteration), self.model,
            self.pc_model, accesses_per_thread=self.model.num_blocks, skew=1.2,
        )
        emit_task_queue(
            ctx.streams, ctx.rng.spawn("queue", iteration), self.queue,
            self.tasks, self.pc_queue, self.pc_task,
            num_tasks=64 * ctx.num_threads, task_blocks=4,
        )
        emit_private_hotset(
            ctx.streams, ctx.rng.spawn("scratch", iteration), self.scratch_parts,
            self.pc_scratch, accesses_per_thread=1024, skew=1.2,
        )


class Canneal(WorkloadModel):
    """Simulated annealing over a huge netlist: diffuse RW sharing."""

    name = "canneal"
    suite = "parsec"
    description = "capacity-bound random RW access over an 8x-LLC netlist graph"

    def setup(self, ctx: GeneratorContext) -> None:
        self.graph = ctx.regions.allocate("netlist", ctx.scaled(512 * 1024))
        scratch = ctx.regions.allocate("scratch", ctx.scaled(1024) * ctx.num_threads)
        self.scratch_parts = scratch.split(ctx.num_threads)
        self.pc_swap = ctx.pcs.allocate()
        self.pc_scratch = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_shared_rw_random(
            ctx.streams, ctx.rng.spawn("swap", iteration), self.graph,
            self.pc_swap, accesses_per_thread=4096, write_fraction=0.15, skew=1.3,
        )
        emit_private_hotset(
            ctx.streams, ctx.rng.spawn("scratch", iteration), self.scratch_parts,
            self.pc_scratch, accesses_per_thread=128,
        )


class Dedup(WorkloadModel):
    """Pipelined compression: buffer hand-offs plus a global hash table."""

    name = "dedup"
    suite = "parsec"
    description = "pipeline producer-consumer buffers + RW-shared hash table"

    def setup(self, ctx: GeneratorContext) -> None:
        buffers = ctx.regions.allocate("buffers", ctx.scaled(2 * 1024) * ctx.num_threads)
        self.buffer_parts = buffers.split(ctx.num_threads)
        self.hash_table = ctx.regions.allocate("hashtable", ctx.scaled(112 * 1024))
        chunks = ctx.regions.allocate("chunks", ctx.scaled(4 * 1024) * ctx.num_threads)
        self.chunk_parts = chunks.split(ctx.num_threads)
        self.pc_produce = ctx.pcs.allocate()
        self.pc_consume = ctx.pcs.allocate()
        self.pc_hash = ctx.pcs.allocate()
        self.pc_chunk = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_producer_consumer(
            ctx.streams, self.buffer_parts, self.pc_produce, self.pc_consume,
            chunk_blocks=8,
        )
        emit_shared_rw_random(
            ctx.streams, ctx.rng.spawn("hash", iteration), self.hash_table,
            self.pc_hash, accesses_per_thread=1024, write_fraction=0.3, skew=1.1,
        )
        emit_private_hotset(
            ctx.streams, ctx.rng.spawn("chunk", iteration), self.chunk_parts,
            self.pc_chunk, accesses_per_thread=512,
        )


class Fluidanimate(WorkloadModel):
    """SPH fluid simulation: stencil grid plus migrating particles."""

    name = "fluidanimate"
    suite = "parsec"
    description = "halo-exchange grid + migratory particles + cell locks"

    def setup(self, ctx: GeneratorContext) -> None:
        self.grid = ctx.regions.allocate("grid", ctx.scaled(96 * 1024))
        self.particles = ctx.regions.allocate("particles", ctx.scaled(16 * 1024))
        self.locks = ctx.regions.allocate("locks", ctx.scaled(64))
        self.row_blocks = max(4, ctx.scaled(32 * 1024) // 256)
        self.pc_compute = ctx.pcs.allocate()
        self.pc_halo = ctx.pcs.allocate()
        self.pc_migrate = ctx.pcs.allocate()
        self.pc_lock = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_halo_exchange(
            ctx.streams, self.grid, self.row_blocks, self.pc_compute, self.pc_halo,
        )
        emit_migratory(
            ctx.streams, ctx.rng.spawn("migrate", iteration), self.particles,
            self.pc_migrate, items=32 * ctx.num_threads, item_blocks=2, hops=2,
        )
        emit_lock_hotspot(
            ctx.streams, ctx.rng.spawn("locks", iteration), self.locks,
            self.pc_lock, rounds_per_thread=64,
        )


class Streamcluster(WorkloadModel):
    """Online clustering: the whole point set is read-shared every pass."""

    name = "streamcluster"
    suite = "parsec"
    description = "read-shared point set scanned by all threads each phase"

    def setup(self, ctx: GeneratorContext) -> None:
        self.points = ctx.regions.allocate("points", ctx.scaled(112 * 1024))
        self.centers = ctx.regions.allocate("centers", ctx.scaled(1024))
        self.locks = ctx.regions.allocate("locks", ctx.scaled(32))
        scratch = ctx.regions.allocate("scratch", ctx.scaled(8 * 1024) * ctx.num_threads)
        self.scratch_parts = scratch.split(ctx.num_threads)
        self.pc_scratch = ctx.pcs.allocate()
        self.pc_scan = ctx.pcs.allocate()
        self.pc_center_w = ctx.pcs.allocate()
        self.pc_center_r = ctx.pcs.allocate()
        self.pc_lock = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_broadcast(
            ctx.streams, self.centers, writer_tid=iteration % ctx.num_threads,
            pc_write=self.pc_center_w, pc_read=self.pc_center_r,
        )
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("scan", iteration), self.points,
            self.pc_scan, accesses_per_thread=self.points.num_blocks // 2, skew=1.05,
        )
        emit_private_stream(ctx.streams, self.scratch_parts, self.pc_scratch)
        emit_lock_hotspot(
            ctx.streams, ctx.rng.spawn("locks", iteration), self.locks,
            self.pc_lock, rounds_per_thread=32,
        )


class Swaptions(WorkloadModel):
    """Monte-Carlo pricing: per-thread state, near-zero sharing."""

    name = "swaptions"
    suite = "parsec"
    description = "per-thread Monte-Carlo working sets, tiny shared input"

    def setup(self, ctx: GeneratorContext) -> None:
        state = ctx.regions.allocate("mcstate", ctx.scaled(6 * 1024) * ctx.num_threads)
        self.state_parts = state.split(ctx.num_threads)
        self.inputs = ctx.regions.allocate("inputs", ctx.scaled(512))
        self.pc_sim = ctx.pcs.allocate()
        self.pc_input = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("inputs", iteration), self.inputs,
            self.pc_input, accesses_per_thread=16, skew=1.0,
        )
        emit_private_hotset(
            ctx.streams, ctx.rng.spawn("sim", iteration), self.state_parts,
            self.pc_sim, accesses_per_thread=2048, write_fraction=0.35, skew=1.5,
        )


class X264(WorkloadModel):
    """Video encoding: reference frames broadcast, slice-row hand-offs."""

    name = "x264"
    suite = "parsec"
    description = "broadcast reference frames + private current frame + row pipeline"

    def setup(self, ctx: GeneratorContext) -> None:
        self.reference = ctx.regions.allocate("reference", ctx.scaled(80 * 1024))
        current = ctx.regions.allocate("current", ctx.scaled(96 * 1024))
        self.current_parts = current.split(ctx.num_threads)
        rows = ctx.regions.allocate("rows", ctx.scaled(1024) * ctx.num_threads)
        self.row_parts = rows.split(ctx.num_threads)
        self.pc_ref_w = ctx.pcs.allocate()
        self.pc_ref_r = ctx.pcs.allocate()
        self.pc_encode = ctx.pcs.allocate()
        self.pc_row_w = ctx.pcs.allocate()
        self.pc_row_r = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_broadcast(
            ctx.streams, self.reference, writer_tid=iteration % ctx.num_threads,
            pc_write=self.pc_ref_w, pc_read=self.pc_ref_r,
        )
        emit_private_stream(
            ctx.streams, self.current_parts, self.pc_encode,
            write_fraction=0.4, rng=ctx.rng.spawn("encode", iteration),
        )
        emit_producer_consumer(
            ctx.streams, self.row_parts, self.pc_row_w, self.pc_row_r,
            chunk_blocks=4,
        )


class Ferret(WorkloadModel):
    """Content-based image search: deep pipeline over a read-shared database."""

    name = "ferret"
    suite = "parsec"
    description = "pipeline stage hand-offs + read-shared feature database"

    def setup(self, ctx: GeneratorContext) -> None:
        buffers = ctx.regions.allocate("buffers", ctx.scaled(3 * 1024) * ctx.num_threads)
        self.buffer_parts = buffers.split(ctx.num_threads)
        self.database = ctx.regions.allocate("database", ctx.scaled(96 * 1024))
        queries = ctx.regions.allocate("queries", ctx.scaled(2 * 1024) * ctx.num_threads)
        self.query_parts = queries.split(ctx.num_threads)
        self.pc_produce = ctx.pcs.allocate()
        self.pc_consume = ctx.pcs.allocate()
        self.pc_lookup = ctx.pcs.allocate()
        self.pc_query = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_producer_consumer(
            ctx.streams, self.buffer_parts, self.pc_produce, self.pc_consume,
            chunk_blocks=8, hops=2,
        )
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("lookup", iteration), self.database,
            self.pc_lookup, accesses_per_thread=1024, skew=1.2,
        )
        emit_private_hotset(
            ctx.streams, ctx.rng.spawn("query", iteration), self.query_parts,
            self.pc_query, accesses_per_thread=384,
        )


class Facesim(WorkloadModel):
    """Face simulation: mesh stencil plus migratory contact particles."""

    name = "facesim"
    suite = "parsec"
    description = "halo-exchange face mesh + migratory contact nodes"

    def setup(self, ctx: GeneratorContext) -> None:
        self.mesh = ctx.regions.allocate("mesh", ctx.scaled(80 * 1024))
        self.contacts = ctx.regions.allocate("contacts", ctx.scaled(12 * 1024))
        scratch = ctx.regions.allocate("scratch", ctx.scaled(4 * 1024) * ctx.num_threads)
        self.scratch_parts = scratch.split(ctx.num_threads)
        self.row_blocks = max(4, ctx.scaled(40 * 1024) // 256)
        self.pc_compute = ctx.pcs.allocate()
        self.pc_halo = ctx.pcs.allocate()
        self.pc_contact = ctx.pcs.allocate()
        self.pc_scratch = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_halo_exchange(
            ctx.streams, self.mesh, self.row_blocks, self.pc_compute,
            self.pc_halo,
        )
        emit_migratory(
            ctx.streams, ctx.rng.spawn("contact", iteration), self.contacts,
            self.pc_contact, items=24 * ctx.num_threads, item_blocks=2, hops=2,
        )
        emit_private_hotset(
            ctx.streams, ctx.rng.spawn("scratch", iteration), self.scratch_parts,
            self.pc_scratch, accesses_per_thread=256,
        )


PARSEC_MODELS = (
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Streamcluster,
    Swaptions,
    X264,
)
