"""Synthetic multi-threaded workload models.

The paper characterizes applications from PARSEC, SPLASH-2 and SPEC OMP via
pin-collected memory traces. Those binaries/traces are not available here, so
this package provides *application models*: parameterised generators that
reproduce each application's sharing structure — which regions are private,
which are read-only shared, which migrate between threads, how phases repeat
— composed from a small library of reusable sharing kernels. The models are
calibrated by footprint : LLC-capacity ratio and sharing mix, which is what
the paper's analyses are sensitive to.

Use :func:`get_workload` / :func:`iter_workloads` to obtain models and
``model.generate(...)`` to produce a :class:`repro.trace.Trace`.
"""

from repro.workloads.base import GeneratorContext, WorkloadModel
from repro.workloads.multiprogram import MultiprogramMix
from repro.workloads.registry import (
    SUITES,
    get_workload,
    iter_workloads,
    workload_names,
    workloads_in_suite,
)

__all__ = [
    "GeneratorContext",
    "WorkloadModel",
    "MultiprogramMix",
    "SUITES",
    "get_workload",
    "iter_workloads",
    "workload_names",
    "workloads_in_suite",
]
