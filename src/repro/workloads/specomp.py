"""SPEC OMP application models.

Two representative OpenMP HPC codes: equake (sparse FEM earthquake
simulation — partitioned matrix with a read-shared vector) and swim
(shallow-water stencil — large grids with boundary-row sharing).
"""

from repro.workloads.base import GeneratorContext, WorkloadModel
from repro.workloads.kernels import (
    emit_halo_exchange,
    emit_private_stream,
    emit_reduction,
    emit_shared_readonly,
)


class Equake(WorkloadModel):
    """Sparse matrix-vector FEM kernel: private rows, shared vector."""

    name = "equake"
    suite = "specomp"
    description = "partitioned sparse matrix stream + read-shared vector + halo grid"

    def setup(self, ctx: GeneratorContext) -> None:
        matrix = ctx.regions.allocate("matrix", ctx.scaled(96 * 1024))
        self.matrix_parts = matrix.split(ctx.num_threads)
        self.vector = ctx.regions.allocate("vector", ctx.scaled(80 * 1024))
        self.mesh = ctx.regions.allocate("mesh", ctx.scaled(48 * 1024))
        partials = ctx.regions.allocate("partials", ctx.scaled(128) * ctx.num_threads)
        self.partial_parts = partials.split(ctx.num_threads)
        self.row_blocks = max(4, ctx.scaled(48 * 1024) // 512)
        self.pc_matrix = ctx.pcs.allocate()
        self.pc_vector = ctx.pcs.allocate()
        self.pc_compute = ctx.pcs.allocate()
        self.pc_halo = ctx.pcs.allocate()
        self.pc_partial_w = ctx.pcs.allocate()
        self.pc_partial_r = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_private_stream(ctx.streams, self.matrix_parts, self.pc_matrix)
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("vector", iteration), self.vector,
            self.pc_vector, accesses_per_thread=2048, skew=1.4,
        )
        emit_halo_exchange(
            ctx.streams, self.mesh, self.row_blocks, self.pc_compute, self.pc_halo,
        )
        emit_reduction(
            ctx.streams, self.partial_parts, self.pc_partial_w, self.pc_partial_r,
        )


class Swim(WorkloadModel):
    """Shallow-water stencil: three big grids, edge-only sharing."""

    name = "swim"
    suite = "specomp"
    description = "three halo-exchange grids; sharing confined to band edges"

    def setup(self, ctx: GeneratorContext) -> None:
        self.grids = [
            ctx.regions.allocate(f"grid_{label}", ctx.scaled(96 * 1024))
            for label in ("u", "v", "p")
        ]
        self.row_blocks = max(4, ctx.scaled(48 * 1024) // 512)
        self.pc_compute = [ctx.pcs.allocate() for __ in self.grids]
        self.pc_halo = [ctx.pcs.allocate() for __ in self.grids]

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        for grid, pc_compute, pc_halo in zip(self.grids, self.pc_compute, self.pc_halo):
            emit_halo_exchange(ctx.streams, grid, self.row_blocks, pc_compute, pc_halo)


class Applu(WorkloadModel):
    """SSOR solver on a block-structured grid: wavefront halo sharing."""

    name = "applu"
    suite = "specomp"
    description = "two halo-exchange solver grids + read-shared coefficients"

    def setup(self, ctx: GeneratorContext) -> None:
        self.grid_u = ctx.regions.allocate("grid_u", ctx.scaled(80 * 1024))
        self.grid_r = ctx.regions.allocate("grid_r", ctx.scaled(80 * 1024))
        self.coefficients = ctx.regions.allocate("coeffs", ctx.scaled(8 * 1024))
        self.row_blocks = max(4, ctx.scaled(40 * 1024) // 512)
        self.pc_sweep_u = ctx.pcs.allocate()
        self.pc_halo_u = ctx.pcs.allocate()
        self.pc_sweep_r = ctx.pcs.allocate()
        self.pc_halo_r = ctx.pcs.allocate()
        self.pc_coeff = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("coeff", iteration), self.coefficients,
            self.pc_coeff, accesses_per_thread=512, skew=1.5,
        )
        emit_halo_exchange(
            ctx.streams, self.grid_u, self.row_blocks,
            self.pc_sweep_u, self.pc_halo_u,
        )
        emit_halo_exchange(
            ctx.streams, self.grid_r, self.row_blocks,
            self.pc_sweep_r, self.pc_halo_r,
        )


SPECOMP_MODELS = (Applu, Equake, Swim)
