"""Registry of all application models, keyed by name and by suite."""

from typing import Dict, Iterator, List, Tuple

from repro.common.errors import ConfigError
from repro.workloads.base import WorkloadModel
from repro.workloads.parsec import PARSEC_MODELS
from repro.workloads.specomp import SPECOMP_MODELS
from repro.workloads.splash2 import SPLASH2_MODELS

SUITES: Tuple[str, ...] = ("parsec", "splash2", "specomp")
"""The three suites the paper draws applications from."""

_ALL_MODEL_CLASSES = tuple(PARSEC_MODELS) + tuple(SPLASH2_MODELS) + tuple(SPECOMP_MODELS)

_BY_NAME: Dict[str, type] = {cls.name: cls for cls in _ALL_MODEL_CLASSES}

if len(_BY_NAME) != len(_ALL_MODEL_CLASSES):
    raise RuntimeError("duplicate workload model names in registry")


def workload_names() -> List[str]:
    """All model names, suite order then alphabetical within suite."""
    names = []
    for suite in SUITES:
        names.extend(sorted(cls.name for cls in _ALL_MODEL_CLASSES if cls.suite == suite))
    return names


def get_workload(name: str) -> WorkloadModel:
    """Instantiate the model registered under ``name``.

    Raises:
        ConfigError: for an unknown name.
    """
    try:
        cls = _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
    return cls()


def workloads_in_suite(suite: str) -> List[WorkloadModel]:
    """Instantiate every model of one suite.

    Raises:
        ConfigError: for an unknown suite.
    """
    if suite not in SUITES:
        raise ConfigError(f"unknown suite {suite!r}; choose from {SUITES}")
    return [cls() for cls in _ALL_MODEL_CLASSES if cls.suite == suite]


def iter_workloads() -> Iterator[WorkloadModel]:
    """Instantiate every registered model, in :func:`workload_names` order."""
    for name in workload_names():
        yield get_workload(name)
