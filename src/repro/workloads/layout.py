"""Address-space and program-counter layout helpers for workload models.

Each workload model lays out its data structures in a fresh virtual address
space through a :class:`RegionAllocator`, and assigns instruction addresses
to its loops through a :class:`PcAllocator`. Keeping both allocations
explicit makes models collision-free by construction and keeps the mapping
from model code to generated addresses auditable.
"""

from dataclasses import dataclass

from repro.common.addressing import BLOCK_BYTES_DEFAULT
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Region:
    """A block-aligned region of the model's address space.

    Attributes:
        name: label for debugging.
        base_block: first block address of the region.
        num_blocks: region length in blocks.
    """

    name: str
    base_block: int
    num_blocks: int

    def block(self, index: int) -> int:
        """Block address of element ``index`` (wraps modulo the region)."""
        return self.base_block + (index % self.num_blocks)

    def byte_addr(self, index: int, block_bytes: int = BLOCK_BYTES_DEFAULT) -> int:
        """Byte address of block ``index`` within the region."""
        return self.block(index) * block_bytes

    def split(self, pieces: int) -> list:
        """Partition into ``pieces`` contiguous sub-regions (last gets slack)."""
        if pieces <= 0 or pieces > self.num_blocks:
            raise ConfigError(
                f"cannot split region {self.name} of {self.num_blocks} blocks "
                f"into {pieces} pieces"
            )
        quota = self.num_blocks // pieces
        out = []
        for i in range(pieces):
            size = quota if i < pieces - 1 else self.num_blocks - quota * (pieces - 1)
            out.append(
                Region(f"{self.name}[{i}]", self.base_block + i * quota, size)
            )
        return out


class RegionAllocator:
    """Bump allocator handing out disjoint block-aligned regions.

    A guard gap separates consecutive regions so off-by-one indexing bugs in
    kernels surface as assertion failures in tests rather than silent
    cross-region sharing.
    """

    GUARD_BLOCKS = 16

    def __init__(self, base_block: int = 0x1000):
        self._next_block = base_block

    def allocate(self, name: str, num_blocks: int) -> Region:
        """Allocate a fresh region of ``num_blocks`` blocks.

        Raises:
            ConfigError: for a non-positive size.
        """
        if num_blocks <= 0:
            raise ConfigError(f"region {name!r} must have positive size, got {num_blocks}")
        region = Region(name, self._next_block, num_blocks)
        self._next_block += num_blocks + self.GUARD_BLOCKS
        return region


class PcAllocator:
    """Bump allocator for program-counter ranges.

    Each loop (kernel instance) reserves a contiguous PC range; individual
    memory instructions inside the loop are ``base + 4*i``. Sharing one PC
    range across call sites that touch both shared and private data is how
    models reproduce the PC-ambiguity the paper's predictor study exposes.
    """

    def __init__(self, base_pc: int = 0x400000):
        self._next_pc = base_pc

    def allocate(self, num_instructions: int = 8) -> int:
        """Reserve ``num_instructions`` PC slots; returns the base PC."""
        if num_instructions <= 0:
            raise ConfigError(f"PC range must be positive, got {num_instructions}")
        base = self._next_pc
        self._next_pc += 4 * num_instructions
        return base
