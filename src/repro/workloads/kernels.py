"""Reusable sharing kernels.

Each kernel emits one phase-iteration of accesses into per-thread streams
(lists of ``(pc, addr, is_write)`` triples, later interleaved by
``repro.trace.interleave``). Application models compose kernels with
app-specific regions, PCs and weights.

The kernel set covers the sharing idioms of the paper's three suites:

==================  =============================================
Kernel              Idiom it models
==================  =============================================
private_stream      data-parallel streaming over a private range
private_hotset      per-thread working set with high reuse
shared_readonly     read-only table/tree consulted by all threads
shared_rw_random    large RW-shared structure, random access
producer_consumer   pipeline stages handing buffers downstream
migratory           lock-protected records bouncing across threads
halo_exchange       stencil grids with boundary-row sharing
reduction           per-thread partials combined by a tree
lock_hotspot        contended locks / global counters
task_queue          central work queue plus task payloads
broadcast           one writer, many readers (master/worker)
==================  =============================================
"""

from typing import List, Optional, Sequence, Tuple

from repro.common.addressing import BLOCK_BYTES_DEFAULT
from repro.common.rng import DeterministicRng
from repro.workloads.layout import Region

Streams = List[List[Tuple[int, int, bool]]]
"""Per-thread access triples ``(pc, addr, is_write)``; index = thread id."""

_B = BLOCK_BYTES_DEFAULT


def skewed_index(rng: DeterministicRng, n: int, skew: float) -> int:
    """Sample an index in ``[0, n)`` with tunable skew toward low indices.

    ``skew == 1`` is uniform; larger values concentrate probability mass on
    small indices (a cheap stand-in for Zipf-like popularity without a CDF
    table on the hot path).
    """
    if skew == 1.0:
        return rng.randrange(n)
    return min(n - 1, int(n * (rng.random() ** skew)))


def emit_private_stream(
    streams: Streams,
    thread_regions: Sequence[Region],
    pc: int,
    passes: int = 1,
    stride_blocks: int = 1,
    write_fraction: float = 0.0,
    rng: Optional[DeterministicRng] = None,
) -> None:
    """Each thread streams sequentially over its own region.

    Models the per-element loops of data-parallel apps (blackscholes option
    array, x264 current frame). ``write_fraction`` of the touches are stores
    (needs ``rng`` when non-zero).
    """
    for tid, region in enumerate(thread_regions):
        stream = streams[tid]
        base = region.base_block
        for _pass in range(passes):
            for i in range(0, region.num_blocks, stride_blocks):
                is_write = bool(
                    write_fraction and rng is not None and rng.random() < write_fraction
                )
                stream.append((pc, (base + i) * _B, is_write))


def emit_private_hotset(
    streams: Streams,
    rng: DeterministicRng,
    thread_regions: Sequence[Region],
    pc: int,
    accesses_per_thread: int,
    write_fraction: float = 0.2,
    skew: float = 2.0,
) -> None:
    """Each thread hammers random blocks of its own small region.

    Models per-thread scratch data with high temporal locality (swaptions
    Monte-Carlo state, dedup chunk buffers).
    """
    for tid, region in enumerate(thread_regions):
        stream = streams[tid]
        thread_rng = rng.spawn("hotset", tid)
        n = region.num_blocks
        base = region.base_block
        for __ in range(accesses_per_thread):
            block = base + skewed_index(thread_rng, n, skew)
            stream.append((pc, block * _B, thread_rng.random() < write_fraction))


def emit_shared_readonly(
    streams: Streams,
    rng: DeterministicRng,
    region: Region,
    pc: int,
    accesses_per_thread: int,
    skew: float = 1.5,
    threads: Optional[Sequence[int]] = None,
) -> None:
    """All (or the given) threads read random blocks of one shared region.

    Models read-only shared structures: streamcluster's point set, barnes'
    octree, bodytrack's body model.
    """
    for tid in threads if threads is not None else range(len(streams)):
        stream = streams[tid]
        thread_rng = rng.spawn("ro", tid)
        n = region.num_blocks
        base = region.base_block
        for __ in range(accesses_per_thread):
            block = base + skewed_index(thread_rng, n, skew)
            stream.append((pc, block * _B, False))


def emit_shared_rw_random(
    streams: Streams,
    rng: DeterministicRng,
    region: Region,
    pc: int,
    accesses_per_thread: int,
    write_fraction: float = 0.1,
    skew: float = 1.0,
) -> None:
    """All threads randomly read/write one large shared region.

    Models canneal's netlist graph and dedup's global hash table: capacity-
    stressing, low-locality, read-write shared access.
    """
    for tid in range(len(streams)):
        stream = streams[tid]
        thread_rng = rng.spawn("rw", tid)
        n = region.num_blocks
        base = region.base_block
        for __ in range(accesses_per_thread):
            block = base + skewed_index(thread_rng, n, skew)
            stream.append((pc, block * _B, thread_rng.random() < write_fraction))


def emit_producer_consumer(
    streams: Streams,
    buffers: Sequence[Region],
    pc_produce: int,
    pc_consume: int,
    chunk_blocks: int = 8,
    hops: int = 1,
) -> None:
    """Pipeline hand-off: thread ``t`` fills buffer ``t``; thread
    ``(t + hop) % n`` drains it, for ``hop`` in ``1..hops``.

    Models dedup/ferret pipeline stages and x264 slice dependences. Producer
    writes appear in the producer's stream before the consumer's reads, and
    the interleaver preserves per-thread order, so consumers observe
    recently produced (LLC-resident) data — the constructive sharing the
    paper's oracle protects.
    """
    num_threads = len(streams)
    for tid, buffer in enumerate(buffers):
        producer = streams[tid]
        for chunk_start in range(0, buffer.num_blocks, chunk_blocks):
            end = min(chunk_start + chunk_blocks, buffer.num_blocks)
            for i in range(chunk_start, end):
                producer.append((pc_produce, buffer.block(i) * _B, True))
    for tid, buffer in enumerate(buffers):
        for hop in range(1, hops + 1):
            consumer = streams[(tid + hop) % num_threads]
            for i in range(buffer.num_blocks):
                consumer.append((pc_consume, buffer.block(i) * _B, False))


def emit_migratory(
    streams: Streams,
    rng: DeterministicRng,
    region: Region,
    pc: int,
    items: int,
    item_blocks: int = 2,
    hops: int = 3,
    rmw_repeats: int = 2,
) -> None:
    """Records visited read-modify-write by a random chain of threads.

    Models lock-protected shared records (water molecule updates,
    fluidanimate particles crossing cell ownership). Each hop reads then
    writes every block of the item, so successive owners' private copies are
    invalidated and the traffic lands at the LLC.
    """
    num_threads = len(streams)
    slots = max(1, region.num_blocks // item_blocks)
    for item in range(items):
        slot = rng.randrange(slots)
        first = rng.randrange(num_threads)
        tid = first
        for __ in range(hops):
            stream = streams[tid]
            for rep in range(rmw_repeats):
                for b in range(item_blocks):
                    addr = region.block(slot * item_blocks + b) * _B
                    stream.append((pc, addr, False))
                    stream.append((pc, addr, True))
            next_tid = rng.randrange(num_threads)
            if num_threads > 1 and next_tid == tid:
                next_tid = (tid + 1) % num_threads
            tid = next_tid


def emit_halo_exchange(
    streams: Streams,
    grid: Region,
    row_blocks: int,
    pc_compute: int,
    pc_halo: int,
    sweeps: int = 1,
) -> None:
    """One stencil sweep over a row-partitioned grid.

    The grid is split into contiguous bands of rows, one band per thread.
    Each sweep a thread reads and writes its own rows (private traffic) and
    reads the rows adjacent to its band boundaries, owned by its neighbours
    (pair-shared traffic). Models ocean, swim, equake and the grid phase of
    fluidanimate. Note the compute PC touches only private data while the
    halo PC touches only shared data — stencil codes are the *favourable*
    case for PC-indexed sharing predictors, which the models deliberately
    mix with ambiguous-PC kernels elsewhere.
    """
    num_threads = len(streams)
    total_rows = grid.num_blocks // row_blocks
    rows_per_thread = max(1, total_rows // num_threads)

    def row_addrs(row: int):
        start = row * row_blocks
        return [grid.block(start + b) * _B for b in range(row_blocks)]

    for __ in range(sweeps):
        for tid in range(num_threads):
            stream = streams[tid]
            first_row = tid * rows_per_thread
            last_row = min(total_rows, first_row + rows_per_thread) - 1
            if first_row > last_row:
                continue
            # Halo reads: neighbour rows just outside the band.
            if first_row > 0:
                for addr in row_addrs(first_row - 1):
                    stream.append((pc_halo, addr, False))
            if last_row < total_rows - 1:
                for addr in row_addrs(last_row + 1):
                    stream.append((pc_halo, addr, False))
            # Interior compute: read then write own rows.
            for row in range(first_row, last_row + 1):
                for addr in row_addrs(row):
                    stream.append((pc_compute, addr, False))
                    stream.append((pc_compute, addr, True))


def emit_reduction(
    streams: Streams,
    partials: Sequence[Region],
    pc_write: int,
    pc_combine: int,
) -> None:
    """Tree reduction over per-thread partial-result arrays.

    Each thread writes its own partial region, then a binary combining tree
    has thread ``t`` read the partials of thread ``t + stride`` for doubling
    strides — producer-consumer sharing with a deterministic pairing.
    """
    num_threads = len(streams)
    for tid, region in enumerate(partials):
        stream = streams[tid]
        for i in range(region.num_blocks):
            stream.append((pc_write, region.block(i) * _B, True))
    stride = 1
    while stride < num_threads:
        for tid in range(0, num_threads - stride, 2 * stride):
            reader = streams[tid]
            source = partials[tid + stride]
            for i in range(source.num_blocks):
                reader.append((pc_combine, source.block(i) * _B, False))
            mine = partials[tid]
            for i in range(mine.num_blocks):
                reader.append((pc_combine, mine.block(i) * _B, True))
        stride *= 2


def emit_lock_hotspot(
    streams: Streams,
    rng: DeterministicRng,
    region: Region,
    pc: int,
    rounds_per_thread: int,
) -> None:
    """All threads repeatedly read-modify-write a few hot blocks.

    Models contended locks and global counters: the highest-degree,
    highest-frequency sharing in the models.
    """
    for tid in range(len(streams)):
        stream = streams[tid]
        thread_rng = rng.spawn("lock", tid)
        for __ in range(rounds_per_thread):
            addr = region.block(thread_rng.randrange(region.num_blocks)) * _B
            stream.append((pc, addr, False))
            stream.append((pc, addr, True))


def emit_task_queue(
    streams: Streams,
    rng: DeterministicRng,
    queue: Region,
    tasks: Region,
    pc_queue: int,
    pc_task: int,
    num_tasks: int,
    task_blocks: int = 4,
    task_write_fraction: float = 0.3,
) -> None:
    """Central work queue: dequeue (RMW on queue blocks) then process a task.

    Task payloads live in ``tasks`` and each is processed by a random thread,
    so over time payload blocks are touched by multiple threads (loose
    migratory sharing); the queue head blocks are hammered by everyone.
    Models bodytrack's and radiosity's dynamic load balancing.
    """
    slots = max(1, tasks.num_blocks // task_blocks)
    for task in range(num_tasks):
        tid = rng.randrange(len(streams))
        stream = streams[tid]
        head = queue.block(task % queue.num_blocks) * _B
        stream.append((pc_queue, head, False))
        stream.append((pc_queue, head, True))
        slot = rng.randrange(slots)
        for b in range(task_blocks):
            addr = tasks.block(slot * task_blocks + b) * _B
            stream.append((pc_task, addr, False))
            if rng.random() < task_write_fraction:
                stream.append((pc_task, addr, True))


def emit_broadcast(
    streams: Streams,
    region: Region,
    writer_tid: int,
    pc_write: int,
    pc_read: int,
    reader_passes: int = 1,
) -> None:
    """One thread writes a region; every other thread then reads it.

    Models master-prepared data consumed by workers (x264 reference frames,
    bodytrack per-frame observations).
    """
    writer = streams[writer_tid]
    for i in range(region.num_blocks):
        writer.append((pc_write, region.block(i) * _B, True))
    for tid in range(len(streams)):
        if tid == writer_tid:
            continue
        stream = streams[tid]
        for __ in range(reader_passes):
            for i in range(region.num_blocks):
                stream.append((pc_read, region.block(i) * _B, False))
