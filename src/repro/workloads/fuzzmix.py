"""Randomized sharing-kernel mixes for the scenario fuzzing fleet.

A :class:`FuzzKernelMixModel` is a :class:`~repro.workloads.base.WorkloadModel`
assembled at runtime from a JSON-able *spec* instead of being hand-written
like the PARSEC/SPLASH-2/SPEC-OMP models: the spec lists kernel instances
(drawn from :mod:`repro.workloads.kernels`), their parameters, and a phase
schedule (each instance fires on ``iteration % period == offset``). Specs
come from :func:`sample_kernel_mix`, which draws every parameter from a
:class:`~repro.common.rng.DeterministicRng`, so a whole scenario is
reproducible bit-for-bit from its seed — the property the fuzzing harness
(:mod:`repro.sim.fuzz`) and the shared test-strategy library
(``tests/strategies.py``) both build on.

Footprints in a spec are *absolute block counts* (not full-scale counts to
be divided like the suite models use): the sampler sizes them relative to
the scenario machine's LLC so capacity pressure spans under-fitting to
many-times-over-capacity mixes. Generate with ``scale=1``.
"""

from typing import Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.workloads.base import GeneratorContext, WorkloadModel
from repro.workloads.kernels import (
    emit_broadcast,
    emit_halo_exchange,
    emit_lock_hotspot,
    emit_migratory,
    emit_private_hotset,
    emit_private_stream,
    emit_producer_consumer,
    emit_reduction,
    emit_shared_readonly,
    emit_shared_rw_random,
    emit_task_queue,
)

KERNEL_NAMES: Tuple[str, ...] = (
    "private_stream",
    "private_hotset",
    "shared_readonly",
    "shared_rw_random",
    "producer_consumer",
    "migratory",
    "halo_exchange",
    "reduction",
    "lock_hotspot",
    "task_queue",
    "broadcast",
)
"""The sharing-kernel vocabulary the sampler draws from (one entry per
``emit_*`` kernel in :mod:`repro.workloads.kernels`)."""

MAX_MIX_KERNELS = 5
"""Largest kernel count one sampled mix composes."""

MIN_MIX_KERNELS = 2
"""Smallest kernel count one sampled mix composes."""

SPEC_FORMAT_VERSION = 1
"""Bump when the sampled-spec shape changes (specs land in corpora)."""


def _blocks(rng: DeterministicRng, lo: int, hi: int) -> int:
    """A region size in blocks, never below the allocator minimum."""
    lo = max(4, lo)
    hi = max(lo, hi)
    return rng.randint(lo, hi)


def sample_kernel_mix(
    rng: DeterministicRng, llc_blocks: int, num_threads: int
) -> Dict:
    """Draw one kernel-mix spec sized against an ``llc_blocks``-frame LLC.

    Every parameter comes from ``rng`` — same seed, same spec, on any
    machine. Footprints span roughly an eighth of the LLC to several times
    its capacity, which is the region of scenario space where policy
    orderings are known to move (thrash-vs-reuse transitions). The first
    kernel always has ``period == 1`` so every phase emits accesses (a
    :class:`~repro.workloads.base.WorkloadModel` contract).
    """
    if llc_blocks < 8:
        raise ConfigError(f"llc_blocks must be >= 8, got {llc_blocks}")
    if num_threads < 1:
        raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
    count = rng.randint(MIN_MIX_KERNELS, MAX_MIX_KERNELS)
    kernels: List[Dict] = []
    for index in range(count):
        kernel = rng.choice(KERNEL_NAMES)
        period = 1 if index == 0 else rng.choice((1, 1, 2, 3))
        entry: Dict = {
            "kernel": kernel,
            "period": period,
            "offset": 0 if period == 1 else rng.randrange(period),
        }
        per_thread = max(1, llc_blocks // num_threads)
        if kernel == "private_stream":
            entry.update(
                blocks_per_thread=_blocks(rng, per_thread // 4, per_thread),
                stride=rng.choice((1, 1, 2)),
                write_fraction=round(rng.uniform(0.0, 0.4), 3),
            )
        elif kernel == "private_hotset":
            entry.update(
                blocks_per_thread=_blocks(rng, per_thread // 8, per_thread // 2),
                accesses_per_thread=rng.randint(128, 768),
                write_fraction=round(rng.uniform(0.0, 0.5), 3),
                skew=round(rng.uniform(1.0, 3.0), 3),
            )
        elif kernel == "shared_readonly":
            entry.update(
                blocks=_blocks(rng, llc_blocks // 8, llc_blocks * 2),
                accesses_per_thread=rng.randint(128, 768),
                skew=round(rng.uniform(1.0, 2.5), 3),
            )
        elif kernel == "shared_rw_random":
            entry.update(
                blocks=_blocks(rng, llc_blocks // 4, llc_blocks * 4),
                accesses_per_thread=rng.randint(128, 768),
                write_fraction=round(rng.uniform(0.0, 0.3), 3),
                skew=round(rng.uniform(1.0, 2.0), 3),
            )
        elif kernel == "producer_consumer":
            entry.update(
                blocks_per_thread=_blocks(rng, 8, max(8, per_thread // 2)),
                chunk_blocks=rng.choice((4, 8, 16)),
                hops=1 if num_threads < 3 else rng.randint(1, 2),
            )
        elif kernel == "migratory":
            entry.update(
                blocks=_blocks(rng, 32, max(32, llc_blocks // 2)),
                items=rng.randint(16, 96),
                item_blocks=rng.choice((1, 2, 4)),
                hops=rng.randint(2, 4),
            )
        elif kernel == "halo_exchange":
            entry.update(
                row_blocks=rng.choice((4, 8, 16)),
                rows_per_thread=rng.randint(2, 6),
                sweeps=1,
            )
        elif kernel == "reduction":
            entry.update(
                blocks_per_thread=_blocks(rng, 8, max(8, per_thread // 4)),
            )
        elif kernel == "lock_hotspot":
            entry.update(
                blocks=rng.randint(1, 8),
                rounds_per_thread=rng.randint(64, 384),
            )
        elif kernel == "task_queue":
            entry.update(
                queue_blocks=rng.randint(4, 32),
                task_region_blocks=_blocks(rng, 64, max(64, llc_blocks)),
                num_tasks=rng.randint(32, 192),
                task_blocks=rng.choice((2, 4, 8)),
                task_write_fraction=round(rng.uniform(0.0, 0.5), 3),
            )
        elif kernel == "broadcast":
            entry.update(
                blocks=_blocks(rng, 16, max(16, llc_blocks // 2)),
                reader_passes=rng.randint(1, 2),
            )
        else:  # pragma: no cover - KERNEL_NAMES and this table move together
            raise ConfigError(f"unsampled kernel {kernel!r}")
        kernels.append(entry)
    return {
        "format_version": SPEC_FORMAT_VERSION,
        "llc_blocks": llc_blocks,
        "kernels": kernels,
    }


class FuzzKernelMixModel(WorkloadModel):
    """A workload model driven by a sampled kernel-mix spec.

    Unlike the suite models, footprints in the spec are absolute (the
    sampler already sized them against the scenario LLC), so
    :meth:`~repro.workloads.base.WorkloadModel.generate` should be called
    with ``scale=1``.
    """

    suite = "fuzz"

    def __init__(self, spec: Dict, name: str = "fuzzmix"):
        if "kernels" not in spec or not spec["kernels"]:
            raise ConfigError("kernel-mix spec has no kernels")
        self.spec = spec
        self.name = name
        self.description = "sampled mix: " + "+".join(
            entry["kernel"] for entry in spec["kernels"]
        )

    def setup(self, ctx: GeneratorContext) -> None:
        self._instances = []
        for index, entry in enumerate(self.spec["kernels"]):
            binder = _SETUP[entry["kernel"]]
            self._instances.append((entry, binder(ctx, entry, index)))

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        for entry, state in self._instances:
            if iteration % entry["period"] != entry["offset"]:
                continue
            _EMIT[entry["kernel"]](ctx, entry, state, iteration)


# ----------------------------------------------------------------------
# Per-kernel setup (region/PC allocation) and emit adapters
# ----------------------------------------------------------------------

def _setup_per_thread(ctx, entry, index):
    region = ctx.regions.allocate(
        f"k{index}", entry["blocks_per_thread"] * ctx.num_threads
    )
    return {"parts": region.split(ctx.num_threads), "pc": ctx.pcs.allocate()}


def _setup_shared(ctx, entry, index):
    return {
        "region": ctx.regions.allocate(f"k{index}", entry["blocks"]),
        "pc": ctx.pcs.allocate(),
    }


def _setup_two_pc_shared(ctx, entry, index):
    state = _setup_shared(ctx, entry, index)
    state["pc2"] = ctx.pcs.allocate()
    return state


def _setup_halo(ctx, entry, index):
    rows = entry["rows_per_thread"] * ctx.num_threads
    grid = ctx.regions.allocate(f"k{index}", rows * entry["row_blocks"])
    return {
        "grid": grid,
        "pc_compute": ctx.pcs.allocate(),
        "pc_halo": ctx.pcs.allocate(),
    }


def _setup_two_pc_per_thread(ctx, entry, index):
    state = _setup_per_thread(ctx, entry, index)
    state["pc2"] = ctx.pcs.allocate()
    return state


def _setup_task_queue(ctx, entry, index):
    return {
        "queue": ctx.regions.allocate(f"k{index}q", entry["queue_blocks"]),
        "tasks": ctx.regions.allocate(f"k{index}t", entry["task_region_blocks"]),
        "pc_queue": ctx.pcs.allocate(),
        "pc_task": ctx.pcs.allocate(),
    }


_SETUP = {
    "private_stream": _setup_per_thread,
    "private_hotset": _setup_per_thread,
    "shared_readonly": _setup_shared,
    "shared_rw_random": _setup_shared,
    "producer_consumer": _setup_two_pc_per_thread,
    "migratory": _setup_shared,
    "halo_exchange": _setup_halo,
    "reduction": _setup_two_pc_per_thread,
    "lock_hotspot": _setup_shared,
    "task_queue": _setup_task_queue,
    "broadcast": _setup_two_pc_shared,
}


def _emit_private_stream(ctx, entry, state, iteration):
    emit_private_stream(
        ctx.streams, state["parts"], state["pc"], stride_blocks=entry["stride"],
        write_fraction=entry["write_fraction"],
        rng=ctx.rng.spawn("ps", iteration),
    )


def _emit_private_hotset(ctx, entry, state, iteration):
    emit_private_hotset(
        ctx.streams, ctx.rng.spawn("ph", iteration), state["parts"],
        state["pc"], accesses_per_thread=entry["accesses_per_thread"],
        write_fraction=entry["write_fraction"], skew=entry["skew"],
    )


def _emit_shared_readonly(ctx, entry, state, iteration):
    emit_shared_readonly(
        ctx.streams, ctx.rng.spawn("ro", iteration), state["region"],
        state["pc"], accesses_per_thread=entry["accesses_per_thread"],
        skew=entry["skew"],
    )


def _emit_shared_rw_random(ctx, entry, state, iteration):
    emit_shared_rw_random(
        ctx.streams, ctx.rng.spawn("rw", iteration), state["region"],
        state["pc"], accesses_per_thread=entry["accesses_per_thread"],
        write_fraction=entry["write_fraction"], skew=entry["skew"],
    )


def _emit_producer_consumer(ctx, entry, state, iteration):
    emit_producer_consumer(
        ctx.streams, state["parts"], state["pc"], state["pc2"],
        chunk_blocks=entry["chunk_blocks"], hops=entry["hops"],
    )


def _emit_migratory(ctx, entry, state, iteration):
    emit_migratory(
        ctx.streams, ctx.rng.spawn("mig", iteration), state["region"],
        state["pc"], items=entry["items"], item_blocks=entry["item_blocks"],
        hops=entry["hops"],
    )


def _emit_halo_exchange(ctx, entry, state, iteration):
    emit_halo_exchange(
        ctx.streams, state["grid"], entry["row_blocks"],
        state["pc_compute"], state["pc_halo"], sweeps=entry["sweeps"],
    )


def _emit_reduction(ctx, entry, state, iteration):
    emit_reduction(ctx.streams, state["parts"], state["pc"], state["pc2"])


def _emit_lock_hotspot(ctx, entry, state, iteration):
    emit_lock_hotspot(
        ctx.streams, ctx.rng.spawn("lk", iteration), state["region"],
        state["pc"], rounds_per_thread=entry["rounds_per_thread"],
    )


def _emit_task_queue(ctx, entry, state, iteration):
    emit_task_queue(
        ctx.streams, ctx.rng.spawn("tq", iteration), state["queue"],
        state["tasks"], state["pc_queue"], state["pc_task"],
        num_tasks=entry["num_tasks"], task_blocks=entry["task_blocks"],
        task_write_fraction=entry["task_write_fraction"],
    )


def _emit_broadcast(ctx, entry, state, iteration):
    emit_broadcast(
        ctx.streams, state["region"], writer_tid=0,
        pc_write=state["pc"], pc_read=state["pc2"],
        reader_passes=entry["reader_passes"],
    )


_EMIT = {
    "private_stream": _emit_private_stream,
    "private_hotset": _emit_private_hotset,
    "shared_readonly": _emit_shared_readonly,
    "shared_rw_random": _emit_shared_rw_random,
    "producer_consumer": _emit_producer_consumer,
    "migratory": _emit_migratory,
    "halo_exchange": _emit_halo_exchange,
    "reduction": _emit_reduction,
    "lock_hotspot": _emit_lock_hotspot,
    "task_queue": _emit_task_queue,
    "broadcast": _emit_broadcast,
}
