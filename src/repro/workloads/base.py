"""Workload model framework.

A :class:`WorkloadModel` owns an application's *structure*: which regions it
allocates, which kernels run in each phase, and how phases repeat. The
framework owns everything mechanical: deterministic seeding, footprint
scaling, phase iteration until the access budget is met, interleaving, and
trace naming.
"""

from abc import ABC, abstractmethod
from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng, derive_seed
from repro.trace.interleave import interleave_streams
from repro.trace.trace import Trace
from repro.workloads.layout import PcAllocator, RegionAllocator


class GeneratorContext:
    """Mutable state threaded through a model's setup and phase methods.

    Attributes:
        num_threads: thread count of the generated application.
        scale: capacity divisor matching the simulated machine's scale; the
            model's full-size footprints are divided by this.
        rng: deterministic RNG for the whole generation.
        regions: address-space allocator.
        pcs: program-counter allocator.
        streams: per-thread access triples being accumulated.
    """

    MIN_REGION_BLOCKS = 4

    def __init__(self, num_threads: int, scale: int, seed: int):
        if num_threads <= 0:
            raise ConfigError(f"num_threads must be positive, got {num_threads}")
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        self.num_threads = num_threads
        self.scale = scale
        self.rng = DeterministicRng(seed)
        self.regions = RegionAllocator()
        self.pcs = PcAllocator()
        self.streams: List[List[Tuple[int, int, bool]]] = [
            [] for __ in range(num_threads)
        ]

    def scaled(self, full_size_blocks: int) -> int:
        """Scale a full-size footprint (in blocks) down by ``self.scale``."""
        return max(self.MIN_REGION_BLOCKS, full_size_blocks // self.scale)

    def total_emitted(self) -> int:
        """Accesses emitted so far across all threads."""
        return sum(len(stream) for stream in self.streams)


class WorkloadModel(ABC):
    """Base class of all application models.

    Subclasses set :attr:`name`, :attr:`suite`, :attr:`description` and
    implement :meth:`setup` (allocate regions and PCs once) and
    :meth:`phase` (emit one outer-loop iteration of the application).
    """

    name: str = ""
    suite: str = ""
    description: str = ""

    MAX_PHASES = 10_000

    @abstractmethod
    def setup(self, ctx: GeneratorContext) -> None:
        """Allocate this model's regions and PC ranges into ``ctx``."""

    @abstractmethod
    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        """Emit one phase iteration of accesses into ``ctx.streams``."""

    def generate(
        self,
        num_threads: int = 8,
        scale: int = 16,
        target_accesses: int = 400_000,
        seed: int = 0,
        min_burst: int = 8,
        max_burst: int = 64,
    ) -> Trace:
        """Produce a globally interleaved trace of roughly ``target_accesses``.

        Phases repeat until the budget is met, then the interleaved trace is
        truncated to exactly ``target_accesses`` (or fewer only if a single
        phase emits nothing, which is a model bug and raises).

        Args:
            num_threads: application thread count.
            scale: footprint divisor; match the machine profile's scale.
            target_accesses: total access budget.
            seed: base seed; the model name is mixed in so different apps get
                independent streams from the same seed.
            min_burst: interleaver minimum burst.
            max_burst: interleaver maximum burst.
        """
        if target_accesses <= 0:
            raise ConfigError(f"target_accesses must be positive, got {target_accesses}")
        ctx = GeneratorContext(
            num_threads=num_threads,
            scale=scale,
            seed=derive_seed(seed, "workload", self.name),
        )
        self.setup(ctx)
        iteration = 0
        while ctx.total_emitted() < target_accesses:
            before = ctx.total_emitted()
            self.phase(ctx, iteration)
            if ctx.total_emitted() == before:
                raise ConfigError(
                    f"model {self.name!r} phase {iteration} emitted no accesses"
                )
            iteration += 1
            if iteration > self.MAX_PHASES:
                raise ConfigError(
                    f"model {self.name!r} exceeded {self.MAX_PHASES} phases "
                    f"without reaching the access budget"
                )
        trace = interleave_streams(
            ctx.streams,
            rng=ctx.rng.spawn("interleave"),
            min_burst=min_burst,
            max_burst=max_burst,
            name=f"{self.name}.t{num_threads}.s{scale}.n{target_accesses}.seed{seed}",
        )
        return trace.slice(0, target_accesses)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, suite={self.suite!r})"
