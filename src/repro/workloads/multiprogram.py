"""Multi-programmed workload composition.

The paper's framing: prior LLC-management proposals target *multi-programmed*
workloads — independent applications co-scheduled on disjoint cores, where
all interference is destructive and there is no constructive cross-thread
sharing at all. :class:`MultiprogramMix` builds exactly that substrate from
any set of application models: each component runs its (scaled-down) thread
count on its own core range within its own address-space slice, so the
shared LLC sees competing but non-overlapping block streams.

Contrasting the sharing oracle on a mix against the multi-threaded originals
(bench F10) demonstrates the paper's point in reverse: sharing-awareness has
nothing to offer where there is no cross-core sharing.
"""

from typing import List, Sequence

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.trace.interleave import interleave_streams
from repro.trace.trace import Trace
from repro.workloads.base import WorkloadModel
from repro.workloads.registry import get_workload

ADDRESS_SLICE_BLOCKS = 1 << 34
"""Address-space slice per component (block addresses), far above any
model's footprint so components can never alias."""


class MultiprogramMix:
    """Co-schedules several application models on disjoint cores.

    Cores are split evenly across the components (the last component
    receives any slack). Each component's trace is generated independently
    with its own derived seed and then rebased: thread ids shifted onto the
    component's core range, block addresses offset into its address slice.
    """

    def __init__(self, component_names: Sequence[str]):
        if len(component_names) < 2:
            raise ConfigError("a multiprogram mix needs at least 2 components")
        self.component_names = list(component_names)
        self.models: List[WorkloadModel] = [
            get_workload(name) for name in component_names
        ]
        self.name = "mix(" + "+".join(component_names) + ")"

    def generate(
        self,
        num_threads: int = 8,
        scale: int = 16,
        target_accesses: int = 400_000,
        seed: int = 0,
        min_burst: int = 8,
        max_burst: int = 64,
    ) -> Trace:
        """Produce the interleaved multi-programmed trace.

        Matches :meth:`repro.workloads.WorkloadModel.generate` so mixes are
        drop-in replacements for single models.
        """
        num_components = len(self.models)
        if num_threads < num_components:
            raise ConfigError(
                f"{num_threads} cores cannot host {num_components} programs"
            )
        per_component = num_threads // num_components
        budget = target_accesses // num_components

        streams: List[list] = [[] for __ in range(num_threads)]
        for index, model in enumerate(self.models):
            threads = (
                per_component
                if index < num_components - 1
                else num_threads - per_component * (num_components - 1)
            )
            component_trace = model.generate(
                num_threads=threads,
                scale=scale,
                target_accesses=budget,
                seed=derive_seed(seed, "mix", index, model.name),
                min_burst=min_burst,
                max_burst=max_burst,
            )
            core_base = index * per_component
            addr_offset = index * ADDRESS_SLICE_BLOCKS * 64
            tids, pcs, addrs, writes = component_trace.columns()
            for i in range(len(tids)):
                streams[core_base + tids[i]].append(
                    (pcs[i], addrs[i] + addr_offset, writes[i] != 0)
                )

        from repro.common.rng import DeterministicRng

        trace = interleave_streams(
            streams,
            rng=DeterministicRng(derive_seed(seed, "mix-interleave", self.name)),
            min_burst=min_burst,
            max_burst=max_burst,
            name=f"{self.name}.t{num_threads}.s{scale}.n{target_accesses}.seed{seed}",
        )
        return trace.slice(0, min(len(trace), target_accesses))
