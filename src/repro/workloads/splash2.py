"""SPLASH-2 application models.

Same conventions as ``repro.workloads.parsec``: footprints are in 64-byte
blocks at full scale. The models follow the classic SPLASH-2 sharing
characterizations: barnes/fmm read-share a tree and migrate body records,
ocean is a pure stencil code, radix alternates private histogramming with an
all-to-all permutation, water migrates molecule records under pairwise
force reads.
"""

from repro.workloads.base import GeneratorContext, WorkloadModel
from repro.workloads.kernels import (
    emit_halo_exchange,
    emit_lock_hotspot,
    emit_migratory,
    emit_private_hotset,
    emit_private_stream,
    emit_reduction,
    emit_shared_readonly,
)


class Barnes(WorkloadModel):
    """Barnes-Hut N-body: read-shared octree plus migrating bodies."""

    name = "barnes"
    suite = "splash2"
    description = "read-shared octree traversals + migratory body records"

    def setup(self, ctx: GeneratorContext) -> None:
        self.tree = ctx.regions.allocate("octree", ctx.scaled(112 * 1024))
        self.bodies = ctx.regions.allocate("bodies", ctx.scaled(64 * 1024))
        partials = ctx.regions.allocate("partials", ctx.scaled(128) * ctx.num_threads)
        self.partial_parts = partials.split(ctx.num_threads)
        scratch = ctx.regions.allocate("scratch", ctx.scaled(64 * 1024))
        self.scratch_parts = scratch.split(ctx.num_threads)
        self.pc_scratch = ctx.pcs.allocate()
        self.pc_walk = ctx.pcs.allocate()
        self.pc_body = ctx.pcs.allocate()
        self.pc_partial_w = ctx.pcs.allocate()
        self.pc_partial_r = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("walk", iteration), self.tree,
            self.pc_walk, accesses_per_thread=2048, skew=1.2,
        )
        emit_migratory(
            ctx.streams, ctx.rng.spawn("bodies", iteration), self.bodies,
            self.pc_body, items=24 * ctx.num_threads, item_blocks=2, hops=2,
        )
        emit_private_stream(ctx.streams, self.scratch_parts, self.pc_scratch)
        emit_reduction(
            ctx.streams, self.partial_parts, self.pc_partial_w, self.pc_partial_r,
        )


class Fmm(WorkloadModel):
    """Fast multipole method: shared tree plus pair-interaction lists."""

    name = "fmm"
    suite = "splash2"
    description = "read-shared multipole tree + pairwise interaction cells"

    def setup(self, ctx: GeneratorContext) -> None:
        self.tree = ctx.regions.allocate("mtree", ctx.scaled(96 * 1024))
        self.cells = ctx.regions.allocate("cells", ctx.scaled(32 * 1024))
        scratch = ctx.regions.allocate("scratch", ctx.scaled(64 * 1024))
        self.scratch_parts = scratch.split(ctx.num_threads)
        self.pc_tree = ctx.pcs.allocate()
        self.pc_cell = ctx.pcs.allocate()
        self.pc_scratch = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("tree", iteration), self.tree,
            self.pc_tree, accesses_per_thread=1536, skew=1.2,
        )
        emit_migratory(
            ctx.streams, ctx.rng.spawn("cells", iteration), self.cells,
            self.pc_cell, items=16 * ctx.num_threads, item_blocks=4,
            hops=2, rmw_repeats=1,
        )
        emit_private_stream(ctx.streams, self.scratch_parts, self.pc_scratch)


class Ocean(WorkloadModel):
    """Ocean current simulation: multigrid stencils, boundary sharing only."""

    name = "ocean"
    suite = "splash2"
    description = "two large halo-exchange grids; sharing confined to band edges"

    def setup(self, ctx: GeneratorContext) -> None:
        self.grid_a = ctx.regions.allocate("grid_a", ctx.scaled(128 * 1024))
        self.grid_b = ctx.regions.allocate("grid_b", ctx.scaled(128 * 1024))
        self.row_blocks = max(4, ctx.scaled(64 * 1024) // 512)
        self.pc_compute_a = ctx.pcs.allocate()
        self.pc_halo_a = ctx.pcs.allocate()
        self.pc_compute_b = ctx.pcs.allocate()
        self.pc_halo_b = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_halo_exchange(
            ctx.streams, self.grid_a, self.row_blocks,
            self.pc_compute_a, self.pc_halo_a,
        )
        emit_halo_exchange(
            ctx.streams, self.grid_b, self.row_blocks,
            self.pc_compute_b, self.pc_halo_b,
        )


class Radix(WorkloadModel):
    """Radix sort: private histogram pass, then all-to-all permutation.

    The permutation writes each destination partition from many source
    threads, and the next iteration's read pass consumes the permuted data —
    cross-phase producer-consumer sharing over the full key array.
    """

    name = "radix"
    suite = "splash2"
    description = "private histogram + all-to-all permutation over shared keys"

    def setup(self, ctx: GeneratorContext) -> None:
        keys = ctx.regions.allocate("keys", ctx.scaled(80 * 1024))
        self.keys = keys
        self.key_parts = keys.split(ctx.num_threads)
        self.dest = ctx.regions.allocate("dest", ctx.scaled(80 * 1024))
        self.dest_parts = self.dest.split(ctx.num_threads)
        partials = ctx.regions.allocate("hist", ctx.scaled(256) * ctx.num_threads)
        self.partial_parts = partials.split(ctx.num_threads)
        self.pc_read = ctx.pcs.allocate()
        self.pc_hist_w = ctx.pcs.allocate()
        self.pc_hist_r = ctx.pcs.allocate()
        self.pc_scatter = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        # The source and destination arrays ping-pong between iterations:
        # this phase's scattered writes are the next phase's key reads, so
        # destination blocks are written by one thread and later read by
        # another — cross-phase producer-consumer sharing.
        source_parts, dest = (
            (self.key_parts, self.dest)
            if iteration % 2 == 0
            else (self.dest_parts, self.keys)
        )
        # Histogram: each thread streams its own partition of the source.
        emit_private_stream(ctx.streams, source_parts, self.pc_read)
        # Prefix sums over per-thread histograms (reduction sharing).
        emit_reduction(
            ctx.streams, self.partial_parts, self.pc_hist_w, self.pc_hist_r,
        )
        # Permutation: every thread scatters into random destination blocks.
        rng = ctx.rng.spawn("scatter", iteration)
        per_thread = dest.num_blocks // ctx.num_threads
        for tid in range(ctx.num_threads):
            stream = ctx.streams[tid]
            for __ in range(per_thread):
                block = dest.block(rng.randrange(dest.num_blocks))
                stream.append((self.pc_scatter, block * 64, True))


class Water(WorkloadModel):
    """Water molecular dynamics: migratory molecules, pairwise force reads."""

    name = "water"
    suite = "splash2"
    description = "migratory molecule records + read-shared pairwise forces"

    def setup(self, ctx: GeneratorContext) -> None:
        self.molecules = ctx.regions.allocate("molecules", ctx.scaled(96 * 1024))
        partials = ctx.regions.allocate("partials", ctx.scaled(64) * ctx.num_threads)
        self.partial_parts = partials.split(ctx.num_threads)
        self.locks = ctx.regions.allocate("locks", ctx.scaled(16))
        neighbors = ctx.regions.allocate("neighbors", ctx.scaled(64 * 1024))
        self.neighbor_parts = neighbors.split(ctx.num_threads)
        self.pc_neighbors = ctx.pcs.allocate()
        self.pc_pair = ctx.pcs.allocate()
        self.pc_update = ctx.pcs.allocate()
        self.pc_partial_w = ctx.pcs.allocate()
        self.pc_partial_r = ctx.pcs.allocate()
        self.pc_lock = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("pair", iteration), self.molecules,
            self.pc_pair, accesses_per_thread=1024, skew=1.0,
        )
        emit_migratory(
            ctx.streams, ctx.rng.spawn("update", iteration), self.molecules,
            self.pc_update, items=16 * ctx.num_threads, item_blocks=2,
            hops=2, rmw_repeats=1,
        )
        emit_reduction(
            ctx.streams, self.partial_parts, self.pc_partial_w, self.pc_partial_r,
        )
        emit_private_stream(ctx.streams, self.neighbor_parts, self.pc_neighbors)
        emit_lock_hotspot(
            ctx.streams, ctx.rng.spawn("locks", iteration), self.locks,
            self.pc_lock, rounds_per_thread=16,
        )


class Fft(WorkloadModel):
    """Six-step FFT: private butterfly stages around an all-to-all transpose.

    Like radix, the transpose writes each destination partition from every
    source thread and the next stage reads the transposed data — cross-phase
    producer-consumer sharing over the whole matrix; the matrices ping-pong
    between iterations.
    """

    name = "fft"
    suite = "splash2"
    description = "private butterfly stages + all-to-all matrix transpose"

    def setup(self, ctx: GeneratorContext) -> None:
        self.matrix_a = ctx.regions.allocate("matrix_a", ctx.scaled(72 * 1024))
        self.matrix_b = ctx.regions.allocate("matrix_b", ctx.scaled(72 * 1024))
        self.a_parts = self.matrix_a.split(ctx.num_threads)
        self.b_parts = self.matrix_b.split(ctx.num_threads)
        self.roots = ctx.regions.allocate("roots", ctx.scaled(4 * 1024))
        self.pc_butterfly = ctx.pcs.allocate()
        self.pc_transpose = ctx.pcs.allocate()
        self.pc_roots = ctx.pcs.allocate()

    def phase(self, ctx: GeneratorContext, iteration: int) -> None:
        source_parts, dest = (
            (self.a_parts, self.matrix_b)
            if iteration % 2 == 0
            else (self.b_parts, self.matrix_a)
        )
        emit_shared_readonly(
            ctx.streams, ctx.rng.spawn("roots", iteration), self.roots,
            self.pc_roots, accesses_per_thread=256, skew=1.4,
        )
        # Local butterfly computation over the owned partition.
        emit_private_stream(
            ctx.streams, source_parts, self.pc_butterfly,
            write_fraction=0.5, rng=ctx.rng.spawn("butterfly", iteration),
        )
        # Transpose: scatter writes across the whole destination matrix.
        rng = ctx.rng.spawn("transpose", iteration)
        per_thread = dest.num_blocks // ctx.num_threads
        for tid in range(ctx.num_threads):
            stream = ctx.streams[tid]
            for __ in range(per_thread):
                block = dest.block(rng.randrange(dest.num_blocks))
                stream.append((self.pc_transpose, block * 64, True))


SPLASH2_MODELS = (Barnes, Fft, Fmm, Ocean, Radix, Water)
