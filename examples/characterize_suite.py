#!/usr/bin/env python
"""Characterize the full workload suite: the paper's section-3 study.

Produces the shared-vs-private hit breakdown (F1), hit-density argument
(F2), and read-only/read-write split (F3) for every application of the
three suites, printed as one table.

Run:  python examples/characterize_suite.py [--accesses N]
"""

import argparse

from repro import ExperimentContext, profile, workload_names
from repro.analysis.aggregate import append_summary_rows
from repro.analysis.tables import render_table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=100_000)
    parser.add_argument("--profile", default="scaled-4mb")
    args = parser.parse_args()

    context = ExperimentContext(profile(args.profile),
                                target_accesses=args.accesses)
    rows = []
    for name in workload_names():
        report = context.characterize(name)
        breakdown = report.breakdown
        rows.append([
            name,
            report.result.miss_ratio,
            breakdown.shared_residency_fraction,
            breakdown.shared_hit_fraction,
            breakdown.hit_density_ratio,
            breakdown.ro_fraction_of_shared_hits,
            breakdown.dead_fill_fraction,
        ])
        print(f"  characterized {name}")

    append_summary_rows(rows, numeric_columns=[1, 2, 3, 4, 5, 6])
    print()
    print(render_table(
        ["workload", "lru_mr", "shared_res", "shared_hits", "density",
         "ro_share", "dead_fills"],
        rows,
        title=f"Sharing characterization ({args.profile}, "
              f"{args.accesses} accesses/app)",
    ))
    print()
    print("Reading the table: 'shared_hits' is the fraction of all LLC hits")
    print("served by blocks touched by >=2 cores during their residency —")
    print("the quantity the paper uses to argue shared blocks matter most.")


if __name__ == "__main__":
    main()
