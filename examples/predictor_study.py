#!/usr/bin/env python
"""Reproduce the paper's negative result: fill-time sharing predictability.

Evaluates the block-address-indexed and PC-indexed history predictors (and
their tournament hybrid) online — predict at fill, score and train at
eviction — and then drives the sharing-aware replacement wrapper from each
predictor to show how little of the oracle's gain a realistic design
captures.

Run:  python examples/predictor_study.py [--accesses N]
"""

import argparse

from repro import ExperimentContext, profile
from repro.analysis.tables import render_table
from repro.oracle.runner import run_oracle_study
from repro.oracle.wrapper import SharingAwareWrapper
from repro.policies.registry import make_policy
from repro.predictors.harness import PredictorHarness, predictor_hint_source
from repro.predictors.registry import make_predictor
from repro.sim.engine import LlcOnlySimulator
from repro.sim.multipass import run_policy_on_stream

WORKLOADS = ("streamcluster", "canneal", "dedup", "bodytrack", "barnes", "water")
PREDICTORS = ("address", "pc", "hybrid")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=100_000)
    args = parser.parse_args()

    context = ExperimentContext(profile("scaled-8mb"),
                                target_accesses=args.accesses,
                                workloads=list(WORKLOADS))
    geometry = context.geometry

    accuracy_rows, policy_rows = [], []
    for name in WORKLOADS:
        stream = context.artifacts(name).stream
        baseline = run_policy_on_stream(stream, geometry, "lru")
        oracle_gain = run_oracle_study(stream, geometry).miss_reduction
        policy_row = [name, oracle_gain]
        for predictor_name in PREDICTORS:
            # Pure predictability measurement (no policy impact).
            predictor = make_predictor(predictor_name)
            harness = PredictorHarness(predictor)
            run_policy_on_stream(stream, geometry, "lru", observers=(harness,))
            matrix = harness.matrix
            accuracy_rows.append([
                f"{name}/{predictor_name}", matrix.base_rate, matrix.accuracy,
                matrix.precision, matrix.recall,
            ])
            # Predictor-driven replacement (the realistic oracle).
            driven_predictor = make_predictor(predictor_name)
            driven_harness = PredictorHarness(driven_predictor)
            wrapper = SharingAwareWrapper(
                make_policy("lru"), predictor_hint_source(driven_predictor)
            )
            driven = LlcOnlySimulator(
                geometry, wrapper, observers=(driven_harness,)
            ).run(stream)
            policy_row.append(driven.miss_reduction_vs(baseline))
        policy_rows.append(policy_row)
        print(f"  studied {name}")

    print()
    print(render_table(
        ["workload/predictor", "base_rate", "accuracy", "precision", "recall"],
        accuracy_rows,
        title="Online fill-time prediction accuracy (LRU ground truth, 8MB)",
    ))
    print()
    print(render_table(
        ["workload", "oracle_gain", *[f"driven({p})" for p in PREDICTORS]],
        policy_rows,
        title="Miss reduction over LRU: oracle vs predictor-driven (8MB)",
    ))
    print()
    print("The paper's conclusion, reproduced: accuracy barely beats the")
    print("majority-class baseline, and the predictor-driven policies capture")
    print("only a sliver of the oracle's gain — usable sharing prediction")
    print("needs richer features than addresses and PCs.")


if __name__ == "__main__":
    main()
