#!/usr/bin/env python
"""Capacity analysis: miss-ratio curves, set sampling, and the oracle sweep.

Shows the two acceleration tools the library provides for capacity
studies and validates them against full simulation:

1. a one-pass miss-ratio curve (Mattson stack distances) giving LRU miss
   ratios at every capacity at once,
2. set-sampled simulation (every Nth set) for cheap estimates of any
   policy at any geometry,

then uses full simulation for the quantity that actually needs it — the
sharing-oracle gain across LLC sizes (the paper's 4MB -> 8MB trend).

Run:  python examples/capacity_planning.py [--workload NAME]
"""

import argparse

from repro import ExperimentContext, profile
from repro.analysis.mrc import compute_mrc
from repro.analysis.tables import render_table
from repro.common.config import CacheGeometry
from repro.oracle.runner import run_oracle_study
from repro.policies.lru import LruPolicy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.sampling import SampledLlcSimulator


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="streamcluster")
    parser.add_argument("--accesses", type=int, default=100_000)
    args = parser.parse_args()

    context = ExperimentContext(profile("scaled-4mb"),
                                target_accesses=args.accesses,
                                workloads=[args.workload])
    stream = context.artifacts(args.workload).stream
    base_geometry = context.geometry

    sizes = [base_geometry.num_blocks // 2, base_geometry.num_blocks,
             base_geometry.num_blocks * 2, base_geometry.num_blocks * 4]
    curve = compute_mrc(stream, sizes)

    rows = []
    for blocks in sizes:
        geometry = CacheGeometry(blocks * 64, base_geometry.ways)
        full = LlcOnlySimulator(geometry, LruPolicy()).run(stream)
        sampled = SampledLlcSimulator(
            geometry, LruPolicy(), sample_ratio=min(8, geometry.num_sets)
        ).run(stream)
        oracle = run_oracle_study(stream, geometry)
        rows.append([
            geometry.describe(),
            curve.miss_ratio_at(blocks),
            full.miss_ratio,
            sampled.miss_ratio,
            oracle.miss_reduction,
        ])

    print(render_table(
        ["llc", "mrc_lru_mr", "simulated_lru_mr", "sampled_lru_mr",
         "oracle_reduction"],
        rows,
        title=f"Capacity analysis for {args.workload} "
              f"(MRC is fully-associative; simulated is 16-way)",
    ))
    print()
    print(f"Working-set knee (first capacity under 50% misses): "
          f"{curve.knee_capacity()} blocks")
    print("The MRC and the sampled estimate track full simulation; the")
    print("oracle column reproduces the paper's capacity trend for this app.")


if __name__ == "__main__":
    main()
