#!/usr/bin/env python
"""Quickstart: simulate one multi-threaded workload and inspect its sharing.

Demonstrates the core three-step pipeline:

1. generate a synthetic multi-threaded trace (streamcluster model),
2. run it through the CMP hierarchy, recording the LLC demand stream,
3. replay the stream with sharing characterization attached.

Run:  python examples/quickstart.py
"""

from repro import ExperimentContext, profile


def main():
    # A scaled version of the paper's 8-core, 4MB-LLC machine (all
    # capacities divided by 16; workload footprints scale to match).
    machine = profile("scaled-4mb")
    print(machine.describe())
    print()

    context = ExperimentContext(machine, target_accesses=100_000, seed=42)

    # Step 1+2: trace generation and the hierarchy pass are cached behind
    # artifacts(); the returned bundle holds trace stats, hierarchy stats,
    # and the recorded LLC stream.
    artifacts = context.artifacts("streamcluster")
    trace, hier = artifacts.trace_stats, artifacts.hierarchy_stats
    print(f"trace: {trace.num_accesses} accesses, {trace.num_threads} threads, "
          f"{trace.footprint_bytes // 1024} KB footprint")
    print(f"hierarchy: L1 hits {hier.l1_hits}, L2 hits {hier.l2_hits}, "
          f"LLC {hier.llc_hits}/{hier.llc_accesses} "
          f"(miss ratio {hier.llc_miss_ratio:.3f})")
    print(f"coherence: {hier.upgrades} upgrades, "
          f"{hier.inclusion_victims} inclusion victims")
    print()

    # Step 3: replay-based sharing characterization (the paper's F1-F3).
    report = context.characterize("streamcluster")
    breakdown = report.breakdown
    print("LLC residency characterization under LRU:")
    print(f"  residencies          : {breakdown.residencies}")
    print(f"  shared residencies   : {breakdown.shared_residencies} "
          f"({breakdown.shared_residency_fraction:.1%})")
    print(f"  hits to shared blocks: {breakdown.shared_hits} "
          f"({breakdown.shared_hit_fraction:.1%} of all hits)")
    print(f"  hit-density ratio    : {breakdown.hit_density_ratio:.2f} "
          f"(>1 means shared blocks out-earn their population)")
    print(f"  read-only share      : {breakdown.ro_fraction_of_shared_hits:.1%} "
          f"of shared hits")


if __name__ == "__main__":
    main()
