#!/usr/bin/env python
"""Replacement-policy shoot-out on identical LLC streams.

Replays each workload's recorded LLC demand stream under the full policy
zoo — LRU, NRU, Random, DIP, SRRIP, DRRIP, SHiP — plus Belady's OPT, so
every policy faces exactly the same accesses. This is the comparison
methodology behind the paper's sharing-awareness study (F5) and frames the
oracle gains (F6) inside the OPT envelope (F4).

Run:  python examples/policy_shootout.py [--accesses N] [--profile P]
"""

import argparse

from repro import ExperimentContext, profile, workload_names
from repro.analysis.aggregate import append_summary_rows
from repro.analysis.tables import render_table

POLICIES = ("lru", "nru", "random", "dip", "srrip", "drrip", "ship")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=100_000)
    parser.add_argument("--profile", default="scaled-4mb")
    args = parser.parse_args()

    context = ExperimentContext(profile(args.profile),
                                target_accesses=args.accesses)
    rows = []
    for name in workload_names():
        comparison = context.compare_policies(name, POLICIES, include_opt=True)
        rows.append([
            name,
            *[comparison.results[p].miss_ratio for p in POLICIES],
            comparison.results["opt"].miss_ratio,
        ])
        print(f"  compared {name}")

    append_summary_rows(rows, numeric_columns=list(range(1, len(POLICIES) + 2)))
    print()
    print(render_table(
        ["workload", *POLICIES, "opt"],
        rows,
        title=f"LLC miss ratios on identical streams ({args.profile})",
        float_digits=3,
    ))
    print()
    print("OPT lower-bounds every column; the spread between the realistic")
    print("policies and OPT is the total replacement headroom, of which the")
    print("sharing oracle (examples/oracle_study.py) captures the part")
    print("attributable to cross-thread sharing.")


if __name__ == "__main__":
    main()
