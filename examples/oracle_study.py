#!/usr/bin/env python
"""Reproduce the paper's headline result: the sharing-oracle gains.

For every application, measures the LLC miss reduction the generic
sharing oracle achieves over LRU at both the 4MB and the 8MB machine (the
paper reports 6% and 10% on average), and demonstrates composing the same
oracle with a different base policy (SRRIP).

Run:  python examples/oracle_study.py [--accesses N]
"""

import argparse

from repro import ExperimentContext, profile, workload_names
from repro.analysis.aggregate import append_summary_rows
from repro.analysis.tables import render_table
from repro.oracle.runner import run_oracle_study


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=100_000)
    args = parser.parse_args()

    # The two machines share private caches, so one recorded stream per
    # workload serves both LLC geometries.
    context = ExperimentContext(profile("scaled-4mb"),
                                target_accesses=args.accesses)
    geometry_4mb = profile("scaled-4mb").llc
    geometry_8mb = profile("scaled-8mb").llc

    rows = []
    for name in workload_names():
        stream = context.artifacts(name).stream
        study_4mb = run_oracle_study(stream, geometry_4mb, base="lru")
        study_8mb = run_oracle_study(stream, geometry_8mb, base="lru")
        srrip_8mb = run_oracle_study(stream, geometry_8mb, base="srrip")
        rows.append([
            name,
            study_4mb.base.miss_ratio,
            study_4mb.miss_reduction,
            study_8mb.base.miss_ratio,
            study_8mb.miss_reduction,
            srrip_8mb.miss_reduction,
        ])
        print(f"  studied {name}")

    append_summary_rows(rows, numeric_columns=[1, 2, 3, 4, 5])
    print()
    print(render_table(
        ["workload", "lru_mr@4MB", "oracle_gain@4MB", "lru_mr@8MB",
         "oracle_gain@8MB", "oracle(srrip)@8MB"],
        rows,
        title="Sharing-oracle miss reductions (paper: 6% @4MB, 10% @8MB avg)",
    ))
    mean = rows[-1]
    print()
    print(f"Average oracle gain: {mean[2]:.1%} at 4MB, {mean[4]:.1%} at 8MB "
          f"(paper: 6% and 10%). Gains concentrate in sharing-heavy apps and "
          f"grow with capacity.")
    if args.accesses < 200_000:
        print("Note: short traces understate the gains (few residencies see "
              "their cross-core reuse); the benches use 200k accesses.")


if __name__ == "__main__":
    main()
