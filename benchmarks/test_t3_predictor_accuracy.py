"""T3 — Fill-time sharing predictability (the paper's negative result).

Paper (pinned qualitatively): "Our sharing behavior predictability study of
two history-based fill-time predictors that use block addresses and program
counters concludes that achieving acceptable levels of accuracy with such
predictors will require other architectural and/or high-level program
semantic features."

Regenerates per-app accuracy/precision/recall/coverage for the address- and
PC-indexed predictors (plus the hybrid), trained online against LRU
residencies at the 4MB LLC.
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.analysis.aggregate import amean
from repro.predictors.harness import PredictorHarness
from repro.predictors.registry import make_predictor
from repro.sim.multipass import run_policy_on_stream

PREDICTORS = ("address", "pc", "hybrid")


def test_t3_predictor_accuracy(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            for predictor_name in PREDICTORS:
                predictor = make_predictor(predictor_name)
                harness = PredictorHarness(predictor)
                run_policy_on_stream(
                    stream, GEOMETRY_4MB, "lru", observers=(harness,)
                )
                matrix = harness.matrix
                rows.append([
                    f"{name}/{predictor_name}",
                    matrix.total,
                    matrix.base_rate,
                    matrix.accuracy,
                    matrix.precision,
                    matrix.recall,
                    matrix.coverage,
                ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "t3_predictor_accuracy",
        ["workload/predictor", "fills", "base_rate", "accuracy", "precision",
         "recall", "coverage"],
        rows,
        title="[T3] Fill-time sharing predictors: online accuracy vs LRU "
              "ground truth (4MB)",
    )

    # The negative result, on the apps where prediction actually matters
    # (non-trivial base rate): accuracy must not be much better than the
    # trivial majority-class predictor, and recall of sharing stays poor.
    interesting = [row for row in rows if 0.15 < row[2] < 0.85]
    assert interesting, "no workloads with non-trivial sharing base rate"
    advantages = []
    recalls = []
    for row in interesting:
        majority = max(row[2], 1 - row[2])
        advantages.append(row[3] - majority)
        recalls.append(row[5])
    assert amean(advantages) < 0.10
    assert amean(recalls) < 0.75
