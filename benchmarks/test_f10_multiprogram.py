"""F10 — Multi-threaded vs. multi-programmed contrast (extension).

The paper's opening argument: prior LLC proposals target multi-programmed
workloads (independent programs on disjoint cores) where all cross-core
interaction is destructive; multi-threaded applications additionally have
*constructive* sharing that those proposals ignore. This bench runs the
sharing oracle on multi-programmed mixes built from the same application
models and shows its gains vanish — sharing-awareness is a property of
multi-threaded workloads specifically.
"""

from benchmarks.conftest import BENCH_SEED, GEOMETRY_8MB, emit, once
from repro.analysis.aggregate import amean
from repro.oracle.runner import run_oracle_study
from repro.sim.multipass import record_llc_stream
from repro.workloads.multiprogram import MultiprogramMix

MIXES = [
    ("swaptions", "blackscholes"),
    ("swaptions", "canneal"),
    ("blackscholes", "dedup"),
    ("canneal", "equake"),
]

MULTITHREADED_REFERENCE = ("streamcluster", "dedup", "canneal", "barnes")


def test_f10_multiprogram_vs_multithreaded(benchmark, context):
    def build_rows():
        rows = []
        for names in MIXES:
            mix = MultiprogramMix(names)
            trace = mix.generate(
                num_threads=context.machine.num_cores,
                scale=context.machine.scale,
                target_accesses=context.target_accesses,
                seed=BENCH_SEED,
            )
            stream, __ = record_llc_stream(trace, context.machine)
            study = run_oracle_study(stream, GEOMETRY_8MB)
            rows.append([
                mix.name, "multiprogram", study.base.miss_ratio,
                study.shared_fill_fraction, study.miss_reduction,
            ])
        for name in MULTITHREADED_REFERENCE:
            stream = context.artifacts(name).stream
            study = run_oracle_study(stream, GEOMETRY_8MB)
            rows.append([
                name, "multithreaded", study.base.miss_ratio,
                study.shared_fill_fraction, study.miss_reduction,
            ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "f10_multiprogram",
        ["workload", "kind", "lru_mr", "shared_fills", "oracle_reduction"],
        rows,
        title="[F10] Sharing-oracle gains: multi-programmed mixes vs "
              "multi-threaded apps (8MB)",
    )

    mix_gains = [row[4] for row in rows if row[1] == "multiprogram"]
    multithreaded_gains = [row[4] for row in rows if row[1] == "multithreaded"]
    # Multi-programmed mixes: no cross-program sharing, so the oracle has
    # little to protect (residual gains come only from sharing *within* a
    # multi-threaded component of the mix).
    assert amean(mix_gains) < amean(multithreaded_gains) * 0.5
    assert all(gain > -0.03 for gain in mix_gains)
