"""F7 — Oracle gain sensitivity to LLC capacity.

Reconstructed experiment: sweep the LLC from half the paper's smaller
configuration to double its larger one (scaled: 128KB..1MB, i.e. full-size
2MB..16MB) and track the LRU miss ratio and the oracle's average gain. The
paper's 6% -> 10% pair are two points on this curve; the sweep shows the
trend — gains grow while capacity approaches the shared working sets, then
collapse once everything fits and there are no misses left to save.

The recorded streams depend only on the private levels, so one recording
serves every LLC size — and the whole capacity grid of one stream runs as
a single :func:`repro.oracle.runner.run_oracle_study_grid` call, sharing
every geometry-invariant pass (stream annotations whose effective horizon
window coincides are computed once per stream).
"""

from benchmarks.conftest import emit, once
from repro.analysis.aggregate import amean
from repro.common.config import KB, CacheGeometry
from repro.oracle.runner import run_oracle_study_grid

SWEEP = [
    ("2MB(full)", CacheGeometry(128 * KB // 16 * 16, 16)),   # 128KB scaled
    ("4MB(full)", CacheGeometry(256 * KB, 16)),
    ("8MB(full)", CacheGeometry(512 * KB, 16)),
    ("16MB(full)", CacheGeometry(1024 * KB, 16)),
]


def test_f7_capacity_sweep(benchmark, context):
    def build_rows():
        geometries = [geometry for __, geometry in SWEEP]
        reductions = [[] for __ in SWEEP]
        miss_ratios = [[] for __ in SWEEP]
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            studies = run_oracle_study_grid(stream, geometries, base="lru")
            for idx, study in enumerate(studies):
                reductions[idx].append(study.miss_reduction)
                miss_ratios[idx].append(study.base.miss_ratio)
        return [
            [
                label,
                geometry.num_blocks,
                amean(miss_ratios[idx]),
                amean(reductions[idx]),
                max(reductions[idx]),
            ]
            for idx, (label, geometry) in enumerate(SWEEP)
        ]

    rows = once(benchmark, build_rows)
    emit(
        "f7_capacity_sweep",
        ["llc_size", "blocks", "avg_lru_mr", "avg_oracle_reduction",
         "max_oracle_reduction"],
        rows,
        title="[F7] Oracle gain vs LLC capacity (scaled sizes; full-size "
              "labels)",
    )

    by_label = {row[0]: row for row in rows}
    # LRU miss ratio must fall monotonically with capacity.
    miss_ratios = [row[2] for row in rows]
    assert miss_ratios == sorted(miss_ratios, reverse=True)
    # The paper's two operating points sit on the rising part of the curve.
    assert by_label["8MB(full)"][3] > by_label["4MB(full)"][3] > 0
