"""F2 — Shared residency share vs. shared hit share (hit density).

Paper analogue: the argument that shared blocks are *disproportionately*
valuable — they are a minority of fills but earn a majority of hits. Plots
per app: fraction of residencies that are shared, fraction of hits they
serve, and the density ratio (hits/shared-residency over hits/residency).
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.characterization.report import characterize_stream


def test_f2_shared_hit_density(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            breakdown = characterize_stream(
                stream, GEOMETRY_4MB, track_phases=False
            ).breakdown
            rows.append([
                name,
                breakdown.shared_residency_fraction,
                breakdown.shared_hit_fraction,
                breakdown.hit_density_ratio,
                breakdown.dead_fill_fraction,
            ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "f2_hit_density",
        ["workload", "shared_res_frac", "shared_hit_frac", "density_ratio",
         "dead_fill_frac"],
        rows,
        title="[F2] Shared residencies vs shared hits, 4MB LLC (density > 1 "
              "means shared blocks out-earn their population)",
    )

    # Density must exceed 1 wherever there is any meaningful sharing.
    sharing_heavy = {
        row[0]: row[3] for row in rows if row[1] > 0.05 and row[2] > 0.3
    }
    assert sharing_heavy, "no sharing-heavy workloads found"
    assert all(density >= 1.0 for density in sharing_heavy.values())
