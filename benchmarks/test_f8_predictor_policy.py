"""F8 — Predictor-driven replacement vs. the oracle.

Paper analogue (pinned qualitatively): a realistic implementation of the
oracle needs a fill-time predictor; this bench drives the identical
protection mechanism from the history predictors instead of the annotation
and measures how much of the oracle's gain survives. The paper's
conclusion — not enough to be useful — shows up as predictor-driven gains
far below the oracle's (and sometimes negative).
"""

from benchmarks.conftest import GEOMETRY_8MB, emit, once
from repro.analysis.aggregate import amean
from repro.oracle.runner import run_oracle_study
from repro.oracle.wrapper import SharingAwareWrapper
from repro.policies.registry import make_policy
from repro.predictors.harness import PredictorHarness, predictor_hint_source
from repro.predictors.registry import make_predictor
from repro.sim.engine import LlcOnlySimulator
from repro.sim.multipass import run_policy_on_stream

PREDICTORS = ("address", "pc", "hybrid")


def predictor_driven_reduction(stream, geometry, predictor_name):
    baseline = run_policy_on_stream(stream, geometry, "lru")
    predictor = make_predictor(predictor_name)
    harness = PredictorHarness(predictor)
    wrapper = SharingAwareWrapper(
        make_policy("lru"), predictor_hint_source(predictor)
    )
    driven = LlcOnlySimulator(geometry, wrapper, observers=(harness,)).run(stream)
    return driven.miss_reduction_vs(baseline)


def test_f8_predictor_policy_vs_oracle(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            oracle = run_oracle_study(stream, GEOMETRY_8MB).miss_reduction
            row = [name, oracle]
            for predictor_name in PREDICTORS:
                row.append(
                    predictor_driven_reduction(stream, GEOMETRY_8MB,
                                               predictor_name)
                )
            rows.append(row)
        return rows

    rows = once(benchmark, build_rows)
    rows.append(["mean", *[amean([r[i] for r in rows])
                           for i in range(1, 2 + len(PREDICTORS))]])
    emit(
        "f8_predictor_policy",
        ["workload", "oracle", *[f"driven({p})" for p in PREDICTORS]],
        rows,
        title="[F8] Miss reduction over LRU: oracle vs predictor-driven "
              "protection (8MB)",
    )

    mean_row = rows[-1]
    oracle_mean = mean_row[1]
    # The negative result: every realistic predictor captures well under
    # half of the oracle's average gain.
    for driven_mean in mean_row[2:]:
        assert driven_mean < oracle_mean * 0.5
