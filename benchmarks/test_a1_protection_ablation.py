"""A1 — Ablation: oracle protection mechanism and release policy.

Extension experiment for the design choices DESIGN.md calls out: which part
of the oracle's gain comes from victim exemption vs. insertion promotion,
and how much the budget-based release matters compared to protecting for
the whole residency ("never" release) or releasing at the first cross-core
hit ("first-share").

The variant axis is protection-only — it never touches the base replay,
the fill-sharing log, the horizon derivation, or the stream annotation —
so the whole grid runs per stream as one
:func:`repro.oracle.runner.run_oracle_variants` call: one base pass, one
annotation, one wrapped replay per variant.
"""

from benchmarks.conftest import GEOMETRY_8MB, emit, once
from repro.analysis.aggregate import amean
from repro.oracle.runner import run_oracle_variants

VARIANTS = [
    ("both/budget", "both", "budget"),
    ("exempt/budget", "victim-exempt", "budget"),
    ("promote/budget", "insert-promote", "budget"),
    ("both/first-share", "both", "first-share"),
    ("both/never", "both", "never"),
]

WORKLOADS = ("streamcluster", "canneal", "dedup", "barnes", "fmm", "radix",
             "x264", "equake", "bodytrack", "water")


def test_a1_protection_ablation(benchmark, context):
    def build_rows():
        variants = [(mode, release) for __, mode, release in VARIANTS]
        reductions = [[] for __ in VARIANTS]
        for name in WORKLOADS:
            stream = context.artifacts(name).stream
            studies = run_oracle_variants(stream, GEOMETRY_8MB, variants)
            for idx, study in enumerate(studies):
                reductions[idx].append(study.miss_reduction)
        return [
            [label, amean(reductions[idx]), min(reductions[idx]),
             max(reductions[idx])]
            for idx, (label, __, __release) in enumerate(VARIANTS)
        ]

    rows = once(benchmark, build_rows)
    emit(
        "a1_protection_ablation",
        ["variant", "avg_reduction", "min_reduction", "max_reduction"],
        rows,
        title="[A1] Oracle protection-mechanism ablation over the "
              "sharing-heavy workloads (8MB)",
    )

    by_label = {row[0]: row for row in rows}
    default = by_label["both/budget"]
    # Robustness: the default never regresses any workload.
    assert default[2] >= -1e-9
    # "never" release buys a higher raw average on the sharing-heavy apps
    # but at the cost of real regressions (over-protection of blocks whose
    # sharing already completed) — the reason budget release is default.
    assert by_label["both/never"][1] > default[1]
    assert by_label["both/never"][2] < -0.01
    # Victim exemption is the load-bearing mechanism: promotion alone
    # captures essentially nothing of the gain.
    assert by_label["promote/budget"][1] < default[1] * 0.25
