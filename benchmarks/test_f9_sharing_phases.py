"""F9 — Temporal stability of per-block sharing behaviour.

Reconstructed experiment explaining T3's negative result: an address-
indexed history predictor is upper-bounded by the last-value accuracy of
the per-block shared/private bit across consecutive residencies. This bench
measures those Markov statistics per application.
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.characterization.report import characterize_stream


def test_f9_sharing_phase_stability(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            phases = characterize_stream(stream, GEOMETRY_4MB).phases
            rows.append([
                name,
                phases.transitions,
                phases.p_shared_given_shared,
                phases.p_private_given_private,
                phases.last_value_accuracy,
                phases.bimodal_block_fraction,
            ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "f9_sharing_phases",
        ["workload", "transitions", "P(S|S)", "P(P|P)", "last_value_acc",
         "bimodal_frac"],
        rows,
        title="[F9] Per-block sharing-bit stability across consecutive LLC "
              "residencies (4MB, LRU)",
    )

    # Apps with meaningful sharing must show real instability (bimodal
    # blocks / imperfect last-value accuracy) — the mechanism behind the
    # predictors' failure.
    measured = [row for row in rows if row[1] > 100]
    assert measured
    assert any(row[5] > 0.05 for row in measured)
    assert any(row[4] < 0.9 for row in measured)
