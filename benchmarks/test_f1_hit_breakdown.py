"""F1 — Fraction of LLC hits served by shared vs. private blocks.

Paper analogue (pinned qualitatively by the abstract): "quantifying the
potential contributions of the shared and the private blocks toward the
overall volume of the LLC hits ... the shared blocks are more important
than the private blocks." One bar pair per application, at both LLC sizes,
under LRU residencies.
"""

from benchmarks.conftest import GEOMETRY_4MB, GEOMETRY_8MB, emit, once
from repro.analysis.aggregate import amean
from repro.characterization.report import characterize_stream


def test_f1_shared_vs_private_hit_fractions(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            row = [name]
            for geometry in (GEOMETRY_4MB, GEOMETRY_8MB):
                breakdown = characterize_stream(
                    stream, geometry, track_phases=False
                ).breakdown
                row.extend([
                    breakdown.shared_hit_fraction,
                    1.0 - breakdown.shared_hit_fraction,
                ])
            rows.append(row)
        return rows

    rows = once(benchmark, build_rows)
    rows.append([
        "mean",
        amean([r[1] for r in rows]), amean([r[2] for r in rows]),
        amean([r[3] for r in rows]), amean([r[4] for r in rows]),
    ])
    emit(
        "f1_hit_breakdown",
        ["workload", "shared@4MB", "private@4MB", "shared@8MB", "private@8MB"],
        rows,
        title="[F1] Fraction of LLC hits served by shared vs private blocks (LRU)",
    )

    mean_row = rows[-1]
    # Paper's motivating claim: shared blocks carry the majority of hits on
    # average across the multi-threaded suites.
    assert mean_row[1] > 0.5
    assert mean_row[3] > 0.5
