"""F2b — Sharing-degree distribution of residencies and hits.

Companion to F2: how many distinct cores touch a block during one LLC
residency. Characterization papers of this era report that sharing is
mostly pairwise/low-degree with a small high-degree tail (locks, global
counters, broadcast structures) — which matters because protecting a
degree-2 block buys one extra hit while protecting a degree-8 block buys
seven.
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.characterization.hits import SharingClassifier
from repro.common.stats import ratio
from repro.policies.registry import make_policy
from repro.sim.engine import LlcOnlySimulator

MAX_DEGREE = 8


def test_f2b_sharing_degree_distribution(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            classifier = SharingClassifier()
            LlcOnlySimulator(
                GEOMETRY_4MB, make_policy("lru"), observers=(classifier,)
            ).run(stream)
            breakdown = classifier.breakdown
            shared_total = breakdown.shared_residencies
            if shared_total == 0:
                continue
            degree_2 = breakdown.degree_residencies.get(2, 0)
            high = sum(
                count for degree, count in breakdown.degree_residencies.items()
                if degree >= 4
            )
            high_hits = sum(
                hits for degree, hits in breakdown.degree_hits.items()
                if degree >= 4
            )
            rows.append([
                name,
                shared_total,
                ratio(degree_2, shared_total),
                ratio(high, shared_total),
                ratio(high_hits, breakdown.shared_hits),
                max(breakdown.degree_residencies),
            ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "f2b_sharing_degree",
        ["workload", "shared_res", "frac_degree2", "frac_degree4plus",
         "hit_share_degree4plus", "max_degree"],
        rows,
        title="[F2b] Sharing-degree distribution of shared residencies "
              "(4MB, LRU)",
    )

    assert rows
    # Pairwise sharing dominates the population in most apps...
    pairwise_dominant = sum(1 for row in rows if row[2] > 0.5)
    assert pairwise_dominant >= len(rows) // 2
    # ...but a high-degree tail exists somewhere (locks/broadcasts) and its
    # hit share exceeds its population share there.
    assert any(row[3] > 0.01 for row in rows)
    tails = [row for row in rows if row[3] > 0.01]
    assert any(row[4] > row[3] for row in tails)
