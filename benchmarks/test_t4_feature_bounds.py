"""T4 — Upper bounds of the address and PC features (extension).

The paper concludes that address/PC history cannot reach usable accuracy
and that richer features are needed. This bench quantifies *why*, by
measuring the ceiling of each feature with ideal, unbounded, alias-free
machinery:

* last-value bound — an infinite per-block table remembering each block's
  previous residency outcome (what the address table approximates), scored
  online;
* PC-majority bound — the offline accuracy of labelling every fill PC with
  its majority outcome (what any PC table approximates);

plus the recall of the realistic address table against the
region-granularity predictor — the "other feature" direction the paper
points to, implemented: sharing is a property of data structures, and
region (page) history aggregates a structure's outcomes into something far
more stable than per-block bits. Run at the 8MB LLC, where residencies are
long enough for sharing to realise and the feature question is posed.

When even these ceilings sit near the majority-class baseline, no sizing of
the realistic tables (A2) can help — the features themselves are ambiguous.
"""

from benchmarks.conftest import GEOMETRY_8MB, emit, once
from repro.analysis.aggregate import amean
from repro.characterization.pc_profile import PcSharingProfiler
from repro.predictors.harness import PredictorHarness
from repro.predictors.lastvalue import LastValuePredictor
from repro.predictors.region import RegionSharingPredictor
from repro.predictors.tables import AddressSharingPredictor
from repro.sim.multipass import run_policy_on_stream


def test_t4_feature_ceilings(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            lastvalue = PredictorHarness(LastValuePredictor())
            address = PredictorHarness(AddressSharingPredictor())
            region = PredictorHarness(RegionSharingPredictor())
            profiler = PcSharingProfiler()
            run_policy_on_stream(
                stream, GEOMETRY_8MB, "lru",
                observers=(lastvalue, address, region, profiler),
            )
            profile = profiler.finalize()
            majority_baseline = max(profile.base_rate, 1 - profile.base_rate)
            rows.append([
                name,
                profile.base_rate,
                majority_baseline,
                address.matrix.recall,
                region.matrix.recall,
                lastvalue.matrix.accuracy,
                profile.majority_accuracy,
                profile.mixed_pc_fraction,
            ])
        return rows

    rows = once(benchmark, build_rows)
    rows.append([
        "mean", *[amean([r[i] for r in rows]) for i in range(1, 8)],
    ])
    emit(
        "t4_feature_bounds",
        ["workload", "base_rate", "majority_base", "addr_recall",
         "region_recall", "lastvalue_bound", "pc_majority_bound",
         "mixed_pc_frac"],
        rows,
        title="[T4] Feature study: realistic recalls, ideal ceilings "
              "(8MB, LRU truth)",
    )

    interesting = [row for row in rows[:-1] if 0.15 < row[1] < 0.85]
    assert interesting
    # The paper's diagnosis: even the ideal bounds leave a large error
    # mass, and a meaningful fraction of fill PCs are outcome-mixed.
    assert any(row[5] < 0.9 for row in interesting)
    assert any(row[7] > 0.1 for row in interesting)
    # The implemented "future work": region (data-structure) granularity
    # recalls sharing markedly better than per-block history on average —
    # the kind of "other feature" the paper says is needed.
    addr_recall = amean([row[3] for row in interesting])
    region_recall = amean([row[4] for row in interesting])
    assert region_recall > addr_recall + 0.05
