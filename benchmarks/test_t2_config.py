"""T2 — Simulated machine configuration table.

Paper analogue: the simulation-parameters table. Also benchmarks the raw
simulator throughput (accesses/second through the full hierarchy), the
capacity number that governs every other bench's runtime.
"""

import time

from benchmarks.conftest import emit, once
from repro.cache.hierarchy import CmpHierarchy
from repro.common.config import PROFILE_NAMES, CacheGeometry, profile
from repro.policies.lru import LruPolicy
from repro.policies.registry import make_policy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.fastpath import replay_lru_fastpath
from repro.sim.gridpath import replay_lru_grid
from repro.sim.setpath import replay_setpath
from repro.workloads.registry import get_workload


def test_t2_machine_configurations(benchmark, context):
    def build_rows():
        rows = []
        for name in PROFILE_NAMES:
            machine = profile(name)
            rows.append([
                name,
                machine.num_cores,
                machine.l1.describe(),
                machine.l2.describe(),
                machine.llc.describe(),
                f"1/{machine.scale}" if machine.scale != 1 else "full",
            ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "t2_config",
        ["profile", "cores", "L1D/core", "L2/core", "shared LLC", "scale"],
        rows,
        title="[T2] Machine configurations (paper: 8-core CMP, 4MB/8MB LLC)",
    )
    assert len(rows) == 4


def test_t2_simulator_throughput(benchmark, context):
    trace = get_workload("dedup").generate(
        num_threads=8, scale=16, target_accesses=50_000, seed=7
    )

    def run_all():
        hierarchy = CmpHierarchy(context.machine, LruPolicy())
        start = time.perf_counter()
        hierarchy.run(trace)
        elapsed = time.perf_counter() - start
        hierarchy_rate = len(trace) / elapsed

        # Replay throughput: the LLC-only pass every sweep cell pays after
        # the stream is recorded (or loaded from the persistent cache).
        stream = context.artifacts("dedup").stream
        replay = LlcOnlySimulator(context.machine.llc, LruPolicy()).run(stream)

        # The same replay through the exact stack-distance fast path
        # (bit-identical results; this is the LRU-cell speedup every
        # sweep/oracle base replay sees).
        fast = replay_lru_fastpath(stream, context.machine.llc)
        assert (fast.hits, fast.misses) == (replay.hits, replay.misses)

        # The set-partitioned tier on a representative non-LRU policy
        # (bit-identical to the scalar model; this is the speedup the
        # policy-comparison sweeps see for the RRIP/DIP-class cells).
        srrip_scalar = LlcOnlySimulator(
            context.machine.llc, make_policy("srrip")
        ).run(stream)
        srrip_setpath = replay_setpath(
            stream, context.machine.llc, make_policy("srrip")
        )
        assert (srrip_setpath.hits, srrip_setpath.misses) == (
            srrip_scalar.hits, srrip_scalar.misses
        )

        # The grid tier: a 4-point LRU associativity/capacity sweep in one
        # capped stack walk, against four independent fastpath replays
        # (bit-identical counters; this is the amortisation every
        # multi-geometry sweep sees through repro.sim.gridpath).
        llc = context.machine.llc
        grid_geoms = [
            CacheGeometry(llc.num_sets * w * llc.block_bytes, w,
                          llc.block_bytes)
            for w in (4, 8, 16, 32)
        ]
        start = time.perf_counter()
        grid_cells = replay_lru_grid(stream, grid_geoms)
        grid_sec = time.perf_counter() - start
        start = time.perf_counter()
        percell = [replay_lru_fastpath(stream, g) for g in grid_geoms]
        percell_sec = time.perf_counter() - start
        for cell, ref in zip(grid_cells, percell):
            assert (cell.hits, cell.misses) == (ref.hits, ref.misses)
        return (
            hierarchy_rate, replay.accesses_per_sec, fast.accesses_per_sec,
            srrip_scalar.accesses_per_sec, srrip_setpath.accesses_per_sec,
            grid_sec, percell_sec,
        )

    (hierarchy_rate, replay_rate, fastpath_rate, srrip_rate,
     setpath_rate, grid_sec, percell_sec) = once(benchmark, run_all)
    emit(
        "t2_throughput",
        ["metric", "value"],
        [
            ["hierarchy accesses/sec", int(hierarchy_rate)],
            ["llc replay accesses/sec", int(replay_rate)],
            ["lru fastpath accesses/sec", int(fastpath_rate)],
            ["fastpath speedup", round(fastpath_rate / replay_rate, 2)],
            ["srrip scalar accesses/sec", int(srrip_rate)],
            ["srrip setpath accesses/sec", int(setpath_rate)],
            ["setpath speedup", round(setpath_rate / srrip_rate, 2)],
            ["lru 4-geometry grid sec", round(grid_sec, 4)],
            ["lru 4-geometry per-cell sec", round(percell_sec, 4)],
            ["gridpath speedup", round(percell_sec / grid_sec, 2)],
        ],
        title="[T2b] Simulator throughput",
    )
    assert hierarchy_rate > 10_000
    assert replay_rate > 10_000
    assert fastpath_rate >= 2 * replay_rate
    assert setpath_rate >= 2 * srrip_rate
    # The acceptance bar of the grid tier: a 4-point LRU capacity sweep in
    # one walk beats four independent fastpath replays by at least 2x.
    assert percell_sec >= 2 * grid_sec
