"""F6 — HEADLINE: sharing-oracle miss reductions over LRU at 4MB and 8MB.

Paper (pinned by the abstract): "introducing sharing-awareness reduces the
number of LLC misses incurred by the least-recently-used (LRU) policy by 6%
and 10% on average for a 4MB and 8MB LLC respectively."

Reproduction target: average miss reduction in the mid-single digits at the
4MB configuration, larger at 8MB (rising with capacity), with per-app gains
concentrated in the sharing-heavy applications and ~0 in the private ones.
The bench also reports the oracle composed with SRRIP/DRRIP/SHiP, the
paper's "usable with any existing policy" claim.
"""

from benchmarks.conftest import GEOMETRY_4MB, GEOMETRY_8MB, emit, once
from repro.analysis.aggregate import amean
from repro.oracle.runner import run_oracle_study

BASES = ("lru", "srrip", "drrip", "ship")


def test_f6_oracle_over_lru_headline(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            study4 = run_oracle_study(stream, GEOMETRY_4MB, base="lru")
            study8 = run_oracle_study(stream, GEOMETRY_8MB, base="lru")
            rows.append([
                name,
                study4.base.miss_ratio, study4.oracle.miss_ratio,
                study4.miss_reduction,
                study8.base.miss_ratio, study8.oracle.miss_ratio,
                study8.miss_reduction,
            ])
        return rows

    rows = once(benchmark, build_rows)
    rows.append([
        "mean", amean([r[1] for r in rows]), amean([r[2] for r in rows]),
        amean([r[3] for r in rows]), amean([r[4] for r in rows]),
        amean([r[5] for r in rows]), amean([r[6] for r in rows]),
    ])
    emit(
        "f6_oracle_gains",
        ["workload", "lru_mr@4MB", "oracle_mr@4MB", "reduction@4MB",
         "lru_mr@8MB", "oracle_mr@8MB", "reduction@8MB"],
        rows,
        title="[F6] Sharing-oracle miss reduction over LRU "
              "(paper: 6% @4MB, 10% @8MB on average)",
    )

    mean_row = rows[-1]
    reduction_4mb, reduction_8mb = mean_row[3], mean_row[6]
    # Shape requirements from the abstract: positive average gains at both
    # sizes, larger at the bigger LLC, in the single-digit-percent regime.
    assert 0.02 < reduction_4mb < 0.15
    assert 0.04 < reduction_8mb < 0.20
    assert reduction_8mb > reduction_4mb
    # Private apps gain nothing; no app regresses materially.
    by_name = {row[0]: row for row in rows[:-1]}
    assert abs(by_name["blackscholes"][3]) < 0.01
    assert abs(by_name["swaptions"][3]) < 0.01
    assert all(row[3] > -0.03 and row[6] > -0.03 for row in rows[:-1])


def test_f6b_oracle_composes_with_any_base(benchmark, context):
    """The abstract's "generic oracle ... in conjunction with any existing
    policy": gains for SRRIP/DRRIP/SHiP bases at the 8MB LLC."""

    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            row = [name]
            for base in BASES:
                study = run_oracle_study(stream, GEOMETRY_8MB, base=base)
                row.append(study.miss_reduction)
            rows.append(row)
        return rows

    rows = once(benchmark, build_rows)
    rows.append(["mean", *[amean([r[i] for r in rows])
                           for i in range(1, 1 + len(BASES))]])
    emit(
        "f6b_oracle_bases",
        ["workload", *[f"oracle({b})" for b in BASES]],
        rows,
        title="[F6b] Oracle miss reduction composed with each base (8MB)",
    )

    mean_row = rows[-1]
    for reduction in mean_row[1:]:
        assert reduction > 0.0
