"""F5 — Sharing-awareness of existing policies vs. OPT.

Paper analogue (pinned qualitatively): "we characterize the amount of
sharing-awareness enjoyed by recent proposals compared to the optimal
policy." Measured as the fraction of each policy's LLC hits served by
shared residencies: OPT implicitly preserves the useful shared blocks, and
the gap between a realistic policy's shared-hit volume and OPT's is the
sharing the policy fails to exploit.
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.analysis.aggregate import amean
from repro.characterization.hits import SharingClassifier
from repro.policies.opt import BeladyOptPolicy, compute_next_use
from repro.policies.registry import make_policy
from repro.sim.engine import LlcOnlySimulator

POLICIES = ("lru", "dip", "srrip", "drrip", "ship")


def shared_hits(stream, geometry, policy):
    classifier = SharingClassifier()
    LlcOnlySimulator(geometry, policy, observers=(classifier,)).run(stream)
    return classifier.breakdown.shared_hits


def test_f5_policy_sharing_awareness(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            opt_policy = BeladyOptPolicy(compute_next_use(stream.blocks))
            opt_shared = shared_hits(stream, GEOMETRY_4MB, opt_policy)
            row = [name]
            for policy_name in POLICIES:
                policy_shared = shared_hits(
                    stream, GEOMETRY_4MB, make_policy(policy_name, seed=1)
                )
                row.append(policy_shared / opt_shared if opt_shared else 1.0)
            row.append(opt_shared)
            rows.append(row)
        return rows

    rows = once(benchmark, build_rows)
    summary = ["mean"]
    for column in range(1, 1 + len(POLICIES)):
        summary.append(amean([row[column] for row in rows]))
    summary.append("")
    rows.append(summary)
    emit(
        "f5_policy_sharing",
        ["workload", *[f"{p}/opt" for p in POLICIES], "opt_shared_hits"],
        rows,
        title="[F5] Shared-block hits of each policy relative to OPT (4MB); "
              "1.0 = as sharing-aware as optimal",
    )

    mean_row = rows[-1]
    # No existing policy should match OPT's shared-hit volume on average —
    # the gap is the paper's motivation for explicit sharing-awareness.
    for value in mean_row[1:1 + len(POLICIES)]:
        assert value < 0.98
