"""Shared infrastructure for the experiment benches.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index). Output goes three ways: printed (visible with ``-s``),
written to ``benchmarks/results/<id>.txt``, and CSV to
``benchmarks/results/<id>.csv`` — so EXPERIMENTS.md can be refreshed from
the files regardless of pytest's capture settings.

The scaled 4MB and 8MB machines share identical private levels, so each
workload's LLC stream is recorded once (under the 4MB context) and replayed
against both LLC geometries.

Parallel/caching knobs (both optional):

* ``REPRO_SIM_JOBS=N`` — prefetch every workload's stream across N worker
  processes before the benches start (results are bit-identical to serial).
* ``REPRO_SIM_CACHE_DIR=DIR`` — persist recorded streams across bench runs
  in DIR, so only the first run on a machine pays the hierarchy pass.
"""

import os
from pathlib import Path

import pytest

from repro.analysis.csvout import write_csv
from repro.analysis.tables import render_table
from repro.common.config import profile
from repro.sim.experiment import AUTO_CACHE_DIR, CACHE_DIR_ENV, shared_context
from repro.sim.parallel import jobs_from_env

BENCH_ACCESSES = 200_000
BENCH_SEED = 42

GEOMETRY_4MB = profile("scaled-4mb").llc
GEOMETRY_8MB = profile("scaled-8mb").llc

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def context():
    """The session-wide experiment context (streams recorded once)."""
    cache_dir = AUTO_CACHE_DIR if os.environ.get(CACHE_DIR_ENV) else None
    ctx = shared_context("scaled-4mb", BENCH_ACCESSES, BENCH_SEED,
                         cache_dir=cache_dir)
    jobs = jobs_from_env(default=1)
    if jobs > 1:
        ctx.prefetch(jobs=jobs)
    return ctx


def emit(experiment_id, headers, rows, title, float_digits=4):
    """Print and persist one experiment's table; returns the rendered text."""
    text = render_table(headers, rows, float_digits=float_digits, title=title)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
    write_csv(RESULTS_DIR / f"{experiment_id}.csv", headers, rows)
    return text


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
