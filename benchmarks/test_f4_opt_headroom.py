"""F4 — Belady OPT headroom over LRU.

Paper analogue: the optimal-policy reference that frames every replacement
study — how many of LRU's misses *any* policy could remove. The oracle's
sharing-specific gains (F6) live inside this envelope.
"""

from benchmarks.conftest import GEOMETRY_4MB, GEOMETRY_8MB, emit, once
from repro.analysis.aggregate import amean
from repro.sim.multipass import run_opt, run_policy_on_stream


def test_f4_opt_miss_reduction_over_lru(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            row = [name]
            for geometry in (GEOMETRY_4MB, GEOMETRY_8MB):
                lru = run_policy_on_stream(stream, geometry, "lru")
                opt = run_opt(stream, geometry)
                row.extend([lru.miss_ratio, opt.miss_ratio,
                            opt.miss_reduction_vs(lru)])
            rows.append(row)
        return rows

    rows = once(benchmark, build_rows)
    rows.append([
        "mean", amean([r[1] for r in rows]), amean([r[2] for r in rows]),
        amean([r[3] for r in rows]), amean([r[4] for r in rows]),
        amean([r[5] for r in rows]), amean([r[6] for r in rows]),
    ])
    emit(
        "f4_opt_headroom",
        ["workload", "lru_mr@4MB", "opt_mr@4MB", "opt_red@4MB",
         "lru_mr@8MB", "opt_mr@8MB", "opt_red@8MB"],
        rows,
        title="[F4] Belady OPT headroom over LRU",
    )

    mean_row = rows[-1]
    # OPT never loses, and the headroom should be substantial on average
    # (the paper's era reported 10-30% for multi-threaded suites).
    per_app = rows[:-1]
    assert all(row[3] >= -1e-9 and row[6] >= -1e-9 for row in per_app)
    assert 0.05 < mean_row[3] < 0.6
