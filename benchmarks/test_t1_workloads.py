"""T1 — Workload characteristics table.

Paper analogue: the standard per-application table listing the suites'
access counts, footprints, and static sharing profile. Regenerated from the
synthetic models with the bench trace budget.
"""

from benchmarks.conftest import emit, once


def test_t1_workload_table(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            artifacts = context.artifacts(name)
            trace = artifacts.trace_stats
            hier = artifacts.hierarchy_stats
            rows.append([
                name,
                trace.num_accesses,
                trace.num_threads,
                round(trace.footprint_bytes / 1024),
                trace.write_fraction,
                trace.shared_block_fraction,
                trace.shared_access_fraction,
                hier.llc_accesses,
                hier.llc_miss_ratio,
            ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "t1_workloads",
        ["workload", "accesses", "threads", "footprint_kb", "write_frac",
         "shared_blk_frac", "shared_acc_frac", "llc_accesses", "llc_mr"],
        rows,
        title="[T1] Workload characteristics (scaled machine, LRU recording)",
    )
    assert len(rows) == 19
    # The suite must span the sharing spectrum the paper selects for.
    shared_fractions = {row[0]: row[6] for row in rows}
    assert shared_fractions["blackscholes"] < 0.1
    assert shared_fractions["streamcluster"] > 0.5
