"""A2 — Ablation: predictor table sizing and tagging.

Extension experiment: is the predictors' poor accuracy a capacity artefact?
Sweeping the table index bits (and adding partial tags to remove aliasing)
shows accuracy saturating well below usefulness — the failure is in the
feature, not the budget, which is exactly the paper's conclusion.
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.analysis.aggregate import amean
from repro.predictors.harness import PredictorHarness
from repro.predictors.tables import AddressSharingPredictor, PcSharingPredictor
from repro.sim.multipass import run_policy_on_stream

WORKLOADS = ("streamcluster", "dedup", "canneal", "bodytrack", "water")

CONFIGS = [
    ("address/10b", lambda: AddressSharingPredictor(index_bits=10)),
    ("address/14b", lambda: AddressSharingPredictor(index_bits=14)),
    ("address/18b", lambda: AddressSharingPredictor(index_bits=18)),
    ("address/14b+tag", lambda: AddressSharingPredictor(index_bits=14,
                                                        tag_bits=8)),
    ("pc/10b", lambda: PcSharingPredictor(index_bits=10)),
    ("pc/14b", lambda: PcSharingPredictor(index_bits=14)),
    ("pc/18b", lambda: PcSharingPredictor(index_bits=18)),
]


def test_a2_predictor_sizing(benchmark, context):
    def build_rows():
        rows = []
        for label, factory in CONFIGS:
            accuracies, storage = [], 0
            for name in WORKLOADS:
                stream = context.artifacts(name).stream
                predictor = factory()
                storage = predictor.storage_bits()
                harness = PredictorHarness(predictor)
                run_policy_on_stream(
                    stream, GEOMETRY_4MB, "lru", observers=(harness,)
                )
                accuracies.append(harness.matrix.accuracy)
            rows.append([label, storage // 8, amean(accuracies)])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "a2_predictor_sizing",
        ["config", "storage_bytes", "avg_accuracy"],
        rows,
        title="[A2] Predictor accuracy vs table budget (sharing-heavy "
              "workloads, 4MB)",
    )

    by_label = {row[0]: row for row in rows}
    # 256x more storage must buy only a marginal accuracy improvement —
    # the feature, not the capacity, is the bottleneck.
    for family in ("address", "pc"):
        small = by_label[f"{family}/10b"][2]
        large = by_label[f"{family}/18b"][2]
        assert large - small < 0.15
        assert large < 0.9
