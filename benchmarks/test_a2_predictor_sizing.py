"""A2 — Ablation: predictor table sizing and tagging.

Extension experiment: is the predictors' poor accuracy a capacity artefact?
Sweeping the table index bits (and adding partial tags to remove aliasing)
shows accuracy saturating well below usefulness — the failure is in the
feature, not the budget, which is exactly the paper's conclusion.

Predictor harnesses are passive observers of one and the same base replay,
so the whole sizing grid rides a *single* replay per workload: every
config's harness attaches to one observers tuple and they all see the
identical callback sequence a dedicated replay would deliver.
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.analysis.aggregate import amean
from repro.predictors.harness import PredictorHarness
from repro.predictors.tables import AddressSharingPredictor, PcSharingPredictor
from repro.sim.multipass import run_policy_on_stream

WORKLOADS = ("streamcluster", "dedup", "canneal", "bodytrack", "water")

CONFIGS = [
    ("address/10b", lambda: AddressSharingPredictor(index_bits=10)),
    ("address/14b", lambda: AddressSharingPredictor(index_bits=14)),
    ("address/18b", lambda: AddressSharingPredictor(index_bits=18)),
    ("address/14b+tag", lambda: AddressSharingPredictor(index_bits=14,
                                                        tag_bits=8)),
    ("pc/10b", lambda: PcSharingPredictor(index_bits=10)),
    ("pc/14b", lambda: PcSharingPredictor(index_bits=14)),
    ("pc/18b", lambda: PcSharingPredictor(index_bits=18)),
]


def test_a2_predictor_sizing(benchmark, context):
    def build_rows():
        accuracies = [[] for __ in CONFIGS]
        storage = [0] * len(CONFIGS)
        for name in WORKLOADS:
            stream = context.artifacts(name).stream
            harnesses = []
            for idx, (__, factory) in enumerate(CONFIGS):
                predictor = factory()
                storage[idx] = predictor.storage_bits()
                harnesses.append(PredictorHarness(predictor))
            run_policy_on_stream(
                stream, GEOMETRY_4MB, "lru", observers=tuple(harnesses)
            )
            for idx, harness in enumerate(harnesses):
                accuracies[idx].append(harness.matrix.accuracy)
        return [
            [label, storage[idx] // 8, amean(accuracies[idx])]
            for idx, (label, __) in enumerate(CONFIGS)
        ]

    rows = once(benchmark, build_rows)
    emit(
        "a2_predictor_sizing",
        ["config", "storage_bytes", "avg_accuracy"],
        rows,
        title="[A2] Predictor accuracy vs table budget (sharing-heavy "
              "workloads, 4MB)",
    )

    by_label = {row[0]: row for row in rows}
    # 256x more storage must buy only a marginal accuracy improvement —
    # the feature, not the capacity, is the bottleneck.
    for family in ("address", "pc"):
        small = by_label[f"{family}/10b"][2]
        large = by_label[f"{family}/18b"][2]
        assert large - small < 0.15
        assert large < 0.9
