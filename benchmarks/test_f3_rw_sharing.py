"""F3 — Read-only vs. read-write sharing breakdown.

Paper analogue: decomposing the shared-block hits by whether the block was
written during the residency — read-only sharing (instruction-like and
lookup structures) responds to pure retention, while read-write sharing
additionally involves coherence invalidations.
"""

from benchmarks.conftest import GEOMETRY_4MB, emit, once
from repro.characterization.report import characterize_stream


def test_f3_ro_vs_rw_shared_hits(benchmark, context):
    def build_rows():
        rows = []
        for name in context.workload_list:
            stream = context.artifacts(name).stream
            breakdown = characterize_stream(
                stream, GEOMETRY_4MB, track_phases=False
            ).breakdown
            rows.append([
                name,
                breakdown.shared_residencies,
                breakdown.ro_shared_residencies,
                breakdown.rw_shared_residencies,
                breakdown.ro_fraction_of_shared_hits,
                1.0 - breakdown.ro_fraction_of_shared_hits
                if breakdown.shared_hits else 0.0,
            ])
        return rows

    rows = once(benchmark, build_rows)
    emit(
        "f3_rw_sharing",
        ["workload", "shared_res", "ro_res", "rw_res", "ro_hit_share",
         "rw_hit_share"],
        rows,
        title="[F3] Read-only vs read-write shared residencies and hits (4MB)",
    )

    by_name = {row[0]: row for row in rows}
    # Read-mostly apps vs write-sharing apps must separate.
    assert by_name["streamcluster"][4] > 0.5       # RO-dominated
    assert by_name["fluidanimate"][3] > 0          # migratory RW present
    assert by_name["water"][3] > 0
