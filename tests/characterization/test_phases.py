"""Tests for sharing-phase (temporal stability) tracking."""

import pytest

from repro.characterization.phases import SharingPhaseTracker


def feed(tracker, block, shared):
    """Emit one synthetic residency-end event."""
    core_mask = 0b11 if shared else 0b1
    tracker.residency_ended(
        block, 0, 0, 0, 0, 0, core_mask, 0, 1, 1 if shared else 0, False
    )


class TestSharingPhaseTracker:
    def test_transition_counts(self):
        tracker = SharingPhaseTracker()
        for shared in (True, True, False, True, False, False):
            feed(tracker, block=7, shared=shared)
        stats = tracker.finalize()
        assert stats.shared_to_shared == 1
        assert stats.shared_to_private == 2
        assert stats.private_to_shared == 1
        assert stats.private_to_private == 1
        assert stats.transitions == 5

    def test_conditional_probabilities(self):
        tracker = SharingPhaseTracker()
        for shared in (True, True, True, False):
            feed(tracker, 1, shared)
        stats = tracker.finalize()
        assert stats.p_shared_given_shared == pytest.approx(2 / 3)

    def test_last_value_accuracy(self):
        tracker = SharingPhaseTracker()
        # Perfectly stable block: last-value predictor is always right.
        for __ in range(5):
            feed(tracker, 1, True)
        assert tracker.finalize().last_value_accuracy == 1.0

    def test_alternating_block_defeats_last_value(self):
        tracker = SharingPhaseTracker()
        for i in range(10):
            feed(tracker, 1, i % 2 == 0)
        assert tracker.finalize().last_value_accuracy == 0.0

    def test_block_census(self):
        tracker = SharingPhaseTracker()
        for __ in range(3):
            feed(tracker, 1, True)    # always shared
        for __ in range(3):
            feed(tracker, 2, False)   # always private
        feed(tracker, 3, True)
        feed(tracker, 3, False)       # bimodal
        feed(tracker, 4, True)        # single residency
        stats = tracker.finalize()
        assert stats.blocks_always_shared == 1
        assert stats.blocks_always_private == 1
        assert stats.blocks_bimodal == 1
        assert stats.single_residency_blocks == 1
        assert stats.bimodal_block_fraction == pytest.approx(1 / 3)

    def test_transitions_are_per_block(self):
        tracker = SharingPhaseTracker()
        feed(tracker, 1, True)
        feed(tracker, 2, False)   # different block: no transition
        assert tracker.finalize().transitions == 0

    def test_finalize_idempotent(self):
        tracker = SharingPhaseTracker()
        for shared in (True, False):
            feed(tracker, 1, shared)
        first = tracker.finalize()
        second = tracker.finalize()
        assert first.blocks_bimodal == second.blocks_bimodal == 1

    def test_empty(self):
        stats = SharingPhaseTracker().finalize()
        assert stats.transitions == 0
        assert stats.last_value_accuracy == 0.0
        assert stats.bimodal_block_fraction == 0.0
