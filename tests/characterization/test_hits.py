"""Tests for the sharing classifier and hit breakdown."""

import pytest

from repro.characterization.hits import HitBreakdown, SharingClassifier, popcount
from repro.characterization.report import characterize_stream
from repro.common.config import CacheGeometry
from repro.policies.lru import LruPolicy
from repro.sim.engine import LlcOnlySimulator
from tests.conftest import make_stream

GEOMETRY = CacheGeometry(2 * 2 * 64, 2)


def classify(accesses):
    classifier = SharingClassifier()
    simulator = LlcOnlySimulator(GEOMETRY, LruPolicy(), observers=(classifier,))
    simulator.run(make_stream(accesses))
    return classifier.breakdown


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1) == 1
        assert popcount(0b1011) == 3
        assert popcount(0xFF) == 8


class TestSharingClassifier:
    def test_private_residency(self):
        breakdown = classify([(0, 0, 0, False), (0, 0, 0, False)])
        assert breakdown.residencies == 1
        assert breakdown.shared_residencies == 0
        assert breakdown.private_residencies == 1
        assert breakdown.hits == 1
        assert breakdown.private_hits == 1

    def test_read_only_shared_residency(self):
        breakdown = classify([(0, 0, 0, False), (1, 0, 0, False)])
        assert breakdown.shared_residencies == 1
        assert breakdown.ro_shared_residencies == 1
        assert breakdown.rw_shared_residencies == 0
        assert breakdown.shared_hits == 1
        assert breakdown.ro_shared_hits == 1

    def test_read_write_shared_residency(self):
        breakdown = classify([(0, 0, 0, True), (1, 0, 0, False)])
        assert breakdown.rw_shared_residencies == 1
        assert breakdown.ro_shared_residencies == 0

    def test_write_by_second_core_is_rw(self):
        breakdown = classify([(0, 0, 0, False), (1, 0, 0, True)])
        assert breakdown.rw_shared_residencies == 1

    def test_dead_residencies(self):
        breakdown = classify([(0, 0, 0, False), (0, 0, 1, False)])
        assert breakdown.dead_residencies == 2
        assert breakdown.dead_private_residencies == 2
        assert breakdown.dead_fill_fraction == 1.0

    def test_degree_histogram(self):
        breakdown = classify([
            (0, 0, 0, False), (1, 0, 0, False), (2, 0, 0, False),  # degree 3
            (0, 0, 1, False),                                       # degree 1
        ])
        assert breakdown.degree_residencies == {3: 1, 1: 1}
        assert breakdown.degree_hits[3] == 2

    def test_fractions(self):
        breakdown = classify([
            (0, 0, 0, False), (1, 0, 0, False), (1, 0, 0, False),  # shared, 2 hits
            (0, 0, 1, False), (0, 0, 1, False),                     # private, 1 hit
        ])
        assert breakdown.shared_residency_fraction == 0.5
        assert breakdown.shared_hit_fraction == pytest.approx(2 / 3)
        # Shared residencies earn 2 hits/residency vs 1.5 overall.
        assert breakdown.hit_density_ratio == pytest.approx(2 / 1.5)

    def test_empty_run(self):
        breakdown = classify([])
        assert breakdown.residencies == 0
        assert breakdown.shared_hit_fraction == 0.0
        assert breakdown.hit_density_ratio == 0.0


class TestCharacterizeStream:
    def test_bundles_classifier_and_phases(self):
        accesses = [(0, 0, 0, False), (1, 0, 0, False), (0, 0, 1, False)]
        report = characterize_stream(make_stream(accesses), GEOMETRY)
        assert report.result.accesses == 3
        assert report.breakdown.residencies == 2
        assert report.phases.transitions == 0  # single residency per block

    def test_phase_tracking_optional(self):
        report = characterize_stream(make_stream([(0, 0, 0, False)]), GEOMETRY,
                                     track_phases=False)
        assert report.phases.transitions == 0

    def test_policy_affects_residencies(self):
        accesses = [(0, 0, b % 6, False) for b in range(60)]
        lru = characterize_stream(make_stream(accesses), GEOMETRY, "lru")
        lip = characterize_stream(make_stream(accesses), GEOMETRY, "lip")
        assert lru.result.misses != lip.result.misses
