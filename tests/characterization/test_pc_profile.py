"""Tests for the per-PC sharing ambiguity profiler."""

import pytest

from repro.characterization.pc_profile import PcSharingProfiler
from repro.common.config import CacheGeometry
from repro.policies.lru import LruPolicy
from repro.sim.engine import LlcOnlySimulator
from tests.conftest import make_stream


def feed(profiler, pc, shared):
    core_mask = 0b11 if shared else 0b1
    profiler.residency_ended(0, 0, 0, 0, pc, 0, core_mask, 0, 1,
                             1 if shared else 0, False)


class TestPcSharingProfiler:
    def test_pure_pcs(self):
        profiler = PcSharingProfiler()
        for __ in range(3):
            feed(profiler, 0x10, True)
        for __ in range(2):
            feed(profiler, 0x20, False)
        profile = profiler.finalize()
        assert profile.distinct_pcs == 2
        assert profile.pure_pcs == 2
        assert profile.mixed_pcs == 0
        assert profile.majority_accuracy == 1.0
        assert profile.base_rate == pytest.approx(3 / 5)

    def test_mixed_pc_bounds_accuracy(self):
        profiler = PcSharingProfiler()
        for i in range(10):
            feed(profiler, 0x10, i % 2 == 0)  # perfectly ambiguous PC
        profile = profiler.finalize()
        assert profile.mixed_pcs == 1
        assert profile.mixed_pc_fraction == 1.0
        assert profile.majority_accuracy == 0.5

    def test_majority_is_per_pc(self):
        profiler = PcSharingProfiler()
        feed(profiler, 0x10, True)
        feed(profiler, 0x10, True)
        feed(profiler, 0x10, False)   # PC 0x10 majority shared (2/3)
        feed(profiler, 0x20, False)   # PC 0x20 pure private
        profile = profiler.finalize()
        assert profile.majority_correct == 3
        assert profile.majority_accuracy == pytest.approx(3 / 4)

    def test_per_pc_counts(self):
        profiler = PcSharingProfiler()
        feed(profiler, 0x10, True)
        feed(profiler, 0x10, False)
        assert profiler.per_pc_counts() == [(0x10, 1, 1)]

    def test_empty(self):
        profile = PcSharingProfiler().finalize()
        assert profile.majority_accuracy == 0.0
        assert profile.mixed_pc_fraction == 0.0

    def test_attached_to_llc(self):
        accesses = [
            (0, 0xAA, 0, False), (1, 0xBB, 0, False),  # shared via PC 0xAA
            (0, 0xCC, 1, False),                        # private via PC 0xCC
        ]
        profiler = PcSharingProfiler()
        LlcOnlySimulator(
            CacheGeometry(2 * 2 * 64, 2), LruPolicy(), observers=(profiler,)
        ).run(make_stream(accesses))
        profile = profiler.finalize()
        assert profile.distinct_pcs == 2   # fills from 0xAA and 0xCC
        assert profile.total_fills == 2
        assert profile.shared_fills == 1
