"""Tests for the reuse-distance profiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.characterization.reuse import ReuseDistanceProfiler
from repro.common.errors import ConfigError


def lru_fully_assoc_misses(blocks, capacity):
    """Reference: directly simulated fully-associative LRU."""
    stack = []
    misses = 0
    for block in blocks:
        if block in stack:
            stack.remove(block)
        else:
            misses += 1
            if len(stack) == capacity:
                stack.pop()
        stack.insert(0, block)
    return misses


class TestReuseDistanceProfiler:
    def test_cold_misses_are_far(self):
        profiler = ReuseDistanceProfiler().profile([1, 2, 3])
        assert profiler.histogram == {ReuseDistanceProfiler.FAR: 3}

    def test_distances(self):
        profiler = ReuseDistanceProfiler().profile([1, 2, 1, 3, 2, 1])
        # 1 cold, 2 cold, 1@d1, 3 cold, 2@d2, 1@d2
        assert profiler.histogram[1] == 1
        assert profiler.histogram[2] == 2
        assert profiler.histogram[ReuseDistanceProfiler.FAR] == 3

    def test_immediate_reuse_is_distance_zero(self):
        profiler = ReuseDistanceProfiler().profile([1, 1])
        assert profiler.histogram[0] == 1

    def test_misses_at_matches_direct_lru(self):
        blocks = [1, 2, 3, 1, 4, 2, 5, 1, 3, 3, 2, 6, 1]
        profiler = ReuseDistanceProfiler().profile(blocks)
        for capacity in (1, 2, 3, 4, 8):
            assert profiler.misses_at(capacity) == lru_fully_assoc_misses(
                blocks, capacity
            )

    @settings(max_examples=40)
    @given(
        st.lists(st.integers(min_value=0, max_value=12), max_size=150),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_matches_direct_lru(self, blocks, capacity):
        profiler = ReuseDistanceProfiler().profile(blocks)
        assert profiler.misses_at(capacity) == lru_fully_assoc_misses(
            blocks, capacity
        )

    def test_miss_ratio(self):
        profiler = ReuseDistanceProfiler().profile([1, 1, 1, 2])
        assert profiler.miss_ratio_at(4) == 0.5

    def test_depth_cap_lumps_far(self):
        profiler = ReuseDistanceProfiler(max_depth=2)
        profiler.profile([1, 2, 3, 1])  # 1's reuse distance 2 >= cap
        assert profiler.histogram[ReuseDistanceProfiler.FAR] == 4

    def test_capacity_beyond_depth_rejected(self):
        profiler = ReuseDistanceProfiler(max_depth=4)
        with pytest.raises(ConfigError):
            profiler.misses_at(5)

    def test_invalid_depth(self):
        with pytest.raises(ConfigError):
            ReuseDistanceProfiler(max_depth=0)

    def test_access_returns_distance(self):
        profiler = ReuseDistanceProfiler()
        assert profiler.access(1) == ReuseDistanceProfiler.FAR
        assert profiler.access(1) == 0
