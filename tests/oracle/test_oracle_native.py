"""Differential tests for the native oracle-tier backend.

The oracle lowering extends the nativepath contract across a composition:
a :class:`SharingAwareWrapper` over an exact-type {LRU, SRRIP, SHiP} base,
fed by an :class:`AnnotationHintSource`, replayed through the compact (or
numba) oracle kernel must reproduce the scalar object model bit for bit —
hit/miss counts *and* the wrapper's study counters (``protected_fills``,
``exemptions_applied``, ``releases``) — across every protection mode and
release policy. Anything the spec guard cannot prove safe (bound
instances, undeclared subclasses, closure hint sources, caps that do not
fit the int8 hint column, misaligned annotations, observers) must land on
the object model, recorded as ``backend == "model"``.
"""

import gc

import pytest
from hypothesis import given, settings

from repro.common.config import CacheGeometry
from repro.oracle.annotate import (
    AnnotationHintSource,
    build_stream_annotation,
    oracle_hint_source,
)
from repro.oracle.runner import (
    ANNOTATION_MEMO_CAPACITY,
    annotation_memo_clear,
    annotation_memo_stats,
    run_oracle_study,
    stream_annotation,
)
from repro.oracle.wrapper import (
    PROTECTION_MODES,
    RELEASE_POLICIES,
    SharingAwareWrapper,
)
from repro.policies.base import REPLAY_SCALAR
from repro.policies.registry import make_policy
from repro.sim.multipass import run_policy_on_stream
from repro.sim.nativepath import (
    KERNEL_JOBS_ENV,
    NO_NATIVE_ENV,
    oracle_native_spec,
    replay_oracle_nativepath,
    try_native_replay,
)
from repro.sim.setpath import try_fast_replay
from tests.conftest import make_stream
from tests.strategies import SIGNATURE_PCS, replay_stream_lists

SEED = 23
BASES = ("lru", "srrip", "ship")
GEOMETRY = CacheGeometry(16 * 4 * 64, 4)


@pytest.fixture(autouse=True)
def _auto_native_gates(monkeypatch):
    """Pin the native env gates to their unset-auto defaults."""
    monkeypatch.delenv(NO_NATIVE_ENV, raising=False)
    monkeypatch.delenv(KERNEL_JOBS_ENV, raising=False)


def shared_stream(n=2500, spread=130, cores=4):
    """A deterministic multi-core stream with genuine cross-core reuse."""
    accesses = []
    for i in range(n):
        block = (i * 5 + (i // 11) * 2) % spread
        pc = 0x400000 + ((i * 13) % 6) * 0x1C
        accesses.append((i % cores, pc, block, i % 7 == 0))
    return make_stream(accesses)


def make_wrapper(base, budgets, mode="both", release="budget"):
    return SharingAwareWrapper(
        make_policy(base, seed=SEED), oracle_hint_source(budgets),
        mode, release=release,
    )


def counters(wrapper):
    return (
        wrapper.protected_fills,
        wrapper.exemptions_applied,
        wrapper.releases,
    )


class TestOracleBitIdentity:
    @pytest.mark.parametrize("base", BASES)
    @pytest.mark.parametrize("mode", PROTECTION_MODES)
    @pytest.mark.parametrize("release", RELEASE_POLICIES)
    def test_matches_scalar_model(self, base, mode, release):
        stream = shared_stream()
        budgets = build_stream_annotation(stream, GEOMETRY, horizon_factor=4)
        native_wrapper = make_wrapper(base, budgets, mode, release)
        model_wrapper = make_wrapper(base, budgets, mode, release)
        native = run_policy_on_stream(
            stream, GEOMETRY, native_wrapper, seed=SEED, native=True
        )
        model = run_policy_on_stream(
            stream, GEOMETRY, model_wrapper, seed=SEED, native=False
        )
        assert native == model, (base, mode, release)
        assert counters(native_wrapper) == counters(model_wrapper)
        assert native.tier == REPLAY_SCALAR
        assert native.backend in ("compact", "numba")
        assert model.backend == "model"

    def test_counters_are_exercised(self):
        # The identity above is vacuous if the stream never protects or
        # exempts anything; pin that the canonical stream drives all
        # three counters (releases requires the budget release policy).
        stream = shared_stream()
        budgets = build_stream_annotation(stream, GEOMETRY, horizon_factor=4)
        wrapper = make_wrapper("lru", budgets, "both", "budget")
        run_policy_on_stream(stream, GEOMETRY, wrapper, seed=SEED, native=True)
        assert wrapper.protected_fills > 0
        assert wrapper.exemptions_applied > 0
        assert wrapper.releases > 0

    def test_single_set_geometry(self):
        stream = shared_stream(800, 40)
        geometry = CacheGeometry(1 * 4 * 64, 4)
        budgets = build_stream_annotation(stream, geometry, horizon_factor=4)
        native = run_policy_on_stream(
            stream, geometry, make_wrapper("srrip", budgets), seed=SEED,
            native=True,
        )
        model = run_policy_on_stream(
            stream, geometry, make_wrapper("srrip", budgets), seed=SEED,
            native=False,
        )
        assert native == model
        assert native.backend in ("compact", "numba")

    def test_empty_stream(self):
        stream = make_stream([])
        budgets = build_stream_annotation(stream, GEOMETRY, horizon_factor=4)
        result = replay_oracle_nativepath(
            stream, GEOMETRY, make_wrapper("lru", budgets)
        )
        assert (result.accesses, result.hits, result.misses) == (0, 0, 0)

    def test_base_instance_left_unbound(self):
        stream = shared_stream(900, 50)
        budgets = build_stream_annotation(stream, GEOMETRY, horizon_factor=4)
        wrapper = make_wrapper("ship", budgets)
        shct_before = list(wrapper.base._shct)
        replay_oracle_nativepath(stream, GEOMETRY, wrapper)
        assert wrapper.geometry is None
        assert wrapper.base.geometry is None
        assert wrapper.base._shct == shct_before

    @settings(max_examples=25, deadline=None)
    @given(accesses=replay_stream_lists(pcs=SIGNATURE_PCS))
    def test_hypothesis_streams(self, accesses):
        stream = make_stream(accesses)
        geometry = CacheGeometry(4 * 2 * 64, 2)
        budgets = build_stream_annotation(stream, geometry, horizon_factor=2)
        for base in BASES:
            native_wrapper = make_wrapper(base, budgets)
            model_wrapper = make_wrapper(base, budgets)
            native = run_policy_on_stream(
                stream, geometry, native_wrapper, seed=SEED, native=True
            )
            model = run_policy_on_stream(
                stream, geometry, model_wrapper, seed=SEED, native=False
            )
            assert native == model, base
            assert counters(native_wrapper) == counters(model_wrapper)

    @pytest.mark.parametrize("base", BASES)
    def test_study_native_toggle_is_invisible(self, base):
        stream = shared_stream()
        native = run_oracle_study(
            stream, GEOMETRY, base=base, seed=SEED, native=True
        )
        model = run_oracle_study(
            stream, GEOMETRY, base=base, seed=SEED, native=False
        )
        assert native.oracle == model.oracle
        assert native.base == model.base
        assert native.protected_fills == model.protected_fills
        assert native.exemptions == model.exemptions
        assert native.oracle.backend in ("compact", "numba")
        assert model.oracle.backend == "model"


class TestOracleFallbackChain:
    def _budgets(self, stream, geometry=GEOMETRY):
        return build_stream_annotation(stream, geometry, horizon_factor=4)

    def test_spec_covers_supported_bases(self):
        stream = shared_stream(400, 30)
        budgets = self._budgets(stream)
        for base in BASES:
            assert oracle_native_spec(make_wrapper(base, budgets)) is not None

    def test_unsupported_base_declines(self):
        stream = shared_stream(400, 30)
        budgets = self._budgets(stream)
        wrapper = make_wrapper("drrip", budgets)
        assert oracle_native_spec(wrapper) is None
        result = run_policy_on_stream(
            stream, GEOMETRY, wrapper, seed=SEED, native=True
        )
        assert result.backend == "model"

    def test_bound_wrapper_declines(self):
        stream = shared_stream(400, 30)
        wrapper = make_wrapper("lru", self._budgets(stream))
        wrapper.bind(GEOMETRY)
        assert oracle_native_spec(wrapper) is None
        assert try_native_replay(stream, GEOMETRY, wrapper) is None

    def test_bound_base_declines(self):
        stream = shared_stream(400, 30)
        wrapper = make_wrapper("lru", self._budgets(stream))
        wrapper.base.bind(GEOMETRY)
        assert oracle_native_spec(wrapper) is None

    def test_subclassed_wrapper_declines(self):
        class TweakedWrapper(SharingAwareWrapper):
            pass

        stream = shared_stream(400, 30)
        wrapper = TweakedWrapper(
            make_policy("lru", seed=SEED),
            oracle_hint_source(self._budgets(stream)), "both",
        )
        assert oracle_native_spec(wrapper) is None
        result = run_policy_on_stream(
            stream, GEOMETRY, wrapper, seed=SEED, native=True
        )
        assert result.backend == "model"

    def test_subclassed_hint_source_declines(self):
        class TweakedSource(AnnotationHintSource):
            pass

        stream = shared_stream(400, 30)
        wrapper = SharingAwareWrapper(
            make_policy("lru", seed=SEED),
            TweakedSource(self._budgets(stream)), "both",
        )
        assert oracle_native_spec(wrapper) is None

    def test_closure_hint_source_declines(self):
        wrapper = SharingAwareWrapper(
            make_policy("lru", seed=SEED), lambda llc, c, b, pc: 0, "both"
        )
        assert oracle_native_spec(wrapper) is None

    def test_oversized_cap_declines(self):
        # A cap beyond int8 range cannot ride the int8 hint column.
        stream = shared_stream(400, 30)
        budgets = build_stream_annotation(
            stream, GEOMETRY, horizon_factor=4, cap=300
        )
        wrapper = SharingAwareWrapper(
            make_policy("lru", seed=SEED),
            AnnotationHintSource(budgets, cap=300), "both",
        )
        assert oracle_native_spec(wrapper) is None

    def test_misaligned_annotation_declines(self):
        # An annotation built for a different stream length cannot be
        # laid down as a per-access hint column.
        short = shared_stream(200, 30)
        stream = shared_stream(400, 30)
        wrapper = make_wrapper("lru", self._budgets(short))
        assert replay_oracle_nativepath(stream, GEOMETRY, wrapper) is None

    def test_observers_decline(self):
        class Observer:
            def residency_started(self, *args): pass
            def residency_ended(self, *args): pass

        stream = shared_stream(400, 30)
        wrapper = make_wrapper("lru", self._budgets(stream))
        assert try_native_replay(
            stream, GEOMETRY, wrapper, observers=(Observer(),)
        ) is None

    def test_env_escape_hatch_lands_on_model(self, monkeypatch):
        stream = shared_stream(600, 40)
        budgets = self._budgets(stream)
        monkeypatch.setenv(NO_NATIVE_ENV, "1")
        gated_wrapper = make_wrapper("srrip", budgets)
        gated = run_policy_on_stream(
            stream, GEOMETRY, gated_wrapper, seed=SEED
        )
        assert gated.backend == "model"
        monkeypatch.delenv(NO_NATIVE_ENV)
        auto = run_policy_on_stream(
            stream, GEOMETRY, make_wrapper("srrip", budgets), seed=SEED
        )
        assert auto.backend in ("compact", "numba")
        assert gated == auto

    def test_no_fastpath_still_means_pure_model(self):
        stream = shared_stream(400, 30)
        wrapper = make_wrapper("lru", self._budgets(stream))
        assert try_fast_replay(
            stream, GEOMETRY, wrapper, fastpath=False
        ) is None

    def test_profile_records_native_stages(self):
        stream = shared_stream(600, 40)
        profile = {}
        replay_oracle_nativepath(
            stream, GEOMETRY, make_wrapper("lru", self._budgets(stream)),
            profile=profile,
        )
        assert profile["native_prepare"] >= 0.0
        assert profile["native_kernel"] >= 0.0
        assert profile["native_backend"] in ("compact", "numba")


class TestAnnotationMemo:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self):
        annotation_memo_clear()
        yield
        annotation_memo_clear()

    def test_hit_and_miss_counters(self):
        stream = shared_stream(300, 30)
        first = stream_annotation(stream, GEOMETRY, 4)
        again = stream_annotation(stream, GEOMETRY, 4)
        assert again is first
        stats = annotation_memo_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        assert stats["capacity"] == ANNOTATION_MEMO_CAPACITY

    def test_window_collision_shares_and_distinct_windows_do_not(self):
        # Same window product (factor * num_blocks) -> one computation;
        # a different factor -> a fresh entry.
        stream = shared_stream(300, 30)
        doubled = CacheGeometry(
            GEOMETRY.size_bytes * 2, GEOMETRY.ways, GEOMETRY.block_bytes
        )
        a = stream_annotation(stream, GEOMETRY, 4)
        b = stream_annotation(stream, doubled, 2)
        assert b is a
        c = stream_annotation(stream, GEOMETRY, 2)
        assert c is not a
        assert annotation_memo_stats()["entries"] == 2

    def test_lru_bound_and_eviction_counter(self):
        stream = shared_stream(200, 20)
        for cap in range(ANNOTATION_MEMO_CAPACITY + 8):
            stream_annotation(stream, GEOMETRY, 2, cap=cap + 1)
        stats = annotation_memo_stats()
        assert stats["entries"] == ANNOTATION_MEMO_CAPACITY
        assert stats["evictions"] == 8

    def test_lru_order_evicts_least_recent(self):
        stream = shared_stream(200, 20)
        first = stream_annotation(stream, GEOMETRY, 2, cap=1)
        for cap in range(2, ANNOTATION_MEMO_CAPACITY + 1):
            stream_annotation(stream, GEOMETRY, 2, cap=cap)
        # Touch the oldest entry, then overflow: the touched entry must
        # survive and the second-oldest go instead.
        assert stream_annotation(stream, GEOMETRY, 2, cap=1) is first
        stream_annotation(stream, GEOMETRY, 2, cap=ANNOTATION_MEMO_CAPACITY + 1)
        assert stream_annotation(stream, GEOMETRY, 2, cap=1) is first
        assert annotation_memo_stats()["evictions"] == 1

    def test_dead_streams_are_purged(self):
        stream = shared_stream(200, 20)
        stream_annotation(stream, GEOMETRY, 2)
        assert annotation_memo_stats()["entries"] == 1
        del stream
        gc.collect()
        # The weakref callback fires on referent death; a later insert
        # must not resurrect the dead key.
        other = shared_stream(100, 10)
        stream_annotation(other, GEOMETRY, 2)
        assert annotation_memo_stats()["entries"] == 1

    def test_clear_resets_counters(self):
        stream = shared_stream(200, 20)
        stream_annotation(stream, GEOMETRY, 2)
        stream_annotation(stream, GEOMETRY, 2)
        annotation_memo_clear()
        stats = annotation_memo_stats()
        assert stats == {
            "entries": 0, "capacity": ANNOTATION_MEMO_CAPACITY,
            "hits": 0, "misses": 0, "evictions": 0,
        }
