"""Tests for the oracle annotation passes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.npsupport import HAVE_NUMPY
from repro.oracle.annotate import (
    build_sharing_annotation,
    build_stream_annotation,
    oracle_hint_source,
)
from tests.conftest import make_stream


def naive_stream_annotation(accesses, horizon, cap=127):
    """O(n^2) reference implementation of the future-sharing budget."""
    budgets = [0] * (len(accesses) + 1)
    for i, (core, __, block, __w) in enumerate(accesses):
        count = 0
        for j in range(i + 1, min(i + horizon + 1, len(accesses))):
            other_core, __, other_block, __w2 = accesses[j]
            if other_block == block and other_core != core:
                count += 1
        budgets[i + 1] = min(count, cap)
    return budgets


GEOMETRY = CacheGeometry(2 * 2 * 64, 2)  # 4 blocks capacity

stream_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.just(0),
        st.integers(min_value=0, max_value=6),
        st.booleans(),
    ),
    max_size=60,
)


class TestStreamAnnotation:
    def test_simple_future_sharing(self):
        accesses = [
            (0, 0, 5, False),   # core 0 fills block 5
            (1, 0, 5, False),   # core 1 reads it -> fill budget 1
            (0, 0, 5, False),   # same-core -> not counted toward ordinal 2
        ]
        budgets = build_stream_annotation(make_stream(accesses), GEOMETRY,
                                          horizon_factor=8)
        assert budgets[1] == 1   # ordinal 1: one future access by core 1
        assert budgets[2] == 1   # ordinal 2 (core 1): core 0 at ordinal 3
        assert budgets[3] == 0

    def test_private_stream_gets_zero(self):
        accesses = [(0, 0, b % 3, False) for b in range(20)]
        budgets = build_stream_annotation(make_stream(accesses), GEOMETRY)
        assert max(budgets) == 0

    def test_horizon_cuts_far_sharing(self):
        # Block 9 reused by the other core far beyond the horizon window.
        accesses = [(0, 0, 9, False)]
        accesses += [(0, 0, 100 + i, False) for i in range(50)]
        accesses += [(1, 0, 9, False)]
        stream = make_stream(accesses)
        wide = build_stream_annotation(stream, GEOMETRY, horizon_factor=30)
        narrow = build_stream_annotation(stream, GEOMETRY, horizon_factor=1)
        assert wide[1] == 1
        assert narrow[1] == 0

    def test_cap_saturates(self):
        accesses = [(0, 0, 5, False)] + [(1, 0, 5, False)] * 20
        budgets = build_stream_annotation(make_stream(accesses), GEOMETRY, cap=3)
        assert budgets[1] == 3

    def test_rejects_bad_parameters(self):
        stream = make_stream([])
        with pytest.raises(ConfigError):
            build_stream_annotation(stream, GEOMETRY, horizon_factor=0)
        with pytest.raises(ConfigError):
            build_stream_annotation(stream, GEOMETRY, cap=0)

    @settings(max_examples=50)
    @given(stream_entries, st.integers(min_value=1, max_value=5))
    def test_matches_naive_reference(self, accesses, horizon_factor):
        stream = make_stream(accesses)
        budgets = build_stream_annotation(stream, GEOMETRY,
                                          horizon_factor=horizon_factor)
        expected = naive_stream_annotation(
            accesses, horizon_factor * GEOMETRY.num_blocks
        )
        assert list(budgets) == expected


needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@needs_numpy
class TestStreamAnnotationVectorized:
    """The numpy annotation kernel is bit-identical to the Python scan."""

    def both(self, accesses, horizon_factor=3, cap=127):
        stream = make_stream(accesses)
        python = build_stream_annotation(
            stream, GEOMETRY, horizon_factor=horizon_factor, cap=cap,
            use_numpy=False,
        )
        vectorized = build_stream_annotation(
            stream, GEOMETRY, horizon_factor=horizon_factor, cap=cap,
            use_numpy=True,
        )
        assert list(vectorized) == list(python)
        return python

    @settings(max_examples=50)
    @given(stream_entries, st.integers(min_value=1, max_value=5))
    def test_random_streams_agree(self, accesses, horizon_factor):
        self.both(accesses, horizon_factor=horizon_factor)

    def test_empty_stream(self):
        assert list(self.both([])) == [0]

    def test_cap_saturation_agrees(self):
        accesses = [(0, 0, 5, False)] + [(1, 0, 5, False)] * 30
        budgets = self.both(accesses, horizon_factor=8, cap=3)
        assert budgets[1] == 3

    def test_wide_block_ids_take_factorization_path(self):
        # (block * num_cores + core) no longer fits beside the position
        # bits, so the kernel must factorize to dense ids first.
        accesses = [
            (i % 2, 0, (1 << 50) + (i % 3), False) for i in range(32)
        ]
        self.both(accesses, horizon_factor=4)

    def test_long_stream_auto_path(self):
        accesses = [
            ((i // 7) % 4, 0, (i * 31) % 11, False) for i in range(6_000)
        ]
        stream = make_stream(accesses)
        auto = build_stream_annotation(stream, GEOMETRY, horizon_factor=2)
        python = build_stream_annotation(
            stream, GEOMETRY, horizon_factor=2, use_numpy=False
        )
        assert list(auto) == list(python)


class TestPolicyAnnotation:
    def test_budget_recorded_at_fill_ordinal(self):
        accesses = [
            (0, 0, 5, False),   # ordinal 1: fill
            (1, 0, 5, False),   # ordinal 2: cross-core hit
            (1, 0, 5, False),   # ordinal 3: another (same core 1)
            (0, 0, 5, True),    # ordinal 4: filler again
        ]
        budgets = build_sharing_annotation(make_stream(accesses), GEOMETRY)
        assert budgets[1] == 2   # two hits by cores != fill core
        assert budgets[2] == 0   # ordinal 2 was a hit, not a fill

    def test_private_residencies_zero(self):
        accesses = [(0, 0, b, False) for b in (1, 2, 1, 2)]
        budgets = build_sharing_annotation(make_stream(accesses), GEOMETRY)
        assert max(budgets) == 0

    def test_accepts_policy_instance(self):
        from repro.policies.lru import LruPolicy

        budgets = build_sharing_annotation(
            make_stream([(0, 0, 1, False)]), GEOMETRY, policy=LruPolicy()
        )
        assert len(budgets) == 2


class TestHintSource:
    def test_reads_by_access_ordinal(self):
        from array import array

        budgets = array("i", [0, 0, 7])

        class FakeLlc:
            access_count = 2

        hint = oracle_hint_source(budgets)
        assert hint(FakeLlc(), 0, 0, 0) == 7
