"""Tests for the sharing-aware wrapper policy."""

import pytest

from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.oracle.wrapper import SharingAwareWrapper
from repro.policies.lru import LruPolicy
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.sim.engine import LlcOnlySimulator
from tests.conftest import make_stream, read_stream


def hint_blocks(protected_blocks, budget=1):
    """Hint source protecting a fixed block set with a fixed budget."""

    def hint(llc, block, pc, core):
        return budget if block in protected_blocks else 0

    return hint


def one_set_llc(wrapper, ways=3):
    return SharedLlc(CacheGeometry(ways * 64, ways), wrapper)


class TestConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            SharingAwareWrapper(LruPolicy(), hint_blocks(set()), mode="magic")

    def test_rejects_unknown_release(self):
        with pytest.raises(ConfigError):
            SharingAwareWrapper(LruPolicy(), hint_blocks(set()), release="later")

    def test_name_mentions_base(self):
        wrapper = SharingAwareWrapper(LruPolicy(), hint_blocks(set()))
        assert "lru" in wrapper.name


class TestVictimExemption:
    def test_protected_block_skipped(self):
        wrapper = SharingAwareWrapper(LruPolicy(), hint_blocks({0}),
                                      mode="victim-exempt")
        llc = one_set_llc(wrapper, ways=2)
        llc.access(0, 0, 0, False)   # protected fill
        llc.access(0, 0, 1, False)
        __, evicted = llc.access(0, 0, 2, False)
        # LRU would evict block 0; protection forces block 1 out instead.
        assert evicted == 1
        assert wrapper.exemptions_applied == 1

    def test_all_protected_falls_back_to_base(self):
        wrapper = SharingAwareWrapper(LruPolicy(), hint_blocks({0, 1}),
                                      mode="victim-exempt")
        llc = one_set_llc(wrapper, ways=2)
        llc.access(0, 0, 0, False)
        llc.access(0, 0, 1, False)
        __, evicted = llc.access(0, 0, 2, False)
        assert evicted == 0          # base LRU choice

    def test_no_hints_behaves_exactly_like_base(self):
        blocks = [b % 7 for b in range(200)]
        stream = read_stream(blocks)
        geometry = CacheGeometry(4 * 64, 4)
        plain = LlcOnlySimulator(geometry, LruPolicy()).run(stream)
        wrapped = LlcOnlySimulator(
            geometry, SharingAwareWrapper(LruPolicy(), hint_blocks(set()))
        ).run(stream)
        assert wrapped.misses == plain.misses

    @pytest.mark.parametrize("base_name", [n for n in POLICY_NAMES])
    def test_hint_free_equivalence_for_every_base(self, base_name):
        """With zero hints the wrapper must reproduce the base exactly
        (same seeds, same stream)."""
        import random

        rng = random.Random(5)
        stream = make_stream([
            (rng.randrange(2), rng.randrange(50), rng.randrange(40),
             rng.random() < 0.3)
            for __ in range(800)
        ])
        geometry = CacheGeometry(4 * 4 * 64, 4)
        plain = LlcOnlySimulator(geometry, make_policy(base_name, seed=3)).run(stream)
        wrapped = LlcOnlySimulator(
            geometry,
            SharingAwareWrapper(make_policy(base_name, seed=3), hint_blocks(set())),
        ).run(stream)
        assert wrapped.misses == plain.misses


class TestReleasePolicies:
    def setup_protected_pair(self, release, budget=2):
        wrapper = SharingAwareWrapper(
            LruPolicy(), hint_blocks({0}, budget=budget),
            mode="victim-exempt", release=release,
        )
        llc = one_set_llc(wrapper, ways=2)
        llc.access(0, 0, 0, False)   # protected, filled by core 0
        llc.access(0, 0, 1, False)
        return wrapper, llc

    def test_budget_release_counts_cross_core_hits(self):
        wrapper, llc = self.setup_protected_pair("budget", budget=2)
        llc.access(1, 0, 0, False)   # cross-core hit 1: budget 2 -> 1
        llc.access(0, 0, 1, False)   # keep block 1 more recent than 0
        __, evicted = llc.access(0, 0, 2, False)
        assert evicted == 1          # still protected
        llc.access(1, 0, 0, False)   # cross-core hit 2: budget exhausted
        assert wrapper.releases == 1
        llc.access(0, 0, 2, False)
        __, evicted = llc.access(0, 0, 3, False)
        assert evicted == 0          # protection gone; 0 is LRU

    def test_same_core_hits_do_not_release(self):
        wrapper, llc = self.setup_protected_pair("budget", budget=1)
        llc.access(0, 0, 0, False)   # filler's own hit
        assert wrapper.releases == 0

    def test_first_share_releases_immediately(self):
        wrapper, llc = self.setup_protected_pair("first-share", budget=99)
        llc.access(1, 0, 0, False)
        assert wrapper.releases == 1

    def test_never_release_holds_through_sharing(self):
        wrapper, llc = self.setup_protected_pair("never", budget=1)
        for __ in range(5):
            llc.access(1, 0, 0, False)
        assert wrapper.releases == 0
        llc.access(0, 0, 1, False)
        __, evicted = llc.access(0, 0, 2, False)
        assert evicted == 1          # block 0 still exempt


class TestInsertPromote:
    def test_hinted_fill_promoted(self):
        from repro.policies.rrip import SrripPolicy

        base = SrripPolicy()
        wrapper = SharingAwareWrapper(base, hint_blocks({5}),
                                      mode="insert-promote")
        llc = one_set_llc(wrapper, ways=2)
        llc.access(0, 0, 5, False)
        llc.access(0, 0, 6, False)
        way5 = llc._where[5][1]
        way6 = llc._where[6][1]
        assert base._rrpv[0][way5] == 0                  # promoted
        assert base._rrpv[0][way6] == base.rrpv_max - 1  # normal insertion

    def test_victim_selection_unconstrained(self):
        wrapper = SharingAwareWrapper(LruPolicy(), hint_blocks({0}),
                                      mode="insert-promote")
        llc = one_set_llc(wrapper, ways=2)
        llc.access(0, 0, 0, False)
        llc.access(0, 0, 1, False)
        llc.access(0, 0, 1, False)   # block 1 most recent
        __, evicted = llc.access(0, 0, 2, False)
        assert evicted == 0          # protection does not exempt here


class TestRankVictims:
    def test_unprotected_ranked_first(self):
        wrapper = SharingAwareWrapper(LruPolicy(), hint_blocks({0}))
        llc = one_set_llc(wrapper, ways=3)
        for block in (0, 1, 2):
            llc.access(0, 0, block, False)
        order = wrapper.rank_victims(0)
        protected_way = llc._where[0][1]
        assert order[-1] == protected_way

    def test_counts_protected_fills(self):
        wrapper = SharingAwareWrapper(LruPolicy(), hint_blocks({0, 1}))
        llc = one_set_llc(wrapper, ways=3)
        for block in (0, 1, 2):
            llc.access(0, 0, block, False)
        assert wrapper.protected_fills == 2


from hypothesis import given, settings, strategies as st


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=5),
                  st.integers(min_value=0, max_value=15),
                  st.booleans()),
        max_size=300,
    ),
    st.integers(min_value=0, max_value=3),
)
def test_wrapper_invariants_under_random_traffic(accesses, budget):
    """Budgets never go negative, the set never over-fills, and the wrapped
    run touches exactly the same number of accesses as an unwrapped one."""
    geometry = CacheGeometry(2 * 2 * 64, 2)
    protected_blocks = {0, 1, 2}
    wrapper = SharingAwareWrapper(
        LruPolicy(), hint_blocks(protected_blocks, budget=budget)
    )
    llc = SharedLlc(geometry, wrapper)
    for core, pc, block, is_write in accesses:
        llc.access(core, pc, block, is_write)
    assert llc.occupancy() <= geometry.num_blocks
    for set_budgets in wrapper._budget:
        assert all(value >= 0 for value in set_budgets)
    assert llc.hits + llc.misses == len(accesses)
