"""Tests for the end-to-end oracle study runner."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.oracle.runner import run_oracle_study
from repro.policies.registry import POLICY_NAMES
from tests.conftest import make_stream

GEOMETRY = CacheGeometry(2 * 4 * 64, 4)  # 2 sets x 4 ways = 8 blocks


def sharing_with_pollution_stream(rounds=60):
    """Core 0 streams one-shot pollution; a small shared set is re-read by
    core 1 at intervals just beyond LRU's reach — the exact pattern the
    oracle is built to fix."""
    accesses = []
    cold = 1000
    for round_ in range(rounds):
        for shared_block in (0, 2):
            accesses.append((round_ % 2, 0x10, shared_block, False))
        for __ in range(10):
            cold += 2  # stay in set 0 to pressure the shared blocks
            accesses.append((0, 0x20, cold, False))
    return make_stream(accesses)


class TestRunOracleStudy:
    def test_oracle_beats_lru_on_target_pattern(self):
        # The pattern's cross-core reuse interval (12 accesses) exceeds the
        # auto horizon at miss ratio 1.0 (one turnover = 8 accesses), so fix
        # the horizon explicitly at a few turnovers.
        study = run_oracle_study(sharing_with_pollution_stream(), GEOMETRY,
                                 horizon_factor=8)
        assert study.base.misses > study.oracle.misses
        assert study.miss_reduction > 0.1

    def test_private_stream_gets_no_gain_and_no_loss(self):
        accesses = [(0, 0, b % 20, False) for b in range(500)]
        study = run_oracle_study(make_stream(accesses), GEOMETRY)
        assert study.oracle.misses == study.base.misses
        assert study.shared_fill_fraction == 0.0
        assert study.protected_fills == 0

    def test_result_fields_consistent(self):
        study = run_oracle_study(sharing_with_pollution_stream(), GEOMETRY,
                                 horizon_factor=8)
        assert study.base.accesses == study.oracle.accesses
        # Under thrashing LRU no residency survives to its cross-core use,
        # so the realised sharing fraction is zero even though the stream
        # annotation (and hence protected_fills) sees the future sharing —
        # exactly the gap between realised and potential sharing the oracle
        # exploits.
        assert 0 <= study.shared_fill_fraction <= 1
        assert study.protected_fills > 0
        assert study.horizon_factor >= 1

    def test_explicit_horizon_override(self):
        stream = sharing_with_pollution_stream()
        study = run_oracle_study(stream, GEOMETRY, horizon_factor=3)
        assert study.horizon_factor == 3

    def test_rejects_bad_turnovers(self):
        with pytest.raises(ConfigError):
            run_oracle_study(sharing_with_pollution_stream(), GEOMETRY,
                             horizon_turnovers=0)

    @pytest.mark.parametrize("base", POLICY_NAMES)
    def test_composes_with_every_base_policy(self, base):
        study = run_oracle_study(sharing_with_pollution_stream(), GEOMETRY,
                                 base=base, seed=7, horizon_factor=8)
        assert study.base.accesses == study.oracle.accesses
        # The generic-oracle guarantee on this sharing-friendly pattern:
        # never a large regression for any base.
        assert study.miss_reduction > -0.05

    @pytest.mark.parametrize("mode", ["victim-exempt", "insert-promote", "both"])
    def test_modes_run(self, mode):
        study = run_oracle_study(sharing_with_pollution_stream(), GEOMETRY,
                                 mode=mode, horizon_factor=8)
        assert study.oracle.misses <= study.base.misses

    @pytest.mark.parametrize("release", ["budget", "first-share", "never"])
    def test_releases_run(self, release):
        study = run_oracle_study(sharing_with_pollution_stream(), GEOMETRY,
                                 release=release, horizon_factor=8)
        assert study.oracle.accesses == study.base.accesses


class TestHorizonDerivation:
    def test_auto_horizon_clamped(self):
        from repro.oracle.runner import MAX_HORIZON_FACTOR

        # A nearly hit-only stream drives the turnover horizon huge; the
        # cap must bound it.
        accesses = [(i % 2, 0, i % 3, False) for i in range(500)]
        study = run_oracle_study(make_stream(accesses), GEOMETRY)
        assert 1 <= study.horizon_factor <= MAX_HORIZON_FACTOR

    def test_auto_horizon_small_for_thrashing(self):
        # Miss ratio ~1.0 -> horizon ~ turnovers / 1.0 rounded down.
        accesses = [(0, 0, b, False) for b in range(500)]
        study = run_oracle_study(make_stream(accesses), GEOMETRY)
        assert study.horizon_factor == 1
