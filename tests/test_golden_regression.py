"""Golden regression: the headline policy-comparison table, pinned.

A committed JSON snapshot (``tests/data/golden_compare.json``) of the
LRU/DIP/SRRIP/DRRIP/SHiP/OPT miss ratios on the default scaled-4mb
geometry. The simulators are deterministic, so these numbers must not
drift by accident: any legitimate change to eviction order, seeding, or
workload models shifts them, and this test forces that shift to be
noticed, reviewed, and re-pinned.

The check is tolerance-based (``TOLERANCE`` absolute on miss ratios, and
exact on access counts) so an intentional re-pin can tell a real
behavioural change from floating-point noise in the stored ratios.

Regenerate after an intended change with::

    PYTHONPATH=src:. python -m tests.test_golden_regression
"""

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_compare.json"

# The pinned scenario: small enough to run in seconds, real enough to
# exercise shared/private hits, writebacks, and every policy's duel logic.
PROFILE = "scaled-4mb"
WORKLOADS = ("dedup", "swaptions", "water", "fft")
POLICIES = ("lru", "dip", "srrip", "drrip", "ship")
TARGET_ACCESSES = 12_000
SEED = 42

TOLERANCE = 0.002
"""Absolute miss-ratio drift allowed before the test fails."""


def compute_table():
    """The comparison table the fixture pins, computed fresh."""
    from repro.common.config import profile
    from repro.sim.experiment import ExperimentContext

    context = ExperimentContext(
        profile(PROFILE), target_accesses=TARGET_ACCESSES, seed=SEED,
        workloads=list(WORKLOADS),
    )
    table = {}
    for name in WORKLOADS:
        comparison = context.compare_policies(
            name, list(POLICIES), include_opt=True
        )
        table[name] = {
            policy: {
                "accesses": result.accesses,
                "misses": result.misses,
                "miss_ratio": round(result.miss_ratio, 6),
            }
            for policy, result in comparison.results.items()
        }
    return {
        "profile": PROFILE,
        "seed": SEED,
        "target_accesses": TARGET_ACCESSES,
        "policies": list(POLICIES) + ["opt"],
        "table": table,
    }


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing at {GOLDEN_PATH}; regenerate with "
            f"`PYTHONPATH=src:. python -m tests.test_golden_regression`"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def current():
    return compute_table()


class TestGoldenComparison:
    def test_scenario_is_pinned(self, golden):
        assert golden["profile"] == PROFILE
        assert golden["seed"] == SEED
        assert golden["target_accesses"] == TARGET_ACCESSES
        assert set(golden["table"]) == set(WORKLOADS)

    def test_every_cell_present(self, golden, current):
        for name in WORKLOADS:
            assert set(golden["table"][name]) == set(current["table"][name])

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_miss_ratios_match_golden(self, golden, current, workload):
        drifts = []
        for policy, pinned in golden["table"][workload].items():
            fresh = current["table"][workload][policy]
            assert fresh["accesses"] == pinned["accesses"], (
                f"{workload}/{policy}: stream length changed "
                f"({pinned['accesses']} -> {fresh['accesses']})"
            )
            drift = abs(fresh["miss_ratio"] - pinned["miss_ratio"])
            if drift > TOLERANCE:
                drifts.append(
                    f"{workload}/{policy}: miss_ratio "
                    f"{pinned['miss_ratio']} -> {fresh['miss_ratio']} "
                    f"(drift {drift:.6f} > {TOLERANCE})"
                )
        assert not drifts, (
            "golden comparison drifted — if intentional, regenerate the "
            "fixture:\n  " + "\n  ".join(drifts)
        )

    def test_opt_is_lower_bound_in_golden(self, golden):
        # Sanity on the fixture itself: OPT never misses more than LRU.
        for name, row in golden["table"].items():
            assert row["opt"]["misses"] <= row["lru"]["misses"], name


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_table(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
