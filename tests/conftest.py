"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.cache.stream import LlcStream, LlcStreamBuilder
from repro.common.config import CacheGeometry, MachineConfig
from repro.sim.experiment import CACHE_DIR_ENV
from repro.trace.trace import Trace, TraceBuilder


@pytest.fixture(autouse=True, scope="session")
def _hermetic_cache_dir(tmp_path_factory):
    """Point the persistent stream cache at a per-session temp directory.

    CLI subcommands default to the machine-wide cache; tests must neither
    read nor pollute the developer's real ~/.cache/repro-sim.
    """
    import os

    directory = tmp_path_factory.mktemp("repro-sim-cache")
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(directory)
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


def make_stream(accesses, name="test-stream") -> LlcStream:
    """Build an LlcStream from (core, pc, block, is_write) tuples."""
    builder = LlcStreamBuilder(name=name)
    for core, pc, block, is_write in accesses:
        builder.append(core, pc, block, is_write)
    return builder.build()


def make_trace(accesses, name="test-trace") -> Trace:
    """Build a Trace from (tid, pc, addr, is_write) tuples."""
    builder = TraceBuilder(name=name)
    for tid, pc, addr, is_write in accesses:
        builder.append(tid, pc, addr, is_write)
    return builder.build()


def read_stream(blocks, core=0, pc=0x100) -> LlcStream:
    """An all-reads single-core stream over a block sequence."""
    return make_stream([(core, pc, block, False) for block in blocks])


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """4 sets x 2 ways of 64B blocks (512B)."""
    return CacheGeometry(size_bytes=512, ways=2, block_bytes=64)


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """8 sets x 4 ways of 64B blocks (2KB)."""
    return CacheGeometry(size_bytes=2048, ways=4, block_bytes=64)


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """2-core machine small enough to exercise every eviction path."""
    return MachineConfig(
        name="tiny",
        num_cores=2,
        l1=CacheGeometry(512, 4),       # 2 sets x 4 ways
        l2=CacheGeometry(1024, 4),      # 4 sets x 4 ways
        llc=CacheGeometry(4096, 8),     # 8 sets x 8 ways
        scale=1024,
    )


@pytest.fixture
def quad_machine() -> MachineConfig:
    """4-core machine for sharing-heavy hierarchy tests."""
    return MachineConfig(
        name="quad",
        num_cores=4,
        l1=CacheGeometry(512, 4),
        l2=CacheGeometry(1024, 4),
        llc=CacheGeometry(8192, 8),     # 16 sets x 8 ways
        scale=1024,
    )
