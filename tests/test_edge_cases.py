"""Edge-case and cross-layer equivalence tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.hierarchy import CmpHierarchy
from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry, MachineConfig
from repro.policies.lru import LruPolicy
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.sim.multipass import run_policy_on_stream
from tests.conftest import make_trace, read_stream


class TestDegenerateGeometries:
    def test_direct_mapped_llc(self):
        llc = SharedLlc(CacheGeometry(4 * 64, 1), LruPolicy())  # 4 sets, 1 way
        llc.access(0, 0, 0, False)
        hit, evicted = llc.access(0, 0, 4, False)  # same set
        assert not hit
        assert evicted == 0

    def test_single_set_llc(self):
        llc = SharedLlc(CacheGeometry(4 * 64, 4), LruPolicy())  # 1 set
        for block in range(4):
            llc.access(0, 0, block, False)
        assert llc.occupancy() == 4

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_every_policy_on_direct_mapped(self, name):
        llc = SharedLlc(CacheGeometry(8 * 64, 1), make_policy(name, seed=1))
        for i in range(100):
            llc.access(0, 0, i % 24, False)
        assert llc.occupancy() <= 8

    def test_single_core_machine(self):
        machine = MachineConfig(
            name="uni", num_cores=1,
            l1=CacheGeometry(256, 4), l2=CacheGeometry(512, 4),
            llc=CacheGeometry(2048, 8),
        )
        hierarchy = CmpHierarchy(machine, LruPolicy())
        hierarchy.run(make_trace([(0, 0x1, i * 64, i % 2 == 0)
                                  for i in range(500)]))
        assert hierarchy.stats.upgrades == 0   # nobody to upgrade against
        assert hierarchy.stats.accesses == 500


class TestEmptyInputs:
    def test_empty_trace_through_hierarchy(self, tiny_machine):
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy(), record_stream=True)
        hierarchy.run(make_trace([]))
        assert hierarchy.stats.accesses == 0
        assert len(hierarchy.stream()) == 0

    def test_empty_stream_replay(self, tiny_geometry):
        result = run_policy_on_stream(read_stream([]), tiny_geometry, "lru")
        assert result.accesses == 0
        assert result.miss_ratio == 0.0

    def test_flush_on_empty_llc(self, tiny_geometry):
        llc = SharedLlc(tiny_geometry, LruPolicy())
        llc.flush_residencies()  # no residencies, no observers: no-op
        assert llc.occupancy() == 0


class TestWriteOnlyStreams:
    def test_all_writes(self, tiny_machine):
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        hierarchy.run(make_trace([(0, 0x1, (i % 4) * 64, True)
                                  for i in range(100)]))
        stats = hierarchy.stats
        assert stats.accesses == 100
        assert stats.l1_hits + stats.llc_accesses == 100

    def test_write_sharing_ping_pong(self, tiny_machine):
        """Two cores alternately writing one block: every write after the
        first upgrades away the other's copy, so each access misses the
        private levels."""
        accesses = [(i % 2, 0x1, 0, True) for i in range(20)]
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        hierarchy.run(make_trace(accesses))
        stats = hierarchy.stats
        assert stats.upgrades == 19
        assert stats.llc_accesses == 20
        assert stats.l1_hits == 0


machine_strategy = st.builds(
    lambda cores: MachineConfig(
        name="hyp", num_cores=cores,
        l1=CacheGeometry(256, 2), l2=CacheGeometry(512, 2),
        # Power-of-two core counts keep the set count a power of two.
        llc=CacheGeometry(cores * 512 * 2, 4),
    ),
    st.sampled_from([1, 2, 4]),
)


@settings(max_examples=25, deadline=None)
@given(
    machine_strategy,
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=40),
                  st.booleans()),
        max_size=400,
    ),
)
def test_recorded_stream_replays_to_identical_llc_counts(machine, accesses):
    """Stream-invariance property on random traces: replaying the recorded
    LLC stream under the recording policy reproduces the online counts."""
    trace = make_trace([
        (tid % machine.num_cores, pc, block * 64, is_write)
        for tid, pc, block, is_write in accesses
    ])
    hierarchy = CmpHierarchy(machine, LruPolicy(), record_stream=True)
    hierarchy.run(trace)
    replay = run_policy_on_stream(hierarchy.stream(), machine.llc, "lru")
    assert replay.hits == hierarchy.stats.llc_hits
    assert replay.misses == hierarchy.stats.llc_misses
