"""Tests for SHiP-PC."""

import pytest

from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.ship import ShipPolicy
from repro.policies.rrip import SrripPolicy


def one_set_llc(policy, ways=4):
    return SharedLlc(CacheGeometry(ways * 64, ways), policy)


class TestShipLearning:
    def test_initial_insertion_is_long(self):
        """SHCT starts weakly positive, so first fills insert at max-1."""
        policy = ShipPolicy()
        llc = one_set_llc(policy)
        llc.access(0, 0xAA, 0, False)
        assert policy._rrpv[0][0] == policy.rrpv_max - 1

    def test_dead_signature_learns_distant_insertion(self):
        """A PC whose fills never earn hits must eventually insert at max."""
        policy = ShipPolicy(shct_bits=4)
        llc = one_set_llc(policy, ways=2)
        dead_pc = 0xDEAD0
        # Stream many one-shot blocks from one PC: every eviction without
        # reuse decrements its SHCT entry.
        for block in range(50):
            llc.access(0, dead_pc, block, False)
        signature = policy._hash_pc(dead_pc)
        assert policy._shct[signature] == 0
        llc.access(0, dead_pc, 999, False)
        way = llc._where[999][1]
        assert policy._rrpv[0][way] == policy.rrpv_max

    def test_reused_signature_keeps_long_insertion(self):
        policy = ShipPolicy(shct_bits=4)
        llc = one_set_llc(policy, ways=2)
        hot_pc = 0xB00
        for round_ in range(20):
            llc.access(0, hot_pc, round_ % 2, False)  # constant reuse
        signature = policy._hash_pc(hot_pc)
        assert policy._shct[signature] > 0

    def test_outcome_bit_set_once_per_residency(self):
        policy = ShipPolicy()
        llc = one_set_llc(policy)
        llc.access(0, 0xAA, 0, False)
        signature = policy._hash_pc(0xAA)
        before = policy._shct[signature]
        llc.access(0, 0xAA, 0, False)
        llc.access(0, 0xAA, 0, False)   # second hit: no further increment
        assert policy._shct[signature] == before + 1

    def test_scan_plus_hot_mix_beats_srrip(self):
        """SHiP should filter a dead-PC scan that SRRIP keeps admitting."""
        ways = 4
        ship = one_set_llc(ShipPolicy(shct_bits=6), ways)
        srrip = one_set_llc(SrripPolicy(), ways)
        hot_pc, scan_pc = 0x10, 0x20
        for llc in (ship, srrip):
            scan_block = 1000
            for __ in range(300):
                for hot in (0, 1):
                    llc.access(0, hot_pc, hot, False)
                    llc.access(0, hot_pc, hot, False)  # promote immediately
                # A scan burst of 8 one-shot blocks ages SRRIP's promoted
                # hot blocks all the way to the eviction point; SHiP learns
                # the scan PC is dead and inserts its fills at distant RRPV,
                # never aging the hot blocks.
                for __ in range(8):
                    scan_block += 1
                    llc.access(0, scan_pc, scan_block, False)
        assert ship.hits > srrip.hits

    def test_invalid_configuration(self):
        with pytest.raises(ConfigError):
            ShipPolicy(shct_bits=0)

    def test_hash_pc_within_table(self):
        policy = ShipPolicy(shct_bits=10)
        for pc in (0, 0x400000, 0xFFFFFFFF, 123456789):
            assert 0 <= policy._hash_pc(pc) < policy.shct_size
