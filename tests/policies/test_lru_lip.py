"""Tests for LRU and LIP policies."""

from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.policies.lru import LipPolicy, LruPolicy


def one_set_llc(policy, ways=4):
    return SharedLlc(CacheGeometry(ways * 64, ways), policy)


def read(llc, block, core=0):
    return llc.access(core, 0x1, block, False)


class TestLru:
    def test_evicts_least_recently_used(self):
        llc = one_set_llc(LruPolicy(), ways=3)
        for block in (0, 1, 2):
            read(llc, block)
        read(llc, 0)                      # refresh 0; LRU is now 1
        __, evicted = read(llc, 3)
        assert evicted == 1

    def test_fill_is_mru_insertion(self):
        llc = one_set_llc(LruPolicy(), ways=2)
        read(llc, 0)
        read(llc, 1)
        __, evicted = read(llc, 2)        # evicts 0
        assert evicted == 0
        __, evicted = read(llc, 3)        # 1 older than 2
        assert evicted == 1

    def test_exact_eviction_sequence(self):
        llc = one_set_llc(LruPolicy(), ways=2)
        evictions = []
        for block in (0, 1, 0, 2, 1, 0, 3):
            __, evicted = read(llc, block)
            if evicted != -1:
                evictions.append(evicted)
        # fill 0,1 | hit 0 | 2 evicts 1 | 1 evicts 0 | 0 evicts 2 | 3 evicts 1
        assert evictions == [1, 0, 2, 1]

    def test_rank_victims_orders_by_recency(self):
        policy = LruPolicy()
        llc = one_set_llc(policy, ways=3)
        for block in (0, 1, 2):
            read(llc, block)
        read(llc, 1)
        # Recency (oldest first): 0, 2, 1 occupy ways 0, 2, 1.
        assert policy.rank_victims(0) == [0, 2, 1]

    def test_rank_first_matches_select(self):
        policy = LruPolicy()
        llc = one_set_llc(policy, ways=4)
        for block in (0, 1, 2, 3, 1, 0):
            read(llc, block)
        assert policy.rank_victims(0)[0] == policy.select_victim(0)


class TestLip:
    def test_fills_land_at_lru_position(self):
        llc = one_set_llc(LipPolicy(), ways=2)
        read(llc, 0)
        read(llc, 1)
        # Both were inserted at LRU; newest fill (1) is the victim.
        __, evicted = read(llc, 2)
        assert evicted == 1

    def test_hit_promotes_to_mru(self):
        llc = one_set_llc(LipPolicy(), ways=2)
        read(llc, 0)
        read(llc, 1)
        read(llc, 1)                      # promote 1
        __, evicted = read(llc, 2)
        assert evicted == 0

    def test_thrash_resistance(self):
        """LIP keeps a hot block resident through a scanning loop where LRU
        would lose it — the defining property of LRU-insertion."""
        ways = 4
        hot = 0
        lru_llc = one_set_llc(LruPolicy(), ways)
        lip_llc = one_set_llc(LipPolicy(), ways)
        for llc in (lru_llc, lip_llc):
            read(llc, hot)
            read(llc, hot)
            for round_ in range(20):       # scan 6 distinct cold blocks
                for cold in range(1, 7):
                    read(llc, cold + round_ % 2 * 6)
                read(llc, hot)
        assert lip_llc.hits > lru_llc.hits
