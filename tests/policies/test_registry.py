"""Tests for the policy registry and cross-policy contracts."""

import pytest

from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import DeterministicRng
from repro.policies.registry import POLICY_NAMES, make_policy


class TestRegistry:
    def test_expected_names(self):
        assert set(POLICY_NAMES) == {
            "lru", "lip", "nru", "random", "bip", "dip", "srrip", "brrip",
            "drrip", "ship",
        }

    def test_every_name_constructs_and_binds(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, seed=1)
            SharedLlc(CacheGeometry(64 * 4 * 64, 4), policy)
            assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_policy("plru")

    def test_double_bind_rejected(self):
        policy = make_policy("lru")
        geometry = CacheGeometry(64 * 4 * 64, 4)
        policy.bind(geometry)
        with pytest.raises(SimulationError):
            policy.bind(geometry)


@pytest.mark.parametrize("name", POLICY_NAMES)
class TestCrossPolicyContracts:
    """Contracts every policy must satisfy for the oracle wrapper."""

    def full_llc(self, name, sets=64, ways=4):
        policy = make_policy(name, seed=2)
        llc = SharedLlc(CacheGeometry(sets * ways * 64, ways), policy)
        rng = DeterministicRng(3)
        for __ in range(sets * ways * 3):
            llc.access(rng.randrange(4), rng.randrange(1 << 20),
                       rng.randrange(sets * ways * 2), rng.random() < 0.3)
        return policy, llc

    def test_rank_victims_is_permutation(self, name):
        policy, llc = self.full_llc(name)
        for set_index in (0, 7, 63):
            assert sorted(policy.rank_victims(set_index)) == list(range(4))

    def test_rank_head_matches_select_victim(self, name):
        """rank_victims()[0] must be the block select_victim would choose.

        Stochastic policies (random/BIP fills) are exercised through the
        deterministic part of their choice: we call rank first, then check
        that select on an identical fresh replica returns the same way.
        """
        if name == "random":
            pytest.skip("random draws fresh entropy per call by design")
        policy, llc = self.full_llc(name)
        for set_index in (0, 13, 42):
            ranked = policy.rank_victims(set_index)[0]
            assert policy.select_victim(set_index) == ranked

    def test_replay_determinism(self, name):
        """Identical seeds must give byte-identical miss counts."""

        def misses():
            policy = make_policy(name, seed=9)
            llc = SharedLlc(CacheGeometry(16 * 4 * 64, 4), policy)
            rng = DeterministicRng(4)
            for __ in range(2000):
                llc.access(rng.randrange(2), rng.randrange(100),
                           rng.randrange(300), rng.random() < 0.2)
            return llc.misses

        assert misses() == misses()

    def test_occupancy_never_exceeds_capacity(self, name):
        __, llc = self.full_llc(name)
        assert llc.occupancy() <= 64 * 4
