"""Tests for BIP, DIP and the set-dueling controller."""

import pytest

from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.dip import BipPolicy, DipPolicy, DuelingController
from repro.policies.lru import LruPolicy


class TestDuelingController:
    def test_leader_placement(self):
        duel = DuelingController(num_sets=64, num_leaders_each=8)
        roles = [duel.role(s) for s in range(64)]
        assert roles.count(DuelingController.LEADER_A) == 8
        assert roles.count(DuelingController.LEADER_B) == 8
        assert roles.count(DuelingController.FOLLOWER) == 48

    def test_leader_a_misses_push_towards_b(self):
        duel = DuelingController(num_sets=64, num_leaders_each=8, psel_bits=4)
        assert not duel.use_policy_b(1)  # follower, PSEL at midpoint - 1
        for __ in range(10):
            duel.record_miss(0)          # leader A misses
        assert duel.use_policy_b(1)

    def test_leader_b_misses_push_towards_a(self):
        duel = DuelingController(num_sets=64, num_leaders_each=8, psel_bits=4)
        for __ in range(10):
            duel.record_miss(0)
        for __ in range(16):
            duel.record_miss(4)          # leader B misses (window 8, half 4)
        assert not duel.use_policy_b(1)

    def test_leaders_always_use_own_policy(self):
        duel = DuelingController(num_sets=64, num_leaders_each=8)
        for __ in range(2000):
            duel.record_miss(0)
        assert not duel.use_policy_b(0)   # A-leader stays on A
        assert duel.use_policy_b(4)       # B-leader stays on B

    def test_psel_saturates(self):
        duel = DuelingController(num_sets=64, num_leaders_each=8, psel_bits=4)
        for __ in range(100):
            duel.record_miss(0)
        assert duel.psel == 15
        for __ in range(100):
            duel.record_miss(4)
        assert duel.psel == 0

    def test_follower_misses_ignored(self):
        duel = DuelingController(num_sets=64, num_leaders_each=8)
        before = duel.psel
        duel.record_miss(1)
        assert duel.psel == before

    def test_too_many_leaders_rejected(self):
        with pytest.raises(ConfigError):
            DuelingController(num_sets=16, num_leaders_each=16)


def one_set_llc(policy, ways=4):
    return SharedLlc(CacheGeometry(ways * 64, ways), policy)


def read(llc, block):
    return llc.access(0, 0x1, block, False)


class TestBip:
    def test_mostly_lru_insertion(self):
        llc = one_set_llc(BipPolicy(seed=1, bip_throttle=1_000_000), ways=2)
        read(llc, 0)
        read(llc, 1)
        __, evicted = read(llc, 2)   # with throttle ~inf, inserts at LRU
        assert evicted == 1

    def test_throttle_one_behaves_like_lru(self):
        bip = one_set_llc(BipPolicy(seed=1, bip_throttle=1), ways=3)
        lru = one_set_llc(LruPolicy(), ways=3)
        pattern = [0, 1, 2, 0, 3, 4, 1, 5, 0, 6]
        bip_evictions, lru_evictions = [], []
        for block in pattern:
            bip_evictions.append(read(bip, block)[1])
            lru_evictions.append(read(lru, block)[1])
        assert bip_evictions == lru_evictions

    def test_invalid_throttle(self):
        with pytest.raises(ConfigError):
            BipPolicy(bip_throttle=0)

    def test_thrash_resistance_beats_lru(self):
        """On a cyclic working set slightly over capacity, BIP must beat
        LRU (which gets zero hits)."""
        ways = 4
        bip = one_set_llc(BipPolicy(seed=7), ways)
        lru = one_set_llc(LruPolicy(), ways)
        for llc in (bip, lru):
            for __ in range(200):
                for block in range(6):   # cyclic set of 6 > 4 ways
                    read(llc, block)
        assert lru.hits == 0
        assert bip.hits > 0


class TestDip:
    def test_binds_dueling_controller(self):
        policy = DipPolicy()
        llc = SharedLlc(CacheGeometry(64 * 64 * 4, 4), policy)  # 64 sets
        assert policy.duel is not None
        read(llc, 0)

    def test_adapts_to_thrashing(self):
        """DIP should converge near BIP behaviour under thrashing and earn
        hits where LRU earns none."""
        policy = DipPolicy(seed=3, num_leaders_each=4)
        num_sets = 32
        llc = SharedLlc(CacheGeometry(num_sets * 4 * 64, 4), policy)
        lru_llc = SharedLlc(CacheGeometry(num_sets * 4 * 64, 4), LruPolicy())
        for target in (llc, lru_llc):
            for __ in range(100):
                for i in range(6):       # 6 blocks per set > 4 ways
                    for set_index in range(num_sets):
                        target.access(0, 0x1, i * num_sets + set_index, False)
        assert lru_llc.hits == 0
        assert llc.hits > 0

    def test_lru_friendly_pattern_matches_lru(self):
        """With high reuse, DIP's PSEL should stay on LRU and match it."""
        policy = DipPolicy(seed=3, num_leaders_each=4)
        num_sets = 32
        llc = SharedLlc(CacheGeometry(num_sets * 4 * 64, 4), policy)
        lru_llc = SharedLlc(CacheGeometry(num_sets * 4 * 64, 4), LruPolicy())
        for target in (llc, lru_llc):
            for __ in range(50):
                for i in range(3):       # fits in 4 ways
                    for set_index in range(num_sets):
                        target.access(0, 0x1, i * num_sets + set_index, False)
        assert llc.hits >= lru_llc.hits * 0.9
