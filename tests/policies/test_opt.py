"""Tests for Belady's OPT and next-use computation."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.common.npsupport import HAVE_NUMPY
from repro.policies.opt import NO_NEXT_USE, BeladyOptPolicy, compute_next_use
from repro.policies.registry import make_policy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.multipass import run_opt, run_policy_on_stream
from tests.conftest import read_stream


class TestComputeNextUse:
    def test_simple_sequence(self):
        next_use = compute_next_use([5, 6, 5, 6, 7])
        assert list(next_use) == [2, 3, NO_NEXT_USE, NO_NEXT_USE, NO_NEXT_USE]

    def test_empty(self):
        assert len(compute_next_use([])) == 0

    @given(st.lists(st.integers(min_value=0, max_value=8), max_size=60))
    def test_matches_naive_reference(self, blocks):
        next_use = compute_next_use(blocks)
        for i, block in enumerate(blocks):
            try:
                expected = blocks.index(block, i + 1)
            except ValueError:
                expected = NO_NEXT_USE
            assert next_use[i] == expected


needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@needs_numpy
class TestComputeNextUseVectorized:
    """The numpy kernel must be bit-identical to the Python scan."""

    def both(self, blocks):
        python = compute_next_use(blocks, use_numpy=False)
        vectorized = compute_next_use(blocks, use_numpy=True)
        assert list(vectorized) == list(python)
        return python

    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=200))
    def test_random_streams_agree(self, blocks):
        self.both(blocks)

    def test_no_next_use_edges(self):
        # Every edge that produces the sentinel: empty input, a singleton,
        # all-distinct blocks (everything is a last use), and a final
        # access that is also a first use.
        assert list(compute_next_use([], use_numpy=True)) == []
        assert list(compute_next_use([7], use_numpy=True)) == [NO_NEXT_USE]
        distinct = self.both(list(range(10)))
        assert set(distinct) == {NO_NEXT_USE}
        tail_first = self.both([1, 1, 2])
        assert tail_first[-1] == NO_NEXT_USE

    def test_single_hot_block(self):
        next_use = self.both([3] * 50)
        assert list(next_use[:-1]) == list(range(1, 50))
        assert next_use[-1] == NO_NEXT_USE

    def test_wide_block_ids_take_factorization_path(self):
        # Ids too wide to pack directly next to positions: the kernel must
        # factorize to dense ids and still agree with the Python scan.
        blocks = [(1 << 50) + (i % 3) for i in range(64)]
        self.both(blocks)

    def test_negative_ids(self):
        self.both([-5, 3, -5, -9, 3, -5])

    def test_large_stream_smoke(self):
        # Above VECTORIZE_THRESHOLD so the auto path picks the kernel too.
        blocks = [(i * 2654435761) % 997 for i in range(10_000)]
        auto = compute_next_use(blocks)
        assert list(auto) == list(compute_next_use(blocks, use_numpy=False))


def brute_force_min_misses(blocks, capacity):
    """Exact minimum misses for a fully-associative cache via BFS over
    reachable cache states (exponential; tiny inputs only)."""
    best = {frozenset(): 0}
    for block in blocks:
        new_best = {}
        for state, misses in best.items():
            if block in state:
                candidates = [(state, misses)]
            else:
                filled = misses + 1
                base = set(state)
                base.add(block)
                if len(base) <= capacity:
                    candidates = [(frozenset(base), filled)]
                else:
                    candidates = [
                        (frozenset(base - {victim}), filled)
                        for victim in state
                    ]
            for new_state, new_misses in candidates:
                if new_best.get(new_state, 1 << 30) > new_misses:
                    new_best[new_state] = new_misses
        best = new_best
    return min(best.values())


class TestBeladyOpt:
    def test_classic_example(self):
        # One fully-associative set of 3 ways.
        blocks = [0, 1, 2, 3, 0, 1, 4, 0, 1, 2, 3, 4]
        stream = read_stream([b * 1 for b in blocks])
        # Geometry: 1 set x 3 ways => all blocks collide; use block numbers
        # multiplied by num_sets(=1).
        result = run_opt(stream, CacheGeometry(3 * 64, 3))
        assert result.misses == brute_force_min_misses(blocks, 3)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=16))
    def test_optimality_against_brute_force(self, blocks):
        stream = read_stream(blocks)
        result = run_opt(stream, CacheGeometry(2 * 64, 2))  # 1 set x 2 ways
        assert result.misses == brute_force_min_misses(blocks, 2)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
        st.sampled_from(["lru", "srrip", "ship", "dip", "nru", "random"]),
    )
    def test_never_worse_than_any_policy(self, blocks, policy_name):
        stream = read_stream(blocks)
        geometry = CacheGeometry(4 * 4 * 64, 4)  # 4 sets x 4 ways
        opt = run_opt(stream, geometry)
        other = run_policy_on_stream(stream, geometry, policy_name, seed=1)
        assert opt.misses <= other.misses

    def test_replay_past_stream_rejected(self):
        stream = read_stream([0, 1])
        policy = BeladyOptPolicy(compute_next_use(stream.blocks))
        simulator = LlcOnlySimulator(CacheGeometry(2 * 64, 2), policy)
        simulator.run(stream, flush=False)
        with pytest.raises(SimulationError):
            simulator.llc.access(0, 0, 5, False)

    def test_requires_attached_llc(self):
        policy = BeladyOptPolicy(compute_next_use([0]))
        policy.bind(CacheGeometry(2 * 64, 2))
        with pytest.raises(SimulationError):
            policy.on_fill(0, 0, 0, 0, 0, False)

    def test_rank_victims_farthest_first(self):
        policy = BeladyOptPolicy(compute_next_use([0]))
        policy.bind(CacheGeometry(4 * 64, 4))
        policy._way_next[0] = [5, NO_NEXT_USE, 2, 9]
        assert policy.rank_victims(0) == [1, 3, 0, 2]
