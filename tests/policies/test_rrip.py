"""Tests for the RRIP family."""

import pytest

from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.lru import LruPolicy
from repro.policies.rrip import BrripPolicy, DrripPolicy, SrripPolicy


def one_set_llc(policy, ways=4):
    return SharedLlc(CacheGeometry(ways * 64, ways), policy)


def read(llc, block):
    return llc.access(0, 0x1, block, False)


class TestSrrip:
    def test_insertion_rrpv_is_long(self):
        policy = SrripPolicy(rrpv_bits=2)
        llc = one_set_llc(policy)
        read(llc, 0)
        assert policy._rrpv[0][0] == 2  # max-1

    def test_hit_promotes_to_zero(self):
        policy = SrripPolicy()
        llc = one_set_llc(policy)
        read(llc, 0)
        read(llc, 0)
        assert policy._rrpv[0][0] == 0

    def test_victim_is_stalest(self):
        policy = SrripPolicy()
        llc = one_set_llc(policy, ways=2)
        read(llc, 0)
        read(llc, 0)          # block 0 at RRPV 0
        read(llc, 1)          # block 1 at RRPV 2
        __, evicted = read(llc, 2)
        assert evicted == 1

    def test_aging_when_no_max_rrpv(self):
        policy = SrripPolicy()
        llc = one_set_llc(policy, ways=2)
        read(llc, 0)
        read(llc, 1)          # both at RRPV 2
        read(llc, 0)
        read(llc, 1)          # both at RRPV 0
        __, evicted = read(llc, 2)   # aging to 3,3 then evict way 0
        assert evicted == 0
        # Survivor was aged alongside the victim.
        assert policy._rrpv[0][1] == 3

    def test_scan_resistance_beats_lru(self):
        """A hot block re-referenced between one-shot scan blocks survives
        under SRRIP but dies under LRU when the scan exceeds capacity."""
        ways = 4
        srrip = one_set_llc(SrripPolicy(), ways)
        lru = one_set_llc(LruPolicy(), ways)
        for llc in (srrip, lru):
            read(llc, 100)
            read(llc, 100)     # establish the hot block
            scan_block = 0
            for __ in range(100):
                for __ in range(ways):         # scan burst > remaining ways
                    scan_block += 1
                    read(llc, scan_block)
                read(llc, 100)                  # hot block re-reference
        assert srrip.hits > lru.hits

    def test_invalid_rrpv_bits(self):
        with pytest.raises(ConfigError):
            SrripPolicy(rrpv_bits=0)

    def test_rank_victims_stalest_first(self):
        policy = SrripPolicy()
        policy.bind(CacheGeometry(4 * 64, 4))
        policy._rrpv[0] = [1, 3, 0, 3]
        assert policy.rank_victims(0) == [1, 3, 0, 2]

    def test_rank_victims_ages_like_select(self):
        policy = SrripPolicy()
        policy.bind(CacheGeometry(4 * 64, 4))
        policy._rrpv[0] = [1, 2, 0, 2]
        order = policy.rank_victims(0)
        assert order[0] in (1, 3)
        assert policy._rrpv[0] == [2, 3, 1, 3]  # aged until a 3 appeared


class TestBrrip:
    def test_mostly_distant_insertion(self):
        policy = BrripPolicy(seed=1, throttle=1_000_000)
        llc = one_set_llc(policy)
        read(llc, 0)
        assert policy._rrpv[0][0] == 3  # max

    def test_occasional_long_insertion(self):
        policy = BrripPolicy(seed=1, throttle=1)
        llc = one_set_llc(policy)
        read(llc, 0)
        assert policy._rrpv[0][0] == 2


class TestDrrip:
    def test_leader_sets_use_fixed_insertion(self):
        policy = DrripPolicy(seed=1, num_leaders_each=4)
        SharedLlc(CacheGeometry(32 * 4 * 64, 4), policy)  # 32 sets, window 8
        assert policy.insertion_rrpv(0) == 2          # SRRIP leader
        assert policy.insertion_rrpv(4) in (2, 3)     # BRRIP leader

    def test_thrash_adaptation(self):
        policy = DrripPolicy(seed=5, num_leaders_each=4)
        num_sets = 32
        llc = SharedLlc(CacheGeometry(num_sets * 4 * 64, 4), policy)
        srrip_llc = SharedLlc(CacheGeometry(num_sets * 4 * 64, 4), SrripPolicy())
        for target in (llc, srrip_llc):
            for __ in range(100):
                for i in range(6):
                    for set_index in range(num_sets):
                        target.access(0, 0x1, i * num_sets + set_index, False)
        assert llc.hits >= srrip_llc.hits
