"""Tests for NRU and Random policies."""

from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.policies.nru import NruPolicy
from repro.policies.random_policy import RandomPolicy


def one_set_llc(policy, ways=4):
    return SharedLlc(CacheGeometry(ways * 64, ways), policy)


def read(llc, block):
    return llc.access(0, 0x1, block, False)


class TestNru:
    def test_victim_is_first_clear_bit(self):
        policy = NruPolicy()
        llc = one_set_llc(policy, ways=3)
        for block in (0, 1, 2):
            read(llc, block)
        # The last touch (block 2) triggered the clear-all; ways 0 and 1
        # have clear bits, so way 0 is the victim.
        __, evicted = read(llc, 3)
        assert evicted == 0

    def test_recently_touched_survives(self):
        policy = NruPolicy()
        llc = one_set_llc(policy, ways=2)
        read(llc, 0)
        read(llc, 1)        # full set: bits cleared except block 1
        read(llc, 0)        # re-set block 0's bit -> all set -> clear except 0
        __, evicted = read(llc, 2)
        assert evicted == 1

    def test_select_victim_handles_all_bits_set(self):
        policy = NruPolicy()
        policy.bind(CacheGeometry(2 * 64, 2))
        policy._ref[0] = [1, 1]  # externally perturbed state
        assert policy.select_victim(0) == 0

    def test_rank_victims_clear_bits_first(self):
        policy = NruPolicy()
        policy.bind(CacheGeometry(4 * 64, 4))
        policy._ref[0] = [1, 0, 1, 0]
        assert policy.rank_victims(0) == [1, 3, 0, 2]


class TestRandom:
    def test_deterministic_given_seed(self):
        def evictions(seed):
            llc = one_set_llc(RandomPolicy(seed=seed), ways=2)
            out = []
            for block in range(20):
                __, evicted = read(llc, block)
                out.append(evicted)
            return out

        assert evictions(1) == evictions(1)
        assert evictions(1) != evictions(2)

    def test_victims_are_valid_ways(self):
        policy = RandomPolicy(seed=3)
        llc = one_set_llc(policy, ways=4)
        for block in range(50):
            read(llc, block)
        assert llc.occupancy() == 4

    def test_rank_victims_is_permutation(self):
        policy = RandomPolicy(seed=3)
        policy.bind(CacheGeometry(8 * 64, 8))
        assert sorted(policy.rank_victims(0)) == list(range(8))
