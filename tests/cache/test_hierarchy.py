"""Tests for the full CMP hierarchy (repro.cache.hierarchy)."""

import pytest

from repro.cache.hierarchy import CmpHierarchy
from repro.common.errors import SimulationError
from repro.policies.lru import LruPolicy
from tests.conftest import make_trace

B = 64  # block size


def run_hierarchy(machine, accesses, record_stream=False):
    hierarchy = CmpHierarchy(machine, LruPolicy(), record_stream=record_stream)
    hierarchy.run(make_trace(accesses))
    return hierarchy


class TestBasicPaths:
    def test_first_access_goes_to_llc(self, tiny_machine):
        hierarchy = run_hierarchy(tiny_machine, [(0, 0x1, 0, False)])
        stats = hierarchy.stats
        assert stats.accesses == 1
        assert stats.l1_hits == 0
        assert stats.l2_hits == 0
        assert stats.llc_misses == 1

    def test_repeat_access_hits_l1(self, tiny_machine):
        hierarchy = run_hierarchy(
            tiny_machine, [(0, 0x1, 0, False), (0, 0x2, 0, False)]
        )
        assert hierarchy.stats.l1_hits == 1
        assert hierarchy.stats.llc_accesses == 1

    def test_l2_hit_after_l1_eviction(self, tiny_machine):
        # L1 is 2 sets x 4 ways; touching 5 blocks of one L1 set evicts the
        # first, which still hits in the larger L2.
        blocks = [0, 2, 4, 6, 8]  # all map to L1 set 0
        accesses = [(0, 0x1, b * B, False) for b in blocks]
        accesses.append((0, 0x2, 0, False))  # L1 miss, L2 hit
        hierarchy = run_hierarchy(tiny_machine, accesses)
        assert hierarchy.stats.l2_hits == 1
        assert hierarchy.stats.llc_accesses == 5

    def test_hit_counters_partition_accesses(self, quad_machine):
        import random

        rng = random.Random(0)
        accesses = [
            (rng.randrange(4), 0x1, rng.randrange(64) * B, rng.random() < 0.3)
            for __ in range(2000)
        ]
        stats = run_hierarchy(quad_machine, accesses).stats
        assert (
            stats.l1_hits + stats.l2_hits + stats.llc_hits + stats.llc_misses
            == stats.accesses
        )

    def test_rejects_excess_threads(self, tiny_machine):
        trace = make_trace([(5, 0, 0, False)])
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        with pytest.raises(SimulationError):
            hierarchy.run(trace)


class TestCoherence:
    def test_write_invalidates_other_private_copies(self, tiny_machine):
        accesses = [
            (0, 0x1, 0, False),   # core 0 caches block 0
            (1, 0x2, 0, False),   # core 1 caches block 0 (LLC hit)
            (0, 0x3, 0, True),    # core 0 writes: upgrade, invalidate core 1
            (1, 0x4, 0, False),   # core 1 must go back to the LLC
        ]
        hierarchy = run_hierarchy(tiny_machine, accesses)
        stats = hierarchy.stats
        assert stats.upgrades == 1
        assert stats.invalidations >= 1
        assert stats.llc_accesses == 3  # fill, core-1 read, core-1 re-read
        assert stats.llc_hits == 2

    def test_read_sharing_keeps_both_copies(self, tiny_machine):
        accesses = [
            (0, 0x1, 0, False),
            (1, 0x2, 0, False),
            (0, 0x3, 0, False),   # still in core 0's L1
            (1, 0x4, 0, False),   # still in core 1's L1
        ]
        stats = run_hierarchy(tiny_machine, accesses).stats
        assert stats.llc_accesses == 2
        assert stats.l1_hits == 2
        assert stats.upgrades == 0

    def test_write_by_only_sharer_is_not_an_upgrade(self, tiny_machine):
        accesses = [(0, 0x1, 0, False), (0, 0x2, 0, True)]
        stats = run_hierarchy(tiny_machine, accesses).stats
        assert stats.upgrades == 0

    def test_directory_tracks_sharers(self, tiny_machine):
        hierarchy = run_hierarchy(
            tiny_machine, [(0, 0, 0, False), (1, 0, 0, False)]
        )
        assert hierarchy.directory.sharers(0) == 0b11

    def test_writeback_counted_on_dirty_l2_eviction(self, tiny_machine):
        # Dirty block 0, then stream enough same-L2-set blocks to evict it.
        accesses = [(0, 0x1, 0, True)]
        accesses += [(0, 0x2, (4 * i) * B, False) for i in range(1, 6)]
        stats = run_hierarchy(tiny_machine, accesses).stats
        assert stats.writebacks >= 1


class TestInclusion:
    def test_back_invalidation_on_llc_eviction(self, tiny_machine):
        # LLC has 8 sets x 8 ways; overflow one LLC set (blocks stride 8)
        # while keeping block 0 in core 0's L1/L2.
        accesses = [(0, 0x1, 0, False)]
        accesses += [(1, 0x2, (8 * i) * B, False) for i in range(1, 9)]
        hierarchy = run_hierarchy(tiny_machine, accesses)
        assert hierarchy.stats.inclusion_victims >= 1
        # Block 0 was evicted from the LLC, so core 0's private copy died.
        assert not hierarchy.l1s[0].contains(0)
        assert not hierarchy.l2s[0].contains(0)

    def test_l1_subset_of_l2(self, quad_machine):
        import random

        rng = random.Random(1)
        accesses = [
            (rng.randrange(4), 0x1, rng.randrange(128) * B, rng.random() < 0.2)
            for __ in range(3000)
        ]
        hierarchy = run_hierarchy(quad_machine, accesses)
        for core in range(4):
            l1_blocks = set(hierarchy.l1s[core].resident_blocks())
            l2_blocks = set(hierarchy.l2s[core].resident_blocks())
            assert l1_blocks <= l2_blocks

    def test_private_subset_of_llc(self, quad_machine):
        import random

        rng = random.Random(2)
        accesses = [
            (rng.randrange(4), 0x1, rng.randrange(256) * B, rng.random() < 0.2)
            for __ in range(3000)
        ]
        hierarchy = run_hierarchy(quad_machine, accesses)
        llc_blocks = set(hierarchy.llc.resident_blocks())
        for core in range(4):
            assert set(hierarchy.l2s[core].resident_blocks()) <= llc_blocks

    def test_directory_matches_private_contents(self, quad_machine):
        import random

        rng = random.Random(3)
        accesses = [
            (rng.randrange(4), 0x1, rng.randrange(96) * B, rng.random() < 0.3)
            for __ in range(3000)
        ]
        hierarchy = run_hierarchy(quad_machine, accesses)
        for block, mask in hierarchy.directory.entries():
            for core in hierarchy.directory.iter_cores(mask):
                assert hierarchy.l2s[core].contains(block)


class TestStreamRecording:
    def test_stream_length_equals_llc_accesses(self, quad_machine):
        import random

        rng = random.Random(4)
        accesses = [
            (rng.randrange(4), 0x1, rng.randrange(200) * B, rng.random() < 0.2)
            for __ in range(2000)
        ]
        hierarchy = run_hierarchy(quad_machine, accesses, record_stream=True)
        stream = hierarchy.stream()
        assert len(stream) == hierarchy.stats.llc_accesses

    def test_stream_records_block_addresses(self, tiny_machine):
        hierarchy = run_hierarchy(
            tiny_machine, [(1, 0x9, 5 * B + 3, True)], record_stream=True
        )
        access = hierarchy.stream()[0]
        assert access.core == 1
        assert access.pc == 0x9
        assert access.block == 5
        assert access.is_write

    def test_stream_requires_recording_enabled(self, tiny_machine):
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        with pytest.raises(SimulationError):
            hierarchy.stream()


class TestStatsProperties:
    def test_miss_ratio(self, tiny_machine):
        stats = run_hierarchy(
            tiny_machine, [(0, 0, 0, False), (0, 0, B, False)]
        ).stats
        assert stats.llc_miss_ratio == 1.0
        assert stats.mpki_proxy == 1000.0

    def test_zero_accesses(self, tiny_machine):
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        assert hierarchy.stats.llc_miss_ratio == 0.0


class TestNonInclusive:
    def test_private_copies_survive_llc_eviction(self, tiny_machine):
        accesses = [(0, 0x1, 0, False)]
        accesses += [(1, 0x2, (8 * i) * B, False) for i in range(1, 9)]
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy(), inclusive=False)
        hierarchy.run(make_trace(accesses))
        assert hierarchy.stats.inclusion_victims == 0
        # Block 0 left the LLC but core 0 still holds its private copy.
        assert not hierarchy.llc.contains(0)
        assert hierarchy.l2s[0].contains(0)

    def test_non_inclusive_never_slower_on_private_hits(self, quad_machine):
        import random

        rng = random.Random(6)
        accesses = [
            (rng.randrange(4), 0x1, rng.randrange(256) * B, rng.random() < 0.2)
            for __ in range(4000)
        ]
        inclusive = CmpHierarchy(quad_machine, LruPolicy(), inclusive=True)
        inclusive.run(make_trace(accesses))
        non_inclusive = CmpHierarchy(quad_machine, LruPolicy(), inclusive=False)
        non_inclusive.run(make_trace(accesses))
        # Without back-invalidation the private levels can only hit more.
        private_hits_inclusive = (
            inclusive.stats.l1_hits + inclusive.stats.l2_hits
        )
        private_hits_non_inclusive = (
            non_inclusive.stats.l1_hits + non_inclusive.stats.l2_hits
        )
        assert private_hits_non_inclusive >= private_hits_inclusive

    def test_default_is_inclusive(self, tiny_machine):
        assert CmpHierarchy(tiny_machine, LruPolicy()).inclusive
