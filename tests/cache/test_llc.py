"""Tests for the shared LLC (repro.cache.llc)."""

import pytest

from repro.cache.llc import NO_BLOCK, ResidencyObserver, SharedLlc
from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.policies.base import ReplacementPolicy
from repro.policies.lru import LruPolicy


class RecordingObserver(ResidencyObserver):
    """Collects every residency callback for assertions."""

    def __init__(self):
        self.started = []
        self.ended = []

    def residency_started(self, block, set_index, fill_ordinal, pc, core):
        self.started.append((block, set_index, fill_ordinal, pc, core))

    def residency_ended(self, block, set_index, fill_ordinal, end_ordinal,
                        fill_pc, fill_core, core_mask, write_mask, hits,
                        other_hits, forced):
        self.ended.append({
            "block": block, "set": set_index, "fill": fill_ordinal,
            "end": end_ordinal, "pc": fill_pc, "core": fill_core,
            "core_mask": core_mask, "write_mask": write_mask,
            "hits": hits, "other_hits": other_hits, "forced": forced,
        })


def make_llc(sets=2, ways=2, observers=()):
    return SharedLlc(CacheGeometry(sets * ways * 64, ways), LruPolicy(),
                     observers=observers)


class TestHitMiss:
    def test_first_access_misses(self):
        llc = make_llc()
        hit, evicted = llc.access(0, 0x1, 0, False)
        assert not hit
        assert evicted == NO_BLOCK
        assert llc.misses == 1

    def test_second_access_hits(self):
        llc = make_llc()
        llc.access(0, 0x1, 0, False)
        hit, __ = llc.access(0, 0x2, 0, False)
        assert hit
        assert llc.hits == 1

    def test_access_count_increments(self):
        llc = make_llc()
        for i in range(5):
            llc.access(0, 0, i, False)
        assert llc.access_count == 5

    def test_eviction_returns_victim(self):
        llc = make_llc(sets=1, ways=2)
        llc.access(0, 0, 0, False)
        llc.access(0, 0, 1, False)
        __, evicted = llc.access(0, 0, 2, False)
        assert evicted == 0  # LRU victim
        assert llc.evictions == 1
        assert not llc.contains(0)

    def test_occupancy_and_resident_blocks(self):
        llc = make_llc()
        llc.access(0, 0, 0, False)
        llc.access(0, 0, 1, False)
        assert llc.occupancy() == 2
        assert sorted(llc.resident_blocks()) == [0, 1]

    def test_invalid_policy_way_rejected(self):
        class BrokenPolicy(LruPolicy):
            def select_victim(self, set_index):
                return 99

        llc = SharedLlc(CacheGeometry(128, 2), BrokenPolicy())
        llc.access(0, 0, 0, False)
        llc.access(0, 0, 1, False)
        with pytest.raises(SimulationError):
            llc.access(0, 0, 2, False)


class TestResidencyMetadata:
    def test_single_core_private_residency(self):
        observer = RecordingObserver()
        llc = make_llc(sets=1, ways=1, observers=(observer,))
        llc.access(0, 0x10, 0, False)   # fill block 0
        llc.access(0, 0x11, 0, False)   # hit
        llc.access(0, 0x12, 1, False)   # evicts block 0
        record = observer.ended[0]
        assert record["block"] == 0
        assert record["fill"] == 1
        assert record["end"] == 3
        assert record["pc"] == 0x10
        assert record["core_mask"] == 0b1
        assert record["hits"] == 1
        assert record["other_hits"] == 0
        assert not record["forced"]

    def test_shared_residency_masks(self):
        observer = RecordingObserver()
        llc = make_llc(sets=1, ways=1, observers=(observer,))
        llc.access(0, 0, 0, False)
        llc.access(1, 0, 0, False)      # cross-core hit
        llc.access(2, 0, 0, True)       # cross-core write hit
        llc.access(0, 0, 1, False)      # evict
        record = observer.ended[0]
        assert record["core_mask"] == 0b111
        assert record["write_mask"] == 0b100
        assert record["hits"] == 2
        assert record["other_hits"] == 2

    def test_write_fill_sets_write_mask(self):
        observer = RecordingObserver()
        llc = make_llc(sets=1, ways=1, observers=(observer,))
        llc.access(3, 0, 0, True)
        llc.flush_residencies()
        assert observer.ended[0]["write_mask"] == 0b1000

    def test_same_core_hits_not_counted_as_other(self):
        observer = RecordingObserver()
        llc = make_llc(sets=1, ways=1, observers=(observer,))
        llc.access(1, 0, 0, False)
        llc.access(1, 0, 0, False)
        llc.access(1, 0, 0, False)
        llc.flush_residencies()
        record = observer.ended[0]
        assert record["hits"] == 2
        assert record["other_hits"] == 0
        assert record["core_mask"] == 0b10

    def test_flush_marks_forced(self):
        observer = RecordingObserver()
        llc = make_llc(observers=(observer,))
        llc.access(0, 0, 0, False)
        llc.flush_residencies()
        assert observer.ended[0]["forced"]

    def test_flush_covers_every_live_residency(self):
        observer = RecordingObserver()
        llc = make_llc(sets=2, ways=2, observers=(observer,))
        for block in range(4):
            llc.access(0, 0, block, False)
        llc.flush_residencies()
        assert len(observer.ended) == 4

    def test_refill_resets_metadata(self):
        observer = RecordingObserver()
        llc = make_llc(sets=1, ways=1, observers=(observer,))
        llc.access(0, 0x1, 0, False)
        llc.access(1, 0x2, 0, True)     # shared write hit
        llc.access(0, 0x3, 1, False)    # evict 0
        llc.access(0, 0x4, 0, False)    # refill 0, evict 1
        llc.flush_residencies()
        second_residency = observer.ended[-1]
        assert second_residency["block"] == 0
        assert second_residency["core_mask"] == 0b1
        assert second_residency["write_mask"] == 0
        assert second_residency["hits"] == 0

    def test_started_fires_on_every_fill(self):
        observer = RecordingObserver()
        llc = make_llc(sets=1, ways=1, observers=(observer,))
        llc.access(0, 0x7, 5, False)
        llc.access(0, 0x7, 5, False)    # hit, no started event
        llc.access(1, 0x8, 6, True)     # new fill
        assert observer.started == [(5, 0, 1, 0x7, 0), (6, 0, 3, 0x8, 1)]

    def test_observer_count_matches_fills(self):
        observer = RecordingObserver()
        llc = make_llc(sets=2, ways=2, observers=(observer,))
        for i in range(20):
            llc.access(0, 0, i % 6, False)
        llc.flush_residencies()
        assert len(observer.started) == llc.misses
        assert len(observer.ended) == llc.misses


class TestObserverManagement:
    def test_add_observer(self):
        llc = make_llc()
        observer = RecordingObserver()
        llc.add_observer(observer)
        llc.access(0, 0, 0, False)
        assert len(observer.started) == 1

    def test_base_observer_started_is_noop(self):
        # The base class must tolerate being attached directly.
        llc = make_llc(observers=(ResidencyObserver(),))
        llc.access(0, 0, 0, False)  # no exception from residency_started
        with pytest.raises(NotImplementedError):
            llc.flush_residencies()
