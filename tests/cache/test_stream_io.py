"""Tests for LLC-stream persistence."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

import repro.cache.stream_io as stream_io
from repro.cache.stream_io import (
    _read_llc_stream_mapped,
    _read_llc_stream_streamed,
    read_llc_stream,
    write_llc_stream,
)
from repro.common.npsupport import HAVE_NUMPY
from repro.common.errors import TraceError
from repro.trace.io import write_trace
from repro.trace.trace import Trace
from repro.trace.record import Access
from tests.conftest import make_stream


class TestRoundtrip:
    def test_plain(self, tmp_path):
        stream = make_stream([(0, 0x1, 10, False), (3, 0x2, 11, True)],
                             name="rt")
        path = tmp_path / "s.rllc"
        write_llc_stream(stream, path)
        loaded = read_llc_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.name == "rt"

    def test_gzip(self, tmp_path):
        stream = make_stream([(0, 0, i % 7, False) for i in range(5000)])
        plain, gz = tmp_path / "s.rllc", tmp_path / "s.rllc.gz"
        write_llc_stream(stream, plain)
        write_llc_stream(stream, gz)
        assert list(read_llc_stream(gz)) == list(stream)
        assert gz.stat().st_size < plain.stat().st_size

    def test_empty(self, tmp_path):
        path = tmp_path / "e.rllc"
        write_llc_stream(make_stream([]), path)
        assert len(read_llc_stream(path)) == 0

    @settings(max_examples=15)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), st.just(5),
                      st.integers(min_value=0, max_value=1 << 50),
                      st.booleans()),
            max_size=40,
        ),
        st.sampled_from(["p.rllc", "p.rllc.gz"]),
    )
    def test_roundtrip_property(self, accesses, filename):
        import tempfile
        from pathlib import Path

        stream = make_stream(accesses)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / filename
            write_llc_stream(stream, path)
            loaded = read_llc_stream(path)
            assert list(loaded) == list(stream)
            assert loaded.name == stream.name


class TestErrors:
    def test_rejects_trace_files(self, tmp_path):
        """A trace file must not silently load as an LLC stream."""
        trace = Trace.from_accesses([Access(0, 1, 2, False)])
        path = tmp_path / "t.rtrc"
        write_trace(trace, path)
        with pytest.raises(TraceError, match="not an LLC stream"):
            read_llc_stream(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "v.rllc"
        path.write_bytes(struct.pack("<4sIQII", b"RLLC", 9, 0, 0, 0))
        with pytest.raises(TraceError, match="version"):
            read_llc_stream(path)

    def test_truncated(self, tmp_path):
        stream = make_stream([(0, 0, i, False) for i in range(50)])
        path = tmp_path / "t.rllc"
        write_llc_stream(stream, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        with pytest.raises(TraceError, match="truncated"):
            read_llc_stream(path)

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        stream = make_stream([(0, 0, i, False) for i in range(50)])
        path = tmp_path / "c.rllc"
        write_llc_stream(stream, path)
        blob = bytearray(path.read_bytes())
        blob[-8] ^= 0xFF  # inside the last column, before the footer
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceError, match="checksum"):
            read_llc_stream(path)

    def test_missing_footer_rejected(self, tmp_path):
        stream = make_stream([(0, 0, 1, False)])
        path = tmp_path / "f.rllc"
        write_llc_stream(stream, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-4])  # drop the CRC footer entirely
        with pytest.raises(TraceError, match="checksum"):
            read_llc_stream(path)


class TestZeroCopyLoads:
    """The mmap reader and the streamed reader are interchangeable."""

    STREAM = [(i % 4, 0x40 + (i % 3), (i * 7) % 90, i % 5 == 0)
              for i in range(400)]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_mapped_and_streamed_readers_agree(self, tmp_path):
        stream = make_stream(self.STREAM, name="zc")
        path = tmp_path / "zc.rllc"
        write_llc_stream(stream, path)
        mapped = _read_llc_stream_mapped(path)
        streamed = _read_llc_stream_streamed(path)
        assert mapped is not None
        assert list(mapped) == list(streamed) == list(stream)
        assert mapped.name == streamed.name == "zc"
        assert mapped.num_cores == streamed.num_cores == stream.num_cores

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_plain_load_is_mapped_and_views_the_file(self, tmp_path):
        import numpy as np

        stream = make_stream(self.STREAM)
        path = tmp_path / "v.rllc"
        write_llc_stream(stream, path)
        loaded = read_llc_stream(path)
        for column in loaded.columns():
            assert isinstance(column, np.ndarray)
            assert column.base is not None  # a view, not a copy

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_mapped_stream_reserializes_byte_identically(self, tmp_path):
        stream = make_stream(self.STREAM, name="rt2")
        original = tmp_path / "a.rllc"
        rewritten = tmp_path / "b.rllc"
        write_llc_stream(stream, original)
        write_llc_stream(read_llc_stream(original), rewritten)
        assert original.read_bytes() == rewritten.read_bytes()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_gzip_takes_streamed_reader(self, tmp_path):
        import numpy as np

        stream = make_stream(self.STREAM)
        path = tmp_path / "g.rllc.gz"
        write_llc_stream(stream, path)
        loaded = read_llc_stream(path)
        assert not any(isinstance(c, np.ndarray) for c in loaded.columns())
        assert list(loaded) == list(stream)

    def test_numpyless_fallback_equivalent(self, tmp_path, monkeypatch):
        stream = make_stream(self.STREAM, name="nofb")
        path = tmp_path / "n.rllc"
        write_llc_stream(stream, path)
        monkeypatch.setattr(stream_io, "HAVE_NUMPY", False)
        loaded = read_llc_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.num_cores == stream.num_cores

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_empty_file_falls_back_to_streamed_error(self, tmp_path):
        # mmap refuses zero-length files; the fallback reader raises the
        # ordinary truncation error instead of a mapping error.
        path = tmp_path / "empty.rllc"
        path.write_bytes(b"")
        with pytest.raises(TraceError, match="truncated header"):
            read_llc_stream(path)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_mapped_replay_matches_builder_replay(self, tmp_path):
        # End to end: a replay over ndarray-backed columns must be
        # indistinguishable from one over the builder's array.array.
        from repro.common.config import CacheGeometry
        from repro.sim.multipass import run_policy_on_stream

        stream = make_stream(self.STREAM, name="replay")
        path = tmp_path / "r.rllc"
        write_llc_stream(stream, path)
        loaded = read_llc_stream(path)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        for policy in ("lru", "srrip", "ship"):
            a = run_policy_on_stream(stream, geometry, policy, seed=5)
            b = run_policy_on_stream(loaded, geometry, policy, seed=5)
            assert a == b, policy


class TestVersionCompatibility:
    def test_reads_version_1_without_footer(self, tmp_path):
        # A v1 file is a v2 file minus the trailing CRC, with version=1.
        stream = make_stream([(2, 0x9, 3, True), (0, 0x9, 4, False)],
                             name="old")
        path = tmp_path / "v1.rllc"
        write_llc_stream(stream, path)
        blob = bytearray(path.read_bytes())
        blob[4:8] = struct.pack("<I", 1)
        path.write_bytes(bytes(blob[:-4]))
        loaded = read_llc_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.name == "old"
