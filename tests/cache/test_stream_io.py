"""Tests for LLC-stream persistence."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.stream_io import read_llc_stream, write_llc_stream
from repro.common.errors import TraceError
from repro.trace.io import write_trace
from repro.trace.trace import Trace
from repro.trace.record import Access
from tests.conftest import make_stream


class TestRoundtrip:
    def test_plain(self, tmp_path):
        stream = make_stream([(0, 0x1, 10, False), (3, 0x2, 11, True)],
                             name="rt")
        path = tmp_path / "s.rllc"
        write_llc_stream(stream, path)
        loaded = read_llc_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.name == "rt"

    def test_gzip(self, tmp_path):
        stream = make_stream([(0, 0, i % 7, False) for i in range(5000)])
        plain, gz = tmp_path / "s.rllc", tmp_path / "s.rllc.gz"
        write_llc_stream(stream, plain)
        write_llc_stream(stream, gz)
        assert list(read_llc_stream(gz)) == list(stream)
        assert gz.stat().st_size < plain.stat().st_size

    def test_empty(self, tmp_path):
        path = tmp_path / "e.rllc"
        write_llc_stream(make_stream([]), path)
        assert len(read_llc_stream(path)) == 0

    @settings(max_examples=15)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.just(5),
                  st.integers(min_value=0, max_value=1 << 50), st.booleans()),
        max_size=40,
    ))
    def test_roundtrip_property(self, accesses):
        import tempfile
        from pathlib import Path

        stream = make_stream(accesses)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.rllc"
            write_llc_stream(stream, path)
            assert list(read_llc_stream(path)) == list(stream)


class TestErrors:
    def test_rejects_trace_files(self, tmp_path):
        """A trace file must not silently load as an LLC stream."""
        trace = Trace.from_accesses([Access(0, 1, 2, False)])
        path = tmp_path / "t.rtrc"
        write_trace(trace, path)
        with pytest.raises(TraceError, match="not an LLC stream"):
            read_llc_stream(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "v.rllc"
        path.write_bytes(struct.pack("<4sIQII", b"RLLC", 9, 0, 0, 0))
        with pytest.raises(TraceError, match="version"):
            read_llc_stream(path)

    def test_truncated(self, tmp_path):
        stream = make_stream([(0, 0, i, False) for i in range(50)])
        path = tmp_path / "t.rllc"
        write_llc_stream(stream, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        with pytest.raises(TraceError, match="truncated"):
            read_llc_stream(path)
