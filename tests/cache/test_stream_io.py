"""Tests for LLC-stream persistence."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.stream_io import read_llc_stream, write_llc_stream
from repro.common.errors import TraceError
from repro.trace.io import write_trace
from repro.trace.trace import Trace
from repro.trace.record import Access
from tests.conftest import make_stream


class TestRoundtrip:
    def test_plain(self, tmp_path):
        stream = make_stream([(0, 0x1, 10, False), (3, 0x2, 11, True)],
                             name="rt")
        path = tmp_path / "s.rllc"
        write_llc_stream(stream, path)
        loaded = read_llc_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.name == "rt"

    def test_gzip(self, tmp_path):
        stream = make_stream([(0, 0, i % 7, False) for i in range(5000)])
        plain, gz = tmp_path / "s.rllc", tmp_path / "s.rllc.gz"
        write_llc_stream(stream, plain)
        write_llc_stream(stream, gz)
        assert list(read_llc_stream(gz)) == list(stream)
        assert gz.stat().st_size < plain.stat().st_size

    def test_empty(self, tmp_path):
        path = tmp_path / "e.rllc"
        write_llc_stream(make_stream([]), path)
        assert len(read_llc_stream(path)) == 0

    @settings(max_examples=15)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), st.just(5),
                      st.integers(min_value=0, max_value=1 << 50),
                      st.booleans()),
            max_size=40,
        ),
        st.sampled_from(["p.rllc", "p.rllc.gz"]),
    )
    def test_roundtrip_property(self, accesses, filename):
        import tempfile
        from pathlib import Path

        stream = make_stream(accesses)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / filename
            write_llc_stream(stream, path)
            loaded = read_llc_stream(path)
            assert list(loaded) == list(stream)
            assert loaded.name == stream.name


class TestErrors:
    def test_rejects_trace_files(self, tmp_path):
        """A trace file must not silently load as an LLC stream."""
        trace = Trace.from_accesses([Access(0, 1, 2, False)])
        path = tmp_path / "t.rtrc"
        write_trace(trace, path)
        with pytest.raises(TraceError, match="not an LLC stream"):
            read_llc_stream(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "v.rllc"
        path.write_bytes(struct.pack("<4sIQII", b"RLLC", 9, 0, 0, 0))
        with pytest.raises(TraceError, match="version"):
            read_llc_stream(path)

    def test_truncated(self, tmp_path):
        stream = make_stream([(0, 0, i, False) for i in range(50)])
        path = tmp_path / "t.rllc"
        write_llc_stream(stream, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        with pytest.raises(TraceError, match="truncated"):
            read_llc_stream(path)

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        stream = make_stream([(0, 0, i, False) for i in range(50)])
        path = tmp_path / "c.rllc"
        write_llc_stream(stream, path)
        blob = bytearray(path.read_bytes())
        blob[-8] ^= 0xFF  # inside the last column, before the footer
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceError, match="checksum"):
            read_llc_stream(path)

    def test_missing_footer_rejected(self, tmp_path):
        stream = make_stream([(0, 0, 1, False)])
        path = tmp_path / "f.rllc"
        write_llc_stream(stream, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-4])  # drop the CRC footer entirely
        with pytest.raises(TraceError, match="checksum"):
            read_llc_stream(path)


class TestVersionCompatibility:
    def test_reads_version_1_without_footer(self, tmp_path):
        # A v1 file is a v2 file minus the trailing CRC, with version=1.
        stream = make_stream([(2, 0x9, 3, True), (0, 0x9, 4, False)],
                             name="old")
        path = tmp_path / "v1.rllc"
        write_llc_stream(stream, path)
        blob = bytearray(path.read_bytes())
        blob[4:8] = struct.pack("<I", 1)
        path.write_bytes(bytes(blob[:-4]))
        loaded = read_llc_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.name == "old"
