"""Tests for recorded LLC streams (repro.cache.stream)."""

from array import array

import pytest

from repro.cache.stream import LlcAccess, LlcStream, LlcStreamBuilder
from repro.common.errors import TraceError


class TestLlcStreamBuilder:
    def test_build_and_length(self):
        builder = LlcStreamBuilder()
        builder.append(0, 0x1, 10, False)
        builder.append(1, 0x2, 11, True)
        assert len(builder) == 2
        stream = builder.build()
        assert len(stream) == 2

    def test_name_propagates(self):
        assert LlcStreamBuilder(name="s").build().name == "s"


class TestLlcStream:
    def make(self):
        builder = LlcStreamBuilder()
        builder.append(0, 0x1, 10, False)
        builder.append(3, 0x2, 11, True)
        return builder.build()

    def test_getitem(self):
        stream = self.make()
        assert stream[1] == LlcAccess(3, 0x2, 11, True)
        assert isinstance(stream[1].is_write, bool)

    def test_iteration(self):
        stream = self.make()
        assert list(stream) == [stream[0], stream[1]]

    def test_num_cores(self):
        assert self.make().num_cores == 4
        assert LlcStreamBuilder().build().num_cores == 0

    def test_columns(self):
        cores, pcs, blocks, writes = self.make().columns()
        assert list(cores) == [0, 3]
        assert list(blocks) == [10, 11]
        assert list(writes) == [0, 1]

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            LlcStream(array("b", [0]), array("q"), array("q"), array("b"))

    def test_repr(self):
        assert "len=2" in repr(self.make())
