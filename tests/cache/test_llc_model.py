"""Differential test: SharedLlc+LRU against an independent reference model.

The reference reimplements a set-associative LRU cache with full residency
metadata using OrderedDicts — different data structures, same specified
behaviour. Hypothesis drives long random access sequences and every
externally visible outcome is compared: hit/miss, evicted block, residency
records (fill ordinal, core mask, write mask, hit counts, cross-core hit
counts), and final occupancy.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.cache.llc import NO_BLOCK, ResidencyObserver, SharedLlc
from repro.common.config import CacheGeometry
from repro.policies.lru import LruPolicy

NUM_SETS = 2
WAYS = 2
GEOMETRY = CacheGeometry(NUM_SETS * WAYS * 64, WAYS)


class ReferenceLlc:
    """Spec-level model: per-set OrderedDict, MRU at the end."""

    def __init__(self):
        self.sets = [OrderedDict() for __ in range(NUM_SETS)]
        self.access_count = 0
        self.hits = 0
        self.misses = 0
        self.ended = []

    def access(self, core, pc, block, is_write):
        self.access_count += 1
        s = self.sets[block % NUM_SETS]
        if block in s:
            self.hits += 1
            meta = s[block]
            s.move_to_end(block)
            meta["core_mask"] |= 1 << core
            if is_write:
                meta["write_mask"] |= 1 << core
            meta["hits"] += 1
            if core != meta["fill_core"]:
                meta["other_hits"] += 1
            return True, NO_BLOCK
        self.misses += 1
        evicted = NO_BLOCK
        if len(s) == WAYS:
            evicted, meta = s.popitem(last=False)
            self._end(evicted, meta, forced=False)
        s[block] = {
            "fill_ordinal": self.access_count,
            "fill_pc": pc,
            "fill_core": core,
            "core_mask": 1 << core,
            "write_mask": (1 << core) if is_write else 0,
            "hits": 0,
            "other_hits": 0,
        }
        return False, evicted

    def _end(self, block, meta, forced):
        self.ended.append((
            block, meta["fill_ordinal"], self.access_count, meta["fill_pc"],
            meta["fill_core"], meta["core_mask"], meta["write_mask"],
            meta["hits"], meta["other_hits"], forced,
        ))

    def flush(self):
        for s in self.sets:
            for block, meta in s.items():
                self._end(block, meta, forced=True)

    def resident(self):
        return sorted(block for s in self.sets for block in s)


class Collector(ResidencyObserver):
    def __init__(self):
        self.ended = []

    def residency_ended(self, block, set_index, fill_ordinal, end_ordinal,
                        fill_pc, fill_core, core_mask, write_mask, hits,
                        other_hits, forced):
        self.ended.append((block, fill_ordinal, end_ordinal, fill_pc,
                           fill_core, core_mask, write_mask, hits,
                           other_hits, forced))


accesses_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),    # core
        st.integers(min_value=0, max_value=9),    # pc
        st.integers(min_value=0, max_value=11),   # block
        st.booleans(),                            # is_write
    ),
    max_size=300,
)


@settings(max_examples=60, deadline=None)
@given(accesses_strategy)
def test_llc_matches_reference_model(accesses):
    collector = Collector()
    llc = SharedLlc(GEOMETRY, LruPolicy(), observers=(collector,))
    reference = ReferenceLlc()

    for core, pc, block, is_write in accesses:
        expected = reference.access(core, pc, block, is_write)
        actual = llc.access(core, pc, block, is_write)
        assert actual == expected

    llc.flush_residencies()
    reference.flush()

    assert llc.hits == reference.hits
    assert llc.misses == reference.misses
    assert sorted(llc.resident_blocks()) == reference.resident()
    # Residency records must match except for ordering within the final
    # flush (the LLC flushes by set/way order, the model by set/insertion).
    completed = [r for r in collector.ended if not r[-1]]
    expected_completed = [r for r in reference.ended if not r[-1]]
    assert completed == expected_completed
    flushed = sorted(r for r in collector.ended if r[-1])
    expected_flushed = sorted(r for r in reference.ended if r[-1])
    assert flushed == expected_flushed
