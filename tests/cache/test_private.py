"""Tests for the private LRU cache level."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.cache.private import PrivateCache
from repro.common.config import CacheGeometry


def tiny_cache(sets=2, ways=2):
    return PrivateCache(CacheGeometry(sets * ways * 64, ways))


class TestAccessAndFill:
    def test_miss_does_not_allocate(self):
        cache = tiny_cache()
        assert not cache.access(0)
        assert not cache.contains(0)
        assert cache.misses == 1

    def test_fill_then_hit(self):
        cache = tiny_cache()
        cache.fill(0)
        assert cache.access(0)
        assert cache.hits == 1

    def test_lru_eviction_order(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.fill(0)
        cache.fill(1)
        evicted = cache.fill(2)  # set full; 0 is LRU
        assert evicted == 0
        assert cache.contains(1)
        assert cache.contains(2)

    def test_hit_refreshes_recency(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.fill(0)
        cache.fill(1)
        cache.access(0)          # 1 becomes LRU
        assert cache.fill(2) == 1

    def test_fill_resident_block_refreshes_without_eviction(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.fill(0)
        cache.fill(1)
        assert cache.fill(0) is None  # refresh, not duplicate
        assert cache.fill(2) == 1     # 1 was LRU after the refresh

    def test_blocks_map_to_sets_by_low_bits(self):
        cache = tiny_cache(sets=2, ways=1)
        cache.fill(0)      # set 0
        cache.fill(1)      # set 1
        assert cache.fill(2) == 0   # block 2 -> set 0 evicts block 0
        assert cache.contains(1)

    def test_fill_below_capacity_never_evicts(self):
        cache = tiny_cache(sets=2, ways=4)
        for block in range(8):
            assert cache.fill(block) is None


class TestInvalidate:
    def test_invalidate_resident(self):
        cache = tiny_cache()
        cache.fill(0)
        assert cache.invalidate(0)
        assert not cache.contains(0)

    def test_invalidate_absent(self):
        assert not tiny_cache().invalidate(0)

    def test_invalidate_frees_way(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.fill(0)
        cache.fill(1)
        cache.invalidate(0)
        assert cache.fill(2) is None  # way freed, no eviction


class TestHelpers:
    def test_resident_blocks(self):
        cache = tiny_cache()
        cache.fill(0)
        cache.fill(1)
        assert sorted(cache.resident_blocks()) == [0, 1]

    def test_contains_does_not_touch_recency(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.fill(0)
        cache.fill(1)
        cache.contains(0)             # must NOT promote block 0
        assert cache.fill(2) == 0

    def test_repr(self):
        assert "l1" in repr(PrivateCache(CacheGeometry(512, 4), name="l1"))


class ReferenceLru:
    """Oracle model: per-set OrderedDict LRU."""

    def __init__(self, num_sets, ways):
        self.num_sets, self.ways = num_sets, ways
        self.sets = [OrderedDict() for __ in range(num_sets)]

    def access(self, block):
        s = self.sets[block % self.num_sets]
        if block in s:
            s.move_to_end(block)
            return True
        return False

    def fill(self, block):
        s = self.sets[block % self.num_sets]
        if block in s:
            s.move_to_end(block)
            return None
        s[block] = True
        if len(s) > self.ways:
            return s.popitem(last=False)[0]
        return None


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=30)),
        max_size=200,
    )
)
def test_matches_reference_lru_model(operations):
    """Differential test against an OrderedDict-based LRU oracle."""
    cache = tiny_cache(sets=2, ways=3)
    reference = ReferenceLru(2, 3)
    for is_fill, block in operations:
        if is_fill:
            assert cache.fill(block) == reference.fill(block)
        else:
            assert cache.access(block) == reference.access(block)
    assert sorted(cache.resident_blocks()) == sorted(
        block for s in reference.sets for block in s
    )
